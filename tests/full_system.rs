//! Full-system integration: secure monitor + sIOPMP unit + device models +
//! cycle-level bus simulation, exercised together.

use siopmp_suite::bus::policy::SiopmpPolicy;
use siopmp_suite::bus::{BusConfig, BusSim};
use siopmp_suite::devices::accel::{AccelJob, Accelerator};
use siopmp_suite::devices::dma_node::{DmaCopyEngine, SgSegment};
use siopmp_suite::devices::nic::{Nic, NicLayout};
use siopmp_suite::monitor::{MemPerms, SecureMonitor};
use siopmp_suite::siopmp::checker::CheckerKind;
use siopmp_suite::siopmp::ids::DeviceId;
use siopmp_suite::siopmp::violation::ViolationMode;
use siopmp_suite::siopmp::SiopmpConfig;

fn nic_layout() -> NicLayout {
    NicLayout {
        rx_base: 0x8000_0000,
        tx_base: 0x8010_0000,
        ring_base: 0x8020_0000,
        slot_bytes: 2048,
        slots: 64,
    }
}

/// Boots a monitor, creates a TEE owning the NIC and its memory, and maps
/// all NIC regions. Returns the monitor plus the capability handles.
fn tee_with_nic() -> (SecureMonitor, siopmp_suite::monitor::TeeId) {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem = monitor.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
    let dev = monitor.mint_device(DeviceId(0x100));
    let tee = monitor.create_tee(vec![mem, dev]).unwrap();
    for (base, len, writable) in nic_layout().regions() {
        let perms = if writable {
            MemPerms::rw()
        } else {
            MemPerms::ro()
        };
        monitor.device_map(tee, dev, mem, base, len, perms).unwrap();
    }
    (monitor, tee)
}

#[test]
fn nic_rx_and_tx_flow_through_the_checker() {
    let (monitor, _tee) = tee_with_nic();
    let nic = Nic::build(0x100, nic_layout(), None);

    for program in [nic.rx_program(1500, 16), nic.tx_program(1500, 16)] {
        let policy = SiopmpPolicy::new(monitor.siopmp().clone());
        let mut sim = BusSim::build(BusConfig::default(), Box::new(policy), None);
        sim.add_master(program);
        let report = sim.run_to_completion(2_000_000);
        assert!(report.completed);
        let m = &report.masters[0];
        assert_eq!(m.bursts_ok, m.bursts_completed, "all legal bursts pass");
        assert!(m.bytes_transferred > 0);
    }
}

#[test]
fn rogue_nic_blocked_under_both_violation_modes() {
    for mode in [ViolationMode::PacketMasking, ViolationMode::BusError] {
        let (monitor, _tee) = tee_with_nic();
        let nic = Nic::build(0x100, nic_layout(), None);
        let cfg = BusConfig::default().with_checker(
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
            mode,
        );
        let policy = SiopmpPolicy::new(monitor.siopmp().clone());
        let mut sim = BusSim::build(cfg, Box::new(policy), None);
        sim.add_master(nic.rogue_rx_program(1500, 4, 0xFF00_0000));
        let report = sim.run_to_completion(2_000_000);
        let m = &report.masters[0];
        let denied = m.bursts_masked + m.bursts_bus_error;
        assert!(denied > 0, "{mode}: attack writes must be denied");
        match mode {
            ViolationMode::PacketMasking => assert!(m.bursts_masked > 0),
            ViolationMode::BusError => assert!(m.bursts_bus_error > 0),
        }
    }
}

#[test]
fn dma_copy_engine_respects_direction_permissions() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem = monitor.mint_memory(0x1000_0000, 0x100_0000, MemPerms::rw());
    let dev = monitor.mint_device(DeviceId(3));
    let tee = monitor.create_tee(vec![mem, dev]).unwrap();

    let engine = DmaCopyEngine::build(3, 64, None);
    let segments = [SgSegment {
        src: 0x1000_0000,
        dst: 0x1080_0000,
        len: 4096,
    }];
    for (base, len, writable) in engine.required_regions(&segments) {
        let perms = if writable {
            MemPerms::rw()
        } else {
            MemPerms::ro()
        };
        monitor.device_map(tee, dev, mem, base, len, perms).unwrap();
    }
    let policy = SiopmpPolicy::new(monitor.siopmp().clone());
    let mut sim = BusSim::build(BusConfig::default(), Box::new(policy), None);
    sim.add_master(engine.copy_program(&segments));
    let report = sim.run_to_completion(2_000_000);
    let m = &report.masters[0];
    assert_eq!(m.bursts_ok, m.bursts_completed);

    // Reversing the direction without remapping is denied: writing the
    // read-only source region.
    let reversed = [SgSegment {
        src: 0x1080_0000,
        dst: 0x1000_0000,
        len: 64,
    }];
    let policy = SiopmpPolicy::new(monitor.siopmp().clone());
    let mut sim = BusSim::build(BusConfig::default(), Box::new(policy), None);
    sim.add_master(engine.copy_program(&reversed));
    let report = sim.run_to_completion(2_000_000);
    let m = &report.masters[0];
    assert!(
        m.bursts_masked + m.bursts_bus_error > 0,
        "write to ro region denied"
    );
}

#[test]
fn accelerator_job_runs_with_scatter_regions() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem = monitor.mint_memory(0x2000_0000, 0x1000_0000, MemPerms::rw());
    let dev = monitor.mint_device(DeviceId(0x200));
    let tee = monitor.create_tee(vec![mem, dev]).unwrap();

    let accel = Accelerator::build(0x200, None);
    let job = AccelJob {
        weights_base: 0x2000_0000,
        weights_len: 64 * 1024,
        input_base: 0x2100_0000,
        input_len: 16 * 1024,
        output_base: 0x2200_0000,
        output_len: 8 * 1024,
    };
    for (base, len, writable) in accel.required_regions(&job) {
        let perms = if writable {
            MemPerms::rw()
        } else {
            MemPerms::ro()
        };
        monitor.device_map(tee, dev, mem, base, len, perms).unwrap();
    }
    let policy = SiopmpPolicy::new(monitor.siopmp().clone());
    let mut sim = BusSim::build(BusConfig::default(), Box::new(policy), None);
    sim.add_master(accel.job_program(&job));
    let report = sim.run_to_completion(10_000_000);
    assert!(report.completed);
    let m = &report.masters[0];
    assert_eq!(m.bursts_ok, m.bursts_completed);
    assert_eq!(m.bytes_transferred, (64 + 16 + 8) * 1024);
}

#[test]
fn two_tees_cannot_reach_each_other() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem_a = monitor.mint_memory(0x4000_0000, 0x10_0000, MemPerms::rw());
    let dev_a = monitor.mint_device(DeviceId(1));
    let mem_b = monitor.mint_memory(0x5000_0000, 0x10_0000, MemPerms::rw());
    let dev_b = monitor.mint_device(DeviceId(2));
    let tee_a = monitor.create_tee(vec![mem_a, dev_a]).unwrap();
    let tee_b = monitor.create_tee(vec![mem_b, dev_b]).unwrap();
    monitor
        .device_map(tee_a, dev_a, mem_a, 0x4000_0000, 0x1000, MemPerms::rw())
        .unwrap();
    monitor
        .device_map(tee_b, dev_b, mem_b, 0x5000_0000, 0x1000, MemPerms::rw())
        .unwrap();

    use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
    // Each TEE's device reaches its own region...
    assert!(monitor
        .check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Read,
            0x4000_0000,
            64
        ))
        .is_allowed());
    assert!(monitor
        .check_dma(&DmaRequest::new(
            DeviceId(2),
            AccessKind::Read,
            0x5000_0000,
            64
        ))
        .is_allowed());
    // ...but not the other's.
    assert!(!monitor
        .check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Read,
            0x5000_0000,
            64
        ))
        .is_allowed());
    assert!(!monitor
        .check_dma(&DmaRequest::new(
            DeviceId(2),
            AccessKind::Write,
            0x4000_0000,
            64
        ))
        .is_allowed());
    // Cross-TEE device_map is refused by the capability layer.
    assert!(monitor
        .device_map(tee_a, dev_a, mem_b, 0x5000_0000, 0x1000, MemPerms::rw())
        .is_err());
}

#[test]
fn destroying_one_tee_leaves_the_other_running() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem_a = monitor.mint_memory(0x4000_0000, 0x10_0000, MemPerms::rw());
    let dev_a = monitor.mint_device(DeviceId(1));
    let mem_b = monitor.mint_memory(0x5000_0000, 0x10_0000, MemPerms::rw());
    let dev_b = monitor.mint_device(DeviceId(2));
    let tee_a = monitor.create_tee(vec![mem_a, dev_a]).unwrap();
    let tee_b = monitor.create_tee(vec![mem_b, dev_b]).unwrap();
    monitor
        .device_map(tee_a, dev_a, mem_a, 0x4000_0000, 0x1000, MemPerms::rw())
        .unwrap();
    monitor
        .device_map(tee_b, dev_b, mem_b, 0x5000_0000, 0x1000, MemPerms::rw())
        .unwrap();
    monitor.destroy_tee(tee_a).unwrap();

    use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
    assert!(!monitor
        .check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Read,
            0x4000_0000,
            64
        ))
        .is_allowed());
    assert!(monitor
        .check_dma(&DmaRequest::new(
            DeviceId(2),
            AccessKind::Read,
            0x5000_0000,
            64
        ))
        .is_allowed());
}
