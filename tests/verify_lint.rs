//! Integration coverage for the static analyzer against the assembled
//! system: a monitor-built configuration lints clean through its whole
//! lifecycle, an out-of-band table edit is caught as capability
//! divergence, and the pre-switch gate composes with the cold path.

use siopmp_suite::monitor::{MemPerms, SecureMonitor};
use siopmp_suite::siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp_suite::siopmp::ids::{DeviceId, MdIndex};
use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
use siopmp_suite::siopmp::SiopmpConfig;
use siopmp_suite::verify::DiagnosticCode;

#[test]
fn monitor_lifecycle_lints_clean() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    assert!(!monitor.verify_now().has_errors(), "fresh monitor");

    let mem = monitor.mint_memory(0x9000_0000, 0x10_0000, MemPerms::rw());
    let dev = monitor.mint_device(DeviceId(0x10));
    let tee = monitor.create_tee(vec![mem, dev]).unwrap();
    monitor
        .device_map(tee, dev, mem, 0x9000_0000, 0x1000, MemPerms::rw())
        .unwrap();
    let report = monitor.verify_now();
    assert!(!report.has_errors(), "{:?}", report.diagnostics());

    monitor.device_unmap(tee, dev, mem).unwrap();
    let report = monitor.verify_now();
    assert!(!report.has_errors(), "{:?}", report.diagnostics());
}

/// Hardware state programmed behind the monitor's back — a hot device the
/// capability system has never heard of — is exactly the divergence the
/// analyzer exists to catch.
#[test]
fn out_of_band_hot_device_is_capability_divergence() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem = monitor.mint_memory(0x9000_0000, 0x10_0000, MemPerms::rw());
    let dev = monitor.mint_device(DeviceId(0x10));
    let tee = monitor.create_tee(vec![mem, dev]).unwrap();
    monitor
        .device_map(tee, dev, mem, 0x9000_0000, 0x1000, MemPerms::rw())
        .unwrap();

    // Rogue path: program the unit directly, skipping every capability.
    let unit = monitor.siopmp_mut();
    let rogue = unit.map_hot_device(DeviceId(0x99)).unwrap();
    unit.associate_sid_with_md(rogue, MdIndex(0)).unwrap();
    unit.install_entry(
        MdIndex(0),
        IopmpEntry::new(
            AddressRange::new(0xDEAD_0000, 0x1000).unwrap(),
            Permissions::rw(),
        ),
    )
    .unwrap();

    let report = monitor.verify_now();
    assert!(report.has_errors());
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagnosticCode::CapabilityDivergence
                && d.device == Some(DeviceId(0x99))),
        "{:?}",
        report.diagnostics()
    );
    let json = report.to_json().pretty();
    assert!(json.contains("capability-divergence"), "{json}");
}

/// With the pre-switch gate armed, a clean configuration still cold-mounts
/// transparently end to end.
#[test]
fn preswitch_gate_passes_clean_cold_switch_in_full_system() {
    let mut cfg = SiopmpConfig::small();
    cfg.num_sids = 2; // one hot SID: the second device must go cold
    let mut monitor = SecureMonitor::build(cfg, None);
    monitor.set_preswitch_verify(true);

    let mem = monitor.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
    let devs = [
        monitor.mint_device(DeviceId(1)),
        monitor.mint_device(DeviceId(2)),
    ];
    let tee = monitor.create_tee(vec![mem, devs[0], devs[1]]).unwrap();
    for (i, dev) in devs.iter().enumerate() {
        monitor
            .device_map(
                tee,
                *dev,
                mem,
                0x8000_0000 + (i as u64) * 0x1000,
                0x1000,
                MemPerms::rw(),
            )
            .unwrap();
    }

    let out = monitor.check_dma(&DmaRequest::new(
        DeviceId(2),
        AccessKind::Read,
        0x8000_1000,
        64,
    ));
    assert!(out.is_allowed(), "clean cold switch mounts: {out:?}");
    assert!(!monitor.verify_now().has_errors());
}
