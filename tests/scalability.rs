//! Scalability integration tests: the paper's headline claims — >1000
//! hardware regions, unlimited devices, dynamic hot/cold churn.

use siopmp_suite::siopmp::checker::CheckerKind;
use siopmp_suite::siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp_suite::siopmp::ids::{DeviceId, MdIndex};
use siopmp_suite::siopmp::mountable::MountableEntry;
use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
use siopmp_suite::siopmp::timing;
use siopmp_suite::siopmp::{CheckOutcome, Siopmp, SiopmpConfig};

#[test]
fn a_thousand_entries_check_correctly() {
    let cfg = SiopmpConfig {
        num_entries: 1024,
        ..SiopmpConfig::default()
    };
    let mut unit = Siopmp::build(cfg, None);
    let dev = DeviceId(1);
    let sid = unit.map_hot_device(dev).unwrap();

    // Fill every hot memory domain with disjoint 256-byte regions and
    // associate them all with the device — a 1000+-buffer scatter list.
    let mut installed = 0u64;
    for md in 0..62u16 {
        unit.associate_sid_with_md(sid, MdIndex(md)).unwrap();
        loop {
            let entry = IopmpEntry::new(
                AddressRange::new(0x1_0000_0000 + installed * 0x100, 0x100).unwrap(),
                Permissions::rw(),
            );
            match unit.install_entry(MdIndex(md), entry) {
                Ok(_) => installed += 1,
                Err(_) => break, // window full; move to the next domain
            }
        }
    }
    assert!(installed >= 1000, "installed {installed}");

    // Every region is reachable, boundaries hold.
    for probe in [0u64, installed / 2, installed - 1] {
        let base = 0x1_0000_0000 + probe * 0x100;
        assert!(unit
            .check(&DmaRequest::new(dev, AccessKind::Write, base, 0x100))
            .is_allowed());
        assert!(
            unit.check(&DmaRequest::new(dev, AccessKind::Write, base + 0x80, 0x100))
                .is_denied(),
            "straddling access must not match"
        );
    }
    let past_end = 0x1_0000_0000 + installed * 0x100;
    assert!(unit
        .check(&DmaRequest::new(dev, AccessKind::Read, past_end, 8))
        .is_denied());

    // And the 3-stage MT checker closes timing at this scale (Fig. 10).
    let report = timing::analyze(
        CheckerKind::MtChecker {
            stages: 3,
            tree_arity: 2,
        },
        1024,
    );
    assert!(report.meets_platform_target);
}

#[test]
fn thousands_of_cold_devices_are_serviceable() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    const DEVICES: u64 = 5000;
    for d in 0..DEVICES {
        unit.register_cold_device(
            DeviceId(d),
            MountableEntry {
                domains: vec![],
                entries: vec![IopmpEntry::new(
                    AddressRange::new(0x1_0000_0000 + d * 0x1000, 0x1000).unwrap(),
                    Permissions::rw(),
                )],
            },
        )
        .unwrap();
    }
    assert_eq!(unit.cold_device_count(), DEVICES as usize);

    // Touch a scattering of them; each mounts and works.
    for d in (0..DEVICES).step_by(617) {
        let req = DmaRequest::new(
            DeviceId(d),
            AccessKind::Read,
            0x1_0000_0000 + d * 0x1000,
            64,
        );
        match unit.check(&req) {
            CheckOutcome::SidMissing { device } => {
                unit.handle_sid_missing(device).unwrap();
                assert!(unit.check(&req).is_allowed(), "device {d}");
            }
            other => panic!("expected SID-missing for {d}: {other:?}"),
        }
    }
}

#[test]
fn hot_cold_churn_preserves_isolation() {
    // Continuously promote/demote devices through a tiny CAM and verify
    // no device ever gains access to another's region.
    let mut cfg = SiopmpConfig::small();
    cfg.num_sids = 4; // 3 hot SIDs
    let mut unit = Siopmp::build(cfg, None);
    const N: u64 = 12;
    for d in 0..N {
        unit.register_cold_device(
            DeviceId(d),
            MountableEntry {
                domains: vec![],
                entries: vec![IopmpEntry::new(
                    AddressRange::new(0x10_0000 * (d + 1), 0x1000).unwrap(),
                    Permissions::rw(),
                )],
            },
        )
        .unwrap();
    }
    for round in 0..100u64 {
        let d = (round * 7 + 3) % N;
        let own = 0x10_0000 * (d + 1);
        let foreign = 0x10_0000 * (((d + 1) % N) + 1);
        let own_req = DmaRequest::new(DeviceId(d), AccessKind::Read, own, 64);
        match unit.check(&own_req) {
            CheckOutcome::Allowed { .. } => {}
            CheckOutcome::SidMissing { device } => {
                unit.handle_sid_missing(device).unwrap();
                assert!(unit.check(&own_req).is_allowed());
            }
            other => panic!("round {round}: {other:?}"),
        }
        let foreign_req = DmaRequest::new(DeviceId(d), AccessKind::Read, foreign, 64);
        assert!(
            !unit.check(&foreign_req).is_allowed(),
            "round {round}: device {d} reached a foreign region"
        );
    }
    assert!(unit.cold_switch_count() > 50, "churn really happened");
}

#[test]
fn promotion_under_full_cam_uses_clock_eviction() {
    let mut cfg = SiopmpConfig::small();
    cfg.num_sids = 3; // 2 hot SIDs
    let mut unit = Siopmp::build(cfg, None);
    for d in 0..6u64 {
        unit.register_cold_device(
            DeviceId(d),
            MountableEntry {
                domains: vec![MdIndex(0)],
                entries: vec![],
            },
        )
        .unwrap();
    }
    // Promote all six in sequence; the CAM holds two at a time.
    for d in 0..6u64 {
        unit.promote_with_eviction(DeviceId(d)).unwrap();
        assert!(unit.is_hot(DeviceId(d)));
    }
    // Exactly two are hot; the other four were demoted back to cold.
    let hot = (0..6u64).filter(|d| unit.is_hot(DeviceId(*d))).count();
    assert_eq!(hot, 2);
    assert_eq!(unit.cold_device_count(), 4);
}
