//! Integration-level checks that the regenerated evaluation keeps the
//! paper's qualitative shapes — who wins, by roughly what factor, and
//! where the crossovers fall. Absolute numbers are the simulator's, not
//! the authors' testbed; EXPERIMENTS.md records both side by side.

use siopmp_suite::experiments;

#[test]
fn all_experiments_render() {
    for name in experiments::ALL {
        let out = experiments::render(name).expect(name);
        assert!(!out.is_empty(), "{name}");
    }
}

#[test]
fn figure10_crossovers() {
    use siopmp_suite::siopmp::checker::CheckerKind;
    use siopmp_suite::siopmp::timing::analyze;
    // The last entry count at which each design holds 60 MHz must be
    // ordered: linear < 2pipe < 2pipe-tree < 3pipe-tree.
    let holds = |k: CheckerKind| {
        [16usize, 32, 64, 128, 256, 512, 1024, 2048]
            .iter()
            .filter(|&&n| analyze(k, n).meets_platform_target)
            .max_by_key(|&&n| n)
            .copied()
            .unwrap_or(0)
    };
    let linear = holds(CheckerKind::Linear);
    let pipe2 = holds(CheckerKind::Pipelined { stages: 2 });
    let mt2 = holds(CheckerKind::MtChecker {
        stages: 2,
        tree_arity: 2,
    });
    let mt3 = holds(CheckerKind::MtChecker {
        stages: 3,
        tree_arity: 2,
    });
    assert!(linear < pipe2, "{linear} vs {pipe2}");
    assert!(pipe2 < mt2, "{pipe2} vs {mt2}");
    assert!(mt2 < mt3, "{mt2} vs {mt3}");
    assert_eq!(linear, 128, "paper anchor");
    assert!(mt3 >= 1024, "paper anchor");
}

#[test]
fn figure15_winners_and_factors() {
    let bars = siopmp_suite::experiments::fig15::data();
    let pct = |label: &str, rx: bool| {
        bars.iter()
            .find(|b| {
                b.label == label
                    && (rx == matches!(b.direction, siopmp_suite::workloads::Direction::Rx))
            })
            .unwrap()
            .percent
    };
    // sIOPMP wins both directions.
    for rx in [true, false] {
        let s = pct("sIOPMP", rx);
        for other in ["IOMMU-strict", "SWIO", "IOMMU-deferred", "sIOPMP+IOMMU"] {
            assert!(s > pct(other, rx), "sIOPMP vs {other} (rx={rx})");
        }
    }
    // The paper's headline: >20% improvement over IOMMU-strict and SWIO.
    assert!(pct("sIOPMP", false) - pct("IOMMU-strict", false) >= 20.0);
    assert!(pct("sIOPMP", false) - pct("SWIO", false) >= 20.0);
    // Hybrid ≈ deferred (within a few points).
    let hybrid = pct("sIOPMP+IOMMU", false);
    let deferred = pct("IOMMU-deferred", false);
    assert!((hybrid - deferred).abs() < 6.0, "{hybrid} vs {deferred}");
}

#[test]
fn figure17_crossover_between_matched_and_mismatched() {
    let reports = siopmp_suite::experiments::fig17::data();
    for r in &reports {
        let matched = reports
            .iter()
            .find(|m| m.matched && m.ratio == r.ratio)
            .unwrap();
        if !r.matched {
            assert!(
                matched.hot_throughput_fraction >= r.hot_throughput_fraction,
                "matched must dominate at 1:{}",
                r.ratio
            );
        }
    }
    // The gap only becomes dramatic at high cold frequency (1:10).
    let gap_at = |ratio: u64| {
        let m = reports
            .iter()
            .find(|r| r.matched && r.ratio == ratio)
            .unwrap()
            .hot_throughput_fraction;
        let mm = reports
            .iter()
            .find(|r| !r.matched && r.ratio == ratio)
            .unwrap()
            .hot_throughput_fraction;
        m - mm
    };
    assert!(gap_at(10_000) < 0.02);
    assert!(gap_at(10) > 0.7);
}

#[test]
fn modification_is_orders_faster_than_iotlb_invalidation() {
    use siopmp_suite::siopmp::atomic;
    // Figure 13's punchline: even a 128-entry atomic update is far below
    // one synchronous IOTLB invalidation.
    let full_update = atomic::modification_cycles(128, true);
    assert!(full_update * 10 < atomic::IOTLB_INVALIDATION_CYCLES);
}
