//! Golden-corpus gate: every `.scn` file committed under `corpus/` must
//! parse, survive the canonical round-trip, lint without a compile
//! error, pass its own `expect` lines, and produce a byte-identical
//! report at 1 and 4 worker threads. Adding a scenario to the corpus is
//! all it takes to put it under this gate.

use std::fs;
use std::path::PathBuf;

use siopmp_scenario::{lint, parse, render, run, RunOptions};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"));
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("corpus/ directory exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 20,
        "the corpus promises at least 20 scenarios, found {}",
        files.len()
    );
    files
}

fn load(path: &PathBuf) -> siopmp_scenario::Scenario {
    let text = fs::read_to_string(path).expect("readable scenario file");
    parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_corpus_file_round_trips_through_the_canonical_form() {
    for path in corpus_files() {
        let s = load(&path);
        let canon = render(&s);
        let back = parse(&canon).unwrap_or_else(|e| {
            panic!("{}: canonical form failed to re-parse: {e}", path.display())
        });
        assert_eq!(back, s, "{}: parse(render(s)) != s", path.display());
    }
}

#[test]
fn every_corpus_file_lints_without_compile_errors() {
    for path in corpus_files() {
        let s = load(&path);
        let lints =
            lint(&s).unwrap_or_else(|e| panic!("{}: lint failed to compile: {e}", path.display()));
        assert_eq!(
            lints.len(),
            s.domains.len(),
            "{}: one lint report per domain",
            path.display()
        );
    }
}

#[test]
fn every_corpus_file_passes_its_own_expectations() {
    for path in corpus_files() {
        let s = load(&path);
        let outcome = run(&s, &RunOptions::default())
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", path.display()));
        assert!(
            outcome.passed(),
            "{}: expectations failed:\n  {}",
            path.display(),
            outcome.failures.join("\n  ")
        );
    }
}

#[test]
fn every_corpus_file_is_thread_count_invariant() {
    for path in corpus_files() {
        let s = load(&path);
        let opts = |threads| RunOptions {
            threads: Some(threads),
            ..RunOptions::default()
        };
        let serial =
            run(&s, &opts(1)).unwrap_or_else(|e| panic!("{}: run failed: {e}", path.display()));
        let sharded =
            run(&s, &opts(4)).unwrap_or_else(|e| panic!("{}: run failed: {e}", path.display()));
        assert_eq!(
            serial.report.to_json().pretty(),
            sharded.report.to_json().pretty(),
            "{}: report differs between threads=1 and threads=4",
            path.display()
        );
        assert_eq!(
            (serial.cross_domain, serial.unrouted),
            (sharded.cross_domain, sharded.unrouted),
            "{}: routing counters differ between threads=1 and threads=4",
            path.display()
        );
    }
}
