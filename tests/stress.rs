//! Randomized stress tests: seeded traffic mixes through the full SoC,
//! checking conservation and isolation invariants for every mix.

use siopmp_suite::siopmp::ids::DeviceId;
use siopmp_suite::soc::{DeviceSpec, SocBuilder};
use siopmp_suite::workloads::traffic::{generate, legal_base, stray_count, TrafficConfig};

fn build_soc(masters: usize, region_len: u64) -> siopmp_suite::soc::Soc {
    let mut builder = SocBuilder::new();
    for m in 0..masters {
        let d = m as u64 + 1;
        let base = legal_base(d, region_len);
        builder = builder.tenant(
            base,
            region_len,
            vec![DeviceSpec {
                device: DeviceId(d),
                regions: vec![(base, region_len, true)],
            }],
        );
    }
    builder.build().expect("SoC assembly")
}

#[test]
fn legal_random_traffic_all_passes() {
    for seed in 0..8u64 {
        let cfg = TrafficConfig {
            stray_ratio: 0.0,
            ..TrafficConfig::default()
        };
        let programs = generate(seed, &cfg);
        let soc = build_soc(cfg.masters, cfg.region_len);
        let expected: Vec<usize> = programs.iter().map(|p| p.bursts.len()).collect();
        let report = soc.run(programs, 10_000_000);
        assert!(report.completed, "seed {seed}");
        for (m, want) in report.masters.iter().zip(expected) {
            assert_eq!(m.bursts_completed, want, "seed {seed}");
            assert_eq!(m.bursts_ok, m.bursts_completed, "seed {seed}");
        }
    }
}

#[test]
fn stray_random_traffic_denied_exactly() {
    for seed in 0..8u64 {
        let cfg = TrafficConfig {
            stray_ratio: 0.4,
            masters: 3,
            max_bursts: 40,
            ..TrafficConfig::default()
        };
        let programs = generate(seed, &cfg);
        let strays = stray_count(&programs, cfg.region_len);
        let soc = build_soc(cfg.masters, cfg.region_len);
        let report = soc.run(programs, 10_000_000);
        assert!(report.completed, "seed {seed}");
        let denied: usize = report
            .masters
            .iter()
            .map(|m| m.bursts_masked + m.bursts_bus_error)
            .sum();
        assert_eq!(
            denied, strays,
            "seed {seed}: every stray burst, and only strays, denied"
        );
        // Denied traffic never moves data.
        let total_ok: usize = report.masters.iter().map(|m| m.bursts_ok).sum();
        let total_bytes: u64 = report.masters.iter().map(|m| m.bytes_transferred).sum();
        assert_eq!(total_bytes, total_ok as u64 * 64, "seed {seed}");
    }
}

#[test]
fn violations_are_fully_logged() {
    let cfg = TrafficConfig {
        stray_ratio: 0.5,
        masters: 2,
        max_bursts: 30,
        ..TrafficConfig::default()
    };
    let programs = generate(123, &cfg);
    let strays = stray_count(&programs, cfg.region_len);
    let mut soc = build_soc(cfg.masters, cfg.region_len);
    // Run via the monitor-owned unit directly so the violation log is on
    // the same instance we inspect.
    let policy = siopmp_suite::bus::policy::SiopmpPolicy::new(soc.monitor.siopmp().clone());
    let mut sim = siopmp_suite::bus::BusSim::build(soc.bus_config.clone(), Box::new(policy), None);
    for p in programs {
        sim.add_master(p);
    }
    let report = sim.run_to_completion(10_000_000);
    assert!(report.completed);
    let denied: usize = report
        .masters
        .iter()
        .map(|m| m.bursts_masked + m.bursts_bus_error)
        .sum();
    assert_eq!(denied, strays);
    // The monitor's own unit logs nothing (we ran on a clone); check the
    // mechanism by replaying one stray access through the monitor path.
    let stray_addr = legal_base(1, cfg.region_len) + cfg.region_len + 64;
    let out = soc
        .monitor
        .check_dma(&siopmp_suite::siopmp::request::DmaRequest::new(
            DeviceId(1),
            siopmp_suite::siopmp::request::AccessKind::Write,
            stray_addr,
            64,
        ));
    assert!(out.is_denied());
    let log = soc.monitor.take_violations();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].addr, stray_addr);
}
