//! Full-system parallel simulation: two monitor-configured tenants, each
//! in its own shard, exchanging DMA at epoch barriers — with the thread
//! count provably irrelevant to every observable.
//!
//! Each domain boots its own [`SecureMonitor`] (three TEEs: the local
//! tenant, an egress grant covering the peer's ingress range, and an
//! ingress grant for the peer's cross-writer device) against a per-domain
//! telemetry registry. Cross-domain writes are authorised twice: by the
//! source monitor's sIOPMP before they leave, and by the destination
//! monitor's sIOPMP when the bridge master replays them.

use siopmp_suite::bus::parallel::{DomainSpec, ParallelSim};
use siopmp_suite::bus::policy::SiopmpPolicy;
use siopmp_suite::bus::{BurstKind, MasterProgram, SimReport};
use siopmp_suite::monitor::{MemPerms, SecureMonitor};
use siopmp_suite::siopmp::ids::DeviceId;
use siopmp_suite::siopmp::telemetry::Telemetry;
use siopmp_suite::siopmp::SiopmpConfig;

const DOMAINS: usize = 2;
const LOCAL_BURSTS: usize = 32;
const CROSS_BURSTS: usize = 8;

fn window(domain: usize) -> u64 {
    0x4000_0000 + domain as u64 * 0x1000_0000
}

/// The peer-visible ingress range inside `domain`'s window.
fn ingress_base(domain: usize) -> u64 {
    window(domain) + 0x8_0000
}

fn local_device(domain: usize) -> u64 {
    0x100 + domain as u64
}

fn cross_device(domain: usize) -> u64 {
    0x200 + domain as u64
}

/// Boots domain `d`'s monitor: a local tenant over the home window, an
/// egress grant letting this domain's cross writer target the peer's
/// ingress range, and an ingress grant letting the peer's cross writer
/// land in ours.
fn domain_monitor(domain: usize, telemetry: Telemetry) -> SecureMonitor {
    let peer = (domain + 1) % DOMAINS;
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), telemetry);
    for (device, base, len) in [
        (local_device(domain), window(domain), 0x4000),
        (cross_device(domain), ingress_base(peer), 0x4000),
        (cross_device(peer), ingress_base(domain), 0x4000),
    ] {
        let mem = monitor.mint_memory(base, len, MemPerms::rw());
        let dev = monitor.mint_device(DeviceId(device));
        let tee = monitor.create_tee(vec![mem, dev]).unwrap();
        monitor
            .device_map(tee, dev, mem, base, len, MemPerms::rw())
            .unwrap();
    }
    monitor
}

fn build_sim(threads: usize) -> ParallelSim {
    let mut psim = ParallelSim::new(128, threads);
    for domain in 0..DOMAINS {
        let peer = (domain + 1) % DOMAINS;
        let telemetry = Telemetry::new();
        let monitor = domain_monitor(domain, telemetry.clone());
        let policy = SiopmpPolicy::new(monitor.siopmp().clone());
        psim.add_domain(
            DomainSpec::for_policy(policy)
                .with_home_window(window(domain), 0x1000_0000)
                .with_telemetry(telemetry)
                .with_master(
                    MasterProgram::streaming(
                        local_device(domain),
                        BurstKind::Read,
                        window(domain),
                        64,
                        LOCAL_BURSTS,
                    )
                    .with_outstanding(4),
                )
                .with_master(MasterProgram::streaming(
                    cross_device(domain),
                    BurstKind::Write,
                    ingress_base(peer),
                    64,
                    CROSS_BURSTS,
                )),
        );
    }
    psim
}

fn run(threads: usize) -> (SimReport, String, String) {
    let mut psim = build_sim(threads);
    let report = psim.run(1_000_000);
    let report_json = report.to_json().pretty();
    let telemetry_json = psim.telemetry().snapshot().to_json().pretty();
    (report, report_json, telemetry_json)
}

#[test]
fn two_tenant_system_is_thread_count_invariant() {
    let (_, want_report, want_telemetry) = run(1);
    for threads in [2, 4] {
        let (_, got_report, got_telemetry) = run(threads);
        assert_eq!(got_report, want_report, "threads={threads}");
        assert_eq!(got_telemetry, want_telemetry, "threads={threads}");
    }
}

#[test]
fn cross_tenant_dma_is_double_checked_and_all_traffic_lands() {
    let mut psim = build_sim(4);
    let report = psim.run(1_000_000);
    assert!(report.completed);

    // 2 domains × (local + cross + bridge) — every domain received cross
    // traffic, so every domain grew a bridge master.
    assert_eq!(report.masters.len(), DOMAINS * 3);
    for m in &report.masters {
        assert_eq!(
            m.bursts_ok, m.bursts_completed,
            "every burst is authorised at both the source and the \
             destination monitor"
        );
        assert_eq!(m.bursts_bus_error, 0);
    }
    // The bridge masters (last per domain) replayed exactly the peer's
    // cross bursts.
    let bridges: Vec<_> = report
        .masters
        .iter()
        .filter(|m| m.bursts_completed == CROSS_BURSTS)
        .collect();
    assert!(bridges.len() >= DOMAINS);
    assert_eq!(
        psim.telemetry()
            .counter("parallel.cross_domain_bursts")
            .get(),
        (DOMAINS * CROSS_BURSTS) as u64
    );
    assert_eq!(
        psim.telemetry().counter("parallel.unrouted_egress").get(),
        0
    );
}
