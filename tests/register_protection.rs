//! Protection of the sIOPMP's own configuration surface: neither devices
//! (via DMA) nor the untrusted OS (via CPU loads/stores) can reach the
//! register file or the extended table, because no IOPMP entry ever covers
//! the periphery region and the PMP guards it from S/U mode.

use siopmp_suite::monitor::monitor::{EXT_TABLE_BASE, EXT_TABLE_LEN};
use siopmp_suite::monitor::{MemPerms, SecureMonitor};
use siopmp_suite::siopmp::ids::DeviceId;
use siopmp_suite::siopmp::mmio::{MmioFrontend, ENTRY_BASE, VIOLATION_COUNT};
use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
use siopmp_suite::siopmp::SiopmpConfig;

/// Model base address of the sIOPMP register file on the periphery bus.
const SIOPMP_MMIO_BASE: u64 = 0xFE00_0000;

#[test]
fn device_dma_cannot_reach_the_register_file() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem = monitor.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
    let dev = monitor.mint_device(DeviceId(0x10));
    let tee = monitor.create_tee(vec![mem, dev]).unwrap();
    monitor
        .device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
        .unwrap();

    // The device tries to rewrite an IOPMP entry through DMA to the
    // register file's bus address: no entry covers the periphery region,
    // so the access is denied and logged.
    let attack = DmaRequest::new(
        DeviceId(0x10),
        AccessKind::Write,
        SIOPMP_MMIO_BASE + ENTRY_BASE,
        16,
    );
    assert!(monitor.check_dma(&attack).is_denied());
    let log = monitor.take_violations();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].addr, SIOPMP_MMIO_BASE + ENTRY_BASE);

    // A TEE cannot even *ask* for such a mapping: the register region is
    // outside every memory capability the monitor minted.
    assert!(monitor
        .device_map(tee, dev, mem, SIOPMP_MMIO_BASE, 0x1000, MemPerms::rw())
        .is_err());
}

#[test]
fn untrusted_os_cannot_touch_the_extended_table() {
    let monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    // The PMP guard installed at boot denies S/U-mode access to the
    // extended IOPMP table region, read and write.
    for offset in [0u64, 8, EXT_TABLE_LEN - 8] {
        assert!(!monitor
            .pmp()
            .cpu_access_allowed(EXT_TABLE_BASE + offset, 8, false));
        assert!(!monitor
            .pmp()
            .cpu_access_allowed(EXT_TABLE_BASE + offset, 8, true));
    }
    // Ordinary memory stays open to the OS.
    assert!(monitor.pmp().cpu_access_allowed(0x8000_0000, 8, true));
}

#[test]
fn violation_counter_survives_tampering_attempts() {
    let mut unit = siopmp_suite::siopmp::Siopmp::build(SiopmpConfig::small(), None);
    let mut mmio = MmioFrontend::new();
    // Generate a violation.
    unit.check(&DmaRequest::new(DeviceId(9), AccessKind::Read, 0x0, 8));
    assert_eq!(mmio.read(&unit, VIOLATION_COUNT).unwrap(), 1);
    // An attacker with MMIO access still cannot clear the counter.
    assert!(mmio.write(&mut unit, VIOLATION_COUNT, 0).is_err());
    assert_eq!(mmio.read(&unit, VIOLATION_COUNT).unwrap(), 1);
}
