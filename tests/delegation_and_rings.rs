//! Integration tests for the S-mode delegation fast path (§6.3) and the
//! functional descriptor-ring data path, combined with the sIOPMP unit.

use siopmp_suite::devices::rings::{Descriptor, DescriptorRing};
use siopmp_suite::devices::SparseMemory;
use siopmp_suite::monitor::delegation::{delegate_window, kernel_map, kernel_unmap};
use siopmp_suite::siopmp::entry::Permissions;
use siopmp_suite::siopmp::ids::{DeviceId, MdIndex};
use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
use siopmp_suite::siopmp::{Siopmp, SiopmpConfig};

/// The kernel drives a NIC's dma_map/dma_unmap cycle entirely through its
/// delegated window — the fast path behind Figure 15's sIOPMP bars — while
/// the monitor's locked guard keeps the extended-table region unreachable.
#[test]
fn kernel_fast_path_handles_packet_churn() {
    let mut unit = Siopmp::build(SiopmpConfig::default(), None);
    let nic = DeviceId(0x10);
    let sid = unit.map_hot_device(nic).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    let window = delegate_window(&mut unit, MdIndex(0), &[(0xFF00_0000, 0x10_0000)]).unwrap();
    assert!(window.len() >= 8);

    // Simulate per-packet buffer churn: map, DMA, unmap, repeat.
    let mut total_cycles = 0u64;
    for pkt in 0..200u64 {
        let buf = 0x8000_0000 + (pkt % 16) * 0x1000;
        let (idx, map_cycles) =
            kernel_map(&mut unit, window, buf, 1500, Permissions::rw()).unwrap();
        let req = DmaRequest::new(nic, AccessKind::Write, buf, 1500);
        assert!(unit.check(&req).is_allowed(), "packet {pkt}");
        let unmap_cycles = kernel_unmap(&mut unit, window, sid, idx).unwrap();
        assert!(unit.check(&req).is_denied(), "window closed after unmap");
        total_cycles += map_cycles + unmap_cycles;
    }
    // Mean per-packet protection cost stays tiny (the <3% story).
    let mean = total_cycles / 200;
    assert!(mean < 100, "mean {mean} cycles/packet");

    // Throughout the churn, the guard never opened.
    assert!(unit
        .check(&DmaRequest::new(nic, AccessKind::Read, 0xFF00_0100, 8))
        .is_denied());
}

/// Functional RX through a descriptor ring with the checker gating each
/// device access: honest descriptors work; a descriptor retargeted at
/// guarded memory is caught when the device tries to use it.
#[test]
fn ring_rx_with_checker_gating() {
    let mut mem = SparseMemory::new();
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let nic = DeviceId(0x10);
    let sid = unit.map_hot_device(nic).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    // The NIC may write packet buffers and the ring region only.
    unit.install_entry(
        MdIndex(0),
        siopmp_suite::siopmp::entry::IopmpEntry::new(
            siopmp_suite::siopmp::entry::AddressRange::new(0x8000_0000, 0x1_0000).unwrap(),
            Permissions::rw(),
        ),
    )
    .unwrap();
    unit.install_entry(
        MdIndex(0),
        siopmp_suite::siopmp::entry::IopmpEntry::new(
            siopmp_suite::siopmp::entry::AddressRange::new(0x8020_0000, 0x1000).unwrap(),
            Permissions::rw(),
        ),
    )
    .unwrap();

    let ring = DescriptorRing {
        base: 0x8020_0000,
        slots: 4,
    };
    // Honest flow: driver publishes, device receives.
    ring.publish(
        &mut mem,
        0,
        Descriptor {
            buffer: 0x8000_0000,
            len: 64,
            device_owned: true,
            complete: false,
        },
    );
    let desc = ring.read(&mem, 0);
    let dma = DmaRequest::new(nic, AccessKind::Write, desc.buffer, u64::from(desc.len));
    assert!(unit.check(&dma).is_allowed());
    assert!(ring.device_receive(&mut mem, 0, b"payload"));
    assert_eq!(mem.read_vec(0x8000_0000, 7), b"payload".to_vec());

    // Thunderclap-style: somebody rewrote a descriptor to point at secret
    // memory. The descriptor write itself may have happened via the CPU
    // (compromised driver), but the *device's DMA through it* is what the
    // checker sees — and denies.
    mem.write(0x9999_0000, b"secret");
    ring.publish(
        &mut mem,
        1,
        Descriptor {
            buffer: 0x9999_0000,
            len: 64,
            device_owned: true,
            complete: false,
        },
    );
    let evil = ring.read(&mem, 1);
    let dma = DmaRequest::new(nic, AccessKind::Write, evil.buffer, u64::from(evil.len));
    assert!(unit.check(&dma).is_denied());
    // With the DMA denied (strobes masked), the device's receive is a
    // no-op on memory:
    mem.write_strobed(evil.buffer, &[0u8; 6], &[false; 6]);
    assert_eq!(mem.read_vec(0x9999_0000, 6), b"secret".to_vec());
}

/// Delegated windows are per-domain: a second device's kernel window
/// cannot authorise the first device's traffic.
#[test]
fn delegated_windows_are_domain_scoped() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let a = DeviceId(1);
    let b = DeviceId(2);
    let sid_a = unit.map_hot_device(a).unwrap();
    let sid_b = unit.map_hot_device(b).unwrap();
    unit.associate_sid_with_md(sid_a, MdIndex(0)).unwrap();
    unit.associate_sid_with_md(sid_b, MdIndex(1)).unwrap();
    let win_b = delegate_window(&mut unit, MdIndex(1), &[]).unwrap();
    kernel_map(&mut unit, win_b, 0x2000, 0x100, Permissions::rw()).unwrap();
    // Device B gains access; device A does not (different domain).
    assert!(unit
        .check(&DmaRequest::new(b, AccessKind::Read, 0x2000, 8))
        .is_allowed());
    assert!(unit
        .check(&DmaRequest::new(a, AccessKind::Read, 0x2000, 8))
        .is_denied());
}
