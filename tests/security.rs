//! Security-focused integration tests: the threat-model attacks (§3.2)
//! against the assembled system.

use siopmp_suite::devices::SparseMemory;
use siopmp_suite::iommu::protection::{DmaProtection, InvalidationPolicy, Iommu};
use siopmp_suite::monitor::{MemPerms, SecureMonitor};
use siopmp_suite::siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp_suite::siopmp::ids::{DeviceId, EntryIndex, MdIndex};
use siopmp_suite::siopmp::mountable::MountableEntry;
use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
use siopmp_suite::siopmp::{CheckOutcome, Siopmp, SiopmpConfig};
use siopmp_suite::workloads::SiopmpPlusIommu;

/// The untrusted OS triggers DMA into secure memory through a device it
/// controls: denied regardless of what the OS "configured", because only
/// the monitor can install IOPMP entries for TEE-owned memory.
#[test]
fn privileged_software_cannot_authorise_dma_into_tee_memory() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let tee_mem = monitor.mint_memory(0x9000_0000, 0x10_0000, MemPerms::rw());
    let tee_dev = monitor.mint_device(DeviceId(0x10));
    let _tee = monitor.create_tee(vec![tee_mem, tee_dev]).unwrap();

    // The OS's own device (never granted to the TEE) tries to read.
    let os_dev_cap = monitor.mint_device(DeviceId(0x20));
    let os_mem = monitor.mint_memory(0x1000_0000, 0x1000, MemPerms::rw());
    let os_tee = monitor.create_tee(vec![os_mem, os_dev_cap]).unwrap();
    // The OS cannot device_map into the TEE's capability: it does not own it.
    assert!(monitor
        .device_map(
            os_tee,
            os_dev_cap,
            tee_mem,
            0x9000_0000,
            0x100,
            MemPerms::rw()
        )
        .is_err());
    // And the raw DMA is denied by the hardware.
    let out = monitor.check_dma(&DmaRequest::new(
        DeviceId(0x20),
        AccessKind::Read,
        0x9000_0000,
        64,
    ));
    assert!(out.is_denied());
}

/// Replay-style attack: after a buffer is unmapped, re-issuing the old DMA
/// must fail immediately (no asynchronous invalidation window).
#[test]
fn no_window_after_unmap() {
    let mut monitor = SecureMonitor::build(SiopmpConfig::default(), None);
    let mem = monitor.mint_memory(0x9000_0000, 0x10_0000, MemPerms::rw());
    let dev = monitor.mint_device(DeviceId(0x10));
    let tee = monitor.create_tee(vec![mem, dev]).unwrap();
    monitor
        .device_map(tee, dev, mem, 0x9000_0000, 0x1000, MemPerms::rw())
        .unwrap();
    let req = DmaRequest::new(DeviceId(0x10), AccessKind::Write, 0x9000_0000, 64);
    assert!(monitor.check_dma(&req).is_allowed());
    monitor.device_unmap(tee, dev, mem).unwrap();
    // The very next access fails — contrast with the IOMMU-deferred case.
    assert!(!monitor.check_dma(&req).is_allowed());
}

/// The contrast case: IOMMU-deferred leaves a stale translation usable by
/// the device; the hybrid mode does not.
#[test]
fn deferred_window_exists_and_hybrid_closes_it() {
    let mut deferred = Iommu::build(InvalidationPolicy::Deferred { batch: 64 }, None);
    let (h, _) = deferred.map(1, 0x10_0000, 4096);
    deferred.device_translate(1, h.iova);
    deferred.unmap(h);
    assert!(
        deferred.device_translate(1, h.iova).is_some(),
        "window open"
    );

    let mut hybrid = SiopmpPlusIommu::new();
    let (h, _) = hybrid.map(1, 0x10_0000, 4096);
    hybrid.unmap(h);
    assert_eq!(hybrid.attack_window_pages(), 0, "hybrid closes the window");
}

/// Entry inconsistency (§5.3): interleaving a DMA check with a multi-entry
/// update must never expose a mix of old and new rules, thanks to the SID
/// block bitmap.
#[test]
fn entry_updates_are_atomic_under_blocking() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let dev = DeviceId(5);
    let sid = unit.map_hot_device(dev).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    let e_old_1 = unit
        .install_entry(
            MdIndex(0),
            IopmpEntry::new(AddressRange::new(0x1000, 0x100).unwrap(), Permissions::rw()),
        )
        .unwrap();
    let e_old_2 = unit
        .install_entry(
            MdIndex(0),
            IopmpEntry::new(AddressRange::new(0x2000, 0x100).unwrap(), Permissions::rw()),
        )
        .unwrap();

    // Begin the update: the monitor blocks the SID first.
    unit.block_sid(sid);
    unit.set_entry(
        e_old_1,
        Some(IopmpEntry::new(
            AddressRange::new(0x3000, 0x100).unwrap(),
            Permissions::rw(),
        )),
    )
    .unwrap();
    // MID-UPDATE: the device probes. It must be stalled, not see a mix.
    let probe_old = unit.check(&DmaRequest::new(dev, AccessKind::Read, 0x2000, 8));
    let probe_new = unit.check(&DmaRequest::new(dev, AccessKind::Read, 0x3000, 8));
    assert_eq!(probe_old, CheckOutcome::Stalled { sid });
    assert_eq!(probe_new, CheckOutcome::Stalled { sid });
    unit.set_entry(
        e_old_2,
        Some(IopmpEntry::new(
            AddressRange::new(0x4000, 0x100).unwrap(),
            Permissions::rw(),
        )),
    )
    .unwrap();
    unit.unblock_sid(sid);

    // After the update, only the new region set is visible.
    assert!(unit
        .check(&DmaRequest::new(dev, AccessKind::Read, 0x3000, 8))
        .is_allowed());
    assert!(unit
        .check(&DmaRequest::new(dev, AccessKind::Read, 0x4000, 8))
        .is_allowed());
    assert!(unit
        .check(&DmaRequest::new(dev, AccessKind::Read, 0x1000, 8))
        .is_denied());
    assert!(unit
        .check(&DmaRequest::new(dev, AccessKind::Read, 0x2000, 8))
        .is_denied());
}

/// Device inconsistency (§5.3): during cold switching, the incoming device
/// must never see the previous tenant's memory domain.
#[test]
fn cold_switch_never_leaks_previous_tenant() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    for (d, base) in [(1u64, 0x1_0000u64), (2, 0x2_0000)] {
        unit.register_cold_device(
            DeviceId(d),
            MountableEntry {
                domains: vec![],
                entries: vec![IopmpEntry::new(
                    AddressRange::new(base, 0x1000).unwrap(),
                    Permissions::rw(),
                )],
            },
        )
        .unwrap();
    }
    // Mount device 1, then switch to device 2.
    unit.handle_sid_missing(DeviceId(1)).unwrap();
    assert!(unit
        .check(&DmaRequest::new(DeviceId(1), AccessKind::Read, 0x1_0000, 8))
        .is_allowed());
    unit.handle_sid_missing(DeviceId(2)).unwrap();
    // Device 2 must not inherit device 1's region through the shared MD62.
    assert!(unit
        .check(&DmaRequest::new(DeviceId(2), AccessKind::Read, 0x1_0000, 8))
        .is_denied());
    assert!(unit
        .check(&DmaRequest::new(DeviceId(2), AccessKind::Read, 0x2_0000, 8))
        .is_allowed());
}

/// Packet masking end-to-end against real memory: denied writes leave no
/// trace, denied reads return zeroes.
#[test]
fn masking_protects_memory_contents() {
    let mut mem = SparseMemory::new();
    mem.write(0x9000_0000, b"confidential");
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let dev = DeviceId(9);
    let sid = unit.map_hot_device(dev).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();

    // Denied write -> all strobes masked.
    let w = DmaRequest::new(dev, AccessKind::Write, 0x9000_0000, 12);
    assert!(unit.check(&w).is_denied());
    mem.write_strobed(0x9000_0000, &[0u8; 12], &[false; 12]);
    assert_eq!(mem.read_vec(0x9000_0000, 12), b"confidential".to_vec());

    // Denied read -> read-clear.
    let r = DmaRequest::new(dev, AccessKind::Read, 0x9000_0000, 12);
    assert!(unit.check(&r).is_denied());
    assert_eq!(mem.read_cleared(0x9000_0000, 12), vec![0u8; 12]);
}

/// Locked M-mode guard entries shadow S-mode-delegated entries: the kernel
/// cannot open a hole the monitor closed (§6.3's delegation model).
#[test]
fn locked_guard_entries_shadow_delegated_ones() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let dev = DeviceId(4);
    let sid = unit.map_hot_device(dev).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    // M-mode installs a locked NO_PERMISSION guard over the monitor region
    // at the highest priority slot of the domain.
    let guard = unit
        .install_entry(
            MdIndex(0),
            IopmpEntry::new_locked(
                AddressRange::new(0xFF00_0000, 0x10_0000).unwrap(),
                Permissions::none(),
            ),
        )
        .unwrap();
    // The kernel later installs a broad allow entry at lower priority.
    let broad = unit
        .install_entry(
            MdIndex(0),
            IopmpEntry::new(
                AddressRange::new(0xF000_0000, 0x1000_0000).unwrap(),
                Permissions::rw(),
            ),
        )
        .unwrap();
    assert!(guard < broad, "guard must be higher priority");
    // The guard wins inside the monitor region...
    assert!(unit
        .check(&DmaRequest::new(dev, AccessKind::Read, 0xFF00_0100, 8))
        .is_denied());
    // ...and the broad entry works elsewhere.
    assert!(unit
        .check(&DmaRequest::new(dev, AccessKind::Read, 0xF000_0000, 8))
        .is_allowed());
    // The kernel cannot remove or replace the locked guard.
    assert!(unit.set_entry(guard, None).is_err());
    let probe = EntryIndex(guard.0);
    assert!(unit
        .set_entry(
            probe,
            Some(IopmpEntry::new(
                AddressRange::new(0xFF00_0000, 0x10_0000).unwrap(),
                Permissions::rw(),
            )),
        )
        .is_err());
}
