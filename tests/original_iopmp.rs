//! Baseline contrast: the original IOPMP (no mountable table, linear
//! checker, 64 hardware SIDs) against sIOPMP — the device-count and
//! entry-count limitations of §2.2/§4.2 made concrete.

use siopmp_suite::siopmp::checker::CheckerKind;
use siopmp_suite::siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp_suite::siopmp::error::SiopmpError;
use siopmp_suite::siopmp::ids::DeviceId;
use siopmp_suite::siopmp::mountable::MountableEntry;
use siopmp_suite::siopmp::timing::analyze;
use siopmp_suite::siopmp::{Siopmp, SiopmpConfig};

fn record(base: u64) -> MountableEntry {
    MountableEntry {
        domains: vec![],
        entries: vec![IopmpEntry::new(
            AddressRange::new(base, 0x1000).unwrap(),
            Permissions::rw(),
        )],
    }
}

#[test]
fn original_iopmp_caps_out_at_its_sid_count() {
    let mut orig = Siopmp::build(SiopmpConfig::original_iopmp(), None);
    let hot = orig.config().num_hot_sids();
    // Fill every hardware SID.
    for d in 0..hot as u64 {
        orig.map_hot_device(DeviceId(d)).unwrap();
    }
    // Device #64: no SID left...
    assert!(matches!(
        orig.map_hot_device(DeviceId(hot as u64)),
        Err(SiopmpError::HotSidsExhausted)
    ));
    // ...and no extended table to fall back to.
    assert!(matches!(
        orig.register_cold_device(DeviceId(hot as u64), record(0x1_0000)),
        Err(SiopmpError::InvalidConfig(_))
    ));
}

#[test]
fn siopmp_accepts_the_same_overflow_devices() {
    let mut siopmp = Siopmp::build(SiopmpConfig::default(), None);
    let hot = siopmp.config().num_hot_sids();
    for d in 0..hot as u64 {
        siopmp.map_hot_device(DeviceId(d)).unwrap();
    }
    // The overflow devices go cold — hundreds of them.
    for d in hot as u64..hot as u64 + 300 {
        siopmp
            .register_cold_device(DeviceId(d), record(0x1_0000 * (d + 1)))
            .unwrap();
    }
    assert_eq!(siopmp.cold_device_count(), 300);
    // And a cold one is serviceable through mounting.
    use siopmp_suite::siopmp::request::{AccessKind, DmaRequest};
    use siopmp_suite::siopmp::CheckOutcome;
    let d = hot as u64 + 7;
    let req = DmaRequest::new(DeviceId(d), AccessKind::Read, 0x1_0000 * (d + 1), 64);
    match siopmp.check(&req) {
        CheckOutcome::SidMissing { device } => {
            siopmp.handle_sid_missing(device).unwrap();
            assert!(siopmp.check(&req).is_allowed());
        }
        other => panic!("expected SID-missing: {other:?}"),
    }
}

#[test]
fn original_iopmp_entry_budget_is_timing_limited() {
    // The baseline's 128-entry file is not arbitrary: it is the largest
    // linear checker that closes timing at the platform clock (Fig. 10).
    let cfg = SiopmpConfig::original_iopmp();
    assert!(analyze(cfg.checker, cfg.num_entries).meets_platform_target);
    assert!(!analyze(cfg.checker, cfg.num_entries * 2).meets_platform_target);
    // sIOPMP's MT checker runs 8x the entries at the same clock.
    let s = SiopmpConfig::default();
    assert_eq!(
        s.checker,
        CheckerKind::MtChecker {
            stages: 2,
            tree_arity: 2
        }
    );
    assert!(
        analyze(
            CheckerKind::MtChecker {
                stages: 3,
                tree_arity: 2
            },
            s.num_entries
        )
        .meets_platform_target
    );
}
