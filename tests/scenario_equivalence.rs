//! Pins the three `repro-*.scn` corpus files to the hand-coded Rust
//! exercises they re-express: the scenario compiler must produce
//! byte-for-byte the same report JSON as the original
//! `siopmp_experiments` functions, at every thread count the original
//! supports. This is the proof that `.scn` is a faithful front-end and
//! not a parallel implementation that merely agrees on headline numbers.

use std::fs;
use std::path::PathBuf;

use siopmp_scenario::{parse, run, RunOptions, Scenario};

fn load(name: &str) -> Scenario {
    let path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")).join(name);
    let text = fs::read_to_string(&path).expect("readable corpus file");
    parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn report_json(s: &Scenario, threads: Option<usize>) -> String {
    let outcome = run(
        s,
        &RunOptions {
            seed: None,
            threads,
        },
    )
    .unwrap_or_else(|e| panic!("{}: run failed: {e}", s.name));
    assert!(
        outcome.passed(),
        "{}: expectations failed:\n  {}",
        s.name,
        outcome.failures.join("\n  ")
    );
    outcome.report.to_json().pretty()
}

#[test]
fn repro_bus_matches_the_hand_coded_bus_exercise() {
    let scenario = load("repro-bus.scn");
    let hand_coded = siopmp_experiments::bus_exercise().to_json().pretty();
    assert_eq!(report_json(&scenario, None), hand_coded);
}

#[test]
fn repro_faults_matches_the_hand_coded_faults_exercise() {
    let scenario = load("repro-faults.scn");
    let hand_coded = siopmp_experiments::faults_exercise().to_json().pretty();
    assert_eq!(report_json(&scenario, None), hand_coded);
}

#[test]
fn repro_parallel_matches_the_hand_coded_parallel_exercise() {
    let scenario = load("repro-parallel.scn");
    for threads in [1, 2, 4] {
        let hand_coded = siopmp_experiments::parallel_exercise(threads)
            .to_json()
            .pretty();
        assert_eq!(
            report_json(&scenario, Some(threads)),
            hand_coded,
            "thread count {threads}"
        );
    }
}
