//! Integration: the legacy [`siopmp::stats::SiopmpStats`] view and the
//! telemetry registry are two readings of the same counters — they must
//! agree exactly after a mixed hot/cold DMA workload, and clones must
//! count independently.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex};
use siopmp::mountable::MountableEntry;
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::telemetry::Telemetry;
use siopmp::{CheckOutcome, Siopmp, SiopmpConfig};

fn mixed_workload_unit() -> (Siopmp, Telemetry) {
    let telemetry = Telemetry::new();
    let mut unit = Siopmp::build(SiopmpConfig::small(), telemetry.clone());
    let hot = DeviceId(1);
    let sid = unit.map_hot_device(hot).expect("fresh unit");
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    unit.install_entry(
        MdIndex(0),
        IopmpEntry::new(
            AddressRange::new(0x10_0000, 0x1000).unwrap(),
            Permissions::read_only(),
        ),
    )
    .unwrap();
    unit.register_cold_device(
        DeviceId(2),
        MountableEntry {
            domains: vec![],
            entries: vec![IopmpEntry::new(
                AddressRange::new(0x20_0000, 0x1000).unwrap(),
                Permissions::rw(),
            )],
        },
    )
    .unwrap();
    (unit, telemetry)
}

#[test]
fn stats_view_matches_registry_on_mixed_hot_cold_dma() {
    let (mut unit, telemetry) = mixed_workload_unit();

    let mut issued = 0u64;
    let mut allowed_seen = 0u64;
    let mut denied_seen = 0u64;
    for i in 0..32u64 {
        let req = match i % 4 {
            // Hot read inside the region: allowed via the CAM path.
            0 => DmaRequest::new(DeviceId(1), AccessKind::Read, 0x10_0000 + 64 * i, 16),
            // Hot write to a read-only entry: denied by permission.
            1 => DmaRequest::new(DeviceId(1), AccessKind::Write, 0x10_0000, 16),
            // Hot read with no matching entry: denied.
            2 => DmaRequest::new(DeviceId(1), AccessKind::Read, 0xdead_0000, 16),
            // Cold read: SID-missing once, then eSID hits.
            _ => DmaRequest::new(DeviceId(2), AccessKind::Read, 0x20_0000, 16),
        };
        let mut outcome = unit.check(&req);
        issued += 1;
        if let CheckOutcome::SidMissing { device } = outcome {
            unit.handle_sid_missing(device).expect("registered cold");
            outcome = unit.check(&req);
            issued += 1;
        }
        if outcome.is_allowed() {
            allowed_seen += 1;
        } else {
            denied_seen += 1;
        }
    }

    let stats = unit.stats();
    let snap = unit.telemetry().snapshot();
    assert!(std::ptr::eq(unit.telemetry(), unit.telemetry()));
    // Field-by-field: the stats view is exactly the registry's counters.
    for (field, value) in [
        ("checks", stats.checks),
        ("allowed", stats.allowed),
        ("denied_permission", stats.denied_permission),
        ("denied_no_match", stats.denied_no_match),
        ("blocked", stats.blocked),
        ("sid_missing_interrupts", stats.sid_missing_interrupts),
        ("cold_switches", stats.cold_switches),
        ("cold_hits", stats.cold_hits),
        ("hot_hits", stats.hot_hits),
        ("violations", stats.violations),
    ] {
        assert_eq!(
            snap.counters[&format!("siopmp.{field}")],
            value,
            "registry disagrees with stats view on {field}"
        );
    }
    // And both agree with what the workload observed.
    assert_eq!(stats.checks, issued);
    assert_eq!(stats.allowed, allowed_seen);
    assert_eq!(stats.denied_permission + stats.denied_no_match, denied_seen);
    // Every check resolves through the CAM, the eSID, or SID-missing.
    assert_eq!(
        stats.hot_hits + stats.cold_hits + stats.sid_missing_interrupts,
        issued
    );
    assert_eq!(stats.sid_missing_interrupts, 1);
    assert_eq!(stats.cold_switches, 1);
    assert_eq!(stats.denied_permission, 8);
    assert_eq!(stats.denied_no_match, 8);
    assert_eq!(stats.violations, 16);
    // The cold-switch latency histogram saw exactly the switches.
    assert_eq!(
        snap.histograms["siopmp.cold_switch_cycles"].count,
        stats.cold_switches
    );
    // Denials were logged to the bounded violation ring, none dropped.
    let ring = &snap.rings["siopmp.violation_events"];
    assert_eq!(ring.events.len() as u64 + ring.dropped, stats.violations);
    assert_eq!(ring.dropped, 0);

    // The same numbers flow into the shared registry handle the caller kept.
    assert_eq!(telemetry.snapshot().counters["siopmp.checks"], issued);
}

#[test]
fn cloned_units_count_independently() {
    let (mut unit, _telemetry) = mixed_workload_unit();
    let hot_read = DmaRequest::new(DeviceId(1), AccessKind::Read, 0x10_0000, 16);
    assert!(unit.check(&hot_read).is_allowed());

    let mut clone = unit.clone();
    // The clone keeps the accumulated history...
    assert_eq!(clone.stats(), unit.stats());
    // ...but new activity on the clone does not leak into the original.
    assert!(clone.check(&hot_read).is_allowed());
    assert_eq!(clone.stats().checks, 2);
    assert_eq!(unit.stats().checks, 1);
    assert_eq!(unit.telemetry().snapshot().counters["siopmp.checks"], 1);
    assert_eq!(clone.telemetry().snapshot().counters["siopmp.checks"], 2);
}
