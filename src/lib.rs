//! # siopmp-suite — umbrella crate for the sIOPMP reproduction
//!
//! Re-exports every crate in the workspace so examples and integration
//! tests can depend on a single façade:
//!
//! * [`siopmp`] — the sIOPMP unit itself (tables, MT checker, mountable
//!   IOPMP, remapping CAM, timing/area models);
//! * [`bus`] — the cycle-level interconnect/DMA simulator;
//! * [`devices`] — NIC / DMA-node / accelerator / RAM models;
//! * [`monitor`] — the Penglai-style secure monitor with capability-based
//!   ownership;
//! * [`iommu`] — the IOMMU / SWIO baseline mechanisms;
//! * [`workloads`] — iperf-style, memcached-style and hot/cold workload
//!   generators;
//! * [`experiments`] — the per-table/figure experiment runners behind the
//!   `repro` binary.
//!
//! The [`soc`] module adds a builder that assembles a complete simulated
//! system (monitor + TEEs + mapped devices + cycle simulator) in a few
//! lines — the pattern every example and integration test follows.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub mod soc;

pub use siopmp;
pub use siopmp_bus as bus;
pub use siopmp_devices as devices;
pub use siopmp_experiments as experiments;
pub use siopmp_iommu as iommu;
pub use siopmp_monitor as monitor;
pub use siopmp_verify as verify;
pub use siopmp_workloads as workloads;
