//! `siopmp-verify` — lint the checked-in scenario/experiment
//! configurations with the static analyzer.
//!
//! Every built-in scenario below is a configuration the repository
//! actually ships (config presets, the experiments' monitored-system
//! exercise, the SoC builder examples): the linter assembles each one,
//! runs [`siopmp_verify::analyze`] over the resulting hardware state
//! (plus the monitor's capability map when one exists), and reports the
//! findings.
//!
//! ```text
//! siopmp-verify [--list] [--json] [--out PATH] [--corpus DIR] [scenario | file.scn ...]
//! ```
//!
//! The command line goes through the workspace's unified grammar
//! ([`siopmp_scenario::cli::Spec`]): `--json`, `--list` and `--out`
//! spell the same here as in `repro`, `siopmp-bench` and
//! `siopmp-scenario`.
//!
//! Positional arguments ending in `.scn` are parsed as declarative
//! scenario files and linted per domain (`<stem>/<domain>` entries);
//! `--corpus DIR` lints every `.scn` under a directory, which is how the
//! `verify-lint` CI job covers the committed corpus. JSON output is the
//! workspace envelope (`schema_version`, `scenario`, `seed`, `threads`,
//! `payload`).
//!
//! Exits non-zero when any scenario carries an Error-severity diagnostic
//! or a `.scn` file fails to parse/compile — the `verify-lint` CI job
//! gates on that, with `--out` providing the JSON artifact.

use std::path::Path;
use std::process::ExitCode;

use siopmp::ids::DeviceId;
use siopmp::json::{envelope, Json};
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_monitor::{MemPerms, SecureMonitor};
use siopmp_scenario::cli::Spec;
use siopmp_suite::soc::{DeviceSpec, SocBuilder};
use siopmp_verify::{analyze, Report, Severity};

const SPEC: Spec = Spec {
    tool: "siopmp-verify",
    usage: "usage: siopmp-verify [--list] [--json] [--out PATH] [--corpus DIR] \
[--differential] [scenario | file.scn ...]",
    flags: &["--differential"],
    options: &["--corpus"],
    deprecated: &[],
};

struct Scenario {
    name: &'static str,
    description: &'static str,
    build: fn() -> Report,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "preset-default",
        description: "the paper's default 64-SID / 1024-entry configuration, bare",
        build: || analyze(&Siopmp::build(SiopmpConfig::default(), None), None),
    },
    Scenario {
        name: "preset-original-iopmp",
        description: "the original-IOPMP baseline preset (linear checker, no mountable table)",
        build: || analyze(&Siopmp::build(SiopmpConfig::original_iopmp(), None), None),
    },
    Scenario {
        name: "preset-small",
        description: "the small unit-test preset",
        build: || analyze(&Siopmp::build(SiopmpConfig::small(), None), None),
    },
    Scenario {
        name: "monitor-exercise",
        description: "the experiments' monitored system: one TEE, one mapping, one cold device",
        build: monitor_exercise,
    },
    Scenario {
        name: "soc-two-tenant",
        description: "the SoC builder's two-tenant example (hot devices, disjoint memory)",
        build: soc_two_tenant,
    },
    Scenario {
        name: "cold-churn",
        description: "one hot SID with two cold tenants churning through the mount point",
        build: cold_churn,
    },
];

/// Mirrors `siopmp_experiments::telemetry_exercise`'s configuration work
/// (without driving traffic): one TEE owning a device and memory, one
/// mapping, plus a monitor-bound cold device.
fn monitor_exercise() -> Report {
    let mut m = SecureMonitor::build(SiopmpConfig::small(), None);
    let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
    let dev = m.mint_device(DeviceId(1));
    let tee = m.create_tee(vec![mem, dev]).expect("fresh monitor");
    m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
        .expect("capability covers the mapping");
    m.verify_now()
}

fn soc_two_tenant() -> Report {
    let soc = SocBuilder::new()
        .tenant(
            0x4000_0000,
            0x10_0000,
            vec![DeviceSpec {
                device: DeviceId(1),
                regions: vec![(0x4000_0000, 0x1000, true)],
            }],
        )
        .tenant(
            0x5000_0000,
            0x10_0000,
            vec![DeviceSpec {
                device: DeviceId(2),
                regions: vec![(0x5000_0000, 0x1000, false)],
            }],
        )
        .build()
        .expect("two disjoint tenants assemble");
    soc.monitor.verify_now()
}

fn cold_churn() -> Report {
    let mut cfg = SiopmpConfig::small();
    cfg.num_sids = 2; // one hot SID: every further device goes cold
    let mut m = SecureMonitor::build(cfg, None);
    let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
    let devs: Vec<_> = (0..3u64).map(|d| m.mint_device(DeviceId(d))).collect();
    let mut caps = vec![mem];
    caps.extend(devs.iter().copied());
    let tee = m.create_tee(caps).expect("fresh monitor");
    for (i, dev) in devs.iter().enumerate() {
        m.device_map(
            tee,
            *dev,
            mem,
            0x8000_0000 + (i as u64) * 0x1000,
            0x1000,
            MemPerms::rw(),
        )
        .expect("capability covers each mapping");
    }
    // Touch both cold devices so the mount point has churned.
    for d in [1u64, 2] {
        let _ = m.check_dma(&siopmp::request::DmaRequest::new(
            DeviceId(d),
            siopmp::request::AccessKind::Read,
            0x8000_0000 + d * 0x1000,
            64,
        ));
    }
    m.verify_now()
}

fn usage() -> String {
    let mut s = format!("{}\n\nbuilt-in scenarios:\n", SPEC.usage);
    for sc in SCENARIOS {
        s.push_str(&format!("  {:<22} {}\n", sc.name, sc.description));
    }
    s.push_str("\n`.scn` files (and every `.scn` under --corpus DIR) are linted per domain.\n");
    s
}

/// Lints one `.scn` file, appending a `<stem>/<domain>` entry per domain.
/// A parse or compile failure is reported as a run failure (the CI gate
/// must not pass a corpus that does not even assemble).
fn lint_scn(path: &Path, rendered: &mut Vec<(String, Report)>) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let scenario = siopmp_scenario::parse(&text)
        .map_err(|e| format!("{}: parse error: {e}", path.display()))?;
    let lints = siopmp_scenario::lint(&scenario)
        .map_err(|e| format!("{}: compile error: {e}", path.display()))?;
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    for lint in lints {
        rendered.push((format!("{stem}/{}", lint.domain), lint.report));
    }
    Ok(())
}

/// Every `.scn` directly under `dir`, sorted by name for stable output.
fn corpus_files(dir: &Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .scn files under {}", dir.display()));
    }
    Ok(files)
}

fn main() -> ExitCode {
    let args = match SPEC.parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for w in &args.warnings {
        eprintln!("{w}");
    }
    if args.help || args.list {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }

    // Split positionals into built-in names and .scn paths.
    let mut selected: Vec<&str> = Vec::new();
    let mut scn_paths: Vec<std::path::PathBuf> = Vec::new();
    for name in &args.positional {
        if name.ends_with(".scn") {
            scn_paths.push(std::path::PathBuf::from(name));
        } else if SCENARIOS.iter().any(|sc| sc.name == name) {
            selected.push(name.as_str());
        } else {
            eprintln!("unknown scenario {name}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = args.option("--corpus") {
        match corpus_files(Path::new(dir)) {
            Ok(files) => scn_paths.extend(files),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    // With explicit positionals, only those run; `--corpus` alone also
    // keeps the built-ins (CI lints everything in one invocation).
    let run_builtins = args.positional.is_empty();

    let mut rendered: Vec<(String, Report)> = Vec::new();
    let mut broken = 0usize;
    if run_builtins || !selected.is_empty() {
        for sc in SCENARIOS {
            if !run_builtins && !selected.contains(&sc.name) {
                continue;
            }
            rendered.push((sc.name.to_string(), (sc.build)()));
        }
    }
    for path in &scn_paths {
        if let Err(msg) = lint_scn(path, &mut rendered) {
            eprintln!("{msg}");
            broken += 1;
        }
    }

    let mut totals = [0usize; 3]; // info, warning, error
    for (name, report) in &rendered {
        totals[0] += report.count(Severity::Info);
        totals[1] += report.count(Severity::Warning);
        totals[2] += report.count(Severity::Error);
        if !args.json {
            println!(
                "{:<22} {} error(s), {} warning(s), {} info",
                name,
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Info),
            );
            for d in report.diagnostics() {
                println!("  [{}] {}: {}", d.severity, d.code, d.message);
            }
        }
    }

    // The measured soundness sweep: predict vs. hardware over randomized
    // configurations, reporting the analyzer's false-positive rate. Runs
    // whenever a JSON payload is produced (the rate is part of the
    // report contract) or on explicit request; any predict/check
    // disagreement is a soundness bug and fails the exit code.
    let differential = if args.json || args.out.is_some() || args.has("--differential") {
        let stats = siopmp_verify::differential::measure(
            siopmp_verify::differential::CONFIGS,
            siopmp_verify::differential::PROBES_PER_CONFIG,
            args.seed.unwrap_or(0),
        );
        if !args.json {
            println!(
                "differential           {} probes over {} configs: {} disagreement(s), \
                 {} Error(s) ({} corroborated), fp rate {:.4}",
                stats.probes,
                stats.configs,
                stats.disagreements,
                stats.error_diagnostics,
                stats.corroborated_errors,
                stats.false_positive_rate,
            );
        }
        Some(stats)
    } else {
        None
    };

    let payload = Json::object([
        (
            "summary",
            Json::object([
                ("errors", Json::u64(totals[2] as u64)),
                ("warnings", Json::u64(totals[1] as u64)),
                ("info", Json::u64(totals[0] as u64)),
                ("scenarios", Json::u64(rendered.len() as u64)),
                ("broken_files", Json::u64(broken as u64)),
            ]),
        ),
        (
            "differential",
            differential
                .as_ref()
                .map(|s| s.to_json())
                .unwrap_or(Json::Null),
        ),
        (
            "scenarios",
            Json::array(rendered.iter().map(|(name, report)| {
                Json::object([
                    ("name", Json::str(name.clone())),
                    ("report", report.to_json()),
                ])
            })),
        ),
    ]);
    let json = envelope("verify", args.seed, args.threads.unwrap_or(1), payload);
    if args.json {
        println!("{}", json.pretty());
    }
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{}\n", json.pretty())) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let disagreements = differential.as_ref().map_or(0, |s| s.disagreements);
    if totals[2] > 0 || broken > 0 || disagreements > 0 {
        eprintln!(
            "siopmp-verify: {} Error-severity finding(s), {} broken file(s), \
             {} differential disagreement(s)",
            totals[2], broken, disagreements
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
