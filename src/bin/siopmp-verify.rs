//! `siopmp-verify` — lint the checked-in scenario/experiment
//! configurations with the static analyzer.
//!
//! Every scenario below is a configuration the repository actually ships
//! (config presets, the experiments' monitored-system exercise, the SoC
//! builder examples): the linter assembles each one, runs
//! [`siopmp_verify::analyze`] over the resulting hardware state (plus the
//! monitor's capability map when one exists), and reports the findings.
//!
//! ```text
//! siopmp-verify [--list] [--json] [--out PATH] [scenario ...]
//! ```
//!
//! Exits non-zero when any scenario carries an Error-severity diagnostic —
//! the `verify-lint` CI job gates on that, with `--out` providing the JSON
//! artifact.

use std::process::ExitCode;

use siopmp::ids::DeviceId;
use siopmp::json::Json;
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_monitor::{MemPerms, SecureMonitor};
use siopmp_suite::soc::{DeviceSpec, SocBuilder};
use siopmp_verify::{analyze, Report, Severity};

struct Scenario {
    name: &'static str,
    description: &'static str,
    build: fn() -> Report,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "preset-default",
        description: "the paper's default 64-SID / 1024-entry configuration, bare",
        build: || analyze(&Siopmp::build(SiopmpConfig::default(), None), None),
    },
    Scenario {
        name: "preset-original-iopmp",
        description: "the original-IOPMP baseline preset (linear checker, no mountable table)",
        build: || analyze(&Siopmp::build(SiopmpConfig::original_iopmp(), None), None),
    },
    Scenario {
        name: "preset-small",
        description: "the small unit-test preset",
        build: || analyze(&Siopmp::build(SiopmpConfig::small(), None), None),
    },
    Scenario {
        name: "monitor-exercise",
        description: "the experiments' monitored system: one TEE, one mapping, one cold device",
        build: monitor_exercise,
    },
    Scenario {
        name: "soc-two-tenant",
        description: "the SoC builder's two-tenant example (hot devices, disjoint memory)",
        build: soc_two_tenant,
    },
    Scenario {
        name: "cold-churn",
        description: "one hot SID with two cold tenants churning through the mount point",
        build: cold_churn,
    },
];

/// Mirrors `siopmp_experiments::telemetry_exercise`'s configuration work
/// (without driving traffic): one TEE owning a device and memory, one
/// mapping, plus a monitor-bound cold device.
fn monitor_exercise() -> Report {
    let mut m = SecureMonitor::build(SiopmpConfig::small(), None);
    let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
    let dev = m.mint_device(DeviceId(1));
    let tee = m.create_tee(vec![mem, dev]).expect("fresh monitor");
    m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
        .expect("capability covers the mapping");
    m.verify_now()
}

fn soc_two_tenant() -> Report {
    let soc = SocBuilder::new()
        .tenant(
            0x4000_0000,
            0x10_0000,
            vec![DeviceSpec {
                device: DeviceId(1),
                regions: vec![(0x4000_0000, 0x1000, true)],
            }],
        )
        .tenant(
            0x5000_0000,
            0x10_0000,
            vec![DeviceSpec {
                device: DeviceId(2),
                regions: vec![(0x5000_0000, 0x1000, false)],
            }],
        )
        .build()
        .expect("two disjoint tenants assemble");
    soc.monitor.verify_now()
}

fn cold_churn() -> Report {
    let mut cfg = SiopmpConfig::small();
    cfg.num_sids = 2; // one hot SID: every further device goes cold
    let mut m = SecureMonitor::build(cfg, None);
    let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
    let devs: Vec<_> = (0..3u64).map(|d| m.mint_device(DeviceId(d))).collect();
    let mut caps = vec![mem];
    caps.extend(devs.iter().copied());
    let tee = m.create_tee(caps).expect("fresh monitor");
    for (i, dev) in devs.iter().enumerate() {
        m.device_map(
            tee,
            *dev,
            mem,
            0x8000_0000 + (i as u64) * 0x1000,
            0x1000,
            MemPerms::rw(),
        )
        .expect("capability covers each mapping");
    }
    // Touch both cold devices so the mount point has churned.
    for d in [1u64, 2] {
        let _ = m.check_dma(&siopmp::request::DmaRequest::new(
            DeviceId(d),
            siopmp::request::AccessKind::Read,
            0x8000_0000 + d * 0x1000,
            64,
        ));
    }
    m.verify_now()
}

fn usage() -> String {
    let mut s = String::from(
        "usage: siopmp-verify [--list] [--json] [--out PATH] [scenario ...]\n\nscenarios:\n",
    );
    for sc in SCENARIOS {
        s.push_str(&format!("  {:<22} {}\n", sc.name, sc.description));
    }
    s
}

fn main() -> ExitCode {
    let mut json_stdout = false;
    let mut out_path: Option<String> = None;
    let mut list = false;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_stdout = true,
            "--list" => list = true,
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => {
                    eprintln!("--out needs a path\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n\n{}", usage());
                return ExitCode::FAILURE;
            }
            name => selected.push(name.to_string()),
        }
    }

    if list {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    for name in &selected {
        if !SCENARIOS.iter().any(|sc| sc.name == name) {
            eprintln!("unknown scenario {name}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    let mut rendered = Vec::new();
    let mut totals = [0usize; 3]; // info, warning, error
    for sc in SCENARIOS {
        if !selected.is_empty() && !selected.iter().any(|n| n == sc.name) {
            continue;
        }
        let report = (sc.build)();
        totals[0] += report.count(Severity::Info);
        totals[1] += report.count(Severity::Warning);
        totals[2] += report.count(Severity::Error);
        if !json_stdout {
            println!(
                "{:<22} {} error(s), {} warning(s), {} info",
                sc.name,
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Info),
            );
            for d in report.diagnostics() {
                println!("  [{}] {}: {}", d.severity, d.code, d.message);
            }
        }
        rendered.push((sc.name, report));
    }

    let json = Json::object([
        (
            "summary",
            Json::object([
                ("errors", Json::u64(totals[2] as u64)),
                ("warnings", Json::u64(totals[1] as u64)),
                ("info", Json::u64(totals[0] as u64)),
                ("scenarios", Json::u64(rendered.len() as u64)),
            ]),
        ),
        (
            "scenarios",
            Json::array(rendered.iter().map(|(name, report)| {
                Json::object([("name", Json::str(*name)), ("report", report.to_json())])
            })),
        ),
    ]);
    if json_stdout {
        println!("{}", json.pretty());
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{}\n", json.pretty())) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if totals[2] > 0 {
        eprintln!("siopmp-verify: {} Error-severity finding(s)", totals[2]);
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
