//! Full-system assembly: monitor + sIOPMP + bus + devices, in one builder.
//!
//! Examples and integration tests assemble the same pieces over and over:
//! boot the monitor, mint capabilities, create a TEE per tenant, map each
//! device's regions, and drive burst programs through the cycle simulator
//! with the monitor-configured unit as the bus policy. [`SocBuilder`]
//! packages that flow.

use siopmp::ids::DeviceId;
use siopmp::SiopmpConfig;
use siopmp_bus::policy::SiopmpPolicy;
use siopmp_bus::{BusConfig, BusSim, MasterProgram, SimReport};
use siopmp_monitor::{CapId, MemPerms, MonitorError, SecureMonitor, TeeId};

/// A device to attach: its packet-level ID and the `(base, len, writable)`
/// regions its driver needs mapped.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Packet-level device identifier.
    pub device: DeviceId,
    /// Regions to map at TEE creation.
    pub regions: Vec<(u64, u64, bool)>,
}

/// Builder for a simulated SoC.
#[derive(Debug)]
pub struct SocBuilder {
    siopmp_config: SiopmpConfig,
    bus_config: BusConfig,
    tenants: Vec<(u64, u64, Vec<DeviceSpec>)>,
}

impl SocBuilder {
    /// Starts a builder with the paper's default sIOPMP and bus
    /// configurations.
    pub fn new() -> Self {
        SocBuilder {
            siopmp_config: SiopmpConfig::default(),
            bus_config: BusConfig::default(),
            tenants: Vec::new(),
        }
    }

    /// Overrides the sIOPMP configuration.
    pub fn siopmp_config(mut self, config: SiopmpConfig) -> Self {
        self.siopmp_config = config;
        self
    }

    /// Overrides the bus configuration.
    pub fn bus_config(mut self, config: BusConfig) -> Self {
        self.bus_config = config;
        self
    }

    /// Adds a tenant (one TEE) owning the memory range `[mem_base,
    /// mem_base+mem_len)` and the given devices.
    pub fn tenant(mut self, mem_base: u64, mem_len: u64, devices: Vec<DeviceSpec>) -> Self {
        self.tenants.push((mem_base, mem_len, devices));
        self
    }

    /// Boots the monitor, creates every tenant's TEE, and maps every
    /// device region.
    ///
    /// # Errors
    ///
    /// Propagates monitor errors (capability refusals, exhausted memory
    /// domains, invalid regions).
    pub fn build(self) -> Result<Soc, MonitorError> {
        let mut monitor = SecureMonitor::build(self.siopmp_config, None);
        let mut tees = Vec::new();
        for (mem_base, mem_len, devices) in self.tenants {
            let mem_cap = monitor.mint_memory(mem_base, mem_len, MemPerms::rw());
            let dev_caps: Vec<(CapId, DeviceSpec)> = devices
                .into_iter()
                .map(|spec| (monitor.mint_device(spec.device), spec))
                .collect();
            let mut caps = vec![mem_cap];
            caps.extend(dev_caps.iter().map(|(c, _)| *c));
            let tee = monitor.create_tee(caps)?;
            for (dev_cap, spec) in &dev_caps {
                for (base, len, writable) in &spec.regions {
                    let perms = if *writable {
                        MemPerms::rw()
                    } else {
                        MemPerms::ro()
                    };
                    monitor.device_map(tee, *dev_cap, mem_cap, *base, *len, perms)?;
                }
            }
            tees.push(TenantHandle {
                tee,
                mem_cap,
                dev_caps,
            });
        }
        Ok(Soc {
            monitor,
            bus_config: self.bus_config,
            tenants: tees,
        })
    }
}

impl Default for SocBuilder {
    fn default() -> Self {
        SocBuilder::new()
    }
}

/// One booted tenant's handles.
#[derive(Debug)]
pub struct TenantHandle {
    /// The tenant's TEE.
    pub tee: TeeId,
    /// Its memory capability.
    pub mem_cap: CapId,
    /// Its device capabilities with the original specs.
    pub dev_caps: Vec<(CapId, DeviceSpec)>,
}

/// The assembled system.
#[derive(Debug)]
pub struct Soc {
    /// The secure monitor (owns the sIOPMP unit).
    pub monitor: SecureMonitor,
    /// Bus parameters used by [`Soc::run`].
    pub bus_config: BusConfig,
    /// Tenant handles, in insertion order.
    pub tenants: Vec<TenantHandle>,
}

impl Soc {
    /// Runs `programs` concurrently through the cycle simulator against a
    /// snapshot of the current sIOPMP configuration, for up to
    /// `max_cycles`.
    pub fn run(&self, programs: Vec<MasterProgram>, max_cycles: u64) -> SimReport {
        let policy = SiopmpPolicy::new(self.monitor.siopmp().clone());
        let mut sim = BusSim::build(self.bus_config.clone(), Box::new(policy), None);
        for p in programs {
            sim.add_master(p);
        }
        sim.run_to_completion(max_cycles)
    }

    /// Like [`Soc::run`], but the monitor itself backs the bus policy so
    /// SID-missing interrupts are serviced *during* the simulation — cold
    /// devices mount (and evict each other) on first touch, exactly the
    /// Figure 17 dynamics, at cycle granularity.
    pub fn run_with_monitor(&mut self, programs: Vec<MasterProgram>, max_cycles: u64) -> SimReport {
        use std::sync::{Arc, Mutex};

        struct MonitorPolicy {
            // Arc<Mutex> (not Rc<RefCell>) because `AccessPolicy: Send` —
            // the run itself is still single-threaded, the lock is never
            // contended.
            monitor: Arc<Mutex<SecureMonitor>>,
        }
        impl siopmp_bus::policy::AccessPolicy for MonitorPolicy {
            fn decide(
                &mut self,
                device: DeviceId,
                kind: siopmp::request::AccessKind,
                addr: u64,
                len: u64,
            ) -> siopmp_bus::PolicyVerdict {
                // check_dma services SID-missing inline (cold switching).
                let outcome = self
                    .monitor
                    .lock()
                    .unwrap()
                    .check_dma(&siopmp::request::DmaRequest::new(device, kind, addr, len));
                siopmp_bus::PolicyVerdict::from(&outcome)
            }
        }
        // Temporarily move the monitor into a shared cell for the run.
        let placeholder = SecureMonitor::build(siopmp::SiopmpConfig::small(), None);
        let monitor = Arc::new(Mutex::new(std::mem::replace(
            &mut self.monitor,
            placeholder,
        )));
        let policy = MonitorPolicy {
            monitor: Arc::clone(&monitor),
        };
        let mut sim = BusSim::build(self.bus_config.clone(), Box::new(policy), None);
        for p in programs {
            sim.add_master(p);
        }
        let report = sim.run_to_completion(max_cycles);
        drop(sim); // releases the policy's Arc clone
        self.monitor = Arc::try_unwrap(monitor)
            .expect("simulation dropped, single owner remains")
            .into_inner()
            .unwrap();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp_bus::BurstKind;

    #[test]
    fn builder_assembles_two_tenants() {
        let soc = SocBuilder::new()
            .tenant(
                0x4000_0000,
                0x10_0000,
                vec![DeviceSpec {
                    device: DeviceId(1),
                    regions: vec![(0x4000_0000, 0x1000, true)],
                }],
            )
            .tenant(
                0x5000_0000,
                0x10_0000,
                vec![DeviceSpec {
                    device: DeviceId(2),
                    regions: vec![(0x5000_0000, 0x1000, false)],
                }],
            )
            .build()
            .unwrap();
        assert_eq!(soc.tenants.len(), 2);

        // Tenant 1's device writes its region; tenant 2's device may only
        // read its own.
        let report = soc.run(
            vec![
                MasterProgram::uniform(1, BurstKind::Write, 0x4000_0000, 4),
                MasterProgram::uniform(2, BurstKind::Read, 0x5000_0000, 4),
                MasterProgram::uniform(2, BurstKind::Write, 0x5000_0000, 4),
            ],
            1_000_000,
        );
        assert!(report.completed);
        assert_eq!(report.masters[0].bursts_ok, 4);
        assert_eq!(report.masters[1].bursts_ok, 4);
        assert_eq!(report.masters[2].bursts_ok, 0, "ro region rejects writes");
    }

    #[test]
    fn run_with_monitor_services_cold_mounts_inline() {
        use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
        use siopmp::mountable::MountableEntry;

        let mut cfg = siopmp::SiopmpConfig::small();
        cfg.num_sids = 2; // 1 hot SID: extra devices go cold
        let mut soc = SocBuilder::new()
            .siopmp_config(cfg)
            .tenant(0x4000_0000, 0x10_0000, vec![])
            .build()
            .unwrap();
        // Register a cold device directly with the unit.
        soc.monitor
            .siopmp_mut()
            .register_cold_device(
                DeviceId(9),
                MountableEntry {
                    domains: vec![],
                    entries: vec![IopmpEntry::new(
                        AddressRange::new(0x4000_0000, 0x1000).unwrap(),
                        Permissions::rw(),
                    )],
                },
            )
            .unwrap();
        // First touch mounts the device mid-simulation; all bursts pass.
        let report = soc.run_with_monitor(
            vec![MasterProgram::uniform(9, BurstKind::Read, 0x4000_0000, 8)],
            1_000_000,
        );
        assert!(report.completed);
        assert_eq!(
            report.masters[0].bursts_ok,
            report.masters[0].bursts_completed
        );
        assert_eq!(soc.monitor.siopmp().cold_switch_count(), 1);
    }

    #[test]
    fn builder_rejects_region_outside_tenant_memory() {
        let result = SocBuilder::new()
            .tenant(
                0x4000_0000,
                0x1000,
                vec![DeviceSpec {
                    device: DeviceId(1),
                    regions: vec![(0x9000_0000, 0x1000, true)],
                }],
            )
            .build();
        assert!(result.is_err());
    }
}
