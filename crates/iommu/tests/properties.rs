//! Property-based tests for the IOMMU substrate: allocator soundness,
//! IOTLB coherence after strict invalidation, and the strict/deferred
//! security contract under arbitrary map/unmap interleavings.

use siopmp_testkit::{check, check_eq, prop_check};
use std::collections::HashMap;

use siopmp_iommu::iotlb::Iotlb;
use siopmp_iommu::iova::{IovaAllocator, IO_PAGE_SIZE};
use siopmp_iommu::pagetable::{IoPageTable, IoPerms, IoPte};
use siopmp_iommu::protection::{DmaProtection, InvalidationPolicy, Iommu, MapHandle};

/// The IOVA allocator never hands out overlapping ranges and always
/// recycles freed space completely.
#[test]
fn iova_allocations_never_overlap() {
    prop_check(96, |g| {
        let ops = g.vec(1..120, |g| (g.bool(), g.u64(1..5)));
        let mut alloc = IovaAllocator::new(0, 64 * IO_PAGE_SIZE);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (is_alloc, pages) in ops {
            if is_alloc {
                if let Ok((iova, _)) = alloc.alloc(pages * IO_PAGE_SIZE) {
                    let len = pages * IO_PAGE_SIZE;
                    for (base, l) in &live {
                        let disjoint = iova + len <= *base || *base + *l <= iova;
                        check!(disjoint, "overlap: {iova:#x}+{len:#x} vs {base:#x}+{l:#x}");
                    }
                    live.push((iova, len));
                }
            } else if let Some((iova, len)) = live.pop() {
                check!(alloc.free(iova, len).is_ok());
            }
        }
        let live_total: u64 = live.iter().map(|(_, l)| l).sum();
        check_eq!(alloc.allocated_bytes(), live_total);
        // Full drain restores a single free fragment.
        for (iova, len) in live {
            alloc.free(iova, len).unwrap();
        }
        check_eq!(alloc.fragments(), 1);
        check_eq!(alloc.allocated_bytes(), 0);
        Ok(())
    });
}

/// The page table behaves as a partial map: translate succeeds exactly
/// for mapped, not-yet-unmapped pages and returns the latest PA.
#[test]
fn page_table_is_a_partial_map() {
    prop_check(96, |g| {
        let ops = g.vec(1..100, |g| (g.u64(0..16), g.bool()));
        let mut pt = IoPageTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (page, map) in ops {
            let iova = page * IO_PAGE_SIZE;
            let pa = 0x8000_0000 + page * IO_PAGE_SIZE;
            if map {
                let r = pt.map(iova, pa, IoPerms::rw());
                check_eq!(r.is_ok(), !model.contains_key(&iova));
                model.entry(iova).or_insert(pa);
            } else {
                let r = pt.unmap(iova);
                check_eq!(r.is_ok(), model.remove(&iova).is_some());
            }
            for (k, v) in &model {
                let (pte, _) = pt.translate(*k).expect("modelled page present");
                check_eq!(pte.pa, *v);
            }
            check_eq!(pt.mapped_pages(), model.len());
        }
        Ok(())
    });
}

/// The IOTLB never returns a translation that was invalidated and not
/// refilled, and never exceeds capacity.
#[test]
fn iotlb_coherent_after_invalidation() {
    prop_check(96, |g| {
        let ops = g.vec(1..150, |g| (g.u64(0..3), g.u64(0..8), g.u8(0..3)));
        let mut tlb = Iotlb::new(4);
        let mut resident: HashMap<(u64, u64), u64> = HashMap::new();
        for (dev, page, op) in ops {
            let iova = page * IO_PAGE_SIZE;
            match op {
                0 => {
                    let pte = IoPte {
                        pa: 0x1000 * (page + 1),
                        perms: IoPerms::rw(),
                    };
                    tlb.fill(dev, iova, pte);
                    resident.insert((dev, iova), pte.pa);
                }
                1 => {
                    tlb.invalidate_page(dev, iova);
                    resident.remove(&(dev, iova));
                }
                _ => {
                    if let Some(pte) = tlb.lookup(dev, iova) {
                        // A hit must match what was filled (never a stale
                        // invalidated value, never another device's).
                        let expected = resident.get(&(dev, iova));
                        check_eq!(expected, Some(&pte.pa));
                    }
                }
            }
            check!(tlb.len() <= 4);
        }
        Ok(())
    });
}

/// Strict IOMMU: after ANY interleaving of maps and unmaps, no
/// unmapped buffer is reachable by the device. Deferred: reachable
/// stale pages are exactly the reported attack window.
#[test]
fn strict_has_no_window_deferred_reports_it() {
    prop_check(96, |g| {
        let ops = g.vec(1..60, |g| g.bool());
        let strict = g.bool();
        let policy = if strict {
            InvalidationPolicy::Strict
        } else {
            InvalidationPolicy::Deferred { batch: 1024 }
        };
        let mut iommu = Iommu::build(policy, None);
        // (handle, physical page) pairs: IOVAs are legitimately recycled,
        // so "still reachable" must be judged against the dead buffer's
        // physical page, not just the IOVA.
        let mut live: Vec<(MapHandle, u64)> = Vec::new();
        let mut dead: Vec<(MapHandle, u64)> = Vec::new();
        let mut next = 0u64;
        for do_map in ops {
            if do_map {
                let pa = 0x100_0000 + next * IO_PAGE_SIZE;
                let (h, _) = iommu.map(1, pa, 1500);
                next += 1;
                iommu.device_translate(1, h.iova); // warm the IOTLB
                live.push((h, pa));
            } else if let Some((h, pa)) = live.pop() {
                iommu.unmap(h);
                dead.push((h, pa));
            }
        }
        let reachable_dead = dead
            .iter()
            .filter(|(h, pa)| iommu.device_translate(1, h.iova) == Some(*pa))
            .count() as u64;
        if strict {
            check_eq!(reachable_dead, 0, "strict must leave no window");
            check_eq!(iommu.attack_window_pages(), 0);
        } else {
            // Every reachable dead page is accounted in the window.
            check!(reachable_dead <= iommu.attack_window_pages());
        }
        // Live buffers always stay reachable. Under strict invalidation
        // the translation is exact; under deferred, a recycled IOVA may be
        // *shadowed by the stale IOTLB entry* of its previous tenant until
        // the batch flush — another facet of the deferred hazard.
        for (h, pa) in &live {
            let got = iommu.device_translate(1, h.iova);
            if strict {
                check_eq!(got, Some(*pa));
            } else {
                check!(got.is_some());
            }
        }
        Ok(())
    });
}
