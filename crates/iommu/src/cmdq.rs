//! The IOMMU's asynchronous invalidation command queue.
//!
//! Real IOMMUs invalidate the IOTLB by posting commands to a ring buffer
//! that the hardware drains asynchronously; software that needs the
//! invalidation to be *visible* (the strict policy) must post a wait/sync
//! descriptor and spin until the hardware completes it. That synchronous
//! wait — hundreds to thousands of cycles, up to milliseconds under load —
//! is the cost the paper identifies as the IOMMU's central performance
//! problem (§1, §2.3), and the thing sIOPMP's synchronous MMIO entry
//! writes avoid (Figure 13).

/// Cycle cost of posting one command into the ring (uncontended).
pub const CMD_POST_CYCLES: u64 = 40;

/// Hardware service time per invalidation command, in cycles.
pub const CMD_SERVICE_CYCLES: u64 = 850;

/// Extra cycles of a sync/wait descriptor round trip once the queue is
/// drained.
pub const SYNC_OVERHEAD_CYCLES: u64 = 120;

/// One invalidation command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvCommand {
    /// Invalidate one `(device, iova_page)` translation.
    Page {
        /// Device whose translation dies.
        device: u64,
        /// IOVA page.
        iova: u64,
    },
    /// Invalidate every translation of a device.
    Device {
        /// Device to flush.
        device: u64,
    },
    /// Invalidate the whole IOTLB.
    Global,
}

/// The asynchronous command queue model.
///
/// Commands accumulate until a sync is requested; the sync cost is the
/// time to drain everything still pending — which is why batching (the
/// deferred policy) amortises so well and why per-unmap syncing (strict)
/// is so expensive.
///
/// # Examples
///
/// ```
/// use siopmp_iommu::cmdq::{CommandQueue, InvCommand};
/// let mut q = CommandQueue::new();
/// q.post(InvCommand::Page { device: 1, iova: 0x1000 });
/// let cycles = q.sync();
/// assert!(cycles > 850);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommandQueue {
    pending: Vec<InvCommand>,
    /// Total commands ever posted.
    posted: u64,
    /// Total syncs performed.
    syncs: u64,
    /// Total cycles spent waiting in syncs.
    wait_cycles: u64,
}

impl CommandQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CommandQueue::default()
    }

    /// Commands pending (not yet covered by a sync).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total commands posted.
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Total syncs performed.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Total cycles spent waiting for syncs.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Posts a command; returns the posting cost. The command is *not*
    /// visible to the hardware until a subsequent [`CommandQueue::sync`] —
    /// the window in which a malicious device can still use the stale
    /// translation.
    pub fn post(&mut self, cmd: InvCommand) -> u64 {
        self.pending.push(cmd);
        self.posted += 1;
        CMD_POST_CYCLES
    }

    /// Drains the queue synchronously. Returns the wait cost — service
    /// time for every pending command plus the sync round trip — together
    /// with the drained commands, for the owner to apply to its IOTLB.
    pub fn sync_and_take(&mut self) -> (u64, Vec<InvCommand>) {
        let drained = std::mem::take(&mut self.pending);
        let cycles = SYNC_OVERHEAD_CYCLES + CMD_SERVICE_CYCLES * drained.len() as u64;
        self.syncs += 1;
        self.wait_cycles += cycles;
        (cycles, drained)
    }

    /// Drains the queue synchronously, discarding the command list (when
    /// the caller already applied the invalidations eagerly). Returns the
    /// wait cost.
    pub fn sync(&mut self) -> u64 {
        self.sync_and_take().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_cost_scales_with_pending() {
        let mut q = CommandQueue::new();
        q.post(InvCommand::Global);
        let one = q.sync();
        for i in 0..10 {
            q.post(InvCommand::Page {
                device: 1,
                iova: i * 0x1000,
            });
        }
        let ten = q.sync();
        assert_eq!(one, SYNC_OVERHEAD_CYCLES + CMD_SERVICE_CYCLES);
        assert_eq!(ten, SYNC_OVERHEAD_CYCLES + 10 * CMD_SERVICE_CYCLES);
    }

    #[test]
    fn sync_empties_the_queue() {
        let mut q = CommandQueue::new();
        q.post(InvCommand::Device { device: 3 });
        let (_, drained) = q.sync_and_take();
        assert_eq!(drained, vec![InvCommand::Device { device: 3 }]);
        assert_eq!(q.pending(), 0);
        // Second sync is cheap (nothing pending).
        assert_eq!(q.sync(), SYNC_OVERHEAD_CYCLES);
    }

    #[test]
    fn counters_accumulate() {
        let mut q = CommandQueue::new();
        q.post(InvCommand::Global);
        q.sync();
        q.post(InvCommand::Global);
        q.sync();
        assert_eq!(q.posted(), 2);
        assert_eq!(q.syncs(), 2);
        assert!(q.wait_cycles() >= 2 * CMD_SERVICE_CYCLES);
    }

    #[test]
    fn batched_sync_amortises_versus_per_command() {
        // The strict-vs-deferred asymmetry in one assertion: syncing after
        // each of 64 commands costs ~64 sync overheads; one batched sync
        // costs one.
        let mut strict = CommandQueue::new();
        let mut strict_cost = 0;
        for i in 0..64 {
            strict.post(InvCommand::Page {
                device: 1,
                iova: i * 0x1000,
            });
            strict_cost += strict.sync();
        }
        let mut deferred = CommandQueue::new();
        for i in 0..64 {
            deferred.post(InvCommand::Page {
                device: 1,
                iova: i * 0x1000,
            });
        }
        let deferred_cost = deferred.sync();
        assert!(strict_cost > deferred_cost + 63 * SYNC_OVERHEAD_CYCLES - 1);
    }
}
