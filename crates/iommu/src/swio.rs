//! SWIO: the bounce-buffer (swiotlb) mechanism confidential VMs use.
//!
//! Without trusted I/O, a device cannot read a confidential VM's encrypted
//! private memory. The guest therefore stages every DMA buffer through a
//! *shared* bounce buffer: on transmit the guest copies plaintext into the
//! shared region; on receive the hypervisor-visible data is copied back in.
//! The extra copy plus the hypervisor intervention cost the paper's
//! measurement 23–24% of network bandwidth (§6.3).

use crate::protection::{DmaProtection, MapHandle};

/// Cycles per byte of the bounce-buffer copy (memcpy through the cache
/// hierarchy, including the encryption-boundary stalls).
pub const COPY_CYCLES_PER_BYTE_MILLI: u64 = 280; // 0.28 cycles/byte

/// Cycles per packet of hypervisor intervention (doorbell exit, shared-ring
/// maintenance).
pub const HYPERVISOR_EXIT_CYCLES: u64 = 400;

/// Fixed cycles to reserve/release a bounce slot.
pub const SLOT_MANAGEMENT_CYCLES: u64 = 80;

/// The SWIO bounce-buffer mechanism.
///
/// `map`/`unmap` are cheap (slot management only); the real cost sits on
/// the data path, where every payload byte is copied and the hypervisor is
/// invoked — reported through
/// [`DmaProtection::data_path_cycles`].
///
/// # Examples
///
/// ```
/// use siopmp_iommu::swio::Swio;
/// use siopmp_iommu::protection::DmaProtection;
/// let swio = Swio::new();
/// // A 1500-byte packet costs roughly a microsecond-scale copy + exit.
/// assert!(swio.data_path_cycles(1500) > 500);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Swio {
    live_slots: u64,
}

impl Swio {
    /// Creates the mechanism.
    pub fn new() -> Self {
        Swio::default()
    }

    /// Bounce slots currently reserved.
    pub fn live_slots(&self) -> u64 {
        self.live_slots
    }
}

impl DmaProtection for Swio {
    fn name(&self) -> &'static str {
        "SWIO"
    }

    fn map(&mut self, device: u64, pa: u64, len: u64) -> (MapHandle, u64) {
        self.live_slots += 1;
        (
            MapHandle {
                device,
                iova: pa,
                len,
            },
            SLOT_MANAGEMENT_CYCLES,
        )
    }

    fn unmap(&mut self, _handle: MapHandle) -> u64 {
        self.live_slots = self.live_slots.saturating_sub(1);
        SLOT_MANAGEMENT_CYCLES
    }

    fn data_path_cycles(&self, bytes: u64) -> u64 {
        bytes * COPY_CYCLES_PER_BYTE_MILLI / 1000 + HYPERVISOR_EXIT_CYCLES
    }

    fn sub_page_granularity(&self) -> bool {
        true // the bounce buffer is byte-granular; the cost is the copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_path_cost_scales_with_bytes() {
        let swio = Swio::new();
        let small = swio.data_path_cycles(64);
        let large = swio.data_path_cycles(1500);
        assert!(large > small);
        assert_eq!(large, 1500 * 280 / 1000 + 400);
    }

    #[test]
    fn map_unmap_track_slots() {
        let mut swio = Swio::new();
        let (h, c) = swio.map(1, 0x9000, 1500);
        assert_eq!(c, SLOT_MANAGEMENT_CYCLES);
        assert_eq!(swio.live_slots(), 1);
        swio.unmap(h);
        assert_eq!(swio.live_slots(), 0);
    }

    #[test]
    fn no_attack_window() {
        // SWIO's safety comes from encryption: no stale-translation window.
        let swio = Swio::new();
        assert_eq!(swio.attack_window_pages(), 0);
    }
}
