//! A three-level I/O page table (4 KiB pages), one per device.

use std::collections::HashMap;

use crate::iova::IO_PAGE_SIZE;

/// Levels of the radix page table.
pub const LEVELS: u32 = 3;

/// Cycle cost of installing or clearing one PTE (cache-resident table).
pub const PTE_WRITE_CYCLES: u64 = 30;

/// Cycle cost per level of a table walk on an IOTLB miss.
pub const WALK_LEVEL_CYCLES: u64 = 45;

/// Permissions carried by an I/O PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPerms {
    /// Device may read through the mapping.
    pub read: bool,
    /// Device may write through the mapping.
    pub write: bool,
}

impl IoPerms {
    /// Read+write mapping.
    pub fn rw() -> Self {
        IoPerms {
            read: true,
            write: true,
        }
    }

    /// Read-only mapping.
    pub fn ro() -> Self {
        IoPerms {
            read: true,
            write: false,
        }
    }
}

/// One installed translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPte {
    /// Physical page the IOVA page maps to.
    pub pa: u64,
    /// Access rights.
    pub perms: IoPerms,
}

/// Errors from page-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageTableError {
    /// Mapping an IOVA page that is already mapped.
    AlreadyMapped(u64),
    /// Unmapping / translating an IOVA page with no mapping.
    NotMapped(u64),
    /// IOVA or PA not page aligned.
    Unaligned(u64),
}

impl core::fmt::Display for PageTableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PageTableError::AlreadyMapped(a) => write!(f, "iova {a:#x} already mapped"),
            PageTableError::NotMapped(a) => write!(f, "iova {a:#x} not mapped"),
            PageTableError::Unaligned(a) => write!(f, "address {a:#x} not page aligned"),
        }
    }
}

impl std::error::Error for PageTableError {}

/// The per-device I/O page table.
///
/// Functionally a map IOVA-page → PTE; the radix structure is captured by
/// the cycle costs ([`WALK_LEVEL_CYCLES`] × [`LEVELS`] per miss-walk) rather
/// than by materialising intermediate nodes.
///
/// # Examples
///
/// ```
/// use siopmp_iommu::pagetable::{IoPageTable, IoPerms};
/// let mut pt = IoPageTable::new();
/// pt.map(0x1000, 0x8000_0000, IoPerms::rw()).unwrap();
/// let (pte, _walk_cycles) = pt.translate(0x1234).unwrap();
/// assert_eq!(pte.pa, 0x8000_0000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IoPageTable {
    entries: HashMap<u64, IoPte>,
}

impl IoPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        IoPageTable::default()
    }

    /// Number of live mappings.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    fn page_of(addr: u64) -> u64 {
        addr & !(IO_PAGE_SIZE - 1)
    }

    /// Installs `iova → pa`. Both must be page aligned. Returns the PTE
    /// write cost in cycles.
    ///
    /// # Errors
    ///
    /// [`PageTableError::Unaligned`] or [`PageTableError::AlreadyMapped`].
    pub fn map(&mut self, iova: u64, pa: u64, perms: IoPerms) -> Result<u64, PageTableError> {
        if !iova.is_multiple_of(IO_PAGE_SIZE) {
            return Err(PageTableError::Unaligned(iova));
        }
        if !pa.is_multiple_of(IO_PAGE_SIZE) {
            return Err(PageTableError::Unaligned(pa));
        }
        if self.entries.contains_key(&iova) {
            return Err(PageTableError::AlreadyMapped(iova));
        }
        self.entries.insert(iova, IoPte { pa, perms });
        Ok(PTE_WRITE_CYCLES)
    }

    /// Clears the mapping of the page containing `iova`. Returns the PTE
    /// write cost. **Note:** translations may still hit in the IOTLB until
    /// it is invalidated — that gap is the attack window the strict policy
    /// closes (§2.3).
    ///
    /// # Errors
    ///
    /// [`PageTableError::NotMapped`].
    pub fn unmap(&mut self, iova: u64) -> Result<u64, PageTableError> {
        let page = Self::page_of(iova);
        self.entries
            .remove(&page)
            .map(|_| PTE_WRITE_CYCLES)
            .ok_or(PageTableError::NotMapped(page))
    }

    /// Walks the table for `iova`. Returns the PTE and the walk cost
    /// ([`LEVELS`] × [`WALK_LEVEL_CYCLES`]).
    ///
    /// # Errors
    ///
    /// [`PageTableError::NotMapped`].
    pub fn translate(&self, iova: u64) -> Result<(IoPte, u64), PageTableError> {
        let page = Self::page_of(iova);
        self.entries
            .get(&page)
            .map(|pte| (*pte, u64::from(LEVELS) * WALK_LEVEL_CYCLES))
            .ok_or(PageTableError::NotMapped(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = IoPageTable::new();
        pt.map(0x1000, 0x9000, IoPerms::rw()).unwrap();
        let (pte, walk) = pt.translate(0x1fff).unwrap();
        assert_eq!(pte.pa, 0x9000);
        assert_eq!(walk, 135);
        pt.unmap(0x1000).unwrap();
        assert_eq!(pt.translate(0x1000), Err(PageTableError::NotMapped(0x1000)));
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = IoPageTable::new();
        pt.map(0x1000, 0x9000, IoPerms::rw()).unwrap();
        assert_eq!(
            pt.map(0x1000, 0xa000, IoPerms::ro()),
            Err(PageTableError::AlreadyMapped(0x1000))
        );
    }

    #[test]
    fn unaligned_rejected() {
        let mut pt = IoPageTable::new();
        assert_eq!(
            pt.map(0x1001, 0x9000, IoPerms::rw()),
            Err(PageTableError::Unaligned(0x1001))
        );
        assert_eq!(
            pt.map(0x1000, 0x9001, IoPerms::rw()),
            Err(PageTableError::Unaligned(0x9001))
        );
    }

    #[test]
    fn unmap_accepts_any_offset_in_page() {
        let mut pt = IoPageTable::new();
        pt.map(0x2000, 0x9000, IoPerms::rw()).unwrap();
        pt.unmap(0x2abc).unwrap();
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn page_granularity_cannot_express_subpage() {
        // The core limitation versus region-based isolation: mapping one
        // byte exposes the whole 4 KiB page.
        let mut pt = IoPageTable::new();
        pt.map(0x3000, 0xb000, IoPerms::rw()).unwrap();
        // A "neighbouring" buffer in the same page is reachable too.
        let (pte, _) = pt.translate(0x3800).unwrap();
        assert_eq!(pte.pa, 0xb000);
    }
}
