//! Fixed-mapping IOMMU defenses: the shadow buffer and DAMN rows of
//! Table 1.
//!
//! Both designs sidestep the per-unmap IOTLB invalidation by keeping the
//! IOMMU mappings *static*:
//!
//! * **shadow buffer** (Markuze et al., ASPLOS'16): a permanently-mapped
//!   pool of shadow buffers; every packet is *copied* between the shadow
//!   pool and the kernel's real buffers ("copy is faster than zero-copy").
//!   Safe (the device only ever sees the pool), sub-page (copies are
//!   byte-granular), but the copy rides the data path;
//! * **DAMN** (Markuze et al., ASPLOS'18): the network stack allocates
//!   packet memory *directly* from a permanently-mapped magazine, removing
//!   the copy too. Near-zero overhead — at the price of a kernel-integrated
//!   allocator (large TCB) and statically provisioned DMA memory.
//!
//! Both are Linux-kernel co-designs: strong on performance, but they keep
//! the large TCB that makes them unsuitable as the TEE isolation root
//! (§2.3), which is sIOPMP's opening.

use crate::protection::{DmaProtection, MapHandle};

/// Cycles per byte for the shadow-buffer copy (cache-resident pool).
pub const SHADOW_COPY_CYCLES_PER_BYTE_MILLI: u64 = 180; // 0.18 c/B

/// Cycles to grab/release a pre-mapped shadow slot.
pub const SHADOW_SLOT_CYCLES: u64 = 45;

/// Cycles for DAMN's magazine allocation (replaces the normal page
/// allocator's work, so the *extra* cost is small).
pub const DAMN_ALLOC_CYCLES: u64 = 25;

/// The permanently-mapped shadow-buffer pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShadowBuffer {
    live_slots: u64,
}

impl ShadowBuffer {
    /// Creates the mechanism (pool pre-mapped at boot).
    pub fn new() -> Self {
        ShadowBuffer::default()
    }

    /// Slots currently handed out.
    pub fn live_slots(&self) -> u64 {
        self.live_slots
    }
}

impl DmaProtection for ShadowBuffer {
    fn name(&self) -> &'static str {
        "shadow-buffer"
    }

    fn map(&mut self, device: u64, pa: u64, len: u64) -> (MapHandle, u64) {
        self.live_slots += 1;
        // No IOMMU work: the pool mapping is static.
        (
            MapHandle {
                device,
                iova: pa,
                len,
            },
            SHADOW_SLOT_CYCLES,
        )
    }

    fn unmap(&mut self, _handle: MapHandle) -> u64 {
        self.live_slots = self.live_slots.saturating_sub(1);
        SHADOW_SLOT_CYCLES
    }

    fn data_path_cycles(&self, bytes: u64) -> u64 {
        // One copy between the shadow pool and the real buffer.
        bytes * SHADOW_COPY_CYCLES_PER_BYTE_MILLI / 1000
    }

    fn sub_page_granularity(&self) -> bool {
        true // the copy is byte-granular even though the pool is paged
    }
}

/// DAMN: DMA-aware magazine allocation — zero-copy over a static mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct Damn;

impl Damn {
    /// Creates the mechanism (magazines pre-mapped at boot).
    pub fn new() -> Self {
        Damn
    }
}

impl DmaProtection for Damn {
    fn name(&self) -> &'static str {
        "DAMN"
    }

    fn map(&mut self, device: u64, pa: u64, len: u64) -> (MapHandle, u64) {
        (
            MapHandle {
                device,
                iova: pa,
                len,
            },
            DAMN_ALLOC_CYCLES,
        )
    }

    fn unmap(&mut self, _handle: MapHandle) -> u64 {
        DAMN_ALLOC_CYCLES
    }

    fn sub_page_granularity(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::{InvalidationPolicy, Iommu};

    #[test]
    fn shadow_buffer_costs_ride_the_data_path() {
        let mut sb = ShadowBuffer::new();
        let (h, map_c) = sb.map(1, 0x9000, 1500);
        assert_eq!(map_c, SHADOW_SLOT_CYCLES);
        assert_eq!(sb.live_slots(), 1);
        assert_eq!(sb.data_path_cycles(1500), 270);
        sb.unmap(h);
        assert_eq!(sb.live_slots(), 0);
    }

    #[test]
    fn damn_is_near_free() {
        let mut damn = Damn::new();
        let (h, map_c) = damn.map(1, 0x9000, 1500);
        assert!(map_c < 50);
        assert_eq!(damn.data_path_cycles(1500), 0);
        assert!(damn.unmap(h) < 50);
    }

    #[test]
    fn neither_leaves_an_attack_window() {
        // Static mappings: the device can never reach anything outside
        // the pre-mapped pool, so there is nothing to invalidate.
        assert_eq!(ShadowBuffer::new().attack_window_pages(), 0);
        assert_eq!(Damn::new().attack_window_pages(), 0);
    }

    #[test]
    fn fixed_mappings_beat_strict_iommu_under_churn() {
        let mut strict = Iommu::build(InvalidationPolicy::Strict, None);
        let mut sb = ShadowBuffer::new();
        let mut damn = Damn::new();
        let run = |m: &mut dyn DmaProtection| -> u64 {
            (0..64u64)
                .map(|i| {
                    let (h, c) = m.map(1, 0x10_0000 + i * 0x1000, 1500);
                    c + m.unmap(h) + m.data_path_cycles(1500)
                })
                .sum()
        };
        let strict_cost = run(&mut strict);
        let sb_cost = run(&mut sb);
        let damn_cost = run(&mut damn);
        assert!(sb_cost * 2 < strict_cost, "{sb_cost} vs {strict_cost}");
        assert!(damn_cost < sb_cost, "zero-copy beats copy");
    }
}
