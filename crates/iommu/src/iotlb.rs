//! The IOTLB: a fully-associative translation cache with LRU replacement.

use crate::iova::IO_PAGE_SIZE;
use crate::pagetable::IoPte;

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IotlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (require a table walk).
    pub misses: u64,
    /// Entries removed by invalidation commands.
    pub invalidations: u64,
}

impl IotlbStats {
    /// Hit rate over all lookups; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully-associative IOTLB keyed by `(device, iova_page)`.
///
/// Capacity is small (64 by default, like real IOTLBs) — the scalability
/// bottleneck the paper cites for multi-device scenarios (§1): many devices
/// thrash the shared IOTLB.
///
/// # Examples
///
/// ```
/// use siopmp_iommu::iotlb::Iotlb;
/// use siopmp_iommu::pagetable::{IoPerms, IoPte};
/// let mut tlb = Iotlb::new(4);
/// tlb.fill(1, 0x1000, IoPte { pa: 0x9000, perms: IoPerms::rw() });
/// assert!(tlb.lookup(1, 0x1234).is_some());
/// assert!(tlb.lookup(2, 0x1234).is_none()); // per-device tag
/// ```
#[derive(Debug, Clone)]
pub struct Iotlb {
    capacity: usize,
    /// (device, iova_page, pte, last_use) — linear scan is fine at 64
    /// entries and mirrors the hardware CAM.
    entries: Vec<(u64, u64, IoPte, u64)>,
    tick: u64,
    stats: IotlbStats,
}

impl Iotlb {
    /// Creates an IOTLB holding `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IOTLB needs at least one entry");
        Iotlb {
            capacity,
            entries: Vec::new(),
            tick: 0,
            stats: IotlbStats::default(),
        }
    }

    fn page_of(addr: u64) -> u64 {
        addr & !(IO_PAGE_SIZE - 1)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IotlbStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `(device, iova)`; updates LRU state and counters.
    pub fn lookup(&mut self, device: u64, iova: u64) -> Option<IoPte> {
        self.tick += 1;
        let page = Self::page_of(iova);
        for e in &mut self.entries {
            if e.0 == device && e.1 == page {
                e.3 = self.tick;
                self.stats.hits += 1;
                return Some(e.2);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Installs a translation after a walk, evicting LRU when full.
    pub fn fill(&mut self, device: u64, iova: u64, pte: IoPte) {
        self.tick += 1;
        let page = Self::page_of(iova);
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.0 == device && e.1 == page)
        {
            *e = (device, page, pte, self.tick);
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.3)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((device, page, pte, self.tick));
    }

    /// Invalidates the translation of one `(device, iova)` page. Returns
    /// whether an entry was removed.
    pub fn invalidate_page(&mut self, device: u64, iova: u64) -> bool {
        let page = Self::page_of(iova);
        let before = self.entries.len();
        self.entries.retain(|e| !(e.0 == device && e.1 == page));
        let removed = self.entries.len() != before;
        if removed {
            self.stats.invalidations += 1;
        }
        removed
    }

    /// Invalidates every translation of `device`. Returns entries removed.
    pub fn invalidate_device(&mut self, device: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.0 != device);
        let removed = before - self.entries.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Global invalidation. Returns entries removed.
    pub fn invalidate_all(&mut self) -> usize {
        let removed = self.entries.len();
        self.entries.clear();
        self.stats.invalidations += removed as u64;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::IoPerms;

    fn pte(pa: u64) -> IoPte {
        IoPte {
            pa,
            perms: IoPerms::rw(),
        }
    }

    #[test]
    fn hit_after_fill_miss_after_invalidate() {
        let mut tlb = Iotlb::new(4);
        assert!(tlb.lookup(1, 0x1000).is_none());
        tlb.fill(1, 0x1000, pte(0x9000));
        assert_eq!(tlb.lookup(1, 0x1000).unwrap().pa, 0x9000);
        assert!(tlb.invalidate_page(1, 0x1000));
        assert!(tlb.lookup(1, 0x1000).is_none());
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 2);
        assert_eq!(tlb.stats().invalidations, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut tlb = Iotlb::new(2);
        tlb.fill(1, 0x1000, pte(0xa000));
        tlb.fill(1, 0x2000, pte(0xb000));
        tlb.lookup(1, 0x1000); // refresh 0x1000
        tlb.fill(1, 0x3000, pte(0xc000)); // evicts 0x2000
        assert!(tlb.lookup(1, 0x1000).is_some());
        assert!(tlb.lookup(1, 0x2000).is_none());
        assert!(tlb.lookup(1, 0x3000).is_some());
    }

    #[test]
    fn per_device_tags() {
        let mut tlb = Iotlb::new(4);
        tlb.fill(1, 0x1000, pte(0xa000));
        assert!(tlb.lookup(2, 0x1000).is_none());
        assert_eq!(tlb.invalidate_device(1), 1);
        assert!(tlb.is_empty());
    }

    #[test]
    fn refill_updates_in_place() {
        let mut tlb = Iotlb::new(2);
        tlb.fill(1, 0x1000, pte(0xa000));
        tlb.fill(1, 0x1000, pte(0xb000));
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(1, 0x1000).unwrap().pa, 0xb000);
    }

    #[test]
    fn many_devices_thrash_small_tlb() {
        // The multi-device scalability problem: 8 devices round-robin over
        // a 4-entry IOTLB never hit.
        let mut tlb = Iotlb::new(4);
        for round in 0..3 {
            for dev in 0..8u64 {
                if tlb.lookup(dev, 0x1000).is_none() {
                    tlb.fill(dev, 0x1000, pte(0x9000));
                }
                let _ = round;
            }
        }
        assert_eq!(tlb.stats().hits, 0);
        assert_eq!(tlb.stats().hit_rate(), 0.0);
    }

    #[test]
    fn global_invalidation_empties() {
        let mut tlb = Iotlb::new(8);
        for i in 0..5u64 {
            tlb.fill(1, i * IO_PAGE_SIZE, pte(0x9000));
        }
        assert_eq!(tlb.invalidate_all(), 5);
        assert!(tlb.is_empty());
    }
}
