//! A TEE-IO-style mechanism (SEV-TIO / TDX-TEE-IO, §2.3): an attested
//! device may DMA directly into confidential memory, but the per-page
//! *isolation* check still rides on the RMP inside the IOMMU — so
//! dynamic map/unmap workloads pay the RMP update plus the asynchronous
//! invalidation of cached checks, exactly the cost structure of
//! IOMMU-strict ("If we invalidate the RMP entry for each dma_unmap, it
//! encounters the same performance degradation (>20%) as IOMMU-strict",
//! §6.3).

use crate::iova::IO_PAGE_SIZE;
use crate::protection::{DmaProtection, MapHandle};
use crate::rmp::{OwnerId, Rmp};

/// Fixed cycles of TDISP session bookkeeping per mapping operation
/// (IDE/stream state, not per-byte — the data path is hardware-encrypted).
pub const TDISP_BOOKKEEPING_CYCLES: u64 = 60;

/// TEE-IO with strict (synchronous) RMP invalidation on every unmap — the
/// safe configuration the paper analyses.
#[derive(Debug)]
pub struct TeeIo {
    rmp: Rmp,
    device_owner: OwnerId,
}

impl TeeIo {
    /// Creates the mechanism; the attested device operates on behalf of
    /// `device_owner`'s confidential memory.
    pub fn new(device_owner: OwnerId) -> Self {
        TeeIo {
            rmp: Rmp::new(),
            device_owner,
        }
    }

    /// Read access to the underlying RMP (for tests).
    pub fn rmp(&self) -> &Rmp {
        &self.rmp
    }
}

impl DmaProtection for TeeIo {
    fn name(&self) -> &'static str {
        "TEE-IO"
    }

    fn map(&mut self, device: u64, pa: u64, len: u64) -> (MapHandle, u64) {
        let mut cycles = TDISP_BOOKKEEPING_CYCLES;
        let pages = len.div_ceil(IO_PAGE_SIZE);
        for p in 0..pages {
            cycles += self.rmp.assign(pa + p * IO_PAGE_SIZE, self.device_owner);
        }
        (
            MapHandle {
                device,
                iova: pa,
                len,
            },
            cycles,
        )
    }

    fn unmap(&mut self, handle: MapHandle) -> u64 {
        let mut cycles = TDISP_BOOKKEEPING_CYCLES;
        let pages = handle.len.div_ceil(IO_PAGE_SIZE);
        for p in 0..pages {
            cycles += self
                .rmp
                .assign(handle.iova + p * IO_PAGE_SIZE, crate::rmp::OWNER_HYPERVISOR);
        }
        // Strict: invalidate the cached RMP verdicts synchronously so the
        // reclaimed pages are immediately unreachable. This is the cost
        // that makes TEE-IO behave like IOMMU-strict under churn.
        cycles += self.rmp.invalidate();
        cycles
    }

    fn attack_window_pages(&self) -> u64 {
        self.rmp.stale_pages() as u64
    }

    fn sub_page_granularity(&self) -> bool {
        false // RMP is page-granular
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmp::{RMP_INVALIDATION_CYCLES, RMP_UPDATE_CYCLES};

    #[test]
    fn map_assigns_pages_to_the_tee() {
        let mut teeio = TeeIo::new(OwnerId(7));
        let (h, cycles) = teeio.map(1, 0x10_0000, 2 * IO_PAGE_SIZE);
        assert!(cycles >= 2 * RMP_UPDATE_CYCLES);
        assert_eq!(teeio.rmp().owner(0x10_0000), OwnerId(7));
        assert_eq!(teeio.rmp().owner(0x10_0000 + IO_PAGE_SIZE), OwnerId(7));
        let unmap = teeio.unmap(h);
        assert!(unmap >= RMP_INVALIDATION_CYCLES);
        assert_eq!(teeio.rmp().owner(0x10_0000), crate::rmp::OWNER_HYPERVISOR);
    }

    #[test]
    fn strict_invalidation_leaves_no_window() {
        let mut teeio = TeeIo::new(OwnerId(7));
        let (h, _) = teeio.map(1, 0x10_0000, 1500);
        teeio.unmap(h);
        assert_eq!(teeio.attack_window_pages(), 0);
    }

    #[test]
    fn unmap_cost_is_iommu_strict_class() {
        // Per-packet unmap cost lands in the same ~1000-cycle class as the
        // strict IOMMU's synchronous IOTLB flush.
        let mut teeio = TeeIo::new(OwnerId(7));
        let (h, _) = teeio.map(1, 0x10_0000, 1500);
        let cycles = teeio.unmap(h);
        assert!(cycles > 800, "{cycles}");
    }

    #[test]
    fn page_granularity() {
        assert!(!TeeIo::new(OwnerId(1)).sub_page_granularity());
    }
}
