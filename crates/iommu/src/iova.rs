//! The I/O virtual address (IOVA) allocator.
//!
//! Each device gets its own IOVA space; the allocator hands out
//! page-aligned ranges and recycles freed ones. The paper cites IOVA
//! allocation as one of the IOMMU's scalability bottlenecks (§1, ref. 51); the
//! model reflects that with a lock-protected free-list whose allocation
//! cost grows with fragmentation.

use std::collections::BTreeMap;

/// Page size used by the I/O page tables.
pub const IO_PAGE_SIZE: u64 = 4096;

/// Cycle cost of an uncontended IOVA allocation (cache-hot free list).
pub const IOVA_ALLOC_BASE_CYCLES: u64 = 40;

/// Additional cycles per free-list node inspected (fragmentation cost).
pub const IOVA_ALLOC_PER_NODE_CYCLES: u64 = 6;

/// Errors from the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IovaError {
    /// The space is exhausted (or too fragmented for the request).
    OutOfSpace,
    /// Freeing a range that was never allocated (double free / corruption).
    NotAllocated(u64),
}

impl core::fmt::Display for IovaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IovaError::OutOfSpace => write!(f, "iova space exhausted"),
            IovaError::NotAllocated(a) => write!(f, "iova {a:#x} was not allocated"),
        }
    }
}

impl std::error::Error for IovaError {}

/// A first-fit IOVA allocator over `[base, base + size)`.
///
/// # Examples
///
/// ```
/// use siopmp_iommu::iova::{IovaAllocator, IO_PAGE_SIZE};
/// let mut a = IovaAllocator::new(0x1_0000, 16 * IO_PAGE_SIZE);
/// let (iova, _cycles) = a.alloc(IO_PAGE_SIZE).unwrap();
/// a.free(iova, IO_PAGE_SIZE).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct IovaAllocator {
    /// Free ranges: start → len.
    free: BTreeMap<u64, u64>,
    /// Live allocations: start → len (for free() validation).
    live: BTreeMap<u64, u64>,
    base: u64,
    size: u64,
}

impl IovaAllocator {
    /// Creates an allocator over `[base, base+size)`. Both must be
    /// page-aligned.
    ///
    /// # Panics
    ///
    /// Panics on unaligned `base`/`size` — a driver bug in real systems.
    pub fn new(base: u64, size: u64) -> Self {
        assert_eq!(base % IO_PAGE_SIZE, 0, "base must be page aligned");
        assert_eq!(size % IO_PAGE_SIZE, 0, "size must be page aligned");
        let mut free = BTreeMap::new();
        free.insert(base, size);
        IovaAllocator {
            free,
            live: BTreeMap::new(),
            base,
            size,
        }
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// Number of free-list fragments (fragmentation metric).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// Allocates `len` bytes (rounded up to pages), first-fit. Returns the
    /// IOVA and the modelled cycle cost of the allocation.
    ///
    /// # Errors
    ///
    /// [`IovaError::OutOfSpace`] when no fragment fits.
    pub fn alloc(&mut self, len: u64) -> Result<(u64, u64), IovaError> {
        let len = len.div_ceil(IO_PAGE_SIZE) * IO_PAGE_SIZE;
        let mut inspected = 0u64;
        let mut found = None;
        for (&start, &flen) in &self.free {
            inspected += 1;
            if flen >= len {
                found = Some((start, flen));
                break;
            }
        }
        let (start, flen) = found.ok_or(IovaError::OutOfSpace)?;
        self.free.remove(&start);
        if flen > len {
            self.free.insert(start + len, flen - len);
        }
        self.live.insert(start, len);
        Ok((
            start,
            IOVA_ALLOC_BASE_CYCLES + IOVA_ALLOC_PER_NODE_CYCLES * inspected,
        ))
    }

    /// Frees the allocation at `iova`, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// [`IovaError::NotAllocated`] when `iova`/`len` does not correspond to
    /// a live allocation.
    pub fn free(&mut self, iova: u64, len: u64) -> Result<(), IovaError> {
        let len = len.div_ceil(IO_PAGE_SIZE) * IO_PAGE_SIZE;
        match self.live.get(&iova) {
            Some(&l) if l == len => {}
            _ => return Err(IovaError::NotAllocated(iova)),
        }
        self.live.remove(&iova);
        // Coalesce with successor.
        let mut start = iova;
        let mut flen = len;
        if let Some(&next_len) = self.free.get(&(iova + len)) {
            self.free.remove(&(iova + len));
            flen += next_len;
        }
        // Coalesce with predecessor.
        if let Some((&pstart, &plen)) = self.free.range(..iova).next_back() {
            if pstart + plen == iova {
                self.free.remove(&pstart);
                start = pstart;
                flen += plen;
            }
        }
        self.free.insert(start, flen);
        Ok(())
    }

    /// Whether `iova` lies inside this allocator's space.
    pub fn contains(&self, iova: u64) -> bool {
        iova >= self.base && iova < self.base + self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip() {
        let mut a = IovaAllocator::new(0, 8 * IO_PAGE_SIZE);
        let (iova, cycles) = a.alloc(IO_PAGE_SIZE).unwrap();
        assert_eq!(iova, 0);
        assert!(cycles >= IOVA_ALLOC_BASE_CYCLES);
        assert_eq!(a.allocated_bytes(), IO_PAGE_SIZE);
        a.free(iova, IO_PAGE_SIZE).unwrap();
        assert_eq!(a.allocated_bytes(), 0);
        assert_eq!(a.fragments(), 1, "free must coalesce back to one fragment");
    }

    #[test]
    fn sub_page_requests_round_up() {
        let mut a = IovaAllocator::new(0, 4 * IO_PAGE_SIZE);
        let (_, _) = a.alloc(1).unwrap();
        assert_eq!(a.allocated_bytes(), IO_PAGE_SIZE);
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = IovaAllocator::new(0, 2 * IO_PAGE_SIZE);
        a.alloc(2 * IO_PAGE_SIZE).unwrap();
        assert_eq!(a.alloc(IO_PAGE_SIZE), Err(IovaError::OutOfSpace));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = IovaAllocator::new(0, 2 * IO_PAGE_SIZE);
        let (iova, _) = a.alloc(IO_PAGE_SIZE).unwrap();
        a.free(iova, IO_PAGE_SIZE).unwrap();
        assert_eq!(
            a.free(iova, IO_PAGE_SIZE),
            Err(IovaError::NotAllocated(iova))
        );
    }

    #[test]
    fn coalescing_defragments() {
        let mut a = IovaAllocator::new(0, 4 * IO_PAGE_SIZE);
        let (x, _) = a.alloc(IO_PAGE_SIZE).unwrap();
        let (y, _) = a.alloc(IO_PAGE_SIZE).unwrap();
        let (z, _) = a.alloc(IO_PAGE_SIZE).unwrap();
        a.free(y, IO_PAGE_SIZE).unwrap();
        assert_eq!(a.fragments(), 2); // hole + tail
        a.free(x, IO_PAGE_SIZE).unwrap();
        a.free(z, IO_PAGE_SIZE).unwrap();
        assert_eq!(a.fragments(), 1);
        // Whole space reusable again.
        assert!(a.alloc(4 * IO_PAGE_SIZE).is_ok());
    }

    #[test]
    fn fragmentation_raises_allocation_cost() {
        let mut a = IovaAllocator::new(0, 64 * IO_PAGE_SIZE);
        // Allocate all, free every other one: 16 one-page holes.
        let allocs: Vec<u64> = (0..32)
            .map(|_| a.alloc(2 * IO_PAGE_SIZE).unwrap().0)
            .collect();
        for iova in allocs.iter().step_by(2) {
            a.free(*iova, 2 * IO_PAGE_SIZE).unwrap();
        }
        // A 2-page request fits the first hole: cheap.
        let (_, cheap) = a.alloc(2 * IO_PAGE_SIZE).unwrap();
        // A 4-page request must walk past all 2-page holes: expensive.
        let err = a.alloc(4 * IO_PAGE_SIZE);
        match err {
            Ok((_, cost)) => assert!(cost > cheap),
            Err(IovaError::OutOfSpace) => {} // fully fragmented: also fine
            Err(e) => panic!("unexpected: {e}"),
        }
    }
}
