//! An RMP/GPC-style page-ownership checker.
//!
//! SEV-SNP's Reverse Map Table (RMP) and CCA's Granule Protection Check
//! (GPC) verify, per 4 KiB page, which world/owner a page belongs to before
//! a device (or CPU) access is allowed. They live inside the IOMMU/sMMU and
//! inherit its weaknesses: page granularity, cached check results that need
//! asynchronous invalidation, and an extra table walk on misses (§7).
//!
//! The model keeps a page → owner map plus a small check cache, with the
//! same invalidation cost structure as the IOTLB — which is what makes
//! TEE-IO systems built on RMP behave like IOMMU-strict under dynamic
//! workloads (§6.3).

use std::collections::HashMap;

use crate::iova::IO_PAGE_SIZE;

/// Identifies a page owner (hypervisor, a VM, a TEE...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OwnerId(pub u32);

/// The hypervisor/untrusted-world owner.
pub const OWNER_HYPERVISOR: OwnerId = OwnerId(0);

/// Cycle cost of one RMP table walk on a check-cache miss.
pub const RMP_WALK_CYCLES: u64 = 140;

/// Cycle cost of an RMP entry update (RMPUPDATE-like instruction).
pub const RMP_UPDATE_CYCLES: u64 = 250;

/// Cycle cost of the asynchronous invalidation of cached RMP checks.
pub const RMP_INVALIDATION_CYCLES: u64 = 800;

/// Result of an ownership check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmpVerdict {
    /// The page belongs to the expected owner.
    Allowed,
    /// The page belongs to someone else — access blocked.
    WrongOwner(OwnerId),
}

/// The reverse-map table model.
///
/// # Examples
///
/// ```
/// use siopmp_iommu::rmp::{Rmp, OwnerId, RmpVerdict, OWNER_HYPERVISOR};
/// let mut rmp = Rmp::new();
/// let tee = OwnerId(7);
/// rmp.assign(0x8000_0000, tee);
/// assert_eq!(rmp.check(0x8000_0000, tee).0, RmpVerdict::Allowed);
/// assert!(matches!(rmp.check(0x8000_0000, OWNER_HYPERVISOR).0,
///                  RmpVerdict::WrongOwner(_)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rmp {
    owners: HashMap<u64, OwnerId>,
    /// Cached check results: page → owner at cache-fill time.
    cache: HashMap<u64, OwnerId>,
    /// Pages whose cached result is stale (pending invalidation).
    stale: Vec<u64>,
}

impl Rmp {
    /// Creates an RMP in which every page belongs to the hypervisor.
    pub fn new() -> Self {
        Rmp::default()
    }

    fn page_of(addr: u64) -> u64 {
        addr & !(IO_PAGE_SIZE - 1)
    }

    /// Current owner of the page containing `addr`.
    pub fn owner(&self, addr: u64) -> OwnerId {
        self.owners
            .get(&Self::page_of(addr))
            .copied()
            .unwrap_or(OWNER_HYPERVISOR)
    }

    /// Reassigns the page containing `addr` to `owner`. Returns the update
    /// cost. The cached check result becomes stale until
    /// [`Rmp::invalidate`] runs — the same window/cost structure as IOTLB
    /// invalidation.
    pub fn assign(&mut self, addr: u64, owner: OwnerId) -> u64 {
        let page = Self::page_of(addr);
        self.owners.insert(page, owner);
        if self.cache.contains_key(&page) {
            self.stale.push(page);
        }
        RMP_UPDATE_CYCLES
    }

    /// Checks that the page containing `addr` belongs to `expected`.
    /// Returns the verdict and the check cost (cache hit: 0; miss: a walk).
    ///
    /// **Stale-cache hazard**: a cached verdict may reflect a previous
    /// owner until invalidation — exactly the replay/remap hazard TEE-IO
    /// inherits (§2.3).
    pub fn check(&mut self, addr: u64, expected: OwnerId) -> (RmpVerdict, u64) {
        let page = Self::page_of(addr);
        if let Some(&cached) = self.cache.get(&page) {
            let verdict = if cached == expected {
                RmpVerdict::Allowed
            } else {
                RmpVerdict::WrongOwner(cached)
            };
            return (verdict, 0);
        }
        let owner = self.owner(page);
        self.cache.insert(page, owner);
        let verdict = if owner == expected {
            RmpVerdict::Allowed
        } else {
            RmpVerdict::WrongOwner(owner)
        };
        (verdict, RMP_WALK_CYCLES)
    }

    /// Number of pages with stale cached verdicts (attack window).
    pub fn stale_pages(&self) -> usize {
        self.stale.len()
    }

    /// Flushes stale cached verdicts. Returns the invalidation cost.
    pub fn invalidate(&mut self) -> u64 {
        for page in self.stale.drain(..) {
            self.cache.remove(&page);
        }
        RMP_INVALIDATION_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_owner_is_hypervisor() {
        let rmp = Rmp::new();
        assert_eq!(rmp.owner(0x1234_5000), OWNER_HYPERVISOR);
    }

    #[test]
    fn assignment_transfers_ownership() {
        let mut rmp = Rmp::new();
        let tee = OwnerId(3);
        rmp.assign(0x5000, tee);
        assert_eq!(rmp.owner(0x5abc), tee);
        let (v, cost) = rmp.check(0x5000, tee);
        assert_eq!(v, RmpVerdict::Allowed);
        assert_eq!(cost, RMP_WALK_CYCLES);
        // Second check hits the cache.
        let (_, cost) = rmp.check(0x5000, tee);
        assert_eq!(cost, 0);
    }

    #[test]
    fn stale_cache_is_the_attack_window() {
        let mut rmp = Rmp::new();
        let tee = OwnerId(3);
        rmp.assign(0x5000, tee);
        rmp.check(0x5000, tee); // warm the cache
                                // Page is reclaimed by the hypervisor...
        rmp.assign(0x5000, OWNER_HYPERVISOR);
        // ...but before invalidation, the cached verdict still says "tee".
        let (v, _) = rmp.check(0x5000, tee);
        assert_eq!(v, RmpVerdict::Allowed, "stale verdict: the attack window");
        assert_eq!(rmp.stale_pages(), 1);
        // After the (expensive) invalidation, the truth is visible.
        let cost = rmp.invalidate();
        assert_eq!(cost, RMP_INVALIDATION_CYCLES);
        let (v, _) = rmp.check(0x5000, tee);
        assert!(matches!(v, RmpVerdict::WrongOwner(OWNER_HYPERVISOR)));
    }

    #[test]
    fn checks_are_page_granular() {
        let mut rmp = Rmp::new();
        rmp.assign(0x6000, OwnerId(1));
        // Any byte in the page carries the owner — sub-page buffers of
        // different owners cannot coexist in one page.
        assert_eq!(rmp.owner(0x6fff), OwnerId(1));
        assert_eq!(rmp.owner(0x7000), OWNER_HYPERVISOR);
    }
}
