//! The `DmaProtection` trait and the IOMMU strict/deferred policies.
//!
//! Every I/O-protection mechanism the paper evaluates is expressed as a
//! [`DmaProtection`] implementation: the network workload model calls
//! `map_cycles`/`unmap_cycles` once per packet buffer and adds the returned
//! CPU cycles to the per-packet budget, from which throughput curves follow
//! (Figure 15). The trait also exposes the *attack window* each mechanism
//! leaves open, reproducing the security column of Table 1.

use crate::cmdq::{CommandQueue, InvCommand};
use crate::iotlb::Iotlb;
use crate::iova::{IovaAllocator, IO_PAGE_SIZE};
use crate::pagetable::{IoPageTable, IoPerms};
use siopmp::telemetry::{Counter, Histogram, Telemetry};
use std::collections::HashMap;

/// Pre-resolved handles for the `iommu.*` metrics.
#[derive(Debug, Clone)]
struct IommuCounters {
    maps: Counter,
    unmaps: Counter,
    flushes: Counter,
    map_cycles: Histogram,
    unmap_cycles: Histogram,
}

impl IommuCounters {
    fn attach(t: &Telemetry) -> Self {
        IommuCounters {
            maps: t.counter("iommu.maps"),
            unmaps: t.counter("iommu.unmaps"),
            flushes: t.counter("iommu.flushes"),
            map_cycles: t.histogram("iommu.map_cycles"),
            unmap_cycles: t.histogram("iommu.unmap_cycles"),
        }
    }
}

/// Token returned by a map operation, needed for the matching unmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapHandle {
    /// Device the buffer was mapped for.
    pub device: u64,
    /// IOVA (or PA for region-based mechanisms) of the mapping.
    pub iova: u64,
    /// Mapped length in bytes.
    pub len: u64,
}

/// A DMA protection mechanism with per-operation CPU-cycle accounting.
pub trait DmaProtection {
    /// Short legend name ("IOMMU-strict", "sIOPMP", ...).
    fn name(&self) -> &'static str;

    /// Maps `len` bytes of physical buffer `pa` for `device`; returns the
    /// handle and the CPU cycles consumed.
    fn map(&mut self, device: u64, pa: u64, len: u64) -> (MapHandle, u64);

    /// Unmaps a previously mapped buffer; returns the CPU cycles consumed
    /// (including any synchronous invalidation).
    fn unmap(&mut self, handle: MapHandle) -> u64;

    /// Extra per-packet data-path cycles (bounce-buffer copies etc.);
    /// `bytes` is the packet payload size.
    fn data_path_cycles(&self, bytes: u64) -> u64 {
        let _ = bytes;
        0
    }

    /// Pages currently unmapped by software but still reachable by the
    /// device (stale IOTLB entries) — the attack window. Zero for safe
    /// mechanisms.
    fn attack_window_pages(&self) -> u64 {
        0
    }

    /// Whether the mechanism can express sub-page (byte-granular) regions.
    fn sub_page_granularity(&self) -> bool;
}

/// The "no protection" baseline: DMA goes straight through.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProtection;

impl DmaProtection for NoProtection {
    fn name(&self) -> &'static str {
        "native"
    }

    fn map(&mut self, device: u64, pa: u64, len: u64) -> (MapHandle, u64) {
        (
            MapHandle {
                device,
                iova: pa,
                len,
            },
            0,
        )
    }

    fn unmap(&mut self, _handle: MapHandle) -> u64 {
        0
    }

    fn sub_page_granularity(&self) -> bool {
        true // nothing is checked, so nothing is rounded either
    }
}

/// IOTLB invalidation policy on unmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationPolicy {
    /// Post + sync the invalidation on every unmap (safe, slow).
    Strict,
    /// Batch invalidations; flush when `batch` are pending (fast, leaves
    /// an attack window).
    Deferred {
        /// Flush threshold.
        batch: usize,
    },
}

/// A full IOMMU: IOVA allocator + page table per device, shared IOTLB and
/// invalidation command queue.
#[derive(Debug)]
pub struct Iommu {
    policy: InvalidationPolicy,
    iova: IovaAllocator,
    tables: HashMap<u64, IoPageTable>,
    iotlb: Iotlb,
    cmdq: CommandQueue,
    /// (device, iova) pairs unmapped in software whose IOTLB entries may
    /// still be live — cleared at the next sync.
    stale: Vec<(u64, u64)>,
    telemetry: Telemetry,
    counters: IommuCounters,
}

impl Iommu {
    /// Creates an IOMMU with the given invalidation policy, a 64-entry
    /// IOTLB, and a 1 GiB shared IOVA arena, registering its `iommu.*`
    /// metrics (map/unmap counters, cycle histograms) in `telemetry` —
    /// pass `None` for a private registry.
    pub fn build(policy: InvalidationPolicy, telemetry: impl Into<Option<Telemetry>>) -> Self {
        let telemetry = telemetry.into().unwrap_or_else(Telemetry::new);
        Iommu {
            policy,
            iova: IovaAllocator::new(0x4000_0000, 0x4000_0000),
            tables: HashMap::new(),
            iotlb: Iotlb::new(64),
            cmdq: CommandQueue::new(),
            stale: Vec::new(),
            counters: IommuCounters::attach(&telemetry),
            telemetry,
        }
    }

    /// Creates an IOMMU with a private telemetry registry.
    #[deprecated(note = "use `Iommu::build(policy, None)`")]
    pub fn new(policy: InvalidationPolicy) -> Self {
        Self::build(policy, None)
    }

    /// Creates an IOMMU sharing the caller's `telemetry` registry.
    #[deprecated(note = "use `Iommu::build(policy, telemetry)`")]
    pub fn with_telemetry(policy: InvalidationPolicy, telemetry: Telemetry) -> Self {
        Self::build(policy, telemetry)
    }

    /// The IOMMU's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Simulates a device-side translation of `(device, iova)` — used by
    /// tests to demonstrate the deferred-policy attack window. Returns the
    /// translated PA if the IOTLB (or page table) still resolves it.
    pub fn device_translate(&mut self, device: u64, iova: u64) -> Option<u64> {
        if let Some(pte) = self.iotlb.lookup(device, iova) {
            return Some(pte.pa + (iova & (IO_PAGE_SIZE - 1)));
        }
        let table = self.tables.get(&device)?;
        let (pte, _) = table.translate(iova).ok()?;
        self.iotlb.fill(device, iova, pte);
        Some(pte.pa + (iova & (IO_PAGE_SIZE - 1)))
    }

    /// IOTLB statistics (for experiments).
    pub fn iotlb_stats(&self) -> crate::iotlb::IotlbStats {
        self.iotlb.stats()
    }

    fn flush_stale(&mut self) -> u64 {
        self.counters.flushes.inc();
        let (cycles, _) = self.cmdq.sync_and_take();
        for (device, iova) in self.stale.drain(..) {
            self.iotlb.invalidate_page(device, iova);
        }
        cycles
    }
}

impl DmaProtection for Iommu {
    fn name(&self) -> &'static str {
        match self.policy {
            InvalidationPolicy::Strict => "IOMMU-strict",
            InvalidationPolicy::Deferred { .. } => "IOMMU-deferred",
        }
    }

    fn map(&mut self, device: u64, pa: u64, len: u64) -> (MapHandle, u64) {
        let (iova, alloc_cycles) = self
            .iova
            .alloc(len)
            .expect("IOVA arena exhausted — enlarge the arena for this workload");
        let table = self.tables.entry(device).or_default();
        let mut cycles = alloc_cycles;
        let pages = len.div_ceil(IO_PAGE_SIZE);
        for p in 0..pages {
            cycles += table
                .map(
                    iova + p * IO_PAGE_SIZE,
                    (pa & !(IO_PAGE_SIZE - 1)) + p * IO_PAGE_SIZE,
                    IoPerms::rw(),
                )
                .expect("fresh IOVA cannot be already mapped");
        }
        self.counters.maps.inc();
        self.counters.map_cycles.record(cycles);
        (MapHandle { device, iova, len }, cycles)
    }

    fn unmap(&mut self, handle: MapHandle) -> u64 {
        let table = self
            .tables
            .get_mut(&handle.device)
            .expect("unmap of never-mapped device");
        let mut cycles = 0;
        let pages = handle.len.div_ceil(IO_PAGE_SIZE);
        for p in 0..pages {
            let iova = handle.iova + p * IO_PAGE_SIZE;
            cycles += table.unmap(iova).expect("unmap of live handle");
            self.stale.push((handle.device, iova));
        }
        match self.policy {
            InvalidationPolicy::Strict => {
                // Post one invalidation command per page and spin on the
                // sync descriptor until the hardware drains them.
                for p in 0..pages {
                    let iova = handle.iova + p * IO_PAGE_SIZE;
                    cycles += self.cmdq.post(InvCommand::Page {
                        device: handle.device,
                        iova,
                    });
                }
                cycles += self.flush_stale();
            }
            InvalidationPolicy::Deferred { batch } => {
                // Per-page commands are skipped entirely; once the batch
                // threshold is reached a single global invalidation flushes
                // everything — this is the amortisation (and the attack
                // window) of the deferred mode.
                if self.stale.len() >= batch {
                    cycles += self.cmdq.post(InvCommand::Global);
                    cycles += self.flush_stale();
                }
            }
        }
        self.iova
            .free(handle.iova, handle.len)
            .expect("double unmap of handle");
        self.counters.unmaps.inc();
        self.counters.unmap_cycles.record(cycles);
        cycles
    }

    fn attack_window_pages(&self) -> u64 {
        self.stale.len() as u64
    }

    fn sub_page_granularity(&self) -> bool {
        false // page tables round everything to 4 KiB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_protection_is_free_and_identity() {
        let mut p = NoProtection;
        let (h, cycles) = p.map(1, 0x9000, 100);
        assert_eq!(cycles, 0);
        assert_eq!(h.iova, 0x9000);
        assert_eq!(p.unmap(h), 0);
    }

    #[test]
    fn strict_unmap_is_expensive_and_safe() {
        let mut iommu = Iommu::build(InvalidationPolicy::Strict, None);
        let (h, map_cycles) = iommu.map(1, 0x10_0000, IO_PAGE_SIZE);
        assert!(map_cycles > 0);
        // Device can use the mapping.
        assert!(iommu.device_translate(1, h.iova).is_some());
        let unmap_cycles = iommu.unmap(h);
        // Strict pays the synchronous command-queue drain.
        assert!(
            unmap_cycles > crate::cmdq::CMD_SERVICE_CYCLES,
            "{unmap_cycles}"
        );
        // No attack window remains.
        assert_eq!(iommu.attack_window_pages(), 0);
        assert!(iommu.device_translate(1, h.iova).is_none());
    }

    #[test]
    fn deferred_unmap_is_cheap_but_leaves_window() {
        let mut iommu = Iommu::build(InvalidationPolicy::Deferred { batch: 32 }, None);
        let (h, _) = iommu.map(1, 0x10_0000, IO_PAGE_SIZE);
        // Touch the translation so it is resident in the IOTLB.
        assert!(iommu.device_translate(1, h.iova).is_some());
        let unmap_cycles = iommu.unmap(h);
        assert!(
            unmap_cycles < crate::cmdq::CMD_SERVICE_CYCLES,
            "{unmap_cycles}"
        );
        // ATTACK WINDOW: the device can still translate through the stale
        // IOTLB entry even though software unmapped the buffer.
        assert!(iommu.attack_window_pages() > 0);
        assert!(iommu.device_translate(1, h.iova).is_some());
    }

    #[test]
    fn deferred_window_closes_at_batch_flush() {
        let batch = 4;
        let mut iommu = Iommu::build(InvalidationPolicy::Deferred { batch }, None);
        let mut handles = Vec::new();
        for i in 0..batch as u64 {
            let (h, _) = iommu.map(1, 0x10_0000 + i * IO_PAGE_SIZE, IO_PAGE_SIZE);
            iommu.device_translate(1, h.iova);
            handles.push(h);
        }
        for (i, h) in handles.iter().enumerate() {
            iommu.unmap(*h);
            if i + 1 < batch {
                assert!(iommu.attack_window_pages() > 0);
            }
        }
        // The flush at the batch boundary closed the window.
        assert_eq!(iommu.attack_window_pages(), 0);
        for h in &handles {
            assert!(iommu.device_translate(1, h.iova).is_none());
        }
    }

    #[test]
    fn strict_costs_more_than_deferred_per_packet() {
        let mut strict = Iommu::build(InvalidationPolicy::Strict, None);
        let mut deferred = Iommu::build(InvalidationPolicy::Deferred { batch: 256 }, None);
        let run = |iommu: &mut Iommu| -> u64 {
            let mut total = 0;
            for i in 0..256u64 {
                let (h, c) = iommu.map(1, 0x10_0000 + i * IO_PAGE_SIZE, 1500);
                total += c;
                total += iommu.unmap(h);
            }
            total
        };
        let strict_cost = run(&mut strict);
        let deferred_cost = run(&mut deferred);
        assert!(
            strict_cost > 3 * deferred_cost,
            "strict {strict_cost} vs deferred {deferred_cost}"
        );
    }

    #[test]
    fn iova_space_is_recycled() {
        let mut iommu = Iommu::build(InvalidationPolicy::Strict, None);
        // Far more map/unmap cycles than the arena could hold at once.
        for i in 0..100_000u64 {
            let (h, _) = iommu.map(1, 0x10_0000 + (i % 16) * IO_PAGE_SIZE, 1500);
            iommu.unmap(h);
        }
    }

    #[test]
    fn telemetry_counts_map_unmap_pairs() {
        let t = Telemetry::new();
        let mut iommu = Iommu::build(InvalidationPolicy::Strict, t.clone());
        for i in 0..5u64 {
            let (h, _) = iommu.map(1, 0x10_0000 + i * IO_PAGE_SIZE, 1500);
            iommu.unmap(h);
        }
        let snap = t.snapshot();
        assert_eq!(snap.counters["iommu.maps"], 5);
        assert_eq!(snap.counters["iommu.unmaps"], 5);
        assert_eq!(snap.histograms["iommu.unmap_cycles"].count, 5);
        assert!(
            snap.counters["iommu.flushes"] >= 5,
            "strict flushes per unmap"
        );
    }

    #[test]
    fn page_granularity_reported() {
        assert!(!Iommu::build(InvalidationPolicy::Strict, None).sub_page_granularity());
        assert!(NoProtection.sub_page_granularity());
    }
}
