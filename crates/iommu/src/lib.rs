//! # siopmp-iommu — baseline I/O isolation mechanisms
//!
//! From-scratch models of the mechanisms the sIOPMP paper compares against
//! (Table 1, Figure 15):
//!
//! * a classical **IOMMU**: per-device I/O virtual address spaces backed by
//!   a multi-level page table ([`pagetable`]), an [`iova`] allocator, an
//!   [`iotlb`] cache, and an asynchronous invalidation command queue
//!   ([`cmdq`]);
//! * the two Linux kernel unmap policies — **strict** (synchronous IOTLB
//!   invalidation on every `dma_unmap`) and **deferred** (batched, leaving
//!   an attack window) — in [`protection`];
//! * an **RMP/GPC-style** page-ownership checker ([`rmp`]) as used by
//!   SEV-SNP and CCA;
//! * **SWIO** bounce-buffering ([`swio`]) as used by confidential VMs
//!   without trusted I/O.
//!
//! All mechanisms implement the [`protection::DmaProtection`] trait, which
//! accounts CPU cycles per map/unmap so the network workload model
//! (`siopmp-workloads`) can derive throughput curves mechanistically.

pub mod cmdq;
pub mod fixed;
pub mod iotlb;
pub mod iova;
pub mod pagetable;
pub mod protection;
pub mod rmp;
pub mod swio;
pub mod teeio;

pub use protection::{DmaProtection, MapHandle, NoProtection};
