//! Access policies plugged into the bus checker stage.
//!
//! The simulator separates *timing* (owned by [`crate::sim::BusSim`]) from
//! *authorisation* (this trait), so microbenchmarks can use trivial
//! policies while full-system runs plug in a real [`siopmp::Siopmp`] unit.

use siopmp::ids::DeviceId;
use siopmp::request::{AccessKind, DmaRequest};

/// Decides whether a DMA access is authorised.
pub trait AccessPolicy {
    /// Returns `true` when the access is allowed.
    fn allowed(&mut self, device: DeviceId, kind: AccessKind, addr: u64, len: u64) -> bool;
}

/// Allows every access (the "no protection" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl AccessPolicy for AllowAll {
    fn allowed(&mut self, _: DeviceId, _: AccessKind, _: u64, _: u64) -> bool {
        true
    }
}

/// Denies accesses that touch `[base, base+len)`; everything else passes.
/// Used to create violating traffic in the latency microbenchmarks.
#[derive(Debug, Clone, Copy)]
pub struct DenyRange {
    /// Base of the forbidden region.
    pub base: u64,
    /// Length of the forbidden region.
    pub len: u64,
}

impl AccessPolicy for DenyRange {
    fn allowed(&mut self, _: DeviceId, _: AccessKind, addr: u64, len: u64) -> bool {
        let end = addr.saturating_add(len);
        let deny_end = self.base.saturating_add(self.len);
        !(addr < deny_end && end > self.base)
    }
}

/// Adapts a full [`siopmp::Siopmp`] unit as a bus policy. SID-missing and
/// stalled outcomes are treated as "not allowed" at the bus level; the
/// owner is expected to service the unit's interrupts between runs.
#[derive(Debug)]
pub struct SiopmpPolicy {
    unit: siopmp::Siopmp,
}

impl SiopmpPolicy {
    /// Wraps `unit`.
    pub fn new(unit: siopmp::Siopmp) -> Self {
        SiopmpPolicy { unit }
    }

    /// Access to the wrapped unit (e.g. to drain violations).
    pub fn unit(&self) -> &siopmp::Siopmp {
        &self.unit
    }

    /// Mutable access to the wrapped unit.
    pub fn unit_mut(&mut self) -> &mut siopmp::Siopmp {
        &mut self.unit
    }

    /// Consumes the adapter, returning the unit.
    pub fn into_inner(self) -> siopmp::Siopmp {
        self.unit
    }
}

impl AccessPolicy for SiopmpPolicy {
    fn allowed(&mut self, device: DeviceId, kind: AccessKind, addr: u64, len: u64) -> bool {
        self.unit
            .check(&DmaRequest::new(device, kind, addr, len))
            .is_allowed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_allows() {
        let mut p = AllowAll;
        assert!(p.allowed(DeviceId(1), AccessKind::Read, 0, 64));
    }

    #[test]
    fn deny_range_blocks_overlap_only() {
        let mut p = DenyRange {
            base: 0x1000,
            len: 0x100,
        };
        assert!(!p.allowed(DeviceId(1), AccessKind::Read, 0x1000, 8));
        assert!(!p.allowed(DeviceId(1), AccessKind::Write, 0x0ff8, 16));
        assert!(p.allowed(DeviceId(1), AccessKind::Read, 0x2000, 8));
        assert!(p.allowed(DeviceId(1), AccessKind::Read, 0x0f00, 0x100));
    }

    #[test]
    fn siopmp_policy_enforces_unit_rules() {
        use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
        use siopmp::ids::MdIndex;

        let mut unit = siopmp::Siopmp::new(siopmp::SiopmpConfig::small());
        let sid = unit.map_hot_device(DeviceId(5)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
        unit.install_entry(
            MdIndex(0),
            IopmpEntry::new(
                AddressRange::new(0x8000, 0x1000).unwrap(),
                Permissions::rw(),
            ),
        )
        .unwrap();

        let mut p = SiopmpPolicy::new(unit);
        assert!(p.allowed(DeviceId(5), AccessKind::Read, 0x8000, 64));
        assert!(!p.allowed(DeviceId(5), AccessKind::Read, 0x4000, 64));
        assert!(!p.allowed(DeviceId(6), AccessKind::Read, 0x8000, 64));
        assert_eq!(p.unit().stats().violations, 2);
    }
}
