//! Access policies plugged into the bus checker stage.
//!
//! The simulator separates *timing* (owned by [`crate::sim::BusSim`]) from
//! *authorisation* (this trait), so microbenchmarks can use trivial
//! policies while full-system runs plug in a real [`siopmp::Siopmp`] unit.

use siopmp::ids::{DeviceId, SourceId};
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::CheckOutcome;

/// What the policy decided about one access, mirroring
/// [`siopmp::CheckOutcome`] without the outcome payloads so the bus can
/// account for each class of refusal separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyVerdict {
    /// The access may proceed.
    Allowed,
    /// The access was denied by the protection rules (no match or no
    /// permission) — the bus masks or errors the burst.
    Denied,
    /// The source is temporarily blocked (e.g. mid cold-switch); the
    /// request would be retried by real hardware, the simulator masks it
    /// but reports it as a stall, not a violation.
    Stalled,
    /// The device has no mounted protection state; the monitor must
    /// service a SID-missing interrupt before traffic can flow.
    SidMissing,
}

impl PolicyVerdict {
    /// `true` only for [`PolicyVerdict::Allowed`].
    pub fn is_allowed(self) -> bool {
        matches!(self, PolicyVerdict::Allowed)
    }
}

impl From<&CheckOutcome> for PolicyVerdict {
    fn from(outcome: &CheckOutcome) -> Self {
        match outcome {
            CheckOutcome::Allowed { .. } => PolicyVerdict::Allowed,
            CheckOutcome::Denied(_) => PolicyVerdict::Denied,
            CheckOutcome::Stalled { .. } => PolicyVerdict::Stalled,
            CheckOutcome::SidMissing { .. } => PolicyVerdict::SidMissing,
        }
    }
}

/// A control-plane reconfiguration the fault injector (or a monitor model)
/// applies to the policy *while traffic is in flight*. Trivial policies
/// ignore these; [`SiopmpPolicy`] maps them onto the unit's mutators, which
/// is exactly what makes mid-run SID-block storms, CAM-eviction races and
/// undrained cold switches expressible in a fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Block `sid`: its traffic stalls until unblocked.
    BlockSid(SourceId),
    /// Unblock `sid`.
    UnblockSid(SourceId),
    /// Cold-switch the mountable window to `device` immediately — the
    /// *undrained* switch the quiesce protocol exists to prevent.
    ColdSwitch(DeviceId),
    /// Promote `device` from cold to hot, evicting a CAM victim when the
    /// CAM is full (implicit-switching churn, §4.3).
    CamChurn(DeviceId),
}

/// Decides whether a DMA access is authorised.
///
/// `Send` is required so a whole simulator (policy included) can be moved
/// to — or borrowed by — a worker thread in the parallel sharded engine
/// ([`crate::parallel`]); every policy here is plain owned data, so the
/// bound costs implementors nothing.
pub trait AccessPolicy: Send {
    /// Classifies the access.
    fn decide(&mut self, device: DeviceId, kind: AccessKind, addr: u64, len: u64) -> PolicyVerdict;

    /// Classifies a batch of accesses, in order. Observationally identical
    /// to calling [`AccessPolicy::decide`] once per element — same
    /// verdicts, same counters, same violation records — but
    /// implementations may amortise shared per-batch work: the sIOPMP
    /// adapter resolves each device's SID route once per batch via
    /// [`siopmp::Siopmp::check_batch`]. The bus engine funnels every
    /// cycle's issues through this entry point.
    fn decide_batch(&mut self, reqs: &[(DeviceId, AccessKind, u64, u64)]) -> Vec<PolicyVerdict> {
        reqs.iter()
            .map(|&(device, kind, addr, len)| self.decide(device, kind, addr, len))
            .collect()
    }

    /// Applies a control-plane reconfiguration, returning `true` when the
    /// policy's configuration actually changed. The default ignores every
    /// op — stateless policies have no control plane.
    fn control(&mut self, op: &ControlOp) -> bool {
        let _ = op;
        false
    }

    /// The wrapped [`siopmp::Siopmp`] unit, for policies that have one.
    /// Lets differential tests snapshot the live configuration without
    /// downcasting through `Box<dyn AccessPolicy>`.
    fn siopmp_unit(&self) -> Option<&siopmp::Siopmp> {
        None
    }

    /// Mutable counterpart of [`AccessPolicy::siopmp_unit`].
    fn siopmp_unit_mut(&mut self) -> Option<&mut siopmp::Siopmp> {
        None
    }

    /// Returns `true` when the access is allowed.
    #[deprecated(note = "use `decide(...)` and match on the verdict")]
    fn allowed(&mut self, device: DeviceId, kind: AccessKind, addr: u64, len: u64) -> bool {
        self.decide(device, kind, addr, len).is_allowed()
    }
}

/// Allows every access (the "no protection" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl AccessPolicy for AllowAll {
    fn decide(&mut self, _: DeviceId, _: AccessKind, _: u64, _: u64) -> PolicyVerdict {
        PolicyVerdict::Allowed
    }
}

/// Denies accesses that touch `[base, base+len)`; everything else passes.
/// Used to create violating traffic in the latency microbenchmarks.
#[derive(Debug, Clone, Copy)]
pub struct DenyRange {
    /// Base of the forbidden region.
    pub base: u64,
    /// Length of the forbidden region.
    pub len: u64,
}

impl AccessPolicy for DenyRange {
    fn decide(&mut self, _: DeviceId, _: AccessKind, addr: u64, len: u64) -> PolicyVerdict {
        let end = addr.saturating_add(len);
        let deny_end = self.base.saturating_add(self.len);
        if addr < deny_end && end > self.base {
            PolicyVerdict::Denied
        } else {
            PolicyVerdict::Allowed
        }
    }
}

/// Adapts a full [`siopmp::Siopmp`] unit as a bus policy. Stalled and
/// SID-missing outcomes surface as their own verdicts so the bus can count
/// them; the owner is expected to service the unit's interrupts between
/// runs.
#[derive(Debug)]
pub struct SiopmpPolicy {
    unit: siopmp::Siopmp,
}

impl SiopmpPolicy {
    /// Wraps `unit`.
    pub fn new(unit: siopmp::Siopmp) -> Self {
        SiopmpPolicy { unit }
    }

    /// Access to the wrapped unit (e.g. to drain violations).
    pub fn unit(&self) -> &siopmp::Siopmp {
        &self.unit
    }

    /// Mutable access to the wrapped unit.
    pub fn unit_mut(&mut self) -> &mut siopmp::Siopmp {
        &mut self.unit
    }

    /// Consumes the adapter, returning the unit.
    pub fn into_inner(self) -> siopmp::Siopmp {
        self.unit
    }
}

impl AccessPolicy for SiopmpPolicy {
    fn decide(&mut self, device: DeviceId, kind: AccessKind, addr: u64, len: u64) -> PolicyVerdict {
        PolicyVerdict::from(&self.unit.check(&DmaRequest::new(device, kind, addr, len)))
    }

    fn decide_batch(&mut self, reqs: &[(DeviceId, AccessKind, u64, u64)]) -> Vec<PolicyVerdict> {
        let reqs: Vec<DmaRequest> = reqs
            .iter()
            .map(|&(device, kind, addr, len)| DmaRequest::new(device, kind, addr, len))
            .collect();
        self.unit
            .check_batch(&reqs)
            .iter()
            .map(PolicyVerdict::from)
            .collect()
    }

    fn control(&mut self, op: &ControlOp) -> bool {
        match *op {
            ControlOp::BlockSid(sid) => {
                if self.unit.is_sid_blocked(sid) {
                    return false;
                }
                self.unit.block_sid(sid);
                true
            }
            ControlOp::UnblockSid(sid) => {
                if !self.unit.is_sid_blocked(sid) {
                    return false;
                }
                self.unit.unblock_sid(sid);
                true
            }
            // A switch to the already-mounted device is a free no-op and
            // does not change configuration, so it reports `false`.
            ControlOp::ColdSwitch(device) => self
                .unit
                .handle_sid_missing(device)
                .map(|report| report.cycles > 0)
                .unwrap_or(false),
            ControlOp::CamChurn(device) => self.unit.promote_with_eviction(device).is_ok(),
        }
    }

    fn siopmp_unit(&self) -> Option<&siopmp::Siopmp> {
        Some(&self.unit)
    }

    fn siopmp_unit_mut(&mut self) -> Option<&mut siopmp::Siopmp> {
        Some(&mut self.unit)
    }
}

/// Adapts a [`siopmp::SharedSiopmp`] handle to the bus policy trait: the
/// checker is *shared*, not owned, so any number of bus shards (or other
/// threads) can check concurrently against one unit while its owner keeps
/// mutating — the software analogue of the paper's multi-port MT checker.
///
/// Compared to [`SiopmpPolicy`] this adapter has no control plane
/// ([`AccessPolicy::control`] reports no change) and exposes no unit
/// reference: reconfiguration belongs to whoever owns the
/// [`siopmp::Siopmp`] writer, typically the monitor thread.
#[derive(Debug, Clone)]
pub struct SharedSiopmpPolicy {
    checker: siopmp::SharedSiopmp,
}

impl SharedSiopmpPolicy {
    /// Wraps a shared checker handle (see [`siopmp::Siopmp::share`]).
    pub fn new(checker: siopmp::SharedSiopmp) -> Self {
        SharedSiopmpPolicy { checker }
    }

    /// The wrapped shared handle.
    pub fn checker(&self) -> &siopmp::SharedSiopmp {
        &self.checker
    }
}

impl AccessPolicy for SharedSiopmpPolicy {
    fn decide(&mut self, device: DeviceId, kind: AccessKind, addr: u64, len: u64) -> PolicyVerdict {
        PolicyVerdict::from(
            &self
                .checker
                .check(&DmaRequest::new(device, kind, addr, len)),
        )
    }

    fn decide_batch(&mut self, reqs: &[(DeviceId, AccessKind, u64, u64)]) -> Vec<PolicyVerdict> {
        let reqs: Vec<DmaRequest> = reqs
            .iter()
            .map(|&(device, kind, addr, len)| DmaRequest::new(device, kind, addr, len))
            .collect();
        self.checker
            .check_batch(&reqs)
            .iter()
            .map(PolicyVerdict::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_allows() {
        let mut p = AllowAll;
        assert_eq!(
            p.decide(DeviceId(1), AccessKind::Read, 0, 64),
            PolicyVerdict::Allowed
        );
    }

    #[test]
    fn deny_range_blocks_overlap_only() {
        let mut p = DenyRange {
            base: 0x1000,
            len: 0x100,
        };
        assert_eq!(
            p.decide(DeviceId(1), AccessKind::Read, 0x1000, 8),
            PolicyVerdict::Denied
        );
        assert_eq!(
            p.decide(DeviceId(1), AccessKind::Write, 0x0ff8, 16),
            PolicyVerdict::Denied
        );
        assert!(p
            .decide(DeviceId(1), AccessKind::Read, 0x2000, 8)
            .is_allowed());
        assert!(p
            .decide(DeviceId(1), AccessKind::Read, 0x0f00, 0x100)
            .is_allowed());
    }

    #[test]
    fn control_ops_are_noops_on_stateless_policies() {
        let mut p = AllowAll;
        assert!(!p.control(&ControlOp::BlockSid(SourceId(0))));
        assert!(p.siopmp_unit().is_none());
    }

    #[test]
    fn siopmp_policy_applies_control_ops() {
        use siopmp::mountable::MountableEntry;

        let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(5)).unwrap();
        unit.register_cold_device(
            DeviceId(9),
            MountableEntry {
                domains: vec![],
                entries: vec![],
            },
        )
        .unwrap();
        let mut p = SiopmpPolicy::new(unit);

        assert!(p.control(&ControlOp::BlockSid(sid)));
        assert!(!p.control(&ControlOp::BlockSid(sid)), "already blocked");
        assert_eq!(
            p.decide(DeviceId(5), AccessKind::Read, 0x8000, 64),
            PolicyVerdict::Stalled
        );
        assert!(p.control(&ControlOp::UnblockSid(sid)));

        assert!(p.control(&ControlOp::ColdSwitch(DeviceId(9))));
        assert_eq!(
            p.siopmp_unit().unwrap().mounted_cold_device(),
            Some(DeviceId(9))
        );
        assert!(
            !p.control(&ControlOp::ColdSwitch(DeviceId(9))),
            "no-op remount reports no change"
        );
        assert!(!p.control(&ControlOp::ColdSwitch(DeviceId(404))));

        assert!(p.control(&ControlOp::CamChurn(DeviceId(9))));
        assert!(p.siopmp_unit().unwrap().is_hot(DeviceId(9)));
        assert!(!p.control(&ControlOp::CamChurn(DeviceId(9))), "already hot");
    }

    #[test]
    fn deprecated_allowed_shim_matches_decide() {
        let mut p = DenyRange {
            base: 0x1000,
            len: 0x100,
        };
        #[allow(deprecated)]
        {
            assert!(!p.allowed(DeviceId(1), AccessKind::Read, 0x1000, 8));
            assert!(p.allowed(DeviceId(1), AccessKind::Read, 0x2000, 8));
        }
    }

    #[test]
    fn siopmp_policy_maps_each_outcome_class() {
        use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
        use siopmp::ids::MdIndex;
        use siopmp::mountable::MountableEntry;

        let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(5)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
        unit.install_entry(
            MdIndex(0),
            IopmpEntry::new(
                AddressRange::new(0x8000, 0x1000).unwrap(),
                Permissions::rw(),
            ),
        )
        .unwrap();
        unit.register_cold_device(
            DeviceId(9),
            MountableEntry {
                domains: vec![],
                entries: vec![],
            },
        )
        .unwrap();

        let mut p = SiopmpPolicy::new(unit);
        assert_eq!(
            p.decide(DeviceId(5), AccessKind::Read, 0x8000, 64),
            PolicyVerdict::Allowed
        );
        assert_eq!(
            p.decide(DeviceId(5), AccessKind::Read, 0x4000, 64),
            PolicyVerdict::Denied
        );
        assert_eq!(
            p.decide(DeviceId(6), AccessKind::Read, 0x8000, 64),
            PolicyVerdict::Denied
        );
        assert_eq!(
            p.decide(DeviceId(9), AccessKind::Read, 0x8000, 64),
            PolicyVerdict::SidMissing
        );
        p.unit_mut().block_sid(sid);
        assert_eq!(
            p.decide(DeviceId(5), AccessKind::Read, 0x8000, 64),
            PolicyVerdict::Stalled
        );
        assert_eq!(p.unit().stats().violations, 2);
    }

    #[test]
    fn shared_policy_matches_owned_policy_verdicts() {
        use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
        use siopmp::ids::MdIndex;

        let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(5)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
        unit.install_entry(
            MdIndex(0),
            IopmpEntry::new(
                AddressRange::new(0x8000, 0x1000).unwrap(),
                Permissions::rw(),
            ),
        )
        .unwrap();

        let mut shared = SharedSiopmpPolicy::new(unit.share());
        let mut owned = SiopmpPolicy::new(unit);
        let probes = [
            (DeviceId(5), AccessKind::Read, 0x8000u64, 64u64),
            (DeviceId(5), AccessKind::Write, 0x4000, 64),
            (DeviceId(6), AccessKind::Read, 0x8000, 64),
        ];
        for &(d, k, a, l) in &probes {
            assert_eq!(shared.decide(d, k, a, l), owned.decide(d, k, a, l));
        }
        assert_eq!(shared.decide_batch(&probes), owned.decide_batch(&probes));
        // The shared adapter has no control plane: ops report no change
        // and the configuration (owned by the unit's writer) is untouched.
        assert!(!shared.control(&ControlOp::BlockSid(sid)));
        assert_eq!(
            shared.decide(DeviceId(5), AccessKind::Read, 0x8000, 64),
            PolicyVerdict::Allowed
        );
        // Writer-side mutations are visible through the shared adapter.
        owned.unit_mut().block_sid(sid);
        assert_eq!(
            shared.decide(DeviceId(5), AccessKind::Read, 0x8000, 64),
            PolicyVerdict::Stalled
        );
    }
}
