//! Event tracing for the bus simulator.
//!
//! When enabled, the simulator records one [`TraceEvent`] per burst
//! milestone so tests can assert on fine-grained timing (e.g. "the error
//! response arrived exactly `k+1` cycles after the first beat") and debug
//! runs can be replayed.

use crate::packet::{BurstKind, BurstStatus};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A master issued a burst into the checker.
    Issued,
    /// The burst's request fully arrived at memory.
    ArrivedAtMemory,
    /// The burst completed with the given status.
    Completed(BurstStatus),
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// Master index (insertion order).
    pub master: usize,
    /// Read or write.
    pub burst_kind: BurstKind,
    /// Milestone.
    pub kind: TraceKind,
}

/// A bounded trace buffer (drops silently past `capacity` so runaway runs
/// cannot exhaust memory).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (dropping it when full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events of one milestone kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Completion events for `master`, in order.
    pub fn completions(&self, master: usize) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.master == master && matches!(e.kind, TraceKind::Completed(_)))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            master: 0,
            burst_kind: BurstKind::Read,
            kind,
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = TraceBuffer::new(10);
        t.record(ev(1, TraceKind::Issued));
        t.record(ev(5, TraceKind::Completed(BurstStatus::Ok)));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].cycle, 1);
        assert_eq!(t.completions(0).len(), 1);
        assert_eq!(t.completions(1).len(), 0);
    }

    #[test]
    fn capacity_bound_drops_silently() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Issued));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn kind_filter() {
        let mut t = TraceBuffer::new(10);
        t.record(ev(1, TraceKind::Issued));
        t.record(ev(2, TraceKind::ArrivedAtMemory));
        t.record(ev(3, TraceKind::Issued));
        assert_eq!(t.of_kind(TraceKind::Issued).count(), 2);
        assert_eq!(t.of_kind(TraceKind::ArrivedAtMemory).count(), 1);
    }
}
