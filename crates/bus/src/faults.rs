//! Deterministic fault injection for the bus simulator.
//!
//! A [`FaultPlan`] is a finite, seeded schedule of fault events — slave
//! errors, dropped/duplicated beats, delayed grants, device resets
//! mid-DMA, SID-block storms, CAM-eviction races and undrained cold
//! switches — generated from the in-tree testkit PRNG so every chaos run
//! replays bit-for-bit from its seed. The plan is handed to
//! [`crate::sim::BusSim::set_fault_plan`]; the simulator applies each
//! event at its scheduled cycle:
//!
//! * **data-plane** faults perturb in-flight bursts (and are attributed to
//!   the targeted master's `faults_injected` report counter);
//! * **control-plane** faults are routed through
//!   [`crate::policy::AccessPolicy::control`], mutating the live
//!   protection configuration while traffic is in flight — the transition
//!   windows where, per the formal-PMP literature, the bugs actually live.
//!
//! The plan's *budget* (its event count) is finite by construction, which
//! is what makes the chaos suite's liveness claim meaningful: once the
//! plan is exhausted no new perturbation arrives, so bounded retries must
//! either converge or report exhaustion.

use siopmp::ids::{DeviceId, SourceId};
use siopmp_testkit::Rng;

use crate::policy::ControlOp;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The slave answers an in-flight burst of `master` with an error
    /// response regardless of its verdict.
    SlaveError {
        /// Index of the targeted master.
        master: usize,
    },
    /// A beat of an in-flight burst of `master` is lost on the wire and
    /// must be resent (latency penalty, no data loss).
    DropBeat {
        /// Index of the targeted master.
        master: usize,
    },
    /// A beat of an in-flight burst of `master` is delivered twice,
    /// wasting a channel slot (latency penalty).
    DuplicateBeat {
        /// Index of the targeted master.
        master: usize,
    },
    /// The request-channel arbiter withholds every grant for `cycles`.
    DelayedGrant {
        /// Cycles during which channel A issues no beats.
        cycles: u64,
    },
    /// `master`'s device resets mid-DMA: all its in-flight bursts abort
    /// with bus errors and the master pauses for its recovery time.
    DeviceReset {
        /// Index of the targeted master.
        master: usize,
    },
    /// Control-plane fault applied through the policy (SID-block storm
    /// pulses, CAM-eviction races, undrained cold switches).
    Control(ControlOp),
}

impl FaultKind {
    /// The master a data-plane fault targets; `None` for control faults
    /// and the (global) delayed grant.
    pub fn target_master(&self) -> Option<usize> {
        match *self {
            FaultKind::SlaveError { master }
            | FaultKind::DropBeat { master }
            | FaultKind::DuplicateBeat { master }
            | FaultKind::DeviceReset { master } => Some(master),
            FaultKind::DelayedGrant { .. } | FaultKind::Control(_) => None,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the simulator applies the fault.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Shape parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Cycles over which events are scheduled (events land in `0..horizon`).
    pub horizon: u64,
    /// Number of fault events to generate — the finite fault budget.
    pub budget: usize,
    /// Number of masters eligible for data-plane faults (indices
    /// `0..masters`). With zero masters no data-plane faults are drawn.
    pub masters: usize,
    /// SIDs eligible for block-storm pulses. Each blocked SID gets a
    /// matching unblock scheduled a short time later (outside the budget)
    /// so storms perturb rather than permanently wedge traffic.
    pub block_sids: Vec<SourceId>,
    /// Devices eligible for undrained cold-switch faults.
    pub cold_devices: Vec<DeviceId>,
    /// Devices eligible for CAM-eviction (promotion) races.
    pub churn_devices: Vec<DeviceId>,
}

/// A seeded, finite schedule of fault events, sorted by cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Builds a plan from explicit events (sorted by cycle internally).
    /// Useful for directed regression schedules; `generate` is the usual
    /// entry point.
    pub fn from_events(seed: u64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// A per-domain plan for sharded simulations: `generate` with `seed`
    /// mixed with `domain` (splitmix-style odd multiplier), so every shard
    /// of a parallel run draws an independent but reproducible schedule
    /// from one top-level seed.
    pub fn for_domain(seed: u64, domain: u64, config: &FaultPlanConfig) -> Self {
        Self::generate(seed ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15), config)
    }

    /// Generates `config.budget` fault events over `config.horizon`
    /// cycles, deterministically from `seed`. Equal seeds and configs
    /// yield equal plans.
    pub fn generate(seed: u64, config: &FaultPlanConfig) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(config.budget * 2);
        let horizon = config.horizon.max(1);
        for _ in 0..config.budget {
            let at = rng.gen_range(0..horizon);
            // Weighted draw over the fault classes that are expressible
            // with this config; retry until one applies (every config
            // admits DelayedGrant, so this terminates).
            let kind = loop {
                match rng.gen_range(0..6) {
                    0 if config.masters > 0 => {
                        let master = rng.gen_usize(0..config.masters);
                        break match rng.gen_range(0..4) {
                            0 => FaultKind::SlaveError { master },
                            1 => FaultKind::DropBeat { master },
                            2 => FaultKind::DuplicateBeat { master },
                            _ => FaultKind::DeviceReset { master },
                        };
                    }
                    1 => {
                        break FaultKind::DelayedGrant {
                            cycles: rng.gen_range_inclusive(1, 16),
                        }
                    }
                    2 if !config.block_sids.is_empty() => {
                        let sid = *rng.choose(&config.block_sids);
                        // A storm pulse: block now, release a little later.
                        // The release rides outside the budget so a storm
                        // can stall but never permanently wedge a SID.
                        let hold = rng.gen_range_inclusive(4, 64);
                        events.push(FaultEvent {
                            at: at + hold,
                            kind: FaultKind::Control(ControlOp::UnblockSid(sid)),
                        });
                        break FaultKind::Control(ControlOp::BlockSid(sid));
                    }
                    3 if !config.cold_devices.is_empty() => {
                        let dev = *rng.choose(&config.cold_devices);
                        break FaultKind::Control(ControlOp::ColdSwitch(dev));
                    }
                    4 if !config.churn_devices.is_empty() => {
                        let dev = *rng.choose(&config.churn_devices);
                        break FaultKind::Control(ControlOp::CamChurn(dev));
                    }
                    5 if config.masters > 0 => {
                        break FaultKind::SlaveError {
                            master: rng.gen_usize(0..config.masters),
                        }
                    }
                    _ => continue,
                }
            };
            events.push(FaultEvent { at, kind });
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, ascending by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FaultPlanConfig {
        FaultPlanConfig {
            horizon: 1000,
            budget: 32,
            masters: 3,
            block_sids: vec![SourceId(0), SourceId(1)],
            cold_devices: vec![DeviceId(7), DeviceId(8)],
            churn_devices: vec![DeviceId(7)],
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultPlan::generate(42, &config());
        let b = FaultPlan::generate(42, &config());
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, &config());
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn budget_bounds_primary_events_and_events_are_sorted() {
        let plan = FaultPlan::generate(7, &config());
        // Every block pulse adds a paired unblock, so the total may exceed
        // the budget, but never by more than the budget itself.
        assert!(plan.len() >= 32 && plan.len() <= 64, "{}", plan.len());
        assert!(plan.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn block_pulses_always_carry_a_release() {
        let plan = FaultPlan::generate(11, &config());
        let blocks = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Control(ControlOp::BlockSid(_))))
            .count();
        let unblocks = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Control(ControlOp::UnblockSid(_))))
            .count();
        assert_eq!(blocks, unblocks);
    }

    #[test]
    fn sparse_configs_fall_back_to_expressible_faults() {
        // No masters, no SIDs, no devices: only delayed grants remain.
        let cfg = FaultPlanConfig {
            horizon: 100,
            budget: 8,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(3, &cfg);
        assert_eq!(plan.len(), 8);
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::DelayedGrant { .. })));
    }

    #[test]
    fn target_master_classifies_data_plane_faults() {
        assert_eq!(FaultKind::SlaveError { master: 2 }.target_master(), Some(2));
        assert_eq!(FaultKind::DelayedGrant { cycles: 3 }.target_master(), None);
        assert_eq!(
            FaultKind::Control(ControlOp::ColdSwitch(DeviceId(1))).target_master(),
            None
        );
    }
}
