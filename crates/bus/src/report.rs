//! Simulation output: per-master and whole-run statistics.

use siopmp::json::Json;

/// Per-master results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MasterReport {
    /// Bursts that reached a terminal status.
    pub bursts_completed: usize,
    /// Bursts that completed with status `Ok` (data really moved).
    pub bursts_ok: usize,
    /// Bursts masked by the packet-masking violation path.
    pub bursts_masked: usize,
    /// Bursts truncated with a bus error.
    pub bursts_bus_error: usize,
    /// Refused bursts whose verdict was a stall (source blocked mid
    /// cold-switch) rather than a protection violation. Subset of
    /// `bursts_masked + bursts_bus_error`.
    pub bursts_stalled: usize,
    /// Refused bursts whose device had no mounted protection state
    /// (SID-missing). Subset of `bursts_masked + bursts_bus_error`.
    pub bursts_sid_missing: usize,
    /// Payload bytes actually transferred (only `Ok` bursts count).
    pub bytes_transferred: u64,
    /// Sum over completed bursts of (completion - issue) cycles.
    pub total_latency_cycles: u64,
    /// Cycle at which the last burst completed.
    pub last_completion_cycle: u64,
    /// Re-issues performed under the master's retry policy (attempts
    /// beyond the first; not counted in `bursts_completed`).
    pub bursts_retried: usize,
    /// Bursts whose retry budget ran out — they then completed with their
    /// last refusal as the terminal status (counted in `bursts_completed`).
    pub retry_exhausted: usize,
    /// Data-plane faults injected into this master's in-flight bursts.
    pub faults_injected: usize,
}

impl MasterReport {
    /// Mean cycles per completed burst; `None` before any completion.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.bursts_completed == 0 {
            None
        } else {
            Some(self.total_latency_cycles as f64 / self.bursts_completed as f64)
        }
    }

    /// Machine-readable form, including the policy-verdict breakdown
    /// (`bursts_stalled`, `bursts_sid_missing`) that the terminal bus
    /// statuses alone do not distinguish.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("bursts_completed", Json::u64(self.bursts_completed as u64)),
            ("bursts_ok", Json::u64(self.bursts_ok as u64)),
            ("bursts_masked", Json::u64(self.bursts_masked as u64)),
            ("bursts_bus_error", Json::u64(self.bursts_bus_error as u64)),
            ("bursts_stalled", Json::u64(self.bursts_stalled as u64)),
            (
                "bursts_sid_missing",
                Json::u64(self.bursts_sid_missing as u64),
            ),
            ("bytes_transferred", Json::u64(self.bytes_transferred)),
            (
                "mean_latency_cycles",
                Json::f64(self.mean_latency().unwrap_or(0.0)),
            ),
            (
                "last_completion_cycle",
                Json::u64(self.last_completion_cycle),
            ),
            ("bursts_retried", Json::u64(self.bursts_retried as u64)),
            ("retry_exhausted", Json::u64(self.retry_exhausted as u64)),
            ("faults_injected", Json::u64(self.faults_injected as u64)),
        ])
    }
}

/// Whole-run results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Cycles simulated until the run stopped.
    pub cycles: u64,
    /// Per-master reports, indexed by insertion order.
    pub masters: Vec<MasterReport>,
    /// Whether every master drained its program before the cycle budget.
    pub completed: bool,
    /// Control-plane faults applied through the policy during the run
    /// (not attributable to a single master).
    pub control_faults: usize,
}

impl SimReport {
    /// Total payload bytes transferred by all masters.
    pub fn total_bytes(&self) -> u64 {
        self.masters.iter().map(|m| m.bytes_transferred).sum()
    }

    /// Aggregate throughput in bytes per cycle over the measured window
    /// (the paper's Figure 12 metric).
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.cycles as f64
    }

    /// Cycle at which the final burst of the whole run completed — the
    /// "latency between the first request and the last response" that
    /// Figure 11 reports.
    pub fn makespan(&self) -> u64 {
        self.masters
            .iter()
            .map(|m| m.last_completion_cycle)
            .max()
            .unwrap_or(0)
    }

    /// Total refused bursts whose verdict was a stall, across masters.
    pub fn total_stalled(&self) -> usize {
        self.masters.iter().map(|m| m.bursts_stalled).sum()
    }

    /// Total refused bursts whose verdict was SID-missing, across masters.
    pub fn total_sid_missing(&self) -> usize {
        self.masters.iter().map(|m| m.bursts_sid_missing).sum()
    }

    /// Total retry re-issues, across masters.
    pub fn total_retried(&self) -> usize {
        self.masters.iter().map(|m| m.bursts_retried).sum()
    }

    /// Total bursts whose retry budget ran out, across masters.
    pub fn total_retry_exhausted(&self) -> usize {
        self.masters.iter().map(|m| m.retry_exhausted).sum()
    }

    /// Total faults injected: per-master data-plane faults plus
    /// control-plane faults.
    pub fn total_faults_injected(&self) -> usize {
        self.masters
            .iter()
            .map(|m| m.faults_injected)
            .sum::<usize>()
            + self.control_faults
    }

    /// Machine-readable form with run aggregates plus per-master reports.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("cycles", Json::u64(self.cycles)),
            ("completed", Json::u64(self.completed as u64)),
            ("total_bytes", Json::u64(self.total_bytes())),
            ("bytes_per_cycle", Json::f64(self.bytes_per_cycle())),
            ("makespan", Json::u64(self.makespan())),
            ("bursts_stalled", Json::u64(self.total_stalled() as u64)),
            (
                "bursts_sid_missing",
                Json::u64(self.total_sid_missing() as u64),
            ),
            ("bursts_retried", Json::u64(self.total_retried() as u64)),
            (
                "retry_exhausted",
                Json::u64(self.total_retry_exhausted() as u64),
            ),
            (
                "faults_injected",
                Json::u64(self.total_faults_injected() as u64),
            ),
            ("control_faults", Json::u64(self.control_faults as u64)),
            (
                "masters",
                Json::array(self.masters.iter().map(MasterReport::to_json)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_requires_completions() {
        let mut r = MasterReport::default();
        assert_eq!(r.mean_latency(), None);
        r.bursts_completed = 2;
        r.total_latency_cycles = 50;
        assert_eq!(r.mean_latency(), Some(25.0));
    }

    #[test]
    fn throughput_handles_zero_cycles() {
        let r = SimReport::default();
        assert_eq!(r.bytes_per_cycle(), 0.0);
        assert_eq!(r.makespan(), 0);
    }

    #[test]
    fn totals_aggregate_masters() {
        let r = SimReport {
            cycles: 100,
            masters: vec![
                MasterReport {
                    bytes_transferred: 300,
                    last_completion_cycle: 90,
                    ..Default::default()
                },
                MasterReport {
                    bytes_transferred: 200,
                    last_completion_cycle: 95,
                    ..Default::default()
                },
            ],
            completed: true,
            control_faults: 0,
        };
        assert_eq!(r.total_bytes(), 500);
        assert_eq!(r.bytes_per_cycle(), 5.0);
        assert_eq!(r.makespan(), 95);
    }

    #[test]
    fn json_serializes_verdict_breakdown() {
        let r = SimReport {
            cycles: 10,
            masters: vec![MasterReport {
                bursts_completed: 5,
                bursts_bus_error: 3,
                bursts_stalled: 3,
                bursts_sid_missing: 2,
                total_latency_cycles: 50,
                ..Default::default()
            }],
            completed: true,
            control_faults: 0,
        };
        assert_eq!(r.total_stalled(), 3);
        assert_eq!(r.total_sid_missing(), 2);
        let text = r.to_json().pretty();
        assert!(text.contains("\"bursts_stalled\": 3"), "{text}");
        assert!(text.contains("\"bursts_sid_missing\": 2"), "{text}");
        assert!(text.contains("\"mean_latency_cycles\": 10"), "{text}");
    }

    #[test]
    fn json_serializes_retry_and_fault_counters() {
        let r = SimReport {
            cycles: 10,
            masters: vec![MasterReport {
                bursts_completed: 4,
                bursts_retried: 6,
                retry_exhausted: 1,
                faults_injected: 3,
                ..Default::default()
            }],
            completed: true,
            control_faults: 2,
        };
        assert_eq!(r.total_retried(), 6);
        assert_eq!(r.total_retry_exhausted(), 1);
        assert_eq!(r.total_faults_injected(), 5);
        let text = r.to_json().pretty();
        assert!(text.contains("\"bursts_retried\": 6"), "{text}");
        assert!(text.contains("\"retry_exhausted\": 1"), "{text}");
        assert!(text.contains("\"faults_injected\": 5"), "{text}");
        assert!(text.contains("\"control_faults\": 2"), "{text}");
    }
}
