//! Deterministic sharded parallel simulation.
//!
//! The paper's headline claim is *scalability* — 1024 entries and tens of
//! concurrent DMA masters — but a single-threaded cycle-driven [`BusSim`]
//! makes large sweeps wall-clock bound by the host. Following the
//! deterministic parallel-discrete-event tradition (gem5's multi-queue
//! event model, FireSim's token-synchronised partitioning), this module
//! partitions masters and slaves into per-domain shards, each advanced by
//! a worker thread in fixed cycle *epochs*, with cross-domain bursts
//! exchanged only at epoch barriers.
//!
//! # Determinism argument
//!
//! Any thread count — including 1 — produces identical traces, telemetry
//! and verdicts, because nothing observable ever depends on thread
//! arrival order:
//!
//! 1. **Shards are disjoint.** Each shard owns its own [`BusSim`] (policy,
//!    masters, fault plan, telemetry registry). Between two barriers a
//!    worker touches exactly one shard, so advancing shards concurrently
//!    is trivially equivalent to advancing them in any serial order.
//! 2. **Exchange is totally ordered.** At a barrier, every shard's egress
//!    (bursts that completed `Ok` against an address outside the shard's
//!    home window) is collected and sorted by `(cycle, domain, master,
//!    seq)` — a key that is itself computed deterministically inside each
//!    shard — never by which worker finished first. Delivery appends to
//!    the destination's bridge master in that order.
//! 3. **Folding is ordered too.** Per-shard telemetry registries are
//!    folded into the merged registry in domain order at each barrier
//!    (see [`Telemetry::absorb_delta`]); `std::thread::scope`'s join
//!    provides the happens-before edge that makes the shard's relaxed
//!    atomic counters visible to the coordinator.
//!
//! Since epoch boundaries, exchange order and fold order are all functions
//! of the simulation state alone, the *entire* run is a function of the
//! inputs — the thread count only chooses how many shards advance at once.
//! With a single domain and no cross traffic, the engine performs exactly
//! the serial engine's step sequence, so its report and trace are
//! byte-identical to [`BusSim::run_to_completion`] (pinned by the
//! golden-trace test).
//!
//! Cross-domain bursts keep their original device IDs, so the destination
//! shard's policy re-checks them under the source identity — a
//! hierarchical double-check: the source sIOPMP authorised the egress, the
//! destination sIOPMP must independently authorise the ingress.

use crate::config::BusConfig;
use crate::faults::FaultPlan;
use crate::master::MasterProgram;
use crate::packet::BurstRequest;
use crate::policy::AccessPolicy;
use crate::report::SimReport;
use crate::sim::BusSim;
use siopmp::telemetry::{Counter, Telemetry, TelemetrySnapshot};

/// Default barrier spacing. Large enough to amortise barrier costs, small
/// enough that cross-domain latency (traffic waits for the next barrier)
/// stays modest relative to typical burst programs.
pub const DEFAULT_EPOCH_CYCLES: u64 = 256;

/// Device IDs `BRIDGE_DEVICE_BASE + domain` identify the per-shard bridge
/// masters that replay cross-domain traffic. Pick domain device IDs below
/// this to avoid collisions.
pub const BRIDGE_DEVICE_BASE: u64 = 0xB21D_6E00;

/// Everything one shard of a [`ParallelSim`] needs: its bus configuration,
/// access policy, masters, fault plan, owned address window and telemetry
/// registry.
///
/// Build the policy's sIOPMP unit against [`DomainSpec::telemetry`] (and
/// let the shard's `BusSim` share it) so the domain's `siopmp.*` and
/// `bus.*` metrics all land in the same per-shard registry — that registry
/// is what gets folded into the merged one at each barrier. Each domain
/// must have its **own** registry; sharing one across domains would
/// double-fold.
pub struct DomainSpec {
    /// Bus timing configuration for this shard.
    pub config: BusConfig,
    /// Access policy for this shard.
    pub policy: Box<dyn AccessPolicy>,
    /// Master programs local to this shard.
    pub masters: Vec<MasterProgram>,
    /// Fault schedule local to this shard (see [`FaultPlan::for_domain`]).
    pub fault_plan: FaultPlan,
    /// `(base, len)` of the addresses this shard owns. `Ok` completions
    /// outside it become cross-domain traffic. `None` keeps everything
    /// local (no egress is ever produced).
    pub home_window: Option<(u64, u64)>,
    /// The shard's private telemetry registry.
    pub telemetry: Telemetry,
}

impl DomainSpec {
    /// The fluent entry point: a spec checking against `policy`, with the
    /// default bus configuration, no masters, no faults, no home window
    /// and a fresh telemetry registry. Refine it with the `with_*`
    /// builders:
    ///
    /// ```
    /// use siopmp_bus::parallel::DomainSpec;
    /// use siopmp_bus::policy::AllowAll;
    /// use siopmp_bus::{BurstKind, BusConfig, MasterProgram};
    ///
    /// let spec = DomainSpec::for_policy(AllowAll)
    ///     .with_config(BusConfig::default().with_issue_gap(2))
    ///     .with_home_window(0x1000, 0x1000)
    ///     .with_master(MasterProgram::uniform(1, BurstKind::Read, 0x1000, 4));
    /// ```
    pub fn for_policy(policy: impl AccessPolicy + 'static) -> Self {
        DomainSpec {
            config: BusConfig::default(),
            policy: Box::new(policy),
            masters: Vec::new(),
            fault_plan: FaultPlan::empty(),
            home_window: None,
            telemetry: Telemetry::new(),
        }
    }

    /// Like [`DomainSpec::for_policy`] for policies that are already boxed
    /// (e.g. chosen at runtime from a `dyn` table).
    pub fn for_boxed_policy(policy: Box<dyn AccessPolicy>) -> Self {
        DomainSpec {
            config: BusConfig::default(),
            policy,
            masters: Vec::new(),
            fault_plan: FaultPlan::empty(),
            home_window: None,
            telemetry: Telemetry::new(),
        }
    }

    /// A spec with no masters, no faults, no home window and a fresh
    /// telemetry registry.
    #[deprecated(note = "use `DomainSpec::for_policy(policy).with_config(config)`")]
    pub fn new(config: BusConfig, policy: Box<dyn AccessPolicy>) -> Self {
        DomainSpec::for_boxed_policy(policy).with_config(config)
    }

    /// Sets the bus timing configuration (builder style).
    pub fn with_config(mut self, config: BusConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds a master program (builder style).
    pub fn with_master(mut self, program: MasterProgram) -> Self {
        self.masters.push(program);
        self
    }

    /// Sets the fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the owned address window (builder style).
    pub fn with_home_window(mut self, base: u64, len: u64) -> Self {
        self.home_window = Some((base, len));
        self
    }

    /// Uses `telemetry` as the shard registry (builder style) — pass the
    /// registry the shard's sIOPMP unit was built against.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// A spec whose shard checks against a **shared** sIOPMP checker
    /// ([`siopmp::SharedSiopmp`]) instead of owning a unit: every shard
    /// built this way — plus any other thread holding a handle — answers
    /// from the same published snapshot, the software analogue of the
    /// paper's single multi-ported MT checker fronting all bus masters.
    ///
    /// The shared unit's `siopmp.*` counters live in the *owner's*
    /// registry, not the shard registries folded at each barrier, so the
    /// merged report carries only `bus.*` metrics for such shards; read
    /// protection counters from the owning unit's telemetry instead.
    pub fn with_shared_checker(config: BusConfig, checker: siopmp::SharedSiopmp) -> Self {
        DomainSpec::for_policy(crate::policy::SharedSiopmpPolicy::new(checker)).with_config(config)
    }
}

struct Shard {
    sim: BusSim,
    window: Option<(u64, u64)>,
    /// Master index of the lazily created bridge. Lazy so that a domain
    /// that never receives cross traffic reports exactly the masters it
    /// was built with (which is what makes a single-domain parallel run
    /// byte-identical to the serial engine).
    bridge: Option<usize>,
    telemetry: Telemetry,
    last_snap: TelemetrySnapshot,
}

/// The sharded parallel engine. See the [module docs](self) for the
/// determinism argument.
pub struct ParallelSim {
    shards: Vec<Shard>,
    epoch_cycles: u64,
    threads: usize,
    merged: Telemetry,
    epochs: Counter,
    cross_domain: Counter,
    unrouted: Counter,
}

impl std::fmt::Debug for ParallelSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSim")
            .field("domains", &self.shards.len())
            .field("threads", &self.threads)
            .field("epoch_cycles", &self.epoch_cycles)
            .finish()
    }
}

impl ParallelSim {
    /// An engine advancing shards in `epoch_cycles`-cycle epochs using
    /// `threads` worker threads, with a private merged registry. Both
    /// parameters affect wall clock only, never results: `threads` is
    /// clamped to `[1, domains]` and the epoch length to at least 1.
    pub fn new(epoch_cycles: u64, threads: usize) -> Self {
        Self::build(epoch_cycles, threads, None)
    }

    /// Like [`ParallelSim::new`], but folding the merged metrics into the
    /// caller's `telemetry` registry.
    pub fn build(
        epoch_cycles: u64,
        threads: usize,
        telemetry: impl Into<Option<Telemetry>>,
    ) -> Self {
        let merged = telemetry.into().unwrap_or_else(Telemetry::new);
        ParallelSim {
            shards: Vec::new(),
            epoch_cycles: epoch_cycles.max(1),
            threads: threads.max(1),
            epochs: merged.counter("parallel.epochs"),
            cross_domain: merged.counter("parallel.cross_domain_bursts"),
            unrouted: merged.counter("parallel.unrouted_egress"),
            merged,
        }
    }

    /// Adds a shard built from `spec` and returns its domain index.
    /// Domains are ordered by insertion; the index is the `domain` field
    /// of the cross-domain exchange key.
    pub fn add_domain(&mut self, spec: DomainSpec) -> usize {
        let mut sim = BusSim::build(spec.config, spec.policy, spec.telemetry.clone());
        if let Some((base, len)) = spec.home_window {
            sim.set_home_window(base, len);
        }
        sim.set_fault_plan(spec.fault_plan);
        for program in spec.masters {
            sim.add_master(program);
        }
        self.shards.push(Shard {
            sim,
            window: spec.home_window,
            bridge: None,
            telemetry: spec.telemetry,
            last_snap: TelemetrySnapshot::default(),
        });
        self.shards.len() - 1
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.shards.len()
    }

    /// The shard simulator for `domain` (e.g. to read its trace).
    pub fn domain(&self, domain: usize) -> &BusSim {
        &self.shards[domain].sim
    }

    /// Mutable access to the shard simulator for `domain`.
    pub fn domain_mut(&mut self, domain: usize) -> &mut BusSim {
        &mut self.shards[domain].sim
    }

    /// The merged telemetry registry: per-shard `siopmp.*`/`bus.*` metrics
    /// folded at every barrier, plus the engine's own `parallel.*`
    /// counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.merged
    }

    /// Enables event tracing on every shard.
    pub fn enable_trace(&mut self, capacity: usize) {
        for shard in &mut self.shards {
            shard.sim.enable_trace(capacity);
        }
    }

    /// Runs every shard to completion (or `max_cycles`, whichever is
    /// first), exchanging cross-domain bursts at epoch barriers. The
    /// merged report concatenates per-shard master reports in domain
    /// order (bridge masters, where created, appear after their domain's
    /// own masters); `cycles` is the maximum over shards.
    pub fn run(&mut self, max_cycles: u64) -> SimReport {
        let epoch = self.epoch_cycles;
        let mut target = 0u64;
        loop {
            target = (target + epoch).min(max_cycles);
            self.advance_all(target);
            self.fold_telemetry();
            let moved = self.exchange(target);
            self.epochs.inc();
            let all_done = self.shards.iter().all(|s| s.sim.all_done());
            if moved == 0 && (all_done || target >= max_cycles) {
                break;
            }
        }
        // Barrier-time delivery may have stepped shards (catching them up
        // to the barrier); fold whatever that produced.
        self.fold_telemetry();
        self.report()
    }

    /// The merged report as of the current state (what [`ParallelSim::run`]
    /// returns).
    pub fn report(&self) -> SimReport {
        let mut merged = SimReport {
            completed: true,
            ..SimReport::default()
        };
        for shard in &self.shards {
            let r = shard.sim.report();
            merged.cycles = merged.cycles.max(r.cycles);
            merged.completed &= r.completed;
            merged.control_faults += r.control_faults;
            merged.masters.extend(r.masters);
        }
        merged
    }

    /// Advances every shard to `target` cycles (or until drained),
    /// partitioned across worker threads. The partition is irrelevant to
    /// results — shards are disjoint — so only the clamped thread count's
    /// wall clock differs.
    fn advance_all(&mut self, target: u64) {
        fn advance(shard: &mut Shard, target: u64) {
            while shard.sim.cycle() < target && !shard.sim.all_done() {
                shard.sim.step();
            }
        }
        let threads = self.threads.min(self.shards.len()).max(1);
        if threads == 1 {
            for shard in &mut self.shards {
                advance(shard, target);
            }
        } else {
            let chunk = self.shards.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for shards in self.shards.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for shard in shards {
                            advance(shard, target);
                        }
                    });
                }
            });
        }
    }

    /// Folds each shard's telemetry delta since the previous barrier into
    /// the merged registry, in domain order.
    fn fold_telemetry(&mut self) {
        for shard in &mut self.shards {
            let current = shard.telemetry.snapshot();
            self.merged.absorb_delta(&shard.last_snap, &current);
            shard.last_snap = current;
        }
    }

    /// Collects every shard's egress, orders it by `(cycle, domain,
    /// master, seq)`, and delivers each burst to the domain whose home
    /// window contains its address (via that domain's bridge master,
    /// created on first delivery). Bursts no window claims are dropped and
    /// counted in `parallel.unrouted_egress`. Returns the number of
    /// bursts delivered.
    fn exchange(&mut self, target: u64) -> usize {
        let mut outbound: Vec<(u64, usize, usize, u64, BurstRequest)> = Vec::new();
        for (domain, shard) in self.shards.iter_mut().enumerate() {
            for e in shard.sim.take_egress() {
                outbound.push((e.cycle, domain, e.master, e.seq, e.burst));
            }
        }
        if outbound.is_empty() {
            return 0;
        }
        // The deterministic exchange order — never thread arrival order.
        outbound.sort_by_key(|&(cycle, domain, master, seq, _)| (cycle, domain, master, seq));
        let windows: Vec<Option<(u64, u64)>> = self.shards.iter().map(|s| s.window).collect();
        let mut per_dest: Vec<Vec<BurstRequest>> = vec![Vec::new(); self.shards.len()];
        let mut moved = 0;
        for (_cycle, source, _master, _seq, burst) in outbound {
            let dest = windows.iter().enumerate().find(|(domain, window)| {
                *domain != source
                    && window.is_some_and(|(base, len)| {
                        burst.addr >= base && burst.addr < base.saturating_add(len)
                    })
            });
            match dest {
                Some((domain, _)) => {
                    per_dest[domain].push(burst);
                    moved += 1;
                    self.cross_domain.inc();
                }
                None => self.unrouted.inc(),
            }
        }
        for (domain, bursts) in per_dest.into_iter().enumerate() {
            if bursts.is_empty() {
                continue;
            }
            let shard = &mut self.shards[domain];
            // A drained shard may have stopped short of the barrier; catch
            // it up (idle cycles, applying any pending fault events) so the
            // delivery lands at the barrier cycle on every thread count.
            while shard.sim.cycle() < target {
                shard.sim.step();
            }
            let bridge = *shard.bridge.get_or_insert_with(|| {
                shard.sim.add_master(
                    MasterProgram::empty(BRIDGE_DEVICE_BASE + domain as u64).with_outstanding(4),
                )
            });
            shard.sim.extend_master_program(bridge, bursts);
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::BurstKind;
    use crate::policy::{AllowAll, DenyRange};

    fn two_domain_sim(threads: usize) -> ParallelSim {
        let mut psim = ParallelSim::new(64, threads);
        // Domain 0 owns [0x1000, 0x2000); its master also writes into
        // domain 1's window.
        psim.add_domain(
            DomainSpec::for_policy(AllowAll)
                .with_home_window(0x1000, 0x1000)
                .with_master(
                    MasterProgram::streaming(1, BurstKind::Read, 0x1000, 64, 4)
                        .chain(MasterProgram::streaming(1, BurstKind::Write, 0x2000, 64, 2)),
                ),
        );
        psim.add_domain(
            DomainSpec::for_policy(AllowAll)
                .with_home_window(0x2000, 0x1000)
                .with_master(MasterProgram::streaming(2, BurstKind::Read, 0x2000, 64, 4)),
        );
        psim
    }

    #[test]
    fn single_domain_matches_serial_engine() {
        let mut serial = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        serial.add_master(MasterProgram::streaming(1, BurstKind::Read, 0x0, 64, 16));
        let want = serial.run_to_completion(100_000);

        let mut psim = ParallelSim::new(32, 4);
        psim.add_domain(
            DomainSpec::for_policy(AllowAll).with_master(MasterProgram::streaming(
                1,
                BurstKind::Read,
                0x0,
                64,
                16,
            )),
        );
        let got = psim.run(100_000);
        assert_eq!(got, want);
        assert_eq!(
            got.to_json().pretty(),
            want.to_json().pretty(),
            "single-domain parallel run must be byte-identical to serial"
        );
    }

    #[test]
    fn cross_domain_bursts_reach_the_owning_shard() {
        let mut psim = two_domain_sim(2);
        let report = psim.run(100_000);
        assert!(report.completed);
        // Domain 1 grew a bridge master that replayed the 2 cross writes.
        assert_eq!(report.masters.len(), 3);
        let bridge = &report.masters[2];
        assert_eq!(bridge.bursts_completed, 2);
        assert_eq!(
            psim.telemetry()
                .counter("parallel.cross_domain_bursts")
                .get(),
            2
        );
        assert_eq!(
            psim.telemetry().counter("parallel.unrouted_egress").get(),
            0
        );
    }

    #[test]
    fn thread_counts_agree_byte_for_byte() {
        let baseline = {
            let mut psim = two_domain_sim(1);
            let report = psim.run(100_000);
            (
                report.to_json().pretty(),
                psim.telemetry().snapshot().to_json().pretty(),
            )
        };
        for threads in [2, 4] {
            let mut psim = two_domain_sim(threads);
            let report = psim.run(100_000);
            assert_eq!(report.to_json().pretty(), baseline.0, "threads={threads}");
            assert_eq!(
                psim.telemetry().snapshot().to_json().pretty(),
                baseline.1,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn unrouted_egress_is_dropped_and_counted() {
        let mut psim = ParallelSim::new(64, 1);
        psim.add_domain(
            DomainSpec::for_policy(AllowAll)
                .with_home_window(0x1000, 0x1000)
                .with_master(MasterProgram::uniform(1, BurstKind::Write, 0xdead_0000, 3)),
        );
        let report = psim.run(100_000);
        assert!(report.completed);
        assert_eq!(
            psim.telemetry().counter("parallel.unrouted_egress").get(),
            3
        );
        assert_eq!(
            psim.telemetry()
                .counter("parallel.cross_domain_bursts")
                .get(),
            0
        );
    }

    #[test]
    fn denied_bursts_never_cross_domains() {
        let mut psim = ParallelSim::new(64, 1);
        // Domain 0 denies the foreign range, so nothing completes Ok
        // against it and no egress is produced.
        psim.add_domain(
            DomainSpec::for_policy(DenyRange {
                base: 0x2000,
                len: 0x1000,
            })
            .with_home_window(0x1000, 0x1000)
            .with_master(MasterProgram::uniform(1, BurstKind::Write, 0x2000, 2)),
        );
        psim.add_domain(DomainSpec::for_policy(AllowAll).with_home_window(0x2000, 0x1000));
        let report = psim.run(100_000);
        assert!(report.completed);
        assert_eq!(report.masters[0].bursts_bus_error, 2);
        assert_eq!(
            psim.telemetry()
                .counter("parallel.cross_domain_bursts")
                .get(),
            0
        );
        assert_eq!(report.masters.len(), 1, "no bridge was ever created");
    }

    #[test]
    fn cycle_budget_bounds_every_shard() {
        let mut psim = ParallelSim::new(64, 2);
        for d in 0..2u64 {
            psim.add_domain(
                DomainSpec::for_policy(AllowAll).with_master(MasterProgram::uniform(
                    d + 1,
                    BurstKind::Read,
                    0x0,
                    1_000_000,
                )),
            );
        }
        let report = psim.run(200);
        assert!(!report.completed);
        assert_eq!(report.cycles, 200);
    }

    #[test]
    fn shards_share_one_checker_deterministically() {
        use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
        use siopmp::ids::{DeviceId as Dev, MdIndex};

        // Two shards front the same published snapshot through shared
        // handles: device 1 is authorised, device 9 is unknown (denied).
        // Results and protection counters must not depend on how the
        // shards are scheduled across worker threads.
        let run = |threads: usize| {
            let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
            let sid = unit.map_hot_device(Dev(1)).unwrap();
            unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
            unit.install_entry(
                MdIndex(0),
                IopmpEntry::new(
                    AddressRange::new(0x1000, 0x1000).unwrap(),
                    Permissions::rw(),
                ),
            )
            .unwrap();
            let mut psim = ParallelSim::new(64, threads);
            psim.add_domain(
                DomainSpec::with_shared_checker(BusConfig::default(), unit.share())
                    .with_master(MasterProgram::streaming(1, BurstKind::Read, 0x1000, 64, 4)),
            );
            psim.add_domain(
                DomainSpec::with_shared_checker(BusConfig::default(), unit.share())
                    .with_master(MasterProgram::streaming(9, BurstKind::Write, 0x1000, 64, 2)),
            );
            let report = psim.run(100_000);
            assert!(report.completed);
            (report.to_json().pretty(), unit.stats())
        };

        let (baseline_report, baseline_stats) = run(1);
        assert!(baseline_stats.checks > 0);
        assert!(baseline_stats.allowed > 0);
        assert!(baseline_stats.violations > 0, "device 9 must be denied");
        for threads in [2, 4] {
            let (report, stats) = run(threads);
            assert_eq!(report, baseline_report, "threads={threads}");
            assert_eq!(stats, baseline_stats, "threads={threads}");
        }
    }
}
