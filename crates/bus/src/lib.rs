//! # siopmp-bus — cycle-level interconnect and DMA simulator
//!
//! A TileLink-flavoured transaction simulator used to reproduce the
//! microbenchmarks of the sIOPMP paper (ASPLOS 2024, Figures 11 and 12):
//! DMA bursts of 8 beats × 8 bytes flow from master devices through an
//! IOPMP checker onto a shared request channel (A), reach memory, and
//! return over a shared response channel (D).
//!
//! The simulator is cycle-driven and models the effects the paper measures:
//!
//! * shared-channel arbitration (one beat per cycle per channel);
//! * checker pipeline latency (`extra_cycles` from
//!   [`siopmp::checker::CheckerKind`](../siopmp/checker/enum.CheckerKind.html),
//!   passed in via [`BusConfig::checker_extra_cycles`]);
//! * the packet-masking response interposition (+1 cycle on reads) versus
//!   bus-error early truncation of violating bursts;
//! * outstanding-transaction limits per master, which determine whether the
//!   pipeline latency is exposed (latency benchmark) or hidden (bandwidth
//!   benchmark).
//!
//! ## Example: one master, one legal burst
//!
//! ```
//! use siopmp_bus::{BusConfig, BusSim, MasterProgram, BurstKind};
//! use siopmp_bus::policy::AllowAll;
//!
//! let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
//! sim.add_master(MasterProgram::uniform(0, BurstKind::Read, 0x1000, 1));
//! let report = sim.run_to_completion(10_000);
//! assert_eq!(report.masters[0].bursts_completed, 1);
//! ```

pub mod config;
pub mod faults;
pub mod functional;
pub mod master;
pub mod packet;
pub mod parallel;
pub mod policy;
pub mod report;
pub mod sim;
pub mod trace;

pub use config::BusConfig;
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
pub use master::{MasterProgram, RetryPolicy};
pub use packet::{BurstKind, BurstRequest, BurstStatus};
pub use parallel::{DomainSpec, ParallelSim};
pub use policy::{ControlOp, PolicyVerdict, SharedSiopmpPolicy, SiopmpPolicy};
pub use report::{MasterReport, SimReport};
pub use sim::{BusSim, DecisionRecord, EgressRecord};
