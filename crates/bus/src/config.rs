//! Static parameters of the simulated interconnect.

/// Timing and geometry parameters of the bus, memory, and checker shim.
///
/// Defaults reproduce the paper's microbenchmark platform: 8 beats per
/// burst, 8 bytes per beat, a checker that decides combinationally
/// (`checker_extra_cycles = 0`), bus-error violation handling, and memory
/// latencies calibrated so a non-outstanding master measures ~24 cycles per
/// read burst and ~17 per write burst (Figure 11's baseline of 1510/1081
/// cycles for 64 bursts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusConfig {
    /// Payload bytes carried per beat (channel width).
    pub bytes_per_beat: u64,
    /// Beats per burst.
    pub beats_per_burst: u32,
    /// Cycles between a read request's arrival at memory and its first
    /// response beat becoming ready.
    pub mem_read_latency: u32,
    /// Cycles between a write burst's last data beat arriving at memory and
    /// the acknowledgement beat becoming ready.
    pub mem_write_latency: u32,
    /// Pipeline cycles the IOPMP checker adds to each request
    /// (`CheckerKind::extra_cycles()`).
    pub checker_extra_cycles: u32,
    /// Extra response-path cycles for packet masking on reads
    /// (`ViolationMode::legal_path_overhead_cycles`).
    pub masking_read_extra: u32,
    /// Whether violating bursts are truncated early by a bus-error node
    /// (`true`) or run to completion with masked lanes (`false`).
    pub bus_error_truncates: bool,
    /// Idle cycles a master inserts between a completed burst and issuing
    /// the next one (bus turnaround).
    pub issue_gap: u32,
    /// Extra request cycles for a *centralized* checker placement: all
    /// masters arbitrate into one shared checker instance instead of each
    /// having its own in front of the front bus (Table 2's placement
    /// axis). Per-device placement = 0.
    pub placement_arbitration_cycles: u32,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            bytes_per_beat: 8,
            beats_per_burst: 8,
            mem_read_latency: 14,
            mem_write_latency: 8,
            checker_extra_cycles: 0,
            masking_read_extra: 0,
            bus_error_truncates: true,
            issue_gap: 1,
            placement_arbitration_cycles: 0,
        }
    }
}

impl BusConfig {
    /// Bytes moved by one full burst.
    pub fn burst_bytes(&self) -> u64 {
        self.bytes_per_beat * self.beats_per_burst as u64
    }

    /// Sets the payload bytes per beat (builder style).
    pub fn with_bytes_per_beat(mut self, bytes: u64) -> Self {
        self.bytes_per_beat = bytes;
        self
    }

    /// Sets the beats per burst (builder style).
    pub fn with_beats_per_burst(mut self, beats: u32) -> Self {
        self.beats_per_burst = beats;
        self
    }

    /// Sets the memory read latency in cycles (builder style).
    pub fn with_mem_read_latency(mut self, cycles: u32) -> Self {
        self.mem_read_latency = cycles;
        self
    }

    /// Sets the memory write latency in cycles (builder style).
    pub fn with_mem_write_latency(mut self, cycles: u32) -> Self {
        self.mem_write_latency = cycles;
        self
    }

    /// Sets the master issue gap in cycles (builder style).
    pub fn with_issue_gap(mut self, cycles: u32) -> Self {
        self.issue_gap = cycles;
        self
    }

    /// Applies a checker micro-architecture and violation mode from the
    /// core crate, returning the updated configuration (builder style).
    pub fn with_checker(
        mut self,
        checker: siopmp::checker::CheckerKind,
        mode: siopmp::violation::ViolationMode,
    ) -> Self {
        self.checker_extra_cycles = checker.extra_cycles();
        self.masking_read_extra =
            mode.legal_path_overhead_cycles(siopmp::request::AccessKind::Read);
        self.bus_error_truncates = mode.truncates_burst();
        self
    }

    /// Applies a checker placement: per-device checkers add no arbitration
    /// latency; a centralized checker adds one cycle of shared-port
    /// arbitration per request.
    pub fn with_placement(mut self, placement: siopmp::config::Placement) -> Self {
        self.placement_arbitration_cycles = match placement {
            siopmp::config::Placement::PerDevice => 0,
            siopmp::config::Placement::Centralized => 1,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::checker::CheckerKind;
    use siopmp::violation::ViolationMode;

    #[test]
    fn default_burst_is_64_bytes() {
        assert_eq!(BusConfig::default().burst_bytes(), 64);
    }

    #[test]
    fn with_checker_wires_core_parameters() {
        let cfg = BusConfig::default().with_checker(
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
            ViolationMode::PacketMasking,
        );
        assert_eq!(cfg.checker_extra_cycles, 1);
        assert_eq!(cfg.masking_read_extra, 1);
        assert!(!cfg.bus_error_truncates);

        let cfg = BusConfig::default().with_checker(CheckerKind::Linear, ViolationMode::BusError);
        assert_eq!(cfg.checker_extra_cycles, 0);
        assert_eq!(cfg.masking_read_extra, 0);
        assert!(cfg.bus_error_truncates);
    }
}
