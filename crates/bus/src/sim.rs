//! The cycle-driven bus simulation engine.
//!
//! Topology (Figure 6 of the paper): each master's bursts pass through the
//! IOPMP checker shim, win arbitration on the shared request channel (A),
//! reach memory, and return over the shared response channel (D). Both
//! channels carry one beat per cycle and are **burst-atomic**: once a burst
//! starts transferring, it keeps its channel until the last beat (as
//! TileLink/AXI slaves deliver bursts contiguously).
//!
//! Timing rules:
//!
//! * a read burst sends 1 request beat and receives `beats_per_burst`
//!   response beats after `mem_read_latency` (+1 per checker pipeline
//!   stage, +1 for packet-masking response interposition);
//! * a write burst sends `beats_per_burst` request beats and receives one
//!   acknowledgement beat after `mem_write_latency`. Writes are **early
//!   validated**: the address beat is checked while the data beats are
//!   still streaming, so checker pipeline latency is hidden behind the
//!   burst itself (§6.2: "a write request can be early validated");
//! * a denied burst under bus-error handling is truncated: the dummy node
//!   answers with a single error beat one cycle after the check resolves
//!   and the master cancels its remaining request beats;
//! * a denied burst under packet masking runs to completion with masked
//!   strobes / cleared data — same timing as a legal burst.

use crate::config::BusConfig;
use crate::master::MasterProgram;
use crate::packet::{BurstKind, BurstStatus};
use crate::policy::{AccessPolicy, PolicyVerdict};
use crate::report::{MasterReport, SimReport};
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};
use siopmp::telemetry::{Counter, Histogram, Telemetry};

/// Pre-resolved handles for the `bus.*` metrics, mirroring the aggregate
/// side of [`SimReport`] into the shared registry (the per-master breakdown
/// stays in [`MasterReport`]; these are the fleet-wide view).
#[derive(Debug, Clone)]
struct BusCounters {
    bursts_issued: Counter,
    bursts_completed: Counter,
    bursts_ok: Counter,
    bursts_masked: Counter,
    bursts_bus_error: Counter,
    bursts_stalled: Counter,
    bursts_sid_missing: Counter,
    bytes_transferred: Counter,
}

impl BusCounters {
    fn attach(t: &Telemetry) -> Self {
        BusCounters {
            bursts_issued: t.counter("bus.bursts_issued"),
            bursts_completed: t.counter("bus.bursts_completed"),
            bursts_ok: t.counter("bus.bursts_ok"),
            bursts_masked: t.counter("bus.bursts_masked"),
            bursts_bus_error: t.counter("bus.bursts_bus_error"),
            bursts_stalled: t.counter("bus.bursts_stalled"),
            bursts_sid_missing: t.counter("bus.bursts_sid_missing"),
            bytes_transferred: t.counter("bus.bytes_transferred"),
        }
    }
}

#[derive(Debug)]
struct Flight {
    master: usize,
    kind: BurstKind,
    verdict: PolicyVerdict,
    issue_cycle: u64,
    req_beats_sent: u32,
    req_beats_total: u32,
    arrival_at_mem: Option<u64>,
    resp_ready_at: Option<u64>,
    resp_beats_recv: u32,
    resp_beats_total: u32,
    cancelled: bool,
    done: Option<BurstStatus>,
}

#[derive(Debug)]
struct MasterState {
    program: MasterProgram,
    next_burst: usize,
    in_flight: usize,
    next_issue_ok: u64,
    report: MasterReport,
}

/// The simulator: masters, channels, memory, and the checker shim.
///
/// See the [crate-level docs](crate) for an end-to-end example.
pub struct BusSim {
    config: BusConfig,
    policy: Box<dyn AccessPolicy>,
    masters: Vec<MasterState>,
    flights: Vec<Flight>,
    a_owner: Option<usize>,
    d_owner: Option<usize>,
    rr_a: usize,
    rr_d: usize,
    cycle: u64,
    trace: Option<TraceBuffer>,
    telemetry: Telemetry,
    counters: BusCounters,
    burst_latency: Histogram,
}

impl std::fmt::Debug for BusSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusSim")
            .field("cycle", &self.cycle)
            .field("masters", &self.masters.len())
            .field("flights", &self.flights.len())
            .finish()
    }
}

impl BusSim {
    /// Creates a simulator over `config` with the given access policy,
    /// registering its `bus.*` metrics (aggregate burst counters and the
    /// `bus.burst_latency_cycles` histogram) in `telemetry` — pass `None`
    /// for a private registry.
    pub fn build(
        config: BusConfig,
        policy: Box<dyn AccessPolicy>,
        telemetry: impl Into<Option<Telemetry>>,
    ) -> Self {
        let telemetry = telemetry.into().unwrap_or_else(Telemetry::new);
        BusSim {
            config,
            policy,
            masters: Vec::new(),
            flights: Vec::new(),
            a_owner: None,
            d_owner: None,
            rr_a: 0,
            rr_d: 0,
            cycle: 0,
            trace: None,
            counters: BusCounters::attach(&telemetry),
            burst_latency: telemetry.histogram("bus.burst_latency_cycles"),
            telemetry,
        }
    }

    /// Creates a simulator with a private telemetry registry.
    #[deprecated(note = "use `BusSim::build(config, policy, None)`")]
    pub fn new(config: BusConfig, policy: Box<dyn AccessPolicy>) -> Self {
        Self::build(config, policy, None)
    }

    /// Creates a simulator sharing the caller's `telemetry` registry.
    #[deprecated(note = "use `BusSim::build(config, policy, telemetry)`")]
    pub fn with_telemetry(
        config: BusConfig,
        policy: Box<dyn AccessPolicy>,
        telemetry: Telemetry,
    ) -> Self {
        Self::build(config, policy, telemetry)
    }

    /// The simulator's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enables event tracing with a buffer of `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, when tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Adds a master and returns its index.
    pub fn add_master(&mut self, program: MasterProgram) -> usize {
        self.masters.push(MasterState {
            program,
            next_burst: 0,
            in_flight: 0,
            next_issue_ok: 0,
            report: MasterReport::default(),
        });
        self.masters.len() - 1
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn all_done(&self) -> bool {
        self.masters
            .iter()
            .all(|m| m.next_burst == m.program.bursts.len() && m.in_flight == 0)
    }

    /// Runs until every master drains its program or `max_cycles` elapse.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> SimReport {
        while !self.all_done() && self.cycle < max_cycles {
            self.step();
        }
        SimReport {
            cycles: self.cycle,
            masters: self.masters.iter().map(|m| m.report.clone()).collect(),
            completed: self.all_done(),
        }
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let t = self.cycle;
        self.issue_bursts(t);
        self.channel_a_beat(t);
        self.memory_schedule(t);
        self.channel_d_beat(t);
        self.cycle += 1;
    }

    /// Issue new bursts from masters with spare outstanding slots.
    fn issue_bursts(&mut self, t: u64) {
        for (mi, m) in self.masters.iter_mut().enumerate() {
            // One issue per master per cycle (the request queue accepts a
            // single burst header per cycle).
            if m.in_flight < m.program.outstanding
                && m.next_burst < m.program.bursts.len()
                && t >= m.next_issue_ok
            {
                let burst = m.program.bursts[m.next_burst];
                m.next_burst += 1;
                m.in_flight += 1;
                let verdict = self.policy.decide(
                    burst.device,
                    burst.kind.access(),
                    burst.addr,
                    self.config.burst_bytes(),
                );
                let (req_total, resp_total) = match burst.kind {
                    BurstKind::Read => (1, self.config.beats_per_burst),
                    BurstKind::Write => (self.config.beats_per_burst, 1),
                };
                if let Some(trace) = &mut self.trace {
                    trace.record(TraceEvent {
                        cycle: t,
                        master: mi,
                        burst_kind: burst.kind,
                        kind: TraceKind::Issued,
                    });
                }
                self.counters.bursts_issued.inc();
                self.flights.push(Flight {
                    master: mi,
                    kind: burst.kind,
                    verdict,
                    issue_cycle: t,
                    req_beats_sent: 0,
                    req_beats_total: req_total,
                    arrival_at_mem: None,
                    resp_ready_at: None,
                    resp_beats_recv: 0,
                    resp_beats_total: resp_total,
                    cancelled: false,
                    done: None,
                });
            }
        }
    }

    /// One beat of request-channel arbitration (burst-atomic).
    fn channel_a_beat(&mut self, t: u64) {
        let wants_a =
            |f: &Flight| f.done.is_none() && !f.cancelled && f.req_beats_sent < f.req_beats_total;
        // Release or keep the current owner.
        if let Some(idx) = self.a_owner {
            if !wants_a(&self.flights[idx]) {
                self.a_owner = None;
            }
        }
        if self.a_owner.is_none() {
            let n = self.flights.len();
            for off in 0..n {
                let idx = (self.rr_a + off) % n.max(1);
                if idx < n && wants_a(&self.flights[idx]) {
                    self.a_owner = Some(idx);
                    self.rr_a = (idx + 1) % n.max(1);
                    break;
                }
            }
        }
        let Some(idx) = self.a_owner else { return };
        let k = self.config.checker_extra_cycles;
        let truncates = self.config.bus_error_truncates;
        let f = &mut self.flights[idx];
        let first_beat = f.req_beats_sent == 0;
        f.req_beats_sent += 1;

        if first_beat && !f.verdict.is_allowed() && truncates {
            // Bus-error handling: the dummy node answers as soon as the
            // check resolves; the master cancels the rest of the burst.
            f.cancelled = true;
            f.resp_ready_at = Some(t + u64::from(k) + 1);
            f.resp_beats_total = 1;
            self.a_owner = None;
            return;
        }
        if f.req_beats_sent == f.req_beats_total {
            // Reads pay the checker pipeline on the single address beat;
            // writes are early-validated while their data beats stream, so
            // only the residue of the pipeline that exceeds the burst
            // length is exposed.
            let exposed = match f.kind {
                BurstKind::Read => u64::from(k),
                BurstKind::Write => u64::from(k.saturating_sub(f.req_beats_total - 1)),
            };
            let arb = u64::from(self.config.placement_arbitration_cycles);
            f.arrival_at_mem = Some(t + exposed + arb);
            let master = f.master;
            let kind = f.kind;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    cycle: t + exposed + arb,
                    master,
                    burst_kind: kind,
                    kind: TraceKind::ArrivedAtMemory,
                });
            }
            self.a_owner = None;
        }
    }

    /// Memory controller: turn fully-arrived requests into scheduled
    /// responses.
    fn memory_schedule(&mut self, t: u64) {
        for f in &mut self.flights {
            if f.done.is_some() || f.resp_ready_at.is_some() {
                continue;
            }
            let Some(arrival) = f.arrival_at_mem else {
                continue;
            };
            if t < arrival {
                continue;
            }
            let latency = match f.kind {
                BurstKind::Read => self.config.mem_read_latency + self.config.masking_read_extra,
                BurstKind::Write => self.config.mem_write_latency,
            };
            f.resp_ready_at = Some(arrival + u64::from(latency));
        }
    }

    /// One beat of response-channel arbitration (burst-atomic).
    fn channel_d_beat(&mut self, t: u64) {
        let ready_d = |f: &Flight| {
            f.done.is_none()
                && f.resp_ready_at
                    .is_some_and(|r| t >= r + u64::from(f.resp_beats_recv))
                && f.resp_beats_recv < f.resp_beats_total
        };
        if let Some(idx) = self.d_owner {
            let f = &self.flights[idx];
            if f.done.is_some() || f.resp_beats_recv >= f.resp_beats_total {
                self.d_owner = None;
            }
        }
        if self.d_owner.is_none() {
            let n = self.flights.len();
            for off in 0..n {
                let idx = (self.rr_d + off) % n.max(1);
                if idx < n && ready_d(&self.flights[idx]) {
                    self.d_owner = Some(idx);
                    self.rr_d = (idx + 1) % n.max(1);
                    break;
                }
            }
        }
        let Some(idx) = self.d_owner else { return };
        if !ready_d(&self.flights[idx]) {
            return; // owner's next beat not ready yet (streams are paced)
        }
        let issue_gap = u64::from(self.config.issue_gap);
        let burst_bytes = self.config.burst_bytes();
        let f = &mut self.flights[idx];
        f.resp_beats_recv += 1;
        if f.resp_beats_recv == f.resp_beats_total {
            let status = if f.cancelled {
                BurstStatus::BusError
            } else if f.verdict.is_allowed() {
                BurstStatus::Ok
            } else {
                BurstStatus::Masked
            };
            let verdict = f.verdict;
            f.done = Some(status);
            self.d_owner = None;
            let master = f.master;
            let burst_kind = f.kind;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    cycle: t,
                    master,
                    burst_kind,
                    kind: TraceKind::Completed(status),
                });
            }
            let latency = t - f.issue_cycle + 1;
            self.counters.bursts_completed.inc();
            self.burst_latency.record(latency);
            match status {
                BurstStatus::Ok => {
                    self.counters.bursts_ok.inc();
                    self.counters.bytes_transferred.add(burst_bytes);
                }
                BurstStatus::Masked => self.counters.bursts_masked.inc(),
                BurstStatus::BusError => self.counters.bursts_bus_error.inc(),
            }
            match verdict {
                PolicyVerdict::Stalled => self.counters.bursts_stalled.inc(),
                PolicyVerdict::SidMissing => self.counters.bursts_sid_missing.inc(),
                _ => {}
            }
            let m = &mut self.masters[master];
            m.in_flight -= 1;
            m.next_issue_ok = t + 1 + issue_gap;
            let r = &mut m.report;
            r.bursts_completed += 1;
            r.total_latency_cycles += latency;
            r.last_completion_cycle = t;
            match status {
                BurstStatus::Ok => {
                    r.bursts_ok += 1;
                    r.bytes_transferred += burst_bytes;
                }
                BurstStatus::Masked => r.bursts_masked += 1,
                BurstStatus::BusError => r.bursts_bus_error += 1,
            }
            match verdict {
                PolicyVerdict::Stalled => r.bursts_stalled += 1,
                PolicyVerdict::SidMissing => r.bursts_sid_missing += 1,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AllowAll, DenyRange};

    fn run(config: BusConfig, programs: Vec<MasterProgram>) -> SimReport {
        let mut sim = BusSim::build(config, Box::new(AllowAll), None);
        for p in programs {
            sim.add_master(p);
        }
        sim.run_to_completion(1_000_000)
    }

    #[test]
    fn single_read_burst_latency_matches_model() {
        // issue @0, A beat @0, resp ready @14, beats 14..21, complete @21.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 1)],
        );
        assert!(r.completed);
        assert_eq!(r.masters[0].bursts_completed, 1);
        assert_eq!(r.masters[0].mean_latency(), Some(22.0));
    }

    #[test]
    fn single_write_burst_latency_matches_model() {
        // beats @0..7, ack ready @15, complete @15 -> latency 16.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 1)],
        );
        assert_eq!(r.masters[0].mean_latency(), Some(16.0));
    }

    #[test]
    fn sixty_four_read_bursts_near_paper_baseline() {
        // Paper Figure 11: 64 consecutive read bursts, no pipeline: 1510
        // cycles. Our calibrated model: ~1470.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        );
        let makespan = r.makespan();
        assert!((1400..=1600).contains(&makespan), "makespan {makespan}");
    }

    #[test]
    fn sixty_four_write_bursts_near_paper_baseline() {
        // Paper: 1081 cycles; model: ~1086.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 64)],
        );
        let makespan = r.makespan();
        assert!((1000..=1150).contains(&makespan), "makespan {makespan}");
    }

    #[test]
    fn pipeline_adds_one_cycle_per_read_request() {
        let base = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        let cfg = BusConfig {
            checker_extra_cycles: 1,
            ..BusConfig::default()
        };
        let piped = run(
            cfg,
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        assert_eq!(piped - base, 64);
    }

    #[test]
    fn write_pipeline_latency_is_hidden_by_early_validation() {
        let base = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 64)],
        )
        .makespan();
        let cfg = BusConfig {
            checker_extra_cycles: 2,
            ..BusConfig::default()
        };
        let piped = run(
            cfg,
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 64)],
        )
        .makespan();
        // 2 pipeline stages < 8 data beats: fully hidden.
        assert_eq!(piped, base);
    }

    #[test]
    fn masking_interposes_read_responses() {
        let cfg = BusConfig {
            masking_read_extra: 1,
            bus_error_truncates: false,
            ..BusConfig::default()
        };
        let masked = run(
            cfg,
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        let base = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        assert_eq!(masked - base, 64);
    }

    #[test]
    fn bus_error_truncates_violating_bursts_early() {
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(DenyRange {
                base: 0,
                len: u64::MAX,
            }),
            None,
        );
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 64));
        let r = sim.run_to_completion(100_000);
        assert_eq!(r.masters[0].bursts_bus_error, 64);
        assert_eq!(r.masters[0].bytes_transferred, 0);
        // Early truncation: far faster than the legal 1470-cycle run.
        assert!(r.makespan() < 400, "makespan {}", r.makespan());
    }

    #[test]
    fn masking_violations_run_full_length() {
        let cfg = BusConfig {
            bus_error_truncates: false,
            masking_read_extra: 1,
            ..BusConfig::default()
        };
        let mut sim = BusSim::build(
            cfg,
            Box::new(DenyRange {
                base: 0,
                len: u64::MAX,
            }),
            None,
        );
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 64));
        let r = sim.run_to_completion(100_000);
        assert_eq!(r.masters[0].bursts_masked, 64);
        assert_eq!(r.masters[0].bytes_transferred, 0);
        // The device must process the whole masked burst (paper §6.2).
        assert!(r.makespan() > 1400, "makespan {}", r.makespan());
    }

    #[test]
    fn two_reader_bandwidth_near_paper_figure() {
        // Paper Figure 12: Read-Read two nodes ≈ 5.18 B/cycle (no pipe).
        let r = run(
            BusConfig::default(),
            vec![
                MasterProgram::uniform(1, BurstKind::Read, 0x0, 256),
                MasterProgram::uniform(2, BurstKind::Read, 0x1000, 256),
            ],
        );
        let bpc = r.bytes_per_cycle();
        assert!((4.9..=5.6).contains(&bpc), "bytes/cycle {bpc}");
    }

    #[test]
    fn pipeline_costs_two_percent_read_bandwidth() {
        let base = run(
            BusConfig::default(),
            vec![
                MasterProgram::uniform(1, BurstKind::Read, 0x0, 256),
                MasterProgram::uniform(2, BurstKind::Read, 0x1000, 256),
            ],
        )
        .bytes_per_cycle();
        let cfg = BusConfig {
            checker_extra_cycles: 1,
            ..BusConfig::default()
        };
        let piped = run(
            cfg,
            vec![
                MasterProgram::uniform(1, BurstKind::Read, 0x0, 256),
                MasterProgram::uniform(2, BurstKind::Read, 0x1000, 256),
            ],
        )
        .bytes_per_cycle();
        let loss = 1.0 - piped / base;
        assert!(loss > 0.0 && loss < 0.08, "loss {loss}");
    }

    #[test]
    fn write_write_bandwidth_unaffected_by_pipeline() {
        let mk = |k| {
            let cfg = BusConfig {
                checker_extra_cycles: k,
                ..BusConfig::default()
            };
            run(
                cfg,
                vec![
                    MasterProgram::uniform(1, BurstKind::Write, 0x0, 256),
                    MasterProgram::uniform(2, BurstKind::Write, 0x1000, 256),
                ],
            )
            .bytes_per_cycle()
        };
        let base = mk(0);
        let piped = mk(2);
        assert!((piped - base).abs() < 0.05, "{base} vs {piped}");
        assert!(base > 6.0, "writes should be fast: {base}");
    }

    #[test]
    fn outstanding_transactions_raise_throughput() {
        let serial = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 128)],
        )
        .bytes_per_cycle();
        let overlapped = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 128).with_outstanding(4)],
        )
        .bytes_per_cycle();
        assert!(overlapped > 1.5 * serial, "{serial} -> {overlapped}");
    }

    #[test]
    fn run_stops_at_cycle_budget() {
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 1_000_000));
        let r = sim.run_to_completion(100);
        assert!(!r.completed);
        assert_eq!(r.cycles, 100);
    }

    #[test]
    fn telemetry_mirrors_the_report_aggregates() {
        let t = siopmp::telemetry::Telemetry::new();
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), t.clone());
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 8));
        let r = sim.run_to_completion(100_000);
        let snap = t.snapshot();
        assert_eq!(snap.counters["bus.bursts_issued"], 8);
        assert_eq!(snap.counters["bus.bursts_completed"], 8);
        assert_eq!(
            snap.counters["bus.bytes_transferred"],
            r.masters[0].bytes_transferred
        );
        let lat = &snap.histograms["bus.burst_latency_cycles"];
        assert_eq!(lat.count, 8);
        assert!(lat.max >= 22, "latency max {}", lat.max);
    }

    #[test]
    fn stalls_and_sid_missing_are_counted_separately() {
        use crate::policy::SiopmpPolicy;
        use siopmp::ids::DeviceId;
        use siopmp::mountable::MountableEntry;

        let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(1)).unwrap();
        unit.block_sid(sid); // every burst from device 1 stalls
        unit.register_cold_device(
            DeviceId(2),
            MountableEntry {
                domains: vec![],
                entries: vec![],
            },
        )
        .unwrap(); // device 2 raises SID-missing until mounted

        let t = siopmp::telemetry::Telemetry::new();
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(SiopmpPolicy::new(unit)),
            t.clone(),
        );
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 3));
        sim.add_master(MasterProgram::uniform(2, BurstKind::Read, 0x0, 2));
        let r = sim.run_to_completion(100_000);
        assert_eq!(r.masters[0].bursts_stalled, 3);
        assert_eq!(r.masters[0].bursts_sid_missing, 0);
        assert_eq!(r.masters[1].bursts_sid_missing, 2);
        // Refusals still resolve to a terminal bus status; the verdict
        // classes are an orthogonal breakdown.
        assert_eq!(r.masters[0].bursts_bus_error, 3);
        let snap = t.snapshot();
        assert_eq!(snap.counters["bus.bursts_stalled"], 3);
        assert_eq!(snap.counters["bus.bursts_sid_missing"], 2);
    }

    #[test]
    fn empty_simulation_completes_immediately() {
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        let r = sim.run_to_completion(100);
        assert!(r.completed);
        assert_eq!(r.cycles, 0);
    }
}
