//! The cycle-driven bus simulation engine.
//!
//! Topology (Figure 6 of the paper): each master's bursts pass through the
//! IOPMP checker shim, win arbitration on the shared request channel (A),
//! reach memory, and return over the shared response channel (D). Both
//! channels carry one beat per cycle and are **burst-atomic**: once a burst
//! starts transferring, it keeps its channel until the last beat (as
//! TileLink/AXI slaves deliver bursts contiguously).
//!
//! Timing rules:
//!
//! * a read burst sends 1 request beat and receives `beats_per_burst`
//!   response beats after `mem_read_latency` (+1 per checker pipeline
//!   stage, +1 for packet-masking response interposition);
//! * a write burst sends `beats_per_burst` request beats and receives one
//!   acknowledgement beat after `mem_write_latency`. Writes are **early
//!   validated**: the address beat is checked while the data beats are
//!   still streaming, so checker pipeline latency is hidden behind the
//!   burst itself (§6.2: "a write request can be early validated");
//! * a denied burst under bus-error handling is truncated: the dummy node
//!   answers with a single error beat one cycle after the check resolves
//!   and the master cancels its remaining request beats;
//! * a denied burst under packet masking runs to completion with masked
//!   strobes / cleared data — same timing as a legal burst.

use crate::config::BusConfig;
use crate::faults::{FaultKind, FaultPlan};
use crate::master::MasterProgram;
use crate::packet::{BurstKind, BurstRequest, BurstStatus};
use crate::policy::{AccessPolicy, PolicyVerdict};
use crate::report::{MasterReport, SimReport};
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};
use siopmp::ids::DeviceId;
use siopmp::telemetry::{Counter, Histogram, Telemetry};

/// Cycles a master pauses after its device resets mid-DMA before it may
/// issue again (firmware re-initialising rings and doorbells).
pub const RESET_RECOVERY_CYCLES: u64 = 16;

/// Pre-resolved handles for the `bus.*` metrics, mirroring the aggregate
/// side of [`SimReport`] into the shared registry (the per-master breakdown
/// stays in [`MasterReport`]; these are the fleet-wide view).
#[derive(Debug, Clone)]
struct BusCounters {
    bursts_issued: Counter,
    bursts_completed: Counter,
    bursts_ok: Counter,
    bursts_masked: Counter,
    bursts_bus_error: Counter,
    bursts_stalled: Counter,
    bursts_sid_missing: Counter,
    bytes_transferred: Counter,
    retries: Counter,
    retry_exhausted: Counter,
    backoff_cycles: Counter,
    faults_injected: Counter,
}

impl BusCounters {
    fn attach(t: &Telemetry) -> Self {
        BusCounters {
            bursts_issued: t.counter("bus.bursts_issued"),
            bursts_completed: t.counter("bus.bursts_completed"),
            bursts_ok: t.counter("bus.bursts_ok"),
            bursts_masked: t.counter("bus.bursts_masked"),
            bursts_bus_error: t.counter("bus.bursts_bus_error"),
            bursts_stalled: t.counter("bus.bursts_stalled"),
            bursts_sid_missing: t.counter("bus.bursts_sid_missing"),
            bytes_transferred: t.counter("bus.bytes_transferred"),
            retries: t.counter("bus.retries"),
            retry_exhausted: t.counter("bus.retry_exhausted"),
            backoff_cycles: t.counter("bus.backoff_cycles"),
            faults_injected: t.counter("bus.faults_injected"),
        }
    }
}

/// One authorisation decision as resolved at issue time, plus how the
/// burst eventually terminated. The `generation` field counts the
/// control-plane mutations applied so far, which is what lets a post-hoc
/// differential pin every verdict to the exact configuration that was
/// live when it was made (see the chaos suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Cycle the burst was issued (and the verdict resolved).
    pub cycle: u64,
    /// Issuing master's index.
    pub master: usize,
    /// Device the burst claims to be from.
    pub device: DeviceId,
    /// Read or write.
    pub kind: BurstKind,
    /// Target address.
    pub addr: u64,
    /// Checked length in bytes (one burst).
    pub len: u64,
    /// The verdict the checker pinned to the burst at issue.
    pub verdict: PolicyVerdict,
    /// Control-plane configuration generation live at issue time.
    pub generation: u64,
    /// Retry attempt number (0 = first issue).
    pub attempt: u32,
    /// Terminal status, filled when the burst resolves (`None` if the
    /// run stopped while it was still in flight).
    pub status: Option<BurstStatus>,
}

#[derive(Debug)]
struct Flight {
    master: usize,
    req: BurstRequest,
    kind: BurstKind,
    verdict: PolicyVerdict,
    issue_cycle: u64,
    req_beats_sent: u32,
    req_beats_total: u32,
    arrival_at_mem: Option<u64>,
    resp_ready_at: Option<u64>,
    resp_beats_recv: u32,
    resp_beats_total: u32,
    cancelled: bool,
    /// A fault hit this flight (slave error / reset / forced abort), so
    /// its terminal error is transient rather than a protection verdict.
    faulted: bool,
    attempt: u32,
    decision: Option<usize>,
    done: Option<BurstStatus>,
}

#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    eligible: u64,
    burst: BurstRequest,
    attempt: u32,
}

/// A burst that completed `Ok` against an address *outside* this
/// simulator's home window — traffic bound for another shard of a
/// [`crate::parallel::ParallelSim`]. The coordinator collects these at
/// every epoch barrier and re-injects them into the owning shard in
/// `(cycle, domain, master, seq)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EgressRecord {
    /// Cycle the burst completed locally.
    pub cycle: u64,
    /// Index of the master that issued it.
    pub master: usize,
    /// Per-simulator monotone sequence number — the deterministic
    /// tie-break for bursts completing on the same cycle from the same
    /// master.
    pub seq: u64,
    /// The completed burst (original device ID preserved, so the
    /// destination shard's policy re-checks it under that identity).
    pub burst: BurstRequest,
}

#[derive(Debug)]
struct MasterState {
    program: MasterProgram,
    next_burst: usize,
    in_flight: usize,
    next_issue_ok: u64,
    retry_queue: Vec<RetryEntry>,
    report: MasterReport,
}

/// The simulator: masters, channels, memory, and the checker shim.
///
/// See the [crate-level docs](crate) for an end-to-end example.
pub struct BusSim {
    config: BusConfig,
    policy: Box<dyn AccessPolicy>,
    masters: Vec<MasterState>,
    flights: Vec<Flight>,
    a_owner: Option<usize>,
    d_owner: Option<usize>,
    rr_a: usize,
    rr_d: usize,
    cycle: u64,
    trace: Option<TraceBuffer>,
    telemetry: Telemetry,
    counters: BusCounters,
    burst_latency: Histogram,
    plan: FaultPlan,
    plan_cursor: usize,
    generation: u64,
    a_stall_until: u64,
    control_faults: usize,
    decision_log: Option<Vec<DecisionRecord>>,
    /// Reused per-cycle buffer for the two-phase (select, then batch-decide)
    /// issue path; always empty between steps.
    issue_scratch: Vec<(usize, BurstRequest, u32)>,
    /// Addresses this simulator owns; `Ok` completions outside it are
    /// captured as egress for a parallel coordinator. `None` (the serial
    /// default) captures nothing.
    home_window: Option<(u64, u64)>,
    egress: Vec<EgressRecord>,
    egress_seq: u64,
}

impl std::fmt::Debug for BusSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusSim")
            .field("cycle", &self.cycle)
            .field("masters", &self.masters.len())
            .field("flights", &self.flights.len())
            .finish()
    }
}

impl BusSim {
    /// Creates a simulator over `config` with the given access policy,
    /// registering its `bus.*` metrics (aggregate burst counters and the
    /// `bus.burst_latency_cycles` histogram) in `telemetry` — pass `None`
    /// for a private registry.
    pub fn build(
        config: BusConfig,
        policy: Box<dyn AccessPolicy>,
        telemetry: impl Into<Option<Telemetry>>,
    ) -> Self {
        let telemetry = telemetry.into().unwrap_or_else(Telemetry::new);
        BusSim {
            config,
            policy,
            masters: Vec::new(),
            flights: Vec::new(),
            a_owner: None,
            d_owner: None,
            rr_a: 0,
            rr_d: 0,
            cycle: 0,
            trace: None,
            counters: BusCounters::attach(&telemetry),
            burst_latency: telemetry.histogram("bus.burst_latency_cycles"),
            telemetry,
            plan: FaultPlan::empty(),
            plan_cursor: 0,
            generation: 0,
            a_stall_until: 0,
            control_faults: 0,
            decision_log: None,
            issue_scratch: Vec::new(),
            home_window: None,
            egress: Vec::new(),
            egress_seq: 0,
        }
    }

    /// Creates a simulator with a private telemetry registry.
    #[deprecated(note = "use `BusSim::build(config, policy, None)`")]
    pub fn new(config: BusConfig, policy: Box<dyn AccessPolicy>) -> Self {
        Self::build(config, policy, None)
    }

    /// Creates a simulator sharing the caller's `telemetry` registry.
    #[deprecated(note = "use `BusSim::build(config, policy, telemetry)`")]
    pub fn with_telemetry(
        config: BusConfig,
        policy: Box<dyn AccessPolicy>,
        telemetry: Telemetry,
    ) -> Self {
        Self::build(config, policy, telemetry)
    }

    /// The simulator's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enables event tracing with a buffer of `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, when tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Adds a master and returns its index.
    pub fn add_master(&mut self, program: MasterProgram) -> usize {
        self.masters.push(MasterState {
            program,
            next_burst: 0,
            in_flight: 0,
            next_issue_ok: 0,
            retry_queue: Vec::new(),
            report: MasterReport::default(),
        });
        self.masters.len() - 1
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Installs a fault plan; events at cycles already in the past are
    /// applied on the next step. Replaces any previous plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.plan_cursor = 0;
    }

    /// Control-plane configuration generation: bumped each time a fault
    /// (or [`BusSim::apply_control`]) actually changes the policy's
    /// configuration. Verdicts in the decision log are tagged with the
    /// generation live when they were resolved.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Applies a control op through the policy outside of any fault plan
    /// (monitor models use this to drive quiesced switches). Returns
    /// whether the configuration changed (and the generation advanced).
    pub fn apply_control(&mut self, op: &crate::policy::ControlOp) -> bool {
        let changed = self.policy.control(op);
        if changed {
            self.generation += 1;
        }
        changed
    }

    /// Starts recording one [`DecisionRecord`] per issued burst attempt.
    pub fn enable_decision_log(&mut self) {
        self.decision_log = Some(Vec::new());
    }

    /// The recorded decisions, when logging is enabled.
    pub fn decision_log(&self) -> Option<&[DecisionRecord]> {
        self.decision_log.as_deref()
    }

    /// The access policy.
    pub fn policy(&self) -> &dyn AccessPolicy {
        &*self.policy
    }

    /// Mutable access to the policy. Reconfiguring it directly bypasses
    /// generation tracking — prefer [`BusSim::apply_control`] when the
    /// decision log is in use.
    pub fn policy_mut(&mut self) -> &mut dyn AccessPolicy {
        &mut *self.policy
    }

    /// Bursts currently in flight that carry `device`'s ID — the quantity
    /// a quiesce/drain protocol must see reach zero before committing a
    /// switch affecting that device.
    pub fn in_flight_for_device(&self, device: DeviceId) -> usize {
        self.flights
            .iter()
            .filter(|f| f.done.is_none() && f.req.device == device)
            .count()
    }

    /// Total bursts currently in flight across all masters.
    pub fn in_flight_total(&self) -> usize {
        self.flights.iter().filter(|f| f.done.is_none()).count()
    }

    /// Forcibly aborts every in-flight burst carrying `device`'s ID (the
    /// drain protocol's timeout path). Each aborted burst terminates with
    /// a bus error this cycle; masters with a retry policy will re-issue
    /// it, re-deciding under whatever configuration is then live. Returns
    /// the number of bursts aborted.
    pub fn abort_in_flight_for_device(&mut self, device: DeviceId) -> usize {
        let t = self.cycle;
        let mut aborted = 0;
        for idx in 0..self.flights.len() {
            let f = &mut self.flights[idx];
            if f.done.is_none() && f.req.device == device {
                f.faulted = true;
                f.cancelled = true;
                self.resolve_terminal(idx, BurstStatus::BusError, t);
                aborted += 1;
            }
        }
        aborted
    }

    /// Whether every master has drained its program: nothing left to
    /// issue, nothing in flight, nothing queued for retry. Chaos tests
    /// step the simulator manually (snapshotting configuration between
    /// steps) and use this as their loop condition.
    pub fn all_done(&self) -> bool {
        self.masters.iter().all(|m| {
            m.next_burst == m.program.bursts.len() && m.in_flight == 0 && m.retry_queue.is_empty()
        })
    }

    /// Runs until every master drains its program or `max_cycles` elapse.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> SimReport {
        while !self.all_done() && self.cycle < max_cycles {
            self.step();
        }
        self.report()
    }

    /// The run's report as of the current cycle. `run_to_completion`
    /// returns exactly this; parallel coordinators call it per shard and
    /// concatenate.
    pub fn report(&self) -> SimReport {
        SimReport {
            cycles: self.cycle,
            masters: self.masters.iter().map(|m| m.report.clone()).collect(),
            completed: self.all_done(),
            control_faults: self.control_faults,
        }
    }

    /// Declares `[base, base + len)` as this simulator's own address space.
    /// From then on, every burst that completes `Ok` at an address outside
    /// the window is recorded as an [`EgressRecord`] for a parallel
    /// coordinator to collect with [`BusSim::take_egress`]. Serial,
    /// standalone simulations never set a window and are unaffected.
    pub fn set_home_window(&mut self, base: u64, len: u64) {
        self.home_window = Some((base, len));
    }

    /// The configured home window, if any.
    pub fn home_window(&self) -> Option<(u64, u64)> {
        self.home_window
    }

    /// Drains the egress records accumulated since the last call, in
    /// completion order (which is also `(cycle, master, seq)` order for a
    /// single shard, since `seq` is assigned at completion).
    pub fn take_egress(&mut self) -> Vec<EgressRecord> {
        std::mem::take(&mut self.egress)
    }

    /// Number of masters attached.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// Appends bursts to `master`'s program mid-run (the parallel engine's
    /// barrier-time delivery of cross-domain traffic). The master issues
    /// them after its current program position, under its usual
    /// outstanding/retry policy; a drained simulation becomes live again.
    pub fn extend_master_program(
        &mut self,
        master: usize,
        bursts: impl IntoIterator<Item = BurstRequest>,
    ) {
        self.masters[master].program.bursts.extend(bursts);
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let t = self.cycle;
        self.apply_faults(t);
        self.issue_bursts(t);
        self.channel_a_beat(t);
        self.memory_schedule(t);
        self.channel_d_beat(t);
        self.cycle += 1;
    }

    /// Applies every fault-plan event scheduled at or before `t`.
    fn apply_faults(&mut self, t: u64) {
        while self.plan_cursor < self.plan.events().len()
            && self.plan.events()[self.plan_cursor].at <= t
        {
            let event = self.plan.events()[self.plan_cursor];
            self.plan_cursor += 1;
            self.apply_fault(t, event.kind);
        }
    }

    /// Oldest live (un-resolved, not already error-bound) flight of
    /// `master`, if any.
    fn pick_live_flight(&self, master: usize) -> Option<usize> {
        self.flights
            .iter()
            .position(|f| f.master == master && f.done.is_none() && !f.cancelled)
    }

    fn count_master_fault(&mut self, master: usize) {
        self.masters[master].report.faults_injected += 1;
        self.counters.faults_injected.inc();
    }

    fn apply_fault(&mut self, t: u64, kind: FaultKind) {
        match kind {
            FaultKind::SlaveError { master } => {
                let Some(idx) = self.pick_live_flight(master) else {
                    return;
                };
                let f = &mut self.flights[idx];
                // The slave errors the burst: truncate the response to one
                // more (error) beat, regardless of the verdict.
                f.faulted = true;
                f.cancelled = true;
                f.resp_beats_total = f.resp_beats_recv + 1;
                if f.resp_ready_at.is_none() {
                    f.resp_ready_at = Some(t + 1);
                }
                self.count_master_fault(master);
            }
            FaultKind::DropBeat { master } => {
                let Some(idx) = self.pick_live_flight(master) else {
                    return;
                };
                let f = &mut self.flights[idx];
                // A link-level retransmit: the lost beat is resent, so the
                // burst merely pays an extra channel slot.
                if f.resp_beats_recv > 0 && f.resp_beats_recv < f.resp_beats_total {
                    f.resp_beats_recv -= 1;
                } else if f.req_beats_sent > 0 && f.req_beats_sent < f.req_beats_total {
                    f.req_beats_sent -= 1;
                } else {
                    return;
                }
                self.count_master_fault(master);
            }
            FaultKind::DuplicateBeat { master } => {
                let Some(idx) = self.pick_live_flight(master) else {
                    return;
                };
                let f = &mut self.flights[idx];
                // The duplicated beat wastes a slot: push the next
                // response (or memory arrival) out by one cycle.
                if let Some(r) = f.resp_ready_at {
                    f.resp_ready_at = Some(r.max(t) + 1);
                } else if let Some(a) = f.arrival_at_mem {
                    f.arrival_at_mem = Some(a.max(t) + 1);
                } else {
                    return;
                }
                self.count_master_fault(master);
            }
            FaultKind::DelayedGrant { cycles } => {
                self.a_stall_until = self.a_stall_until.max(t + cycles);
                self.control_faults += 1;
                self.counters.faults_injected.inc();
            }
            FaultKind::DeviceReset { master } => {
                if master >= self.masters.len() {
                    return;
                }
                let live: Vec<usize> = self
                    .flights
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.master == master && f.done.is_none())
                    .map(|(i, _)| i)
                    .collect();
                for idx in &live {
                    let f = &mut self.flights[*idx];
                    f.faulted = true;
                    f.cancelled = true;
                    self.resolve_terminal(*idx, BurstStatus::BusError, t);
                }
                let m = &mut self.masters[master];
                m.next_issue_ok = m.next_issue_ok.max(t + RESET_RECOVERY_CYCLES);
                self.count_master_fault(master);
            }
            FaultKind::Control(op) => {
                if self.policy.control(&op) {
                    self.generation += 1;
                    self.control_faults += 1;
                    self.counters.faults_injected.inc();
                }
            }
        }
    }

    /// Issue new bursts from masters with spare outstanding slots. Retried
    /// bursts whose backoff elapsed take priority over fresh program
    /// bursts; either way the verdict is re-resolved at issue time.
    ///
    /// Issuing is two-phase: first every eligible master (in index order)
    /// commits its next burst to the cycle's batch, then one
    /// [`AccessPolicy::decide_batch`] call resolves all their verdicts —
    /// letting an sIOPMP policy amortise SID routing and the decision-cache
    /// epoch load across the batch. Selection, counter and trace order are
    /// identical to deciding per master.
    fn issue_bursts(&mut self, t: u64) {
        debug_assert!(self.issue_scratch.is_empty());
        let mut batch = std::mem::take(&mut self.issue_scratch);
        for mi in 0..self.masters.len() {
            // One issue per master per cycle (the request queue accepts a
            // single burst header per cycle).
            let m = &mut self.masters[mi];
            if m.in_flight >= m.program.outstanding || t < m.next_issue_ok {
                continue;
            }
            let (burst, attempt) =
                if let Some(pos) = m.retry_queue.iter().position(|r| r.eligible <= t) {
                    let entry = m.retry_queue.swap_remove(pos);
                    (entry.burst, entry.attempt)
                } else if m.next_burst < m.program.bursts.len() {
                    let burst = m.program.bursts[m.next_burst];
                    m.next_burst += 1;
                    (burst, 0)
                } else {
                    continue;
                };
            m.in_flight += 1;
            batch.push((mi, burst, attempt));
        }
        if batch.is_empty() {
            self.issue_scratch = batch;
            return;
        }
        let len = self.config.burst_bytes();
        let reqs: Vec<(DeviceId, siopmp::request::AccessKind, u64, u64)> = batch
            .iter()
            .map(|&(_, burst, _)| (burst.device, burst.kind.access(), burst.addr, len))
            .collect();
        let verdicts = self.policy.decide_batch(&reqs);
        debug_assert_eq!(verdicts.len(), batch.len());
        for (&(mi, burst, attempt), &verdict) in batch.iter().zip(&verdicts) {
            let (req_total, resp_total) = match burst.kind {
                BurstKind::Read => (1, self.config.beats_per_burst),
                BurstKind::Write => (self.config.beats_per_burst, 1),
            };
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    cycle: t,
                    master: mi,
                    burst_kind: burst.kind,
                    kind: TraceKind::Issued,
                });
            }
            self.counters.bursts_issued.inc();
            let decision = self.decision_log.as_mut().map(|log| {
                log.push(DecisionRecord {
                    cycle: t,
                    master: mi,
                    device: burst.device,
                    kind: burst.kind,
                    addr: burst.addr,
                    len,
                    verdict,
                    generation: self.generation,
                    attempt,
                    status: None,
                });
                log.len() - 1
            });
            self.flights.push(Flight {
                master: mi,
                req: burst,
                kind: burst.kind,
                verdict,
                issue_cycle: t,
                req_beats_sent: 0,
                req_beats_total: req_total,
                arrival_at_mem: None,
                resp_ready_at: None,
                resp_beats_recv: 0,
                resp_beats_total: resp_total,
                cancelled: false,
                faulted: false,
                attempt,
                decision,
                done: None,
            });
        }
        batch.clear();
        self.issue_scratch = batch;
    }

    /// One beat of request-channel arbitration (burst-atomic).
    fn channel_a_beat(&mut self, t: u64) {
        if t < self.a_stall_until {
            return; // injected DelayedGrant: the arbiter withholds grants
        }
        let wants_a =
            |f: &Flight| f.done.is_none() && !f.cancelled && f.req_beats_sent < f.req_beats_total;
        // Release or keep the current owner.
        if let Some(idx) = self.a_owner {
            if !wants_a(&self.flights[idx]) {
                self.a_owner = None;
            }
        }
        if self.a_owner.is_none() {
            let n = self.flights.len();
            for off in 0..n {
                let idx = (self.rr_a + off) % n.max(1);
                if idx < n && wants_a(&self.flights[idx]) {
                    self.a_owner = Some(idx);
                    self.rr_a = (idx + 1) % n.max(1);
                    break;
                }
            }
        }
        let Some(idx) = self.a_owner else { return };
        let k = self.config.checker_extra_cycles;
        let truncates = self.config.bus_error_truncates;
        let f = &mut self.flights[idx];
        let first_beat = f.req_beats_sent == 0;
        f.req_beats_sent += 1;

        if first_beat && !f.verdict.is_allowed() && truncates {
            // Bus-error handling: the dummy node answers as soon as the
            // check resolves; the master cancels the rest of the burst.
            f.cancelled = true;
            f.resp_ready_at = Some(t + u64::from(k) + 1);
            f.resp_beats_total = 1;
            self.a_owner = None;
            return;
        }
        if f.req_beats_sent == f.req_beats_total {
            // Reads pay the checker pipeline on the single address beat;
            // writes are early-validated while their data beats stream, so
            // only the residue of the pipeline that exceeds the burst
            // length is exposed.
            let exposed = match f.kind {
                BurstKind::Read => u64::from(k),
                BurstKind::Write => u64::from(k.saturating_sub(f.req_beats_total - 1)),
            };
            let arb = u64::from(self.config.placement_arbitration_cycles);
            f.arrival_at_mem = Some(t + exposed + arb);
            let master = f.master;
            let kind = f.kind;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    cycle: t + exposed + arb,
                    master,
                    burst_kind: kind,
                    kind: TraceKind::ArrivedAtMemory,
                });
            }
            self.a_owner = None;
        }
    }

    /// Memory controller: turn fully-arrived requests into scheduled
    /// responses.
    fn memory_schedule(&mut self, t: u64) {
        for f in &mut self.flights {
            if f.done.is_some() || f.resp_ready_at.is_some() {
                continue;
            }
            let Some(arrival) = f.arrival_at_mem else {
                continue;
            };
            if t < arrival {
                continue;
            }
            let latency = match f.kind {
                BurstKind::Read => self.config.mem_read_latency + self.config.masking_read_extra,
                BurstKind::Write => self.config.mem_write_latency,
            };
            f.resp_ready_at = Some(arrival + u64::from(latency));
        }
    }

    /// One beat of response-channel arbitration (burst-atomic).
    fn channel_d_beat(&mut self, t: u64) {
        let ready_d = |f: &Flight| {
            f.done.is_none()
                && f.resp_ready_at
                    .is_some_and(|r| t >= r + u64::from(f.resp_beats_recv))
                && f.resp_beats_recv < f.resp_beats_total
        };
        if let Some(idx) = self.d_owner {
            let f = &self.flights[idx];
            if f.done.is_some() || f.resp_beats_recv >= f.resp_beats_total {
                self.d_owner = None;
            }
        }
        if self.d_owner.is_none() {
            let n = self.flights.len();
            for off in 0..n {
                let idx = (self.rr_d + off) % n.max(1);
                if idx < n && ready_d(&self.flights[idx]) {
                    self.d_owner = Some(idx);
                    self.rr_d = (idx + 1) % n.max(1);
                    break;
                }
            }
        }
        let Some(idx) = self.d_owner else { return };
        if !ready_d(&self.flights[idx]) {
            return; // owner's next beat not ready yet (streams are paced)
        }
        let f = &mut self.flights[idx];
        f.resp_beats_recv += 1;
        if f.resp_beats_recv == f.resp_beats_total {
            let status = if f.cancelled {
                BurstStatus::BusError
            } else if f.verdict.is_allowed() {
                BurstStatus::Ok
            } else {
                BurstStatus::Masked
            };
            self.resolve_terminal(idx, status, t);
        }
    }

    /// Terminal resolution of flight `idx` at cycle `t` with bus status
    /// `status`. Transient refusals (stalls, injected faults, optionally
    /// SID-missing) under an enabled retry policy with remaining budget
    /// re-queue the burst after its exponential backoff instead of
    /// completing; everything else counts as completed, including bursts
    /// whose retry budget just ran out (`retry_exhausted`).
    fn resolve_terminal(&mut self, idx: usize, status: BurstStatus, t: u64) {
        let f = &mut self.flights[idx];
        if f.done.is_some() {
            return;
        }
        let verdict = f.verdict;
        let faulted = f.faulted;
        let attempt = f.attempt;
        let req = f.req;
        let decision = f.decision;
        let issue_cycle = f.issue_cycle;
        let master = f.master;
        let burst_kind = f.kind;
        f.done = Some(status);
        if self.a_owner == Some(idx) {
            self.a_owner = None;
        }
        if self.d_owner == Some(idx) {
            self.d_owner = None;
        }
        if let (Some(di), Some(log)) = (decision, self.decision_log.as_mut()) {
            log[di].status = Some(status);
        }
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                cycle: t,
                master,
                burst_kind,
                kind: TraceKind::Completed(status),
            });
        }
        let issue_gap = u64::from(self.config.issue_gap);
        let burst_bytes = self.config.burst_bytes();
        let retry = self.masters[master].program.retry;
        let transient = status != BurstStatus::Ok
            && (faulted
                || verdict == PolicyVerdict::Stalled
                || (verdict == PolicyVerdict::SidMissing && retry.retry_sid_missing));
        if transient && retry.is_enabled() && attempt < retry.max_retries {
            // Retry: the refusal is not terminal for the burst. The
            // re-issue will re-resolve its verdict under whatever
            // configuration is live then.
            let next_attempt = attempt + 1;
            let backoff = retry.backoff_for(next_attempt);
            self.counters.retries.inc();
            self.counters.backoff_cycles.add(backoff);
            let m = &mut self.masters[master];
            m.in_flight -= 1;
            m.next_issue_ok = m.next_issue_ok.max(t + 1 + issue_gap);
            m.report.bursts_retried += 1;
            m.retry_queue.push(RetryEntry {
                eligible: t + 1 + backoff,
                burst: req,
                attempt: next_attempt,
            });
            return;
        }
        if status == BurstStatus::Ok {
            if let Some((base, len)) = self.home_window {
                if req.addr < base || req.addr >= base.saturating_add(len) {
                    // Cross-domain traffic: completed here (the local
                    // checker approved it), now owed to the shard that owns
                    // the address.
                    let seq = self.egress_seq;
                    self.egress_seq += 1;
                    self.egress.push(EgressRecord {
                        cycle: t,
                        master,
                        seq,
                        burst: req,
                    });
                }
            }
        }
        let latency = t - issue_cycle + 1;
        self.counters.bursts_completed.inc();
        self.burst_latency.record(latency);
        match status {
            BurstStatus::Ok => {
                self.counters.bursts_ok.inc();
                self.counters.bytes_transferred.add(burst_bytes);
            }
            BurstStatus::Masked => self.counters.bursts_masked.inc(),
            BurstStatus::BusError => self.counters.bursts_bus_error.inc(),
        }
        match verdict {
            PolicyVerdict::Stalled => self.counters.bursts_stalled.inc(),
            PolicyVerdict::SidMissing => self.counters.bursts_sid_missing.inc(),
            _ => {}
        }
        if transient && retry.is_enabled() {
            self.counters.retry_exhausted.inc();
        }
        let m = &mut self.masters[master];
        m.in_flight -= 1;
        m.next_issue_ok = m.next_issue_ok.max(t + 1 + issue_gap);
        let r = &mut m.report;
        r.bursts_completed += 1;
        r.total_latency_cycles += latency;
        r.last_completion_cycle = t;
        if transient && retry.is_enabled() {
            r.retry_exhausted += 1;
        }
        match status {
            BurstStatus::Ok => {
                r.bursts_ok += 1;
                r.bytes_transferred += burst_bytes;
            }
            BurstStatus::Masked => r.bursts_masked += 1,
            BurstStatus::BusError => r.bursts_bus_error += 1,
        }
        match verdict {
            PolicyVerdict::Stalled => r.bursts_stalled += 1,
            PolicyVerdict::SidMissing => r.bursts_sid_missing += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AllowAll, DenyRange};

    fn run(config: BusConfig, programs: Vec<MasterProgram>) -> SimReport {
        let mut sim = BusSim::build(config, Box::new(AllowAll), None);
        for p in programs {
            sim.add_master(p);
        }
        sim.run_to_completion(1_000_000)
    }

    #[test]
    fn single_read_burst_latency_matches_model() {
        // issue @0, A beat @0, resp ready @14, beats 14..21, complete @21.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 1)],
        );
        assert!(r.completed);
        assert_eq!(r.masters[0].bursts_completed, 1);
        assert_eq!(r.masters[0].mean_latency(), Some(22.0));
    }

    #[test]
    fn single_write_burst_latency_matches_model() {
        // beats @0..7, ack ready @15, complete @15 -> latency 16.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 1)],
        );
        assert_eq!(r.masters[0].mean_latency(), Some(16.0));
    }

    #[test]
    fn sixty_four_read_bursts_near_paper_baseline() {
        // Paper Figure 11: 64 consecutive read bursts, no pipeline: 1510
        // cycles. Our calibrated model: ~1470.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        );
        let makespan = r.makespan();
        assert!((1400..=1600).contains(&makespan), "makespan {makespan}");
    }

    #[test]
    fn sixty_four_write_bursts_near_paper_baseline() {
        // Paper: 1081 cycles; model: ~1086.
        let r = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 64)],
        );
        let makespan = r.makespan();
        assert!((1000..=1150).contains(&makespan), "makespan {makespan}");
    }

    #[test]
    fn pipeline_adds_one_cycle_per_read_request() {
        let base = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        let cfg = BusConfig {
            checker_extra_cycles: 1,
            ..BusConfig::default()
        };
        let piped = run(
            cfg,
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        assert_eq!(piped - base, 64);
    }

    #[test]
    fn write_pipeline_latency_is_hidden_by_early_validation() {
        let base = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 64)],
        )
        .makespan();
        let cfg = BusConfig {
            checker_extra_cycles: 2,
            ..BusConfig::default()
        };
        let piped = run(
            cfg,
            vec![MasterProgram::uniform(1, BurstKind::Write, 0x0, 64)],
        )
        .makespan();
        // 2 pipeline stages < 8 data beats: fully hidden.
        assert_eq!(piped, base);
    }

    #[test]
    fn masking_interposes_read_responses() {
        let cfg = BusConfig {
            masking_read_extra: 1,
            bus_error_truncates: false,
            ..BusConfig::default()
        };
        let masked = run(
            cfg,
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        let base = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 64)],
        )
        .makespan();
        assert_eq!(masked - base, 64);
    }

    #[test]
    fn bus_error_truncates_violating_bursts_early() {
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(DenyRange {
                base: 0,
                len: u64::MAX,
            }),
            None,
        );
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 64));
        let r = sim.run_to_completion(100_000);
        assert_eq!(r.masters[0].bursts_bus_error, 64);
        assert_eq!(r.masters[0].bytes_transferred, 0);
        // Early truncation: far faster than the legal 1470-cycle run.
        assert!(r.makespan() < 400, "makespan {}", r.makespan());
    }

    #[test]
    fn masking_violations_run_full_length() {
        let cfg = BusConfig {
            bus_error_truncates: false,
            masking_read_extra: 1,
            ..BusConfig::default()
        };
        let mut sim = BusSim::build(
            cfg,
            Box::new(DenyRange {
                base: 0,
                len: u64::MAX,
            }),
            None,
        );
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 64));
        let r = sim.run_to_completion(100_000);
        assert_eq!(r.masters[0].bursts_masked, 64);
        assert_eq!(r.masters[0].bytes_transferred, 0);
        // The device must process the whole masked burst (paper §6.2).
        assert!(r.makespan() > 1400, "makespan {}", r.makespan());
    }

    #[test]
    fn two_reader_bandwidth_near_paper_figure() {
        // Paper Figure 12: Read-Read two nodes ≈ 5.18 B/cycle (no pipe).
        let r = run(
            BusConfig::default(),
            vec![
                MasterProgram::uniform(1, BurstKind::Read, 0x0, 256),
                MasterProgram::uniform(2, BurstKind::Read, 0x1000, 256),
            ],
        );
        let bpc = r.bytes_per_cycle();
        assert!((4.9..=5.6).contains(&bpc), "bytes/cycle {bpc}");
    }

    #[test]
    fn pipeline_costs_two_percent_read_bandwidth() {
        let base = run(
            BusConfig::default(),
            vec![
                MasterProgram::uniform(1, BurstKind::Read, 0x0, 256),
                MasterProgram::uniform(2, BurstKind::Read, 0x1000, 256),
            ],
        )
        .bytes_per_cycle();
        let cfg = BusConfig {
            checker_extra_cycles: 1,
            ..BusConfig::default()
        };
        let piped = run(
            cfg,
            vec![
                MasterProgram::uniform(1, BurstKind::Read, 0x0, 256),
                MasterProgram::uniform(2, BurstKind::Read, 0x1000, 256),
            ],
        )
        .bytes_per_cycle();
        let loss = 1.0 - piped / base;
        assert!(loss > 0.0 && loss < 0.08, "loss {loss}");
    }

    #[test]
    fn write_write_bandwidth_unaffected_by_pipeline() {
        let mk = |k| {
            let cfg = BusConfig {
                checker_extra_cycles: k,
                ..BusConfig::default()
            };
            run(
                cfg,
                vec![
                    MasterProgram::uniform(1, BurstKind::Write, 0x0, 256),
                    MasterProgram::uniform(2, BurstKind::Write, 0x1000, 256),
                ],
            )
            .bytes_per_cycle()
        };
        let base = mk(0);
        let piped = mk(2);
        assert!((piped - base).abs() < 0.05, "{base} vs {piped}");
        assert!(base > 6.0, "writes should be fast: {base}");
    }

    #[test]
    fn outstanding_transactions_raise_throughput() {
        let serial = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 128)],
        )
        .bytes_per_cycle();
        let overlapped = run(
            BusConfig::default(),
            vec![MasterProgram::uniform(1, BurstKind::Read, 0x0, 128).with_outstanding(4)],
        )
        .bytes_per_cycle();
        assert!(overlapped > 1.5 * serial, "{serial} -> {overlapped}");
    }

    #[test]
    fn run_stops_at_cycle_budget() {
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 1_000_000));
        let r = sim.run_to_completion(100);
        assert!(!r.completed);
        assert_eq!(r.cycles, 100);
    }

    #[test]
    fn telemetry_mirrors_the_report_aggregates() {
        let t = siopmp::telemetry::Telemetry::new();
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), t.clone());
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 8));
        let r = sim.run_to_completion(100_000);
        let snap = t.snapshot();
        assert_eq!(snap.counters["bus.bursts_issued"], 8);
        assert_eq!(snap.counters["bus.bursts_completed"], 8);
        assert_eq!(
            snap.counters["bus.bytes_transferred"],
            r.masters[0].bytes_transferred
        );
        let lat = &snap.histograms["bus.burst_latency_cycles"];
        assert_eq!(lat.count, 8);
        assert!(lat.max >= 22, "latency max {}", lat.max);
    }

    #[test]
    fn stalls_and_sid_missing_are_counted_separately() {
        use crate::policy::SiopmpPolicy;
        use siopmp::ids::DeviceId;
        use siopmp::mountable::MountableEntry;

        let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(1)).unwrap();
        unit.block_sid(sid); // every burst from device 1 stalls
        unit.register_cold_device(
            DeviceId(2),
            MountableEntry {
                domains: vec![],
                entries: vec![],
            },
        )
        .unwrap(); // device 2 raises SID-missing until mounted

        let t = siopmp::telemetry::Telemetry::new();
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(SiopmpPolicy::new(unit)),
            t.clone(),
        );
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 3));
        sim.add_master(MasterProgram::uniform(2, BurstKind::Read, 0x0, 2));
        let r = sim.run_to_completion(100_000);
        assert_eq!(r.masters[0].bursts_stalled, 3);
        assert_eq!(r.masters[0].bursts_sid_missing, 0);
        assert_eq!(r.masters[1].bursts_sid_missing, 2);
        // Refusals still resolve to a terminal bus status; the verdict
        // classes are an orthogonal breakdown.
        assert_eq!(r.masters[0].bursts_bus_error, 3);
        let snap = t.snapshot();
        assert_eq!(snap.counters["bus.bursts_stalled"], 3);
        assert_eq!(snap.counters["bus.bursts_sid_missing"], 2);
    }

    #[test]
    fn empty_simulation_completes_immediately() {
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        let r = sim.run_to_completion(100);
        assert!(r.completed);
        assert_eq!(r.cycles, 0);
    }

    /// A unit whose hot `device` is fully authorised but blocked: every
    /// burst stalls until the SID is unblocked.
    fn blocked_unit(device: u64) -> (siopmp::Siopmp, siopmp::ids::SourceId) {
        use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
        use siopmp::ids::MdIndex;

        let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(device)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
        unit.install_entry(
            MdIndex(0),
            IopmpEntry::new(AddressRange::new(0x0, 0x1_0000).unwrap(), Permissions::rw()),
        )
        .unwrap();
        unit.block_sid(sid);
        (unit, sid)
    }

    #[test]
    fn retries_recover_once_the_stall_clears() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};
        use crate::master::RetryPolicy;
        use crate::policy::{ControlOp, SiopmpPolicy};

        let (unit, sid) = blocked_unit(1);
        let t = siopmp::telemetry::Telemetry::new();
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(SiopmpPolicy::new(unit)),
            t.clone(),
        );
        sim.add_master(
            MasterProgram::uniform(1, BurstKind::Read, 0x0, 3)
                .with_retry(RetryPolicy::bounded(10, 4)),
        );
        sim.set_fault_plan(FaultPlan::from_events(
            0,
            vec![FaultEvent {
                at: 50,
                kind: FaultKind::Control(ControlOp::UnblockSid(sid)),
            }],
        ));
        let r = sim.run_to_completion(100_000);
        assert!(r.completed);
        assert_eq!(r.masters[0].bursts_ok, 3, "{:?}", r.masters[0]);
        assert_eq!(r.masters[0].retry_exhausted, 0);
        assert!(r.masters[0].bursts_retried > 0);
        assert_eq!(sim.generation(), 1);
        let snap = t.snapshot();
        assert_eq!(
            snap.counters["bus.retries"],
            r.masters[0].bursts_retried as u64
        );
        assert!(snap.counters["bus.backoff_cycles"] > 0);
    }

    #[test]
    fn retry_budget_exhaustion_is_reported_not_hung() {
        use crate::master::RetryPolicy;
        use crate::policy::SiopmpPolicy;

        let (unit, _sid) = blocked_unit(1);
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(SiopmpPolicy::new(unit)),
            None,
        );
        sim.add_master(
            MasterProgram::uniform(1, BurstKind::Read, 0x0, 2)
                .with_retry(RetryPolicy::bounded(3, 2)),
        );
        let r = sim.run_to_completion(100_000);
        assert!(r.completed, "exhaustion must terminate the run");
        assert_eq!(r.masters[0].bursts_completed, 2);
        assert_eq!(r.masters[0].bursts_retried, 6); // 3 retries per burst
        assert_eq!(r.masters[0].retry_exhausted, 2);
        assert_eq!(r.masters[0].bursts_ok, 0);
        assert_eq!(r.masters[0].bursts_stalled, 2);
    }

    #[test]
    fn delayed_grant_stalls_the_request_channel() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};

        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 1));
        sim.set_fault_plan(FaultPlan::from_events(
            0,
            vec![FaultEvent {
                at: 0,
                kind: FaultKind::DelayedGrant { cycles: 40 },
            }],
        ));
        let r = sim.run_to_completion(10_000);
        assert!(r.completed);
        // Baseline latency is 22; the 40-cycle grant stall shifts it.
        assert!(r.makespan() >= 60, "makespan {}", r.makespan());
        assert_eq!(r.control_faults, 1);
        assert_eq!(r.total_faults_injected(), 1);
    }

    #[test]
    fn device_reset_aborts_in_flight_and_retry_recovers() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};
        use crate::master::RetryPolicy;

        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        sim.add_master(
            MasterProgram::uniform(1, BurstKind::Read, 0x0, 4)
                .with_retry(RetryPolicy::bounded(5, 2)),
        );
        sim.set_fault_plan(FaultPlan::from_events(
            0,
            vec![FaultEvent {
                at: 5,
                kind: FaultKind::DeviceReset { master: 0 },
            }],
        ));
        let r = sim.run_to_completion(100_000);
        assert!(r.completed);
        // The aborted burst was transient (faulted), so it was re-issued
        // and every program burst still moved its data.
        assert_eq!(r.masters[0].bursts_ok, 4);
        assert!(r.masters[0].bursts_retried >= 1);
        assert_eq!(r.masters[0].faults_injected, 1);
    }

    #[test]
    fn decision_log_pins_verdicts_to_generations() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};
        use crate::master::RetryPolicy;
        use crate::policy::{ControlOp, SiopmpPolicy};

        let (unit, sid) = blocked_unit(1);
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(SiopmpPolicy::new(unit)),
            None,
        );
        sim.enable_decision_log();
        sim.add_master(
            MasterProgram::uniform(1, BurstKind::Read, 0x0, 1)
                .with_retry(RetryPolicy::bounded(10, 8)),
        );
        sim.set_fault_plan(FaultPlan::from_events(
            0,
            vec![FaultEvent {
                at: 30,
                kind: FaultKind::Control(ControlOp::UnblockSid(sid)),
            }],
        ));
        let r = sim.run_to_completion(100_000);
        assert!(r.completed);
        let log = sim.decision_log().unwrap();
        assert!(log.len() >= 2, "at least one retry: {log:?}");
        // Every attempt resolved, attempts are numbered, and the final
        // attempt was re-decided under the post-unblock generation.
        assert!(log.iter().all(|d| d.status.is_some()));
        assert_eq!(log[0].attempt, 0);
        assert_eq!(log[0].generation, 0);
        assert_eq!(log[0].verdict, PolicyVerdict::Stalled);
        let last = log.last().unwrap();
        assert_eq!(last.generation, 1);
        assert_eq!(last.verdict, PolicyVerdict::Allowed);
        assert_eq!(last.status, Some(BurstStatus::Ok));
    }

    #[test]
    fn forced_abort_for_device_is_scoped() {
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 1));
        sim.add_master(MasterProgram::uniform(2, BurstKind::Read, 0x0, 1));
        for _ in 0..3 {
            sim.step();
        }
        assert_eq!(sim.in_flight_for_device(DeviceId(1)), 1);
        assert_eq!(sim.in_flight_total(), 2);
        assert_eq!(sim.abort_in_flight_for_device(DeviceId(1)), 1);
        assert_eq!(sim.in_flight_for_device(DeviceId(1)), 0);
        assert_eq!(sim.in_flight_for_device(DeviceId(2)), 1);
        let r = sim.run_to_completion(100_000);
        assert_eq!(r.masters[0].bursts_bus_error, 1);
        assert_eq!(r.masters[1].bursts_ok, 1);
    }
}
