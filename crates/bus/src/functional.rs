//! Functional (data-moving) execution of burst programs.
//!
//! [`crate::sim::BusSim`] models *timing*; this module models *data*: it
//! executes a master program against a byte-addressable memory, applying
//! the checker verdicts the way the violation hardware does — write
//! strobes cleared on denied writes, read-clear zeroes on denied reads
//! (§5.2). Full-system tests combine both: the timing simulator for
//! latency/bandwidth, the functional executor to prove no denied byte ever
//! moves.

use crate::master::MasterProgram;
use crate::packet::BurstKind;
use crate::policy::AccessPolicy;

/// Byte-level memory interface the executor drives. Implemented by
/// `siopmp-devices`' `SparseMemory` (via the blanket impls below) or any
/// test double.
pub trait ByteMemory {
    /// Reads `len` bytes at `addr`.
    fn read(&self, addr: u64, len: usize) -> Vec<u8>;
    /// Writes `data` at `addr` honouring `strobes` (one lane per byte).
    fn write_strobed(&mut self, addr: u64, data: &[u8], strobes: &[bool]);
}

/// Result of functionally executing one burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstEffect {
    /// The burst's start address.
    pub addr: u64,
    /// Read or write.
    pub kind: BurstKind,
    /// Whether the checker allowed it.
    pub allowed: bool,
    /// For reads: the data the device received (zeroed when denied).
    pub read_data: Option<Vec<u8>>,
}

/// Summary of a functional run.
#[derive(Debug, Clone, Default)]
pub struct FunctionalReport {
    /// Effects, one per burst, in program order.
    pub effects: Vec<BurstEffect>,
}

impl FunctionalReport {
    /// Number of allowed bursts.
    pub fn allowed(&self) -> usize {
        self.effects.iter().filter(|e| e.allowed).count()
    }

    /// Number of denied bursts.
    pub fn denied(&self) -> usize {
        self.effects.len() - self.allowed()
    }
}

/// Executes `program` against `memory` under `policy`, with bursts of
/// `burst_bytes` bytes. The device-supplied write payload is produced by
/// `payload` (called once per write burst with the burst index).
pub fn execute<M, F>(
    program: &MasterProgram,
    memory: &mut M,
    policy: &mut dyn AccessPolicy,
    burst_bytes: u64,
    mut payload: F,
) -> FunctionalReport
where
    M: ByteMemory,
    F: FnMut(usize) -> Vec<u8>,
{
    let mut report = FunctionalReport::default();
    for (i, burst) in program.bursts.iter().enumerate() {
        let allowed = policy
            .decide(burst.device, burst.kind.access(), burst.addr, burst_bytes)
            .is_allowed();
        let effect = match burst.kind {
            BurstKind::Read => {
                // Read clear: a denied read returns zeroes to the device
                // (the data never leaves memory).
                let data = if allowed {
                    memory.read(burst.addr, burst_bytes as usize)
                } else {
                    vec![0u8; burst_bytes as usize]
                };
                BurstEffect {
                    addr: burst.addr,
                    kind: burst.kind,
                    allowed,
                    read_data: Some(data),
                }
            }
            BurstKind::Write => {
                // Write strobes: denied writes complete on the bus but
                // every lane is masked, so memory never changes.
                let mut data = payload(i);
                data.resize(burst_bytes as usize, 0);
                let strobes = vec![allowed; burst_bytes as usize];
                memory.write_strobed(burst.addr, &data, &strobes);
                BurstEffect {
                    addr: burst.addr,
                    kind: burst.kind,
                    allowed,
                    read_data: None,
                }
            }
        };
        report.effects.push(effect);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AllowAll, DenyRange};
    use std::collections::HashMap;

    #[derive(Default)]
    struct MapMemory(HashMap<u64, u8>);

    impl ByteMemory for MapMemory {
        fn read(&self, addr: u64, len: usize) -> Vec<u8> {
            (0..len)
                .map(|i| *self.0.get(&(addr + i as u64)).unwrap_or(&0))
                .collect()
        }
        fn write_strobed(&mut self, addr: u64, data: &[u8], strobes: &[bool]) {
            for (i, (b, s)) in data.iter().zip(strobes).enumerate() {
                if *s {
                    self.0.insert(addr + i as u64, *b);
                }
            }
        }
    }

    #[test]
    fn allowed_write_then_read_round_trips() {
        let mut mem = MapMemory::default();
        let program = MasterProgram::uniform(1, BurstKind::Write, 0x100, 1)
            .chain(MasterProgram::uniform(1, BurstKind::Read, 0x100, 1));
        let report = execute(&program, &mut mem, &mut AllowAll, 8, |_| vec![7u8; 8]);
        assert_eq!(report.allowed(), 2);
        assert_eq!(report.effects[1].read_data.as_deref(), Some(&[7u8; 8][..]));
    }

    #[test]
    fn denied_write_leaves_memory_untouched() {
        let mut mem = MapMemory::default();
        mem.write_strobed(0x100, &[0xAA; 8], &[true; 8]);
        let program = MasterProgram::uniform(1, BurstKind::Write, 0x100, 3);
        let mut deny = DenyRange {
            base: 0,
            len: u64::MAX,
        };
        let report = execute(&program, &mut mem, &mut deny, 8, |_| vec![0xFF; 8]);
        assert_eq!(report.denied(), 3);
        assert_eq!(mem.read(0x100, 8), vec![0xAA; 8]);
    }

    #[test]
    fn denied_read_is_cleared() {
        let mut mem = MapMemory::default();
        mem.write_strobed(0x200, b"secret!!", &[true; 8]);
        let program = MasterProgram::uniform(1, BurstKind::Read, 0x200, 1);
        let mut deny = DenyRange {
            base: 0,
            len: u64::MAX,
        };
        let report = execute(&program, &mut mem, &mut deny, 8, |_| vec![]);
        assert_eq!(report.effects[0].read_data.as_deref(), Some(&[0u8; 8][..]));
        // The data itself is still in memory for authorised readers.
        assert_eq!(mem.read(0x200, 8), b"secret!!".to_vec());
    }

    #[test]
    fn mixed_policy_splits_effects() {
        let mut mem = MapMemory::default();
        let mut program = MasterProgram::uniform(1, BurstKind::Write, 0x100, 1);
        program.bursts.push(crate::packet::BurstRequest {
            device: siopmp::ids::DeviceId(1),
            kind: BurstKind::Write,
            addr: 0x10_000, // denied region
        });
        let mut deny = DenyRange {
            base: 0x10_000,
            len: 0x1000,
        };
        let report = execute(&program, &mut mem, &mut deny, 8, |_| vec![1u8; 8]);
        assert_eq!(report.allowed(), 1);
        assert_eq!(report.denied(), 1);
        assert_eq!(mem.read(0x100, 8), vec![1u8; 8]);
        assert_eq!(mem.read(0x10_000, 8), vec![0u8; 8]);
    }
}
