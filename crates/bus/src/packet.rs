//! Burst-level packet descriptors exchanged on the simulated bus.

use siopmp::ids::DeviceId;

/// Direction of a DMA burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BurstKind {
    /// Device reads memory: one request beat, `beats_per_burst` response
    /// beats.
    Read,
    /// Device writes memory: `beats_per_burst` request beats, one
    /// acknowledgement beat.
    Write,
}

impl BurstKind {
    /// The access kind presented to the IOPMP checker.
    pub fn access(self) -> siopmp::request::AccessKind {
        match self {
            BurstKind::Read => siopmp::request::AccessKind::Read,
            BurstKind::Write => siopmp::request::AccessKind::Write,
        }
    }
}

/// One burst a master wants to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstRequest {
    /// Packet-level device identifier carried to the checker.
    pub device: DeviceId,
    /// Read or write.
    pub kind: BurstKind,
    /// Start address.
    pub addr: u64,
}

/// Terminal status of a completed burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstStatus {
    /// Completed normally with full data.
    Ok,
    /// Completed with masked/cleared data (packet-masking violation path).
    Masked,
    /// Truncated with a bus error (bus-error violation path).
    BusError,
}

impl BurstStatus {
    /// Whether the burst's data actually reached (or came from) memory.
    pub fn data_transferred(self) -> bool {
        matches!(self, BurstStatus::Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_kind_maps_to_access_kind() {
        assert_eq!(BurstKind::Read.access(), siopmp::request::AccessKind::Read);
        assert_eq!(
            BurstKind::Write.access(),
            siopmp::request::AccessKind::Write
        );
    }

    #[test]
    fn only_ok_status_transfers_data() {
        assert!(BurstStatus::Ok.data_transferred());
        assert!(!BurstStatus::Masked.data_transferred());
        assert!(!BurstStatus::BusError.data_transferred());
    }
}
