//! Traffic programs for DMA masters.

use siopmp::ids::DeviceId;

use crate::packet::{BurstKind, BurstRequest};

/// A scripted DMA master: a list of bursts to issue plus an
/// outstanding-transaction limit.
///
/// With `outstanding = 1` the master exposes the full round-trip latency of
/// every burst (the paper's worst-case latency benchmark, Figure 11); with
/// larger limits bursts overlap and the checker pipeline hides (Figure 12).
#[derive(Debug, Clone)]
pub struct MasterProgram {
    /// Packet-level device identifier carried by all bursts of this master.
    pub device: DeviceId,
    /// Bursts to issue, in order.
    pub bursts: Vec<BurstRequest>,
    /// Maximum bursts in flight simultaneously (>= 1).
    pub outstanding: usize,
}

impl MasterProgram {
    /// A program of `count` identical bursts at `addr` (each burst targets
    /// the same buffer — addresses only matter to the policy).
    pub fn uniform(device_id: u64, kind: BurstKind, addr: u64, count: usize) -> Self {
        let device = DeviceId(device_id);
        MasterProgram {
            device,
            bursts: (0..count)
                .map(|_| BurstRequest { device, kind, addr })
                .collect(),
            outstanding: 1,
        }
    }

    /// A program of `count` bursts walking a contiguous buffer starting at
    /// `base`, advancing `stride` bytes per burst.
    pub fn streaming(
        device_id: u64,
        kind: BurstKind,
        base: u64,
        stride: u64,
        count: usize,
    ) -> Self {
        let device = DeviceId(device_id);
        MasterProgram {
            device,
            bursts: (0..count)
                .map(|i| BurstRequest {
                    device,
                    kind,
                    addr: base + stride * i as u64,
                })
                .collect(),
            outstanding: 1,
        }
    }

    /// Sets the outstanding limit (builder style).
    pub fn with_outstanding(mut self, outstanding: usize) -> Self {
        assert!(outstanding >= 1, "outstanding limit must be at least 1");
        self.outstanding = outstanding;
        self
    }

    /// Appends the bursts of `other` to this program.
    pub fn chain(mut self, other: MasterProgram) -> Self {
        self.bursts.extend(other.bursts);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_program_repeats_address() {
        let p = MasterProgram::uniform(3, BurstKind::Read, 0x100, 4);
        assert_eq!(p.bursts.len(), 4);
        assert!(p.bursts.iter().all(|b| b.addr == 0x100));
        assert_eq!(p.outstanding, 1);
    }

    #[test]
    fn streaming_program_advances_stride() {
        let p = MasterProgram::streaming(1, BurstKind::Write, 0x1000, 64, 3);
        let addrs: Vec<u64> = p.bursts.iter().map(|b| b.addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080]);
    }

    #[test]
    #[should_panic(expected = "outstanding limit")]
    fn zero_outstanding_rejected() {
        let _ = MasterProgram::uniform(1, BurstKind::Read, 0, 1).with_outstanding(0);
    }

    #[test]
    fn chain_concatenates() {
        let p = MasterProgram::uniform(1, BurstKind::Read, 0, 2).chain(MasterProgram::uniform(
            1,
            BurstKind::Write,
            0x40,
            3,
        ));
        assert_eq!(p.bursts.len(), 5);
    }
}
