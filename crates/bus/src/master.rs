//! Traffic programs for DMA masters.

use siopmp::ids::DeviceId;

use crate::packet::{BurstKind, BurstRequest};

/// Bounded-retry policy for bursts refused transiently (stalls, injected
/// faults). Real DMA masters retry `Stalled` responses — the paper's
/// per-SID blocking (§5.3) *assumes* they do — and a bounded budget with
/// exponential backoff is what turns a fault storm into either eventual
/// completion or a clean, reportable exhaustion instead of a livelock.
///
/// The default ([`RetryPolicy::none`]) disables retries entirely,
/// preserving the historical terminal-refusal semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum re-issues per burst (0 = retries disabled).
    pub max_retries: u32,
    /// Backoff before the first retry, in cycles; doubles per attempt.
    pub backoff_base: u64,
    /// Ceiling on the per-retry backoff, in cycles.
    pub backoff_cap: u64,
    /// Whether `SidMissing` refusals are also retried (useful when a
    /// monitor model mounts the device concurrently; off by default since
    /// without a monitor in the loop such retries can never succeed).
    pub retry_sid_missing: bool,
}

impl RetryPolicy {
    /// No retries: every refusal is terminal (the historical behaviour).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: 0,
            backoff_cap: 0,
            retry_sid_missing: false,
        }
    }

    /// Up to `max_retries` re-issues with exponential backoff starting at
    /// `backoff_base` cycles, capped at 64× the base.
    pub fn bounded(max_retries: u32, backoff_base: u64) -> Self {
        RetryPolicy {
            max_retries,
            backoff_base,
            backoff_cap: backoff_base.saturating_mul(64).max(1),
            retry_sid_missing: false,
        }
    }

    /// Enables retrying `SidMissing` refusals too (builder style).
    pub fn with_sid_missing_retry(mut self) -> Self {
        self.retry_sid_missing = true;
        self
    }

    /// Whether this policy ever retries.
    pub fn is_enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// Backoff in cycles before re-issuing attempt number
    /// `attempt` (1-based): `base << (attempt-1)`, saturating, capped.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let shifted = self
            .backoff_base
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        shifted.min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// A scripted DMA master: a list of bursts to issue plus an
/// outstanding-transaction limit.
///
/// With `outstanding = 1` the master exposes the full round-trip latency of
/// every burst (the paper's worst-case latency benchmark, Figure 11); with
/// larger limits bursts overlap and the checker pipeline hides (Figure 12).
#[derive(Debug, Clone)]
pub struct MasterProgram {
    /// Packet-level device identifier carried by all bursts of this master.
    pub device: DeviceId,
    /// Bursts to issue, in order.
    pub bursts: Vec<BurstRequest>,
    /// Maximum bursts in flight simultaneously (>= 1).
    pub outstanding: usize,
    /// Retry policy for transiently refused bursts (default: no retries).
    pub retry: RetryPolicy,
}

impl MasterProgram {
    /// A program of `count` identical bursts at `addr` (each burst targets
    /// the same buffer — addresses only matter to the policy).
    pub fn uniform(device_id: u64, kind: BurstKind, addr: u64, count: usize) -> Self {
        let device = DeviceId(device_id);
        MasterProgram {
            device,
            bursts: (0..count)
                .map(|_| BurstRequest { device, kind, addr })
                .collect(),
            outstanding: 1,
            retry: RetryPolicy::none(),
        }
    }

    /// A program with no bursts of its own. The parallel engine's bridge
    /// masters start like this: their traffic is appended at epoch
    /// barriers as cross-domain bursts arrive.
    pub fn empty(device_id: u64) -> Self {
        MasterProgram {
            device: DeviceId(device_id),
            bursts: Vec::new(),
            outstanding: 1,
            retry: RetryPolicy::none(),
        }
    }

    /// A program of `count` bursts walking a contiguous buffer starting at
    /// `base`, advancing `stride` bytes per burst.
    pub fn streaming(
        device_id: u64,
        kind: BurstKind,
        base: u64,
        stride: u64,
        count: usize,
    ) -> Self {
        let device = DeviceId(device_id);
        MasterProgram {
            device,
            bursts: (0..count)
                .map(|i| BurstRequest {
                    device,
                    kind,
                    addr: base + stride * i as u64,
                })
                .collect(),
            outstanding: 1,
            retry: RetryPolicy::none(),
        }
    }

    /// Sets the outstanding limit (builder style).
    pub fn with_outstanding(mut self, outstanding: usize) -> Self {
        assert!(outstanding >= 1, "outstanding limit must be at least 1");
        self.outstanding = outstanding;
        self
    }

    /// Sets the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Appends the bursts of `other` to this program.
    pub fn chain(mut self, other: MasterProgram) -> Self {
        self.bursts.extend(other.bursts);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_program_repeats_address() {
        let p = MasterProgram::uniform(3, BurstKind::Read, 0x100, 4);
        assert_eq!(p.bursts.len(), 4);
        assert!(p.bursts.iter().all(|b| b.addr == 0x100));
        assert_eq!(p.outstanding, 1);
    }

    #[test]
    fn streaming_program_advances_stride() {
        let p = MasterProgram::streaming(1, BurstKind::Write, 0x1000, 64, 3);
        let addrs: Vec<u64> = p.bursts.iter().map(|b| b.addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080]);
    }

    #[test]
    #[should_panic(expected = "outstanding limit")]
    fn zero_outstanding_rejected() {
        let _ = MasterProgram::uniform(1, BurstKind::Read, 0, 1).with_outstanding(0);
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let p = RetryPolicy::bounded(5, 8);
        assert!(p.is_enabled());
        assert_eq!(p.backoff_for(1), 8);
        assert_eq!(p.backoff_for(2), 16);
        assert_eq!(p.backoff_for(4), 64);
        assert_eq!(p.backoff_for(32), 8 * 64); // capped
        assert_eq!(p.backoff_for(200), 8 * 64); // shift overflow saturates
        assert!(!RetryPolicy::none().is_enabled());
        assert_eq!(RetryPolicy::default(), RetryPolicy::none());
        assert!(
            RetryPolicy::bounded(1, 4)
                .with_sid_missing_retry()
                .retry_sid_missing
        );
    }

    #[test]
    fn chain_concatenates() {
        let p = MasterProgram::uniform(1, BurstKind::Read, 0, 2).chain(MasterProgram::uniform(
            1,
            BurstKind::Write,
            0x40,
            3,
        ));
        assert_eq!(p.bursts.len(), 5);
    }
}
