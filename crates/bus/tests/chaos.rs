//! Chaos suite: deterministic fault schedules against the full
//! bus + sIOPMP stack, differentially checked against the static
//! analyzer.
//!
//! For every seeded [`FaultPlan`] the simulator records one
//! [`DecisionRecord`] per issued burst attempt, tagged with the
//! control-plane *generation* live when the verdict was pinned. The suite
//! snapshots a [`siopmp_verify::analyze`] report per generation and
//! asserts two invariants over ≥1000 distinct schedules:
//!
//! * **safety** — every pinned verdict agrees class-wise with what the
//!   static analysis of that generation's configuration predicts, and no
//!   burst ever completes `Ok` without an `Allowed` verdict. In
//!   particular the stray master (whose traffic is never authorized under
//!   *any* reachable configuration) transfers zero bytes under every
//!   schedule.
//! * **liveness** — with a finite fault budget every run either completes
//!   its programs or cleanly reports retry exhaustion; nothing hangs and
//!   nothing is silently dropped.
//!
//! A separate family drives the quiesce/drain protocol with traffic in
//! flight and proves the drained-or-refused guarantee: a cold switch
//! issued while bursts are live commits only once the affected traffic
//! has reached zero in flight, or refuses without mounting.

use std::collections::HashMap;

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex, SourceId};
use siopmp::mountable::MountableEntry;
use siopmp::quiesce::{ColdSwitchDrain, DrainConfig, DrainPoll};
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_bus::{
    BurstKind, BurstStatus, BusConfig, BusSim, DecisionRecord, FaultPlan, FaultPlanConfig,
    MasterProgram, PolicyVerdict, RetryPolicy, SiopmpPolicy,
};
use siopmp_verify::{analyze, Predicted, Report};

/// Index of the stray master whose traffic must never be admitted.
const STRAY: usize = 2;

fn entry(base: u64, len: u64, perms: Permissions) -> IopmpEntry {
    IopmpEntry::new(AddressRange::new(base, len).unwrap(), perms)
}

/// The chaos unit: three hot devices (1, 2, 3), two registered cold
/// devices (7, 8) with device 7 initially mounted. Device 3's region is
/// read-only, so its master's writes are denied-by-permission and its
/// probes outside any window are denied-by-no-match — under every
/// configuration any fault schedule can reach.
fn chaos_unit() -> (Siopmp, Vec<SourceId>) {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let mut sids = Vec::new();
    for (dev, md, base, perms) in [
        (1u64, 0u16, 0x1_0000u64, Permissions::rw()),
        (2, 1, 0x2_0000, Permissions::rw()),
        (3, 2, 0x3_0000, Permissions::read_only()),
    ] {
        let sid = unit.map_hot_device(DeviceId(dev)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(md)).unwrap();
        unit.install_entry(MdIndex(md), entry(base, 0x1000, perms))
            .unwrap();
        sids.push(sid);
    }
    unit.register_cold_device(
        DeviceId(7),
        MountableEntry {
            domains: vec![],
            entries: vec![entry(0x7_0000, 0x1000, Permissions::rw())],
        },
    )
    .unwrap();
    unit.register_cold_device(
        DeviceId(8),
        MountableEntry {
            domains: vec![],
            entries: vec![entry(0x8_0000, 0x1000, Permissions::rw())],
        },
    )
    .unwrap();
    unit.handle_sid_missing(DeviceId(7)).unwrap();
    (unit, sids)
}

/// The chaos traffic mix: two legal hot masters, one stray master whose
/// every burst is illegal, and one master on the mounted cold device.
fn chaos_masters(retry: RetryPolicy) -> Vec<MasterProgram> {
    vec![
        MasterProgram::streaming(1, BurstKind::Read, 0x1_0000, 64, 10)
            .with_outstanding(2)
            .with_retry(retry),
        MasterProgram::streaming(2, BurstKind::Write, 0x2_0000, 64, 10)
            .with_outstanding(2)
            .with_retry(retry),
        // Stray: writes into its own read-only window (denied by
        // permission) chained with reads of another tenant's window
        // (denied by no-match — device 3 cannot see MD0's entries).
        MasterProgram::streaming(3, BurstKind::Write, 0x3_0000, 64, 5)
            .chain(MasterProgram::streaming(
                3,
                BurstKind::Read,
                0x1_0000,
                64,
                5,
            ))
            .with_outstanding(2)
            .with_retry(retry),
        MasterProgram::streaming(7, BurstKind::Read, 0x7_0000, 64, 8)
            .with_outstanding(2)
            .with_retry(retry),
    ]
}

fn build_sim(programs: Vec<MasterProgram>) -> BusSim {
    let (unit, _) = chaos_unit();
    let mut sim = BusSim::build(
        BusConfig::default(),
        Box::new(SiopmpPolicy::new(unit)),
        None,
    );
    for p in programs {
        sim.add_master(p);
    }
    sim
}

/// Runs `sim` to completion (bounded by `max_cycles`), snapshotting a
/// static-analysis report for every configuration generation that was
/// ever live at the end of a step. Faults are applied at the top of
/// `step()` — before that cycle's issues — so the post-step snapshot is
/// exactly the configuration the cycle's decisions were pinned under.
fn run_with_snapshots(sim: &mut BusSim, max_cycles: u64) -> HashMap<u64, Report> {
    let mut snapshots = HashMap::new();
    snapshots.insert(0, analyze(sim.policy().siopmp_unit().unwrap(), None));
    while !sim.all_done() && sim.cycle() < max_cycles {
        sim.step();
        let generation = sim.generation();
        snapshots
            .entry(generation)
            .or_insert_with(|| analyze(sim.policy().siopmp_unit().unwrap(), None));
    }
    snapshots
}

fn predicted_class(p: &Predicted) -> PolicyVerdict {
    match p {
        Predicted::Allowed { .. } => PolicyVerdict::Allowed,
        Predicted::DeniedNoMatch | Predicted::DeniedPermission { .. } => PolicyVerdict::Denied,
        Predicted::Stalled => PolicyVerdict::Stalled,
        Predicted::SidMissing => PolicyVerdict::SidMissing,
    }
}

/// Safety invariant: every pinned verdict agrees with the per-generation
/// static analysis, and completion status never outranks the verdict.
fn assert_decisions_match_oracle(
    seed: u64,
    decisions: &[DecisionRecord],
    snapshots: &HashMap<u64, Report>,
) {
    for rec in decisions {
        let report = snapshots.get(&rec.generation).unwrap_or_else(|| {
            panic!("seed {seed}: decision at cycle {rec:?} under unsnapshotted generation")
        });
        let predicted = report.predict(rec.device, rec.kind.access(), rec.addr, rec.len);
        assert_eq!(
            predicted_class(&predicted),
            rec.verdict,
            "seed {seed}: verdict diverges from analysis at {rec:?} (predicted {predicted:?})"
        );
        if rec.status == Some(BurstStatus::Ok) {
            assert_eq!(
                rec.verdict,
                PolicyVerdict::Allowed,
                "seed {seed}: burst completed Ok without an Allowed verdict: {rec:?}"
            );
        }
    }
}

/// The headline property: ≥1000 distinct seeded fault schedules, each
/// differentially checked against the analyzer and against a fault-free
/// run of the same programs.
#[test]
fn chaos_schedules_never_admit_protected_accesses_and_always_terminate() {
    // Fault-free baseline: every legal burst completes Ok, the stray
    // master completes nothing Ok.
    let mut baseline = build_sim(chaos_masters(RetryPolicy::bounded(3, 2)));
    let baseline = baseline.run_to_completion(100_000);
    assert!(baseline.completed, "fault-free run must drain");
    for (i, m) in baseline.masters.iter().enumerate() {
        if i == STRAY {
            assert_eq!(m.bursts_ok, 0, "stray baseline must complete nothing");
        } else {
            assert_eq!(m.bursts_ok, m.bursts_completed, "legal baseline is all Ok");
        }
    }

    let plan_config = FaultPlanConfig {
        horizon: 300,
        budget: 24,
        masters: 4,
        block_sids: {
            let (_, sids) = chaos_unit();
            let mut sids = sids;
            sids.push(SiopmpConfig::small().cold_sid());
            sids
        },
        cold_devices: vec![DeviceId(7), DeviceId(8)],
        churn_devices: vec![DeviceId(8)],
    };

    for seed in 0..1024u64 {
        let mut sim = build_sim(chaos_masters(RetryPolicy::bounded(3, 2)));
        sim.enable_decision_log();
        sim.set_fault_plan(FaultPlan::generate(seed, &plan_config));
        let snapshots = run_with_snapshots(&mut sim, 100_000);

        // Liveness: the finite fault budget must not wedge the run.
        let report = sim.run_to_completion(0);
        assert!(
            report.completed,
            "seed {seed}: run hung at cycle {} with faults exhausted",
            report.cycles
        );
        let program_lens: Vec<usize> = chaos_masters(RetryPolicy::bounded(3, 2))
            .iter()
            .map(|p| p.bursts.len())
            .collect();
        for (i, m) in report.masters.iter().enumerate() {
            assert_eq!(
                m.bursts_completed, program_lens[i],
                "seed {seed}: master {i} dropped bursts"
            );
        }

        // Safety: differential against the per-generation analysis.
        let decisions = sim.decision_log().expect("logging enabled");
        assert!(!decisions.is_empty());
        assert_decisions_match_oracle(seed, decisions, &snapshots);

        // Differential against the fault-free run: faults may only take
        // accesses away, never grant new ones.
        for (i, m) in report.masters.iter().enumerate() {
            assert!(
                m.bursts_ok <= baseline.masters[i].bursts_ok,
                "seed {seed}: master {i} completed more Ok bursts ({}) than fault-free ({})",
                m.bursts_ok,
                baseline.masters[i].bursts_ok
            );
        }
        assert_eq!(
            report.masters[STRAY].bursts_ok, 0,
            "seed {seed}: a fault schedule admitted the stray master"
        );
        assert_eq!(
            report.masters[STRAY].bytes_transferred, 0,
            "seed {seed}: the stray master moved data"
        );
    }
}

/// Replays are bit-for-bit: the same seed yields the same decision log
/// and the same report, which is what makes a failing chaos seed a
/// directed regression test.
#[test]
fn chaos_runs_replay_bit_for_bit_from_their_seed() {
    let plan_config = FaultPlanConfig {
        horizon: 200,
        budget: 16,
        masters: 4,
        block_sids: vec![SourceId(0), SourceId(1)],
        cold_devices: vec![DeviceId(7), DeviceId(8)],
        churn_devices: vec![DeviceId(8)],
    };
    let run = |seed: u64| {
        let mut sim = build_sim(chaos_masters(RetryPolicy::bounded(2, 2)));
        sim.enable_decision_log();
        sim.set_fault_plan(FaultPlan::generate(seed, &plan_config));
        let report = sim.run_to_completion(100_000);
        (
            sim.decision_log().unwrap().to_vec(),
            report.to_json().pretty(),
        )
    };
    let (log_a, report_a) = run(99);
    let (log_b, report_b) = run(99);
    assert_eq!(log_a, log_b);
    assert_eq!(report_a, report_b);
    let (log_c, _) = run(100);
    assert_ne!(log_a, log_c, "distinct seeds must differ");
}

/// S3: CAM remap/eviction churn concurrent with in-flight bursts. The CAM
/// is filled to capacity so every promotion evicts a victim with live
/// traffic; verdicts must still match the post-hoc analysis of whichever
/// configuration was live at check time.
#[test]
fn cam_eviction_churn_verdicts_match_posthoc_analysis() {
    let build = || {
        let mut unit = Siopmp::build(SiopmpConfig::small(), None);
        // Fill all 7 hot SIDs so CamChurn must evict.
        for (dev, md, base, perms) in [
            (1u64, 0u16, 0x1_0000u64, Permissions::rw()),
            (2, 1, 0x2_0000, Permissions::rw()),
            (3, 2, 0x3_0000, Permissions::read_only()),
        ] {
            let sid = unit.map_hot_device(DeviceId(dev)).unwrap();
            unit.associate_sid_with_md(sid, MdIndex(md)).unwrap();
            unit.install_entry(MdIndex(md), entry(base, 0x1000, perms))
                .unwrap();
        }
        for filler in [4u64, 5, 6, 10] {
            unit.map_hot_device(DeviceId(filler)).unwrap();
        }
        // Promotable cold devices carry a real domain association so an
        // eviction-promotion rewires SRC2MD, not just the CAM.
        unit.install_entry(MdIndex(3), entry(0x7_0000, 0x1000, Permissions::rw()))
            .unwrap();
        for cold in [7u64, 8] {
            unit.register_cold_device(
                DeviceId(cold),
                MountableEntry {
                    domains: vec![MdIndex(3)],
                    entries: vec![entry(0x7_0000, 0x1000, Permissions::rw())],
                },
            )
            .unwrap();
        }
        unit.handle_sid_missing(DeviceId(7)).unwrap();
        let mut sim = BusSim::build(
            BusConfig::default(),
            Box::new(SiopmpPolicy::new(unit)),
            None,
        );
        let retry = RetryPolicy::bounded(2, 1);
        sim.add_master(
            MasterProgram::streaming(1, BurstKind::Read, 0x1_0000, 64, 12)
                .with_outstanding(2)
                .with_retry(retry),
        );
        sim.add_master(
            MasterProgram::streaming(2, BurstKind::Write, 0x2_0000, 64, 12)
                .with_outstanding(2)
                .with_retry(retry),
        );
        sim.add_master(
            MasterProgram::streaming(7, BurstKind::Read, 0x7_0000, 64, 10)
                .with_outstanding(2)
                .with_retry(retry),
        );
        sim
    };

    let plan_config = FaultPlanConfig {
        horizon: 250,
        budget: 20,
        masters: 3,
        block_sids: vec![],
        cold_devices: vec![DeviceId(7), DeviceId(8)],
        churn_devices: vec![DeviceId(7), DeviceId(8)],
    };
    let mut churn_seen = false;
    for seed in 0..256u64 {
        let plan = FaultPlan::generate(seed, &plan_config);
        let mut sim = build();
        sim.enable_decision_log();
        sim.set_fault_plan(plan);
        let snapshots = run_with_snapshots(&mut sim, 100_000);
        let report = sim.run_to_completion(0);
        assert!(report.completed, "seed {seed}: churn run hung");
        churn_seen |= snapshots.len() > 1;
        assert_decisions_match_oracle(seed, sim.decision_log().unwrap(), &snapshots);
    }
    assert!(churn_seen, "no schedule exercised a control-plane change");
}

/// Drained-or-refused, the voluntary-drain arm: a cold switch begun with
/// bursts in flight commits only once the mounted device's traffic has
/// drained to zero — never interleaved with it.
#[test]
fn cold_switch_with_traffic_in_flight_commits_only_after_drain() {
    let mut sim = build_sim(vec![MasterProgram::streaming(
        7,
        BurstKind::Read,
        0x7_0000,
        64,
        6,
    )
    .with_outstanding(2)]);
    // Get at least one burst airborne before the switch is requested.
    while sim.in_flight_for_device(DeviceId(7)) == 0 {
        sim.step();
    }
    assert!(sim.in_flight_for_device(DeviceId(7)) >= 1);
    let now = sim.cycle();
    let unit = sim.policy_mut().siopmp_unit_mut().unwrap();
    let mut drain = ColdSwitchDrain::begin(unit, DeviceId(8), now, DrainConfig::default()).unwrap();

    let mut committed = false;
    for _ in 0..10_000 {
        sim.step();
        let now = sim.cycle();
        let in_flight = sim.in_flight_for_device(DeviceId(7));
        let mounted_before = sim.policy().siopmp_unit().unwrap().mounted_cold_device();
        let unit = sim.policy_mut().siopmp_unit_mut().unwrap();
        match drain.poll(unit, in_flight, now) {
            DrainPoll::Committed(report) => {
                assert_eq!(report.mounted, DeviceId(8));
                assert_eq!(in_flight, 0, "committed with bursts still in flight");
                assert_eq!(mounted_before, Some(DeviceId(7)), "single commit point");
                committed = true;
                break;
            }
            DrainPoll::Refused => panic!("voluntary drain should commit, not refuse"),
            DrainPoll::AbortRequested { .. } | DrainPoll::Draining { .. } => {
                // Until the commit point the old tenant must stay mounted.
                assert_eq!(mounted_before, Some(DeviceId(7)));
            }
        }
    }
    assert!(committed, "drain never reached a terminal phase");
    assert_eq!(
        sim.policy().siopmp_unit().unwrap().mounted_cold_device(),
        Some(DeviceId(8))
    );
}

/// Drained-or-refused, the refusal arm: when the caller cannot abort the
/// stragglers (a wedged bus) the switch refuses inside its grace window
/// and leaves the previous tenant mounted — it never mounts over live
/// traffic.
#[test]
fn cold_switch_that_cannot_drain_refuses_without_mounting() {
    let mut sim = build_sim(vec![
        // A long program with deep outstanding keeps device 7 bursts in
        // flight continuously, so the drain deadline always passes.
        MasterProgram::streaming(7, BurstKind::Read, 0x7_0000, 64, 64).with_outstanding(4),
    ]);
    while sim.in_flight_for_device(DeviceId(7)) == 0 {
        sim.step();
    }
    let now = sim.cycle();
    let config = DrainConfig {
        timeout_cycles: 4,
        abort_grace_cycles: 2,
    };
    let unit = sim.policy_mut().siopmp_unit_mut().unwrap();
    let mut drain = ColdSwitchDrain::begin(unit, DeviceId(8), now, config).unwrap();

    let mut refused = false;
    for _ in 0..10_000 {
        sim.step();
        let now = sim.cycle();
        let in_flight = sim.in_flight_for_device(DeviceId(7));
        let unit = sim.policy_mut().siopmp_unit_mut().unwrap();
        match drain.poll(unit, in_flight, now) {
            DrainPoll::Committed(_) => {
                assert_eq!(in_flight, 0, "committed with bursts still in flight");
                break;
            }
            DrainPoll::Refused => {
                refused = true;
                break;
            }
            // The wedged caller never services the abort request.
            DrainPoll::AbortRequested { in_flight } => assert!(in_flight > 0),
            DrainPoll::Draining { .. } => {}
        }
    }
    assert!(refused, "undrainable switch must refuse");
    let unit = sim.policy().siopmp_unit().unwrap();
    assert_eq!(unit.mounted_cold_device(), Some(DeviceId(7)));
    assert!(!unit.is_sid_blocked(unit.config().cold_sid()));
    // The refused switch left the configuration as it was: traffic drains
    // normally afterwards.
    let report = sim.run_to_completion(100_000);
    assert!(report.completed);
}

/// Seeded drain storms: under arbitrary data-plane fault schedules the
/// quiesced switch still commits only at zero in flight or refuses.
#[test]
fn quiesced_switches_under_fault_storms_stay_drained_or_refused() {
    let plan_config = FaultPlanConfig {
        horizon: 150,
        budget: 12,
        masters: 2,
        block_sids: vec![SourceId(0)],
        cold_devices: vec![],
        churn_devices: vec![],
    };
    let mut commits = 0usize;
    let mut refusals = 0usize;
    for seed in 0..64u64 {
        let mut sim = build_sim(vec![
            MasterProgram::streaming(1, BurstKind::Read, 0x1_0000, 64, 12)
                .with_outstanding(2)
                .with_retry(RetryPolicy::bounded(3, 2)),
            MasterProgram::streaming(7, BurstKind::Read, 0x7_0000, 64, 8)
                .with_outstanding(2)
                .with_retry(RetryPolicy::bounded(3, 2)),
        ]);
        sim.set_fault_plan(FaultPlan::generate(seed, &plan_config));
        while sim.in_flight_for_device(DeviceId(7)) == 0 && !sim.all_done() {
            sim.step();
        }
        if sim.all_done() {
            continue;
        }
        let now = sim.cycle();
        let config = DrainConfig {
            timeout_cycles: 32,
            abort_grace_cycles: 16,
        };
        let unit = sim.policy_mut().siopmp_unit_mut().unwrap();
        let mut drain = ColdSwitchDrain::begin(unit, DeviceId(8), now, config).unwrap();
        loop {
            sim.step();
            let now = sim.cycle();
            let in_flight = sim.in_flight_for_device(DeviceId(7));
            let unit = sim.policy_mut().siopmp_unit_mut().unwrap();
            match drain.poll(unit, in_flight, now) {
                DrainPoll::Committed(report) => {
                    assert_eq!(in_flight, 0, "seed {seed}: interleaved commit");
                    assert_eq!(report.mounted, DeviceId(8));
                    commits += 1;
                    break;
                }
                DrainPoll::Refused => {
                    let unit = sim.policy().siopmp_unit().unwrap();
                    assert_eq!(
                        unit.mounted_cold_device(),
                        Some(DeviceId(7)),
                        "seed {seed}: refusal must not mount"
                    );
                    refusals += 1;
                    break;
                }
                DrainPoll::AbortRequested { .. } => {
                    sim.abort_in_flight_for_device(DeviceId(7));
                }
                DrainPoll::Draining { .. } => {}
            }
            assert!(now < 100_000, "seed {seed}: drain never terminated");
        }
        // Whatever the outcome, traffic still terminates afterwards.
        let report = sim.run_to_completion(100_000);
        assert!(report.completed, "seed {seed}: post-drain run hung");
    }
    assert!(commits > 0, "no storm schedule ever committed a switch");
    // Refusals are possible but not required with these deadlines; the
    // assertion above is the load-bearing one.
    let _ = refusals;
}
