//! Property-based tests for the cycle simulator: conservation laws and
//! timing monotonicity under randomly generated traffic.

use siopmp_testkit::{check, check_eq, prop_check, Gen};

use siopmp_bus::policy::{AllowAll, DenyRange};
use siopmp_bus::trace::TraceKind;
use siopmp_bus::{BurstKind, BusConfig, BusSim, MasterProgram};

fn arb_kind(g: &mut Gen) -> BurstKind {
    *g.choose(&[BurstKind::Read, BurstKind::Write])
}

fn arb_program(g: &mut Gen, device: u64) -> MasterProgram {
    let kind = arb_kind(g);
    let count = g.usize(1..30);
    let outstanding = g.usize(1..5);
    MasterProgram::streaming(device, kind, 0x1000 * device, 64, count).with_outstanding(outstanding)
}

/// Every issued burst completes exactly once; transferred bytes equal
/// burst-size times the number of Ok bursts.
#[test]
fn bursts_are_conserved() {
    prop_check(64, |g| {
        let programs = g.vec(1..4, |g| arb_program(g, 1));
        let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
        let mut expected = 0usize;
        for (i, mut p) in programs.into_iter().enumerate() {
            // distinct device ids per master
            for b in &mut p.bursts {
                b.device = siopmp::ids::DeviceId(i as u64 + 1);
            }
            expected += p.bursts.len();
            sim.add_master(p);
        }
        sim.enable_trace(100_000);
        let report = sim.run_to_completion(1_000_000);
        check!(report.completed);
        let completed: usize = report.masters.iter().map(|m| m.bursts_completed).sum();
        check_eq!(completed, expected);
        for m in &report.masters {
            check_eq!(m.bursts_ok, m.bursts_completed);
            check_eq!(m.bytes_transferred, m.bursts_ok as u64 * 64);
        }
        // Trace agrees with the report.
        let trace = sim.trace().unwrap();
        check_eq!(trace.of_kind(TraceKind::Issued).count(), expected);
        Ok(())
    });
}

/// Makespan is monotone non-decreasing in checker pipeline depth for
/// read traffic (the Figure 11 effect, under arbitrary burst counts).
#[test]
fn makespan_monotone_in_pipeline_depth() {
    prop_check(48, |g| {
        let count = g.usize(1..50);
        let mut prev = 0u64;
        for k in 0..4u32 {
            let cfg = BusConfig {
                checker_extra_cycles: k,
                ..BusConfig::default()
            };
            let mut sim = BusSim::build(cfg, Box::new(AllowAll), None);
            sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x1000, count));
            let report = sim.run_to_completion(1_000_000);
            check!(report.completed);
            let makespan = report.makespan();
            check!(makespan >= prev, "k={} {} < {}", k, makespan, prev);
            prev = makespan;
        }
        Ok(())
    });
}

/// A violating run never transfers bytes, under either violation mode.
#[test]
fn denied_traffic_moves_no_data() {
    prop_check(64, |g| {
        let kind = arb_kind(g);
        let count = g.usize(1..40);
        let truncates = g.bool();
        let cfg = BusConfig {
            bus_error_truncates: truncates,
            ..BusConfig::default()
        };
        let mut sim = BusSim::build(
            cfg,
            Box::new(DenyRange {
                base: 0,
                len: u64::MAX,
            }),
            None,
        );
        sim.add_master(MasterProgram::uniform(1, kind, 0x1000, count));
        let report = sim.run_to_completion(1_000_000);
        check!(report.completed);
        check_eq!(report.masters[0].bytes_transferred, 0);
        check_eq!(report.masters[0].bursts_ok, 0);
        let denied = report.masters[0].bursts_masked + report.masters[0].bursts_bus_error;
        check_eq!(denied, count);
        Ok(())
    });
}

/// Raising the outstanding limit never reduces throughput.
#[test]
fn outstanding_monotone_throughput() {
    prop_check(48, |g| {
        let count = g.usize(16..64);
        let mut prev = 0.0f64;
        for outstanding in [1usize, 2, 4, 8] {
            let mut sim = BusSim::build(BusConfig::default(), Box::new(AllowAll), None);
            sim.add_master(
                MasterProgram::uniform(1, BurstKind::Read, 0x1000, count)
                    .with_outstanding(outstanding),
            );
            let report = sim.run_to_completion(1_000_000);
            let bpc = report.bytes_per_cycle();
            check!(bpc >= prev * 0.999, "outstanding={outstanding}");
            prev = bpc;
        }
        Ok(())
    });
}

/// Centralized placement is never faster than per-device placement.
#[test]
fn centralized_never_beats_per_device() {
    prop_check(48, |g| {
        let count = g.usize(4..40);
        let per_device = BusConfig::default().with_placement(siopmp::config::Placement::PerDevice);
        let centralized =
            BusConfig::default().with_placement(siopmp::config::Placement::Centralized);
        let run = |cfg: BusConfig| {
            let mut sim = BusSim::build(cfg, Box::new(AllowAll), None);
            sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x1000, count));
            sim.run_to_completion(1_000_000).makespan()
        };
        check!(run(per_device) <= run(centralized));
        Ok(())
    });
}

/// Deterministic trace-level check: the error response of a bus-error
/// violation arrives exactly `checker_extra + 1` cycles after issue.
#[test]
fn bus_error_response_timing_exact() {
    for k in 0..3u32 {
        let cfg = BusConfig {
            checker_extra_cycles: k,
            bus_error_truncates: true,
            ..BusConfig::default()
        };
        let mut sim = BusSim::build(
            cfg,
            Box::new(DenyRange {
                base: 0,
                len: u64::MAX,
            }),
            None,
        );
        sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 1));
        sim.enable_trace(16);
        let report = sim.run_to_completion(10_000);
        assert!(report.completed);
        let trace = sim.trace().unwrap();
        let issued = trace.of_kind(TraceKind::Issued).next().unwrap().cycle;
        let completed = trace.completions(0)[0].cycle;
        assert_eq!(completed - issued, u64::from(k) + 1, "k={k}");
    }
}
