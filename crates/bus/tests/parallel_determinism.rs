//! Determinism differential: chaos-style pinned-seed multi-domain
//! schedules run at several worker-thread counts must produce
//! byte-identical reports and merged telemetry (violation rings
//! included).
//!
//! Each schedule assembles four domains, each owning a disjoint address
//! window and running its own sIOPMP-policed [`siopmp_bus::BusSim`]:
//! a legal local reader, a cross-domain writer targeting the next
//! domain's window (authorised both at the source and — hierarchical
//! double-check — at the destination), and a stray writer whose window
//! is read-only, so every domain logs violations. Per-domain fault
//! plans ([`FaultPlan::for_domain`]) add SID block storms and data-plane
//! faults on top, with bounded retries absorbing the transients.
//!
//! The CI matrix re-runs this suite with `SIOPMP_THREADS` set to each
//! leg's thread count; the value is appended to the built-in `[1, 2, 4,
//! 8]` sweep so a determinism break at any matrix point fails the leg.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex};
use siopmp::telemetry::Telemetry;
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_bus::parallel::{DomainSpec, ParallelSim};
use siopmp_bus::{BurstKind, FaultPlan, FaultPlanConfig, MasterProgram, RetryPolicy, SiopmpPolicy};

const DOMAINS: usize = 4;
const EPOCH_CYCLES: u64 = 96;
const MAX_CYCLES: u64 = 200_000;

fn window(domain: usize) -> (u64, u64) {
    (0x10_0000 * (domain as u64 + 1), 0x10_0000)
}

fn entry(base: u64, len: u64, perms: Permissions) -> IopmpEntry {
    IopmpEntry::new(AddressRange::new(base, len).unwrap(), perms)
}

/// Device IDs are globally unique so cross-domain bursts arrive at the
/// destination under their original (source) identity.
fn devices(domain: usize) -> (u64, u64, u64) {
    let d = domain as u64;
    (d * 10 + 1, d * 10 + 2, d * 10 + 3)
}

/// One domain's sIOPMP unit, built against the shard's own telemetry
/// registry. It authorises the local reader over the home window, the
/// local cross writer over the *next* domain's window (source-side
/// egress check), the previous domain's cross writer over the home
/// window (destination-side ingress check), and gives the stray writer
/// a read-only window so its writes are denied.
fn domain_unit(domain: usize, telemetry: Telemetry) -> (Siopmp, FaultPlanConfig) {
    let (base, _) = window(domain);
    let (next_base, _) = window((domain + 1) % DOMAINS);
    let (local, cross, stray) = devices(domain);
    let (_, prev_cross, _) = devices((domain + DOMAINS - 1) % DOMAINS);

    let mut unit = Siopmp::build(SiopmpConfig::small(), telemetry);
    let mut sids = Vec::new();
    for (dev, md, win_base, perms) in [
        (local, 0u16, base, Permissions::rw()),
        (cross, 1, next_base, Permissions::rw()),
        (stray, 2, base + 0x2000, Permissions::read_only()),
        (prev_cross, 3, base, Permissions::rw()),
    ] {
        let sid = unit.map_hot_device(DeviceId(dev)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(md)).unwrap();
        unit.install_entry(MdIndex(md), entry(win_base, 0x1000, perms))
            .unwrap();
        sids.push(sid);
    }
    let plan_config = FaultPlanConfig {
        horizon: 500,
        budget: 10,
        masters: 3,
        block_sids: sids,
        cold_devices: vec![],
        churn_devices: vec![],
    };
    (unit, plan_config)
}

fn domain_masters(domain: usize) -> Vec<MasterProgram> {
    let (base, _) = window(domain);
    let (next_base, _) = window((domain + 1) % DOMAINS);
    let (local, cross, stray) = devices(domain);
    let retry = RetryPolicy::bounded(3, 2);
    vec![
        MasterProgram::streaming(local, BurstKind::Read, base, 64, 10)
            .with_outstanding(2)
            .with_retry(retry),
        MasterProgram::streaming(cross, BurstKind::Write, next_base, 64, 6)
            .with_outstanding(2)
            .with_retry(retry),
        // Stray: writes into its own read-only window — denied under
        // every reachable configuration, retried until exhaustion.
        MasterProgram::streaming(stray, BurstKind::Write, base + 0x2000, 64, 4).with_retry(retry),
    ]
}

fn build_sim(seed: u64, threads: usize) -> ParallelSim {
    let mut psim = ParallelSim::new(EPOCH_CYCLES, threads);
    for domain in 0..DOMAINS {
        let telemetry = Telemetry::new();
        let (unit, plan_config) = domain_unit(domain, telemetry.clone());
        let (base, len) = window(domain);
        let mut spec = DomainSpec::for_policy(SiopmpPolicy::new(unit))
            .with_home_window(base, len)
            .with_fault_plan(FaultPlan::for_domain(seed, domain as u64, &plan_config))
            .with_telemetry(telemetry);
        for program in domain_masters(domain) {
            spec = spec.with_master(program);
        }
        psim.add_domain(spec);
    }
    psim
}

/// Threads to sweep: the fixed matrix plus whatever the CI leg pins via
/// `SIOPMP_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if let Ok(env) = std::env::var("SIOPMP_THREADS") {
        let extra: usize = env
            .parse()
            .unwrap_or_else(|_| panic!("SIOPMP_THREADS must be a thread count, got {env:?}"));
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

#[test]
fn thread_count_never_changes_reports_or_telemetry() {
    for seed in [0x5EED_0001u64, 0xC0FF_EE42, 7] {
        let (want_report, want_telemetry) = {
            let mut psim = build_sim(seed, 1);
            let report = psim.run(MAX_CYCLES);
            assert!(report.completed, "seed {seed:#x} must drain");
            (
                report.to_json().pretty(),
                psim.telemetry().snapshot().to_json().pretty(),
            )
        };
        for threads in thread_counts() {
            let mut psim = build_sim(seed, threads);
            let report = psim.run(MAX_CYCLES);
            assert_eq!(
                report.to_json().pretty(),
                want_report,
                "seed {seed:#x}, threads {threads}: report diverged"
            );
            assert_eq!(
                psim.telemetry().snapshot().to_json().pretty(),
                want_telemetry,
                "seed {seed:#x}, threads {threads}: merged telemetry \
                 (counters, histograms, violation rings) diverged"
            );
        }
    }
}

/// The schedule must actually exercise the machinery the differential
/// claims to cover: cross-domain exchange, violations in every domain's
/// ring, and retries — otherwise the byte-equality above is vacuous.
#[test]
fn pinned_schedule_exercises_cross_traffic_violations_and_retries() {
    let mut psim = build_sim(0x5EED_0001, 2);
    let report = psim.run(MAX_CYCLES);
    assert!(report.completed);
    let telemetry = psim.telemetry();
    assert!(
        telemetry.counter("parallel.cross_domain_bursts").get() >= DOMAINS as u64,
        "every domain's cross writer must produce egress"
    );
    assert_eq!(telemetry.counter("parallel.unrouted_egress").get(), 0);
    assert!(
        telemetry.counter("siopmp.violations").get() > 0
            || report.masters.iter().any(|m| m.bursts_bus_error > 0),
        "stray writers must be denied"
    );
    let snapshot = telemetry.snapshot();
    let ring = snapshot
        .rings
        .get("siopmp.violation_events")
        .expect("violation ring folded into the merged registry");
    assert!(!ring.events.is_empty());
    assert!(telemetry.counter("bus.retries").get() > 0);
}
