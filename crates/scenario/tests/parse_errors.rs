//! Error-message snapshots: the parser promises messages precise enough
//! to fix the file without reading the parser. Each case pins the exact
//! line number and message, so a wording change is a conscious decision
//! (update the snapshot) rather than drift.

use siopmp_scenario::parse;

fn error_of(text: &str) -> String {
    parse(text)
        .expect_err("snapshot inputs must fail to parse")
        .to_string()
}

#[test]
fn first_directive_must_be_scenario() {
    assert_eq!(
        error_of("domain d0\n"),
        "line 1: expected `scenario <name>` as the first directive"
    );
}

#[test]
fn empty_input_is_reported() {
    assert_eq!(
        error_of(""),
        "line 0: empty scenario: no `scenario <name>` directive found"
    );
}

#[test]
fn bad_scenario_name() {
    assert_eq!(
        error_of("scenario Bad.Name\n"),
        "line 1: scenario name `Bad.Name` must match [a-z0-9_-]+"
    );
}

#[test]
fn duplicate_config() {
    assert_eq!(
        error_of("scenario t\nconfig sids=8\nconfig mds=8\n"),
        "line 3: duplicate `config` directive"
    );
}

#[test]
fn unknown_config_key() {
    assert_eq!(
        error_of("scenario t\nconfig zids=8\n"),
        "line 2: unknown `config` key `zids`"
    );
}

#[test]
fn non_numeric_value() {
    assert_eq!(
        error_of("scenario t\nconfig sids=many\n"),
        "line 2: `sids` expects a number, got `many`"
    );
}

#[test]
fn unknown_checker_spelling() {
    assert_eq!(
        error_of("scenario t\nconfig checker=quantum\n"),
        "line 2: unknown checker `quantum` (use linear, pipelined:<stages>, tree:<arity> or mt:<stages>:<arity>)"
    );
}

#[test]
fn domain_scoped_directive_outside_domain() {
    assert_eq!(
        error_of("scenario t\nmaster device=1 kind=read mode=uniform base=0 count=1\n"),
        "line 2: `master` must appear inside a `domain` block"
    );
}

#[test]
fn empty_device_range() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  device 5..5 hot\n"),
        "line 3: device range `5..5` is empty"
    );
}

#[test]
fn device_needs_temperature() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  device 5\n"),
        "line 3: `device` requires `hot` or `cold` after the ID"
    );
}

#[test]
fn record_needs_a_cold_device() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  device 1 hot\n  record 0x0 0x1000 rw\n"),
        "line 4: `record` must follow a `device ... cold` declaration"
    );
}

#[test]
fn bad_permissions() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  entry md=0 0x0 0x1000 rwx\n"),
        "line 3: unknown permissions `rwx` (use r, w or rw)"
    );
}

#[test]
fn stream_requires_stride() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  master device=1 kind=read mode=stream base=0 count=4\n"),
        "line 3: `master` with mode=stream requires stride=<bytes>"
    );
}

#[test]
fn stride_rejected_for_uniform() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  master device=1 kind=read mode=uniform base=0 stride=64 count=4\n"),
        "line 3: `stride` only applies to mode=stream"
    );
}

#[test]
fn then_needs_a_master() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  then kind=read mode=uniform base=0 count=1\n"),
        "line 3: `then` must follow a `master` line"
    );
}

#[test]
fn retry_sid_missing_needs_retry() {
    assert_eq!(
        error_of(
            "scenario t\ndomain d\n  master device=1 kind=read mode=uniform base=0 count=1 retry_sid_missing\n"
        ),
        "line 3: `retry_sid_missing` requires a `retry=` option first"
    );
}

#[test]
fn faults_require_the_three_keys() {
    assert_eq!(
        error_of("scenario t\ndomain d\n  faults seed=7\n"),
        "line 3: `faults` requires seed=, horizon= and budget="
    );
}

#[test]
fn unknown_metric_lists_the_known_ones() {
    let msg = error_of("scenario t\ndomain d\nexpect velocity == 3\n");
    assert!(
        msg.starts_with("line 3: unknown metric `velocity` (known: cycles, makespan,"),
        "{msg}"
    );
    assert!(msg.contains("total_ok"), "{msg}");
}

#[test]
fn unknown_comparison() {
    assert_eq!(
        error_of("scenario t\ndomain d\nexpect cycles ~= 3\n"),
        "line 3: unknown comparison `~=` (use == != <= >= < >)"
    );
}

#[test]
fn explore_requires_entries() {
    assert_eq!(
        error_of("scenario t\nexplore cam_ways=16,64\n"),
        "line 2: `explore` requires entries=<list>"
    );
}

#[test]
fn explore_rejects_malformed_ranges() {
    assert_eq!(
        error_of("scenario t\nexplore entries\n"),
        "line 2: `explore` expects key=value pairs, got `entries`"
    );
    assert_eq!(
        error_of("scenario t\nexplore entries=0\n"),
        "line 2: `explore` entries values must be at least 1"
    );
    assert_eq!(
        error_of("scenario t\nexplore entries=64 cam_ways=0\n"),
        "line 2: `explore` cam_ways values must be at least 1"
    );
    assert_eq!(
        error_of("scenario t\nexplore entries=64 stages=0\n"),
        "line 2: `explore` stages values must be between 1 and 8"
    );
    assert_eq!(
        error_of("scenario t\nexplore entries=64 stages=9\n"),
        "line 2: `explore` stages values must be between 1 and 8"
    );
    assert_eq!(
        error_of("scenario t\nexplore entries=64 shards=65\n"),
        "line 2: `explore` shards values must be between 1 and 64"
    );
}

#[test]
fn explore_rejects_unknown_keys_and_duplicates() {
    assert_eq!(
        error_of("scenario t\nexplore entries=64 depth=3\n"),
        "line 2: unknown `explore` key `depth`"
    );
    assert_eq!(
        error_of("scenario t\nexplore entries=64\nexplore entries=128\n"),
        "line 3: duplicate `explore` directive"
    );
}

#[test]
fn unknown_directive() {
    assert_eq!(
        error_of("scenario t\nfrobnicate 7\n"),
        "line 2: unknown directive `frobnicate`"
    );
}

#[test]
fn comments_do_not_shift_line_numbers() {
    assert_eq!(
        error_of("# header\nscenario t\n# more\n\nbogus\n"),
        "line 5: unknown directive `bogus`"
    );
}
