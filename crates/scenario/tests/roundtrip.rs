//! The canonical-form contract: for every valid scenario value `s`,
//! `parse(render(s)) == s`. The generator below covers the whole AST —
//! every checker/violation/placement variant, hot and cold devices,
//! device ranges, records, locked entries, chained traffic, retry
//! policies, fault schedules, home windows, and all three expectation
//! kinds — so a renderer that forgets a field or a parser that
//! mis-reads one falsifies the property immediately.

use siopmp_scenario::ast::*;
use siopmp_scenario::{parse, render};
use siopmp_testkit::{check, prop_check, Gen};

fn gen_perms(g: &mut Gen) -> Perms {
    *g.choose(&[Perms::R, Perms::W, Perms::Rw])
}

fn gen_traffic(g: &mut Gen) -> TrafficDecl {
    TrafficDecl {
        kind: *g.choose(&[Kind::Read, Kind::Write]),
        mode: if g.bool() {
            Mode::Uniform
        } else {
            Mode::Stream {
                stride: g.u64(1..4096),
            }
        },
        base: g.u64(0..0x1_0000_0000),
        count: g.usize(1..1000),
    }
}

fn gen_domain(g: &mut Gen, index: usize) -> Domain {
    let mut d = Domain::named(format!("dom{index}"));
    d.home = g
        .bool()
        .then(|| (g.u64(0..0x1_0000_0000), g.u64(1..0x100_0000)));
    for i in 0..g.usize(0..4) {
        let first = (i as u64) * 2000 + g.u64(1..1000);
        let count = g.u64(1..50);
        let mds = g.vec(0..3, |g| g.u16(0..8));
        let kind = if g.bool() {
            DeviceKind::Hot { mds }
        } else {
            DeviceKind::Cold {
                mds,
                records: g.vec(0..3, |g| RecordDecl {
                    base: g.u64(0..0x1_0000_0000),
                    len: g.u64(1..0x10_0000),
                    perms: gen_perms(g),
                }),
            }
        };
        d.devices.push(DeviceDecl { first, count, kind });
    }
    d.entries = g.vec(0..4, |g| EntryDecl {
        md: g.u16(0..8),
        base: g.u64(0..0x1_0000_0000),
        len: g.u64(1..0x10_0000),
        perms: gen_perms(g),
        locked: g.bool(),
    });
    d.blocks = g.vec(0..3, |g| g.u64(1..1000));
    d.masters = g.vec(0..3, |g| MasterDecl {
        device: g.u64(1..1000),
        programs: g.vec(1..4, gen_traffic),
        outstanding: g.usize(1..8),
        retry: g.bool().then(|| RetryDecl {
            max: g.u32(1..16),
            backoff: g.u64(1..64),
            sid_missing: g.bool(),
        }),
    });
    d.faults = g.bool().then(|| FaultDecl {
        seed: g.u64(0..u64::MAX),
        horizon: g.u64(1..100_000),
        budget: g.usize(1..256),
        block: g.vec(0..3, |g| g.u64(1..1000)),
        cold: g.vec(0..3, |g| g.u64(1..1000)),
        churn: g.vec(0..3, |g| g.u64(1..1000)),
    });
    d
}

fn gen_scenario(g: &mut Gen) -> Scenario {
    let mut s = Scenario::named(format!("scn-{}", g.u64(0..1_000_000)));
    s.description = g
        .bool()
        .then(|| format!("generated scenario variant {}", g.u64(0..1000)));
    s.unit = UnitParams {
        sids: g.usize(2..2048),
        mds: g.usize(2..2048),
        entries: g.usize(2..65536),
        cold_entries: g.usize(1..64),
        cache: g.usize(1..8192),
        log: g.usize(1..16384),
        checker: match g.u32(0..4) {
            0 => Checker::Linear,
            1 => Checker::Pipelined {
                stages: g.u8(1..16),
            },
            2 => Checker::Tree { arity: g.u8(2..16) },
            _ => Checker::Mt {
                stages: g.u8(1..16),
                arity: g.u8(2..16),
            },
        },
        violation: *g.choose(&[Violation::Masking, Violation::BusError]),
        placement: *g.choose(&[PlacementSpec::PerDevice, PlacementSpec::Centralized]),
        mountable: g.bool(),
    };
    s.bus = BusParams {
        bytes: g.u64(1..128),
        beats: g.u32(1..64),
        read_latency: g.u32(0..100),
        write_latency: g.u32(0..100),
        issue_gap: g.u32(0..16),
        derive_checker: g.bool(),
    };
    s.fleet = g.bool().then(|| FleetParams {
        rate: g.u64(1..100_000),
        burst: g.u64(1..10_000),
        deadline: g.bool().then(|| g.u64(1..1_000_000)),
        retry: g.bool().then(|| (g.u32(1..16), g.u64(1..64))),
    });
    // The explore stanza preserves written order and duplicates (lists
    // are canonicalized at sweep time, not parse time), so the generator
    // emits unsorted, repeating lists on purpose.
    s.explore = g.bool().then(|| ExploreParams {
        entries: g.vec(1..4, |g| g.u64(1..65536)),
        cam_ways: g.vec(1..4, |g| g.u64(1..1024)),
        stages: g.vec(1..4, |g| g.u64(1..9)),
        cache: g.vec(1..4, |g| g.u64(0..16384)),
        shards: g.vec(1..4, |g| g.u64(1..65)),
    });
    let domains = g.usize(1..4);
    for i in 0..domains {
        s.domains.push(gen_domain(g, i));
    }
    s.run = RunParams {
        max_cycles: g.u64(1..10_000_000),
        epoch: g.u64(1..100_000),
        threads: g.bool().then(|| g.usize(1..16)),
    };
    s.expects = g.vec(0..4, |g| match g.u32(0..3) {
        0 => Expectation::Completed,
        1 => Expectation::LintClean,
        _ => Expectation::Metric {
            metric: g.choose(&Metric::ALL).0,
            op: *g.choose(&[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Le,
                CmpOp::Ge,
                CmpOp::Lt,
                CmpOp::Gt,
            ]),
            value: g.u64(0..1_000_000),
        },
    });
    s
}

#[test]
fn parse_render_roundtrip_is_identity() {
    prop_check(200, |g| {
        let s = gen_scenario(g);
        let text = render(&s);
        let back =
            parse(&text).map_err(|e| format!("render output failed to parse: {e}\n{text}"))?;
        check!(back == s, "roundtrip mismatch\n--- rendered ---\n{text}");
        Ok(())
    });
}

#[test]
fn render_is_a_fixed_point() {
    // render(parse(render(s))) == render(s): the canonical form does not
    // drift when re-rendered.
    prop_check(50, |g| {
        let s = gen_scenario(g);
        let once = render(&s);
        let twice = render(&parse(&once).map_err(|e| e.to_string())?);
        check!(
            once == twice,
            "canonical form drifted:\n{once}\n-- vs --\n{twice}"
        );
        Ok(())
    });
}
