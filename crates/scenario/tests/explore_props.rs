//! Property suite for the design-space explorer. The expensive moving
//! parts (the workload sample) are replaced by a deterministic per-depth
//! cycle table via [`evaluate_with_sim`], so the dominance and
//! permutation properties run over a thousand seeded sweeps in test
//! time; the thread-invariance property drives the real [`Explorer`]
//! (and its real simulations) over a handful of seeds.

use siopmp::explore::{dominates, evaluate, DesignPoint, Objectives, Sweep};
use siopmp_scenario::{evaluate_with_sim, Explorer};
use siopmp_testkit::{check, prop_check, Gen};

/// A deterministic stand-in for the simulated p99, shaped like the real
/// sample: each extra pipeline stage adds one cycle to the tail (the
/// committed workload measures 84/85/86 cycles at 1/2/3 stages).
fn fake_sim(stages: u8) -> u64 {
    83 + u64::from(stages)
}

/// A random small sweep: one to three values per axis, drawn from the
/// interesting corners of each range.
fn gen_sweep(g: &mut Gen) -> Sweep {
    Sweep {
        entries: g.vec(1..4, |g| *g.choose(&[16, 64, 256, 512, 1024, 2048, 4096])),
        cam_ways: g.vec(1..4, |g| *g.choose(&[2, 8, 16, 17, 64, 128])),
        stages: g.vec(1..4, |g| *g.choose(&[1, 2, 3, 4, 6, 8])),
        cache_slots: g.vec(1..4, |g| *g.choose(&[0, 16, 256, 1024, 4096])),
        shards: g.vec(1..3, |g| *g.choose(&[1, 2, 4, 8])),
    }
}

/// Fisher–Yates driven by the test PRNG.
fn shuffle<T>(g: &mut Gen, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        items.swap(i, g.usize(0..i + 1));
    }
}

#[test]
fn no_frontier_point_is_dominated_by_any_swept_point() {
    // The headline Pareto invariant, over 1k+ seeded sweeps: every
    // frontier member survives a dominance check against *every* swept
    // point — routable or not — via the raw `dominates` oracle rather
    // than the frontier computation under test.
    prop_check(1024, |g| {
        let out = evaluate_with_sim(&gen_sweep(g), fake_sim);
        let objs: Vec<Objectives> = out
            .points
            .iter()
            .map(|r| r.cost.objectives(r.p99_ns))
            .collect();
        let any_routable = out.points.iter().any(|r| r.cost.timing.routable);
        check!(
            out.frontier().is_empty() != any_routable,
            "frontier must be non-empty exactly when a routable point exists"
        );
        for (i, r) in out.points.iter().enumerate() {
            if !r.frontier {
                continue;
            }
            for (j, other) in objs.iter().enumerate() {
                check!(
                    !dominates(other, &objs[i]),
                    "frontier point {:?} dominated by {:?}",
                    r.cost.point,
                    out.points[j].cost.point
                );
            }
        }
        Ok(())
    });
}

#[test]
fn area_is_monotone_in_entries_and_cam_ways() {
    prop_check(1024, |g| {
        let base = DesignPoint {
            entries: g.usize(1..4096),
            cam_ways: g.usize(1..512),
            stages: g.u8(1..9),
            cache_slots: g.usize(0..8192),
            shards: *g.choose(&[1, 2, 4, 8]),
        };
        let a = evaluate(base).area_pct();
        // Growing the table can never shrink the checker (weak: sharding
        // quantizes per-shard tables, so equal ceilings tie).
        let more_entries = evaluate(DesignPoint {
            entries: base.entries + g.usize(1..4096),
            ..base
        })
        .area_pct();
        check!(
            more_entries >= a,
            "area fell when entries grew from {:?}",
            base
        );
        // Every extra CAM way costs LUTs and FFs (strict).
        let more_ways = evaluate(DesignPoint {
            cam_ways: base.cam_ways + g.usize(1..512),
            ..base
        })
        .area_pct();
        check!(more_ways > a, "area fell when CAM grew from {:?}", base);
        Ok(())
    });
}

#[test]
fn explore_output_is_invariant_under_sweep_order_permutation() {
    // The `.scn` stanza preserves written order; the explorer must not.
    prop_check(1024, |g| {
        let sweep = gen_sweep(g);
        let mut shuffled = sweep.clone();
        shuffle(g, &mut shuffled.entries);
        shuffle(g, &mut shuffled.cam_ways);
        shuffle(g, &mut shuffled.stages);
        shuffle(g, &mut shuffled.cache_slots);
        shuffle(g, &mut shuffled.shards);
        let a = evaluate_with_sim(&sweep, fake_sim).payload().pretty();
        let b = evaluate_with_sim(&shuffled, fake_sim).payload().pretty();
        check!(a == b, "permuting sweep axes changed the output");
        Ok(())
    });
}

#[test]
fn real_explorer_is_thread_invariant() {
    // `--threads 1` vs `4` over real workload samples: ParallelSim is
    // byte-deterministic, so the whole envelope payload must agree.
    // Fewer cases than the model-only properties — each distinct
    // pipeline depth costs a real simulation.
    prop_check(4, |g| {
        let sweep = Sweep {
            stages: g.vec(1..3, |g| *g.choose(&[1, 2, 3])),
            ..gen_sweep(g)
        };
        let a = Explorer::new(Some(1))
            .evaluate(&sweep)
            .map_err(|e| e.to_string())?;
        let b = Explorer::new(Some(4))
            .evaluate(&sweep)
            .map_err(|e| e.to_string())?;
        check!(
            a.payload().pretty() == b.payload().pretty(),
            "threads=1 and threads=4 disagree"
        );
        Ok(())
    });
}

#[test]
fn paper_point_survives_any_sweep_that_contains_it() {
    // The calibrated design point is never dominated: capacities are
    // objectives, so bigger tables pay area and smaller ones fail the
    // capacity axes.
    prop_check(256, |g| {
        let mut sweep = gen_sweep(g);
        let p = DesignPoint::paper();
        sweep.entries.push(p.entries);
        sweep.cam_ways.push(p.cam_ways);
        sweep.stages.push(p.stages);
        sweep.cache_slots.push(p.cache_slots);
        sweep.shards.push(p.shards);
        let out = evaluate_with_sim(&sweep, fake_sim);
        check!(out.paper_point_swept(), "paper point missing from sweep");
        if !out.paper_point_on_frontier() {
            let paper = out.points.iter().find(|r| r.paper).expect("swept");
            let pobj = paper.cost.objectives(paper.p99_ns);
            let dominator = out
                .points
                .iter()
                .find(|r| dominates(&r.cost.objectives(r.p99_ns), &pobj));
            check!(
                false,
                "paper point {:?} dominated by {:?}",
                pobj,
                dominator.map(|r| (r.cost.point, r.cost.objectives(r.p99_ns)))
            );
        }
        Ok(())
    });
}
