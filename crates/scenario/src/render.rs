//! Canonical renderer: [`Scenario`] → `.scn` text.
//!
//! The output is the normal form of the format: every `config`/`bus`/`run`
//! key is spelled explicitly (defaults included), addresses and lengths
//! print as hex, counts as decimal. [`crate::parse::parse`] inverts this
//! exactly — `parse(render(s)) == s` for every valid scenario — which is
//! what makes the format safe to machine-generate, normalize and diff.

use crate::ast::*;
use std::fmt::Write as _;

fn perms_str(p: Perms) -> &'static str {
    match p {
        Perms::R => "r",
        Perms::W => "w",
        Perms::Rw => "rw",
    }
}

fn checker_str(c: Checker) -> String {
    match c {
        Checker::Linear => "linear".to_string(),
        Checker::Pipelined { stages } => format!("pipelined:{stages}"),
        Checker::Tree { arity } => format!("tree:{arity}"),
        Checker::Mt { stages, arity } => format!("mt:{stages}:{arity}"),
    }
}

fn on_off(v: bool) -> &'static str {
    if v {
        "on"
    } else {
        "off"
    }
}

fn list(ids: &[u64]) -> String {
    ids.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn md_list(mds: &[u16]) -> String {
    mds.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn traffic(out: &mut String, t: &TrafficDecl) {
    let kind = match t.kind {
        Kind::Read => "read",
        Kind::Write => "write",
    };
    match t.mode {
        Mode::Uniform => {
            let _ = write!(
                out,
                "kind={kind} mode=uniform base={:#x} count={}",
                t.base, t.count
            );
        }
        Mode::Stream { stride } => {
            let _ = write!(
                out,
                "kind={kind} mode=stream base={:#x} stride={stride} count={}",
                t.base, t.count
            );
        }
    }
}

/// Renders `scenario` in canonical `.scn` form.
pub fn render(scenario: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", scenario.name);
    if let Some(d) = &scenario.description {
        let _ = writeln!(out, "describe {d}");
    }
    let u = &scenario.unit;
    let _ = writeln!(
        out,
        "config sids={} mds={} entries={} cold_entries={} cache={} log={} checker={} violation={} placement={} mountable={}",
        u.sids,
        u.mds,
        u.entries,
        u.cold_entries,
        u.cache,
        u.log,
        checker_str(u.checker),
        match u.violation {
            Violation::Masking => "masking",
            Violation::BusError => "bus_error",
        },
        match u.placement {
            PlacementSpec::PerDevice => "per_device",
            PlacementSpec::Centralized => "centralized",
        },
        on_off(u.mountable),
    );
    let b = &scenario.bus;
    let _ = writeln!(
        out,
        "bus bytes={} beats={} read_latency={} write_latency={} issue_gap={} derive_checker={}",
        b.bytes,
        b.beats,
        b.read_latency,
        b.write_latency,
        b.issue_gap,
        on_off(b.derive_checker),
    );
    if let Some(f) = &scenario.fleet {
        let mut line = format!("fleet rate={} burst={}", f.rate, f.burst);
        if let Some(d) = f.deadline {
            let _ = write!(line, " deadline={d}");
        }
        if let Some((max, backoff)) = f.retry {
            let _ = write!(line, " retry={max}:{backoff}");
        }
        let _ = writeln!(out, "{line}");
    }
    if let Some(e) = &scenario.explore {
        let _ = writeln!(
            out,
            "explore entries={} cam_ways={} stages={} cache={} shards={}",
            list(&e.entries),
            list(&e.cam_ways),
            list(&e.stages),
            list(&e.cache),
            list(&e.shards),
        );
    }
    for domain in &scenario.domains {
        let _ = writeln!(out, "\ndomain {}", domain.name);
        if let Some((base, len)) = domain.home {
            let _ = writeln!(out, "  home {base:#x} {len:#x}");
        }
        for dev in &domain.devices {
            let range = if dev.count == 1 {
                format!("{}", dev.first)
            } else {
                format!("{}..{}", dev.first, dev.first + dev.count)
            };
            match &dev.kind {
                DeviceKind::Hot { mds } => {
                    if mds.is_empty() {
                        let _ = writeln!(out, "  device {range} hot");
                    } else {
                        let _ = writeln!(out, "  device {range} hot md={}", md_list(mds));
                    }
                }
                DeviceKind::Cold { mds, records } => {
                    if mds.is_empty() {
                        let _ = writeln!(out, "  device {range} cold");
                    } else {
                        let _ = writeln!(out, "  device {range} cold md={}", md_list(mds));
                    }
                    for r in records {
                        let _ = writeln!(
                            out,
                            "  record {:#x} {:#x} {}",
                            r.base,
                            r.len,
                            perms_str(r.perms)
                        );
                    }
                }
            }
        }
        for e in &domain.entries {
            let locked = if e.locked { " locked" } else { "" };
            let _ = writeln!(
                out,
                "  entry md={} {:#x} {:#x} {}{locked}",
                e.md,
                e.base,
                e.len,
                perms_str(e.perms)
            );
        }
        for b in &domain.blocks {
            let _ = writeln!(out, "  block {b}");
        }
        for m in &domain.masters {
            let mut line = format!("  master device={} ", m.device);
            traffic(&mut line, &m.programs[0]);
            if m.outstanding != 1 {
                let _ = write!(line, " outstanding={}", m.outstanding);
            }
            if let Some(r) = &m.retry {
                let _ = write!(line, " retry={}:{}", r.max, r.backoff);
                if r.sid_missing {
                    line.push_str(" retry_sid_missing");
                }
            }
            let _ = writeln!(out, "{line}");
            for t in &m.programs[1..] {
                let mut line = String::from("  then ");
                traffic(&mut line, t);
                let _ = writeln!(out, "{line}");
            }
        }
        if let Some(f) = &domain.faults {
            let mut line = format!(
                "  faults seed={} horizon={} budget={}",
                f.seed, f.horizon, f.budget
            );
            if !f.block.is_empty() {
                let _ = write!(line, " block={}", list(&f.block));
            }
            if !f.cold.is_empty() {
                let _ = write!(line, " cold={}", list(&f.cold));
            }
            if !f.churn.is_empty() {
                let _ = write!(line, " churn={}", list(&f.churn));
            }
            let _ = writeln!(out, "{line}");
        }
    }
    let r = &scenario.run;
    let mut line = format!("\nrun max_cycles={} epoch={}", r.max_cycles, r.epoch);
    if let Some(t) = r.threads {
        let _ = write!(line, " threads={t}");
    }
    let _ = writeln!(out, "{line}");
    for e in &scenario.expects {
        match e {
            Expectation::Completed => {
                let _ = writeln!(out, "expect completed");
            }
            Expectation::LintClean => {
                let _ = writeln!(out, "expect lint clean");
            }
            Expectation::Metric { metric, op, value } => {
                let _ = writeln!(out, "expect {} {} {}", metric.as_str(), op.as_str(), value);
            }
        }
    }
    out
}
