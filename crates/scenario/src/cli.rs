//! The unified flag grammar shared by every binary in the workspace.
//!
//! The implementation moved to [`siopmp::cli`] so that binaries which
//! cannot depend on this crate (notably `siopmp-prove`, which the
//! `siopmp-scenario prove` subcommand itself depends on) still share the
//! exact grammar. This module re-exports it under the historical path —
//! `siopmp_scenario::cli::Spec` keeps compiling everywhere.

pub use siopmp::cli::{Args, Spec};
