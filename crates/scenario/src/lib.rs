//! # siopmp-scenario — SoC topologies as data
//!
//! The workspace grew one hand-coded Rust function per interesting
//! topology (the `repro` exercises, the bench scenarios, the example
//! SoCs). This crate replaces that pattern with a declarative, versioned
//! `.scn` format: a scenario file describes the sIOPMP unit
//! configuration, the bus timing, the domains with their devices /
//! entries / DMA masters / fault schedules, and the invariants the run is
//! expected to satisfy — and the compiler lowers it onto the *existing*
//! machinery ([`siopmp::Siopmp`], [`siopmp_bus::parallel::ParallelSim`],
//! [`siopmp_bus::FaultPlan`], [`siopmp_verify::analyze`]). Nothing is
//! simulated here; the format is a front-end, the engines stay the single
//! source of truth.
//!
//! ## The format in one example
//!
//! ```text
//! scenario quickstart
//! describe One tenant, one NIC streaming into its buffer.
//! config sids=8 mds=8 entries=32 cold_entries=4
//!
//! domain tenant0
//!   device 1 hot md=0
//!   entry md=0 0x1000 0x1000 rw
//!   master device=1 kind=read mode=stream base=0x1000 stride=64 count=4
//!
//! run max_cycles=100000
//! expect completed
//! expect total_ok == 4
//! expect lint clean
//! ```
//!
//! Directives, one per line (`#` comments, numbers decimal or `0x` hex
//! with `_` separators):
//!
//! | directive | meaning |
//! |---|---|
//! | `scenario <name>` | names the scenario; must come first |
//! | `describe <text>` | free-text description |
//! | `config k=v ...` | unit parameters: `sids mds entries cold_entries cache log checker violation placement mountable` |
//! | `bus k=v ...` | bus timing: `bytes beats read_latency write_latency issue_gap derive_checker` |
//! | `domain <name>` | opens a domain (one shard of the parallel engine) |
//! | `home <base> <len>` | the domain's owned address window |
//! | `device <id>[..<end>] hot\|cold [md=l]` | a device ID range (end exclusive); hot = hardware SID, cold = mountable table |
//! | `record <base> <len> <perms>` | an IOPMP rule of the preceding cold device |
//! | `entry md=<md> <base> <len> <perms> [locked]` | an entry installed into a memory domain |
//! | `block <id>` | blocks the hot device's SID after assembly |
//! | `master device=<id> kind=.. mode=.. base=.. [stride=..] count=.. [outstanding=..] [retry=m:b] [retry_sid_missing]` | one DMA master |
//! | `then kind=.. mode=.. base=.. [stride=..] count=..` | chains another traffic segment onto the last master |
//! | `faults seed=.. horizon=.. budget=.. [block=l] [cold=l] [churn=l]` | a seeded fault schedule for this domain |
//! | `fleet rate=.. burst=.. [deadline=..] [retry=m:b]` | admission-control limits `siopmp-serviced` applies to this scenario's tenants |
//! | `explore entries=l [cam_ways=l] [stages=l] [cache=l] [shards=l]` | design-space sweep ranges for `siopmp-scenario explore` (omitted axes pin the paper point) |
//! | `run k=v ...` | `max_cycles epoch threads` |
//! | `expect completed \| lint clean \| <metric> <op> <value>` | an invariant the run must satisfy |
//!
//! The canonical form (what [`render()`] prints) spells every `config` /
//! `bus` / `run` key explicitly; `parse(render(s)) == s` for every valid
//! scenario, pinned by the round-trip property test.
//!
//! ## Driving it from Rust
//!
//! ```
//! use siopmp_scenario::{parse, run, RunOptions};
//!
//! let text = "\
//! scenario tiny
//! config sids=8 mds=8 entries=32 cold_entries=4
//! domain d0
//!   device 1 hot md=0
//!   entry md=0 0x1000 0x1000 rw
//!   master device=1 kind=read mode=stream base=0x1000 stride=64 count=4
//! expect completed
//! ";
//! let scenario = parse(text).unwrap();
//! let outcome = run(&scenario, &RunOptions::default()).unwrap();
//! assert!(outcome.passed());
//! assert_eq!(outcome.report.masters.len(), 1);
//! ```
//!
//! The `siopmp-scenario` binary exposes the same pipeline as
//! `run | lint | bench | prove | list` subcommands with the workspace's
//! unified flag grammar ([`cli`]); the committed corpus under `corpus/`
//! is the library of shipped topologies. `prove` lowers each domain
//! into the bounded model checker ([`prove`]).

pub mod ast;
pub mod cli;
pub mod compile;
pub mod explore;
pub mod parse;
pub mod prove;
pub mod render;

pub use ast::{ExploreParams, FleetParams, Scenario};
pub use compile::{
    compile, domain_units, lint, metric_value, run, CompileError, DomainLint, DomainUnit, Outcome,
    RunOptions,
};
pub use explore::{evaluate_with_sim, sweep_from_params, ExploreOutcome, Explorer, PointReport};
pub use parse::{parse, ScnError};
pub use prove::lower;
pub use render::render;
