//! Hand-rolled parser: `.scn` text → [`Scenario`].
//!
//! The format is line-oriented: `#` starts a comment, blank lines and
//! indentation are ignored, and each remaining line is one directive
//! whose first token names it. `scenario <name>` must come first;
//! `domain <name>` opens a domain block that owns every domain-scoped
//! directive (`home`, `device`, `record`, `entry`, `block`, `master`,
//! `then`, `faults`) until the next top-level directive. Numbers accept
//! decimal or `0x` hex, with `_` separators.
//!
//! Errors carry the 1-based source line and a message precise enough to
//! fix the file without reading this module (pinned by the error-message
//! snapshot tests).

use crate::ast::*;

/// A parse failure: the offending 1-based line and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScnError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ScnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScnError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ScnError> {
    Err(ScnError {
        line,
        message: message.into(),
    })
}

/// Parses a number: decimal or `0x` hex, `_` separators allowed.
fn num(tok: &str) -> Option<u64> {
    let clean: String = tok.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        clean.parse().ok()
    }
}

fn num_or<T: TryFrom<u64>>(line: usize, key: &str, val: &str) -> Result<T, ScnError> {
    let v = num(val).ok_or_else(|| ScnError {
        line,
        message: format!("`{key}` expects a number, got `{val}`"),
    })?;
    T::try_from(v).map_err(|_| ScnError {
        line,
        message: format!("`{key}` value {v} is out of range"),
    })
}

fn split_kv(tok: &str) -> Option<(&str, &str)> {
    let (k, v) = tok.split_once('=')?;
    if k.is_empty() || v.is_empty() {
        return None;
    }
    Some((k, v))
}

fn perms(line: usize, tok: &str) -> Result<Perms, ScnError> {
    match tok {
        "r" => Ok(Perms::R),
        "w" => Ok(Perms::W),
        "rw" => Ok(Perms::Rw),
        other => err(
            line,
            format!("unknown permissions `{other}` (use r, w or rw)"),
        ),
    }
}

fn id_list(line: usize, key: &str, val: &str) -> Result<Vec<u64>, ScnError> {
    val.split(',')
        .map(|part| {
            num(part).ok_or_else(|| ScnError {
                line,
                message: format!("`{key}` expects a comma-separated ID list, got `{val}`"),
            })
        })
        .collect()
}

fn md_list_of(line: usize, val: &str) -> Result<Vec<u16>, ScnError> {
    val.split(',')
        .map(|part| {
            num(part)
                .and_then(|v| u16::try_from(v).ok())
                .ok_or_else(|| ScnError {
                    line,
                    message: format!(
                        "`md` expects a comma-separated list of domain indices, got `{val}`"
                    ),
                })
        })
        .collect()
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

/// Parses a `kind=... mode=... base=... [stride=...] count=...` traffic
/// segment from `toks`, consuming the tokens it understands and leaving
/// the rest (master-level options) to the caller.
fn traffic(
    line: usize,
    directive: &str,
    toks: &[&str],
) -> Result<(TrafficDecl, Vec<String>), ScnError> {
    let mut kind = None;
    let mut mode = None;
    let mut base = None;
    let mut stride = None;
    let mut count = None;
    let mut rest = Vec::new();
    for tok in toks {
        match split_kv(tok) {
            Some(("kind", v)) => {
                kind = Some(match v {
                    "read" => Kind::Read,
                    "write" => Kind::Write,
                    other => {
                        return err(line, format!("unknown kind `{other}` (use read or write)"))
                    }
                })
            }
            Some(("mode", v)) => {
                mode = Some(match v {
                    "uniform" => "uniform",
                    "stream" => "stream",
                    other => {
                        return err(
                            line,
                            format!("unknown mode `{other}` (use uniform or stream)"),
                        )
                    }
                })
            }
            Some(("base", v)) => base = Some(num_or::<u64>(line, "base", v)?),
            Some(("stride", v)) => stride = Some(num_or::<u64>(line, "stride", v)?),
            Some(("count", v)) => count = Some(num_or::<u64>(line, "count", v)? as usize),
            _ => rest.push(tok.to_string()),
        }
    }
    let kind = kind.ok_or_else(|| ScnError {
        line,
        message: format!("`{directive}` requires kind=read|write"),
    })?;
    let mode = mode.ok_or_else(|| ScnError {
        line,
        message: format!("`{directive}` requires mode=uniform|stream"),
    })?;
    let base = base.ok_or_else(|| ScnError {
        line,
        message: format!("`{directive}` requires base=<address>"),
    })?;
    let count = count.ok_or_else(|| ScnError {
        line,
        message: format!("`{directive}` requires count=<bursts>"),
    })?;
    if count == 0 {
        return err(line, format!("`{directive}` count must be at least 1"));
    }
    let mode = match (mode, stride) {
        ("uniform", None) => Mode::Uniform,
        ("uniform", Some(_)) => {
            return err(line, "`stride` only applies to mode=stream");
        }
        ("stream", Some(stride)) => Mode::Stream { stride },
        ("stream", None) => {
            return err(
                line,
                format!("`{directive}` with mode=stream requires stride=<bytes>"),
            );
        }
        _ => unreachable!(),
    };
    Ok((
        TrafficDecl {
            kind,
            mode,
            base,
            count,
        },
        rest,
    ))
}

/// Parses one `.scn` document.
///
/// # Errors
///
/// Returns the first [`ScnError`] encountered, with its source line.
pub fn parse(text: &str) -> Result<Scenario, ScnError> {
    let mut scenario: Option<Scenario> = None;
    // Where domain-scoped directives land; None until the first `domain`.
    let mut in_domain = false;
    let mut seen_config = false;
    let mut seen_bus = false;
    let mut seen_run = false;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("");
        let toks: Vec<&str> = stripped.split_whitespace().collect();
        let Some(&directive) = toks.first() else {
            continue;
        };
        let args = &toks[1..];

        if scenario.is_none() {
            if directive != "scenario" {
                return err(line, "expected `scenario <name>` as the first directive");
            }
            let [name] = args else {
                return err(line, "`scenario` takes exactly one name");
            };
            if !valid_name(name) {
                return err(
                    line,
                    format!("scenario name `{name}` must match [a-z0-9_-]+"),
                );
            }
            scenario = Some(Scenario::named(*name));
            continue;
        }
        let scn = scenario.as_mut().expect("checked above");

        match directive {
            "scenario" => return err(line, "duplicate `scenario` directive"),
            "describe" => {
                if scn.description.is_some() {
                    return err(line, "duplicate `describe` directive");
                }
                let text = stripped.trim_start()["describe".len()..].trim();
                if text.is_empty() {
                    return err(line, "`describe` requires a description text");
                }
                scn.description = Some(text.to_string());
            }
            "config" => {
                if seen_config {
                    return err(line, "duplicate `config` directive");
                }
                seen_config = true;
                for tok in args {
                    let Some((k, v)) = split_kv(tok) else {
                        return err(
                            line,
                            format!("`config` expects key=value pairs, got `{tok}`"),
                        );
                    };
                    match k {
                        "sids" => scn.unit.sids = num_or::<u64>(line, k, v)? as usize,
                        "mds" => scn.unit.mds = num_or::<u64>(line, k, v)? as usize,
                        "entries" => scn.unit.entries = num_or::<u64>(line, k, v)? as usize,
                        "cold_entries" => {
                            scn.unit.cold_entries = num_or::<u64>(line, k, v)? as usize
                        }
                        "cache" => scn.unit.cache = num_or::<u64>(line, k, v)? as usize,
                        "log" => scn.unit.log = num_or::<u64>(line, k, v)? as usize,
                        "checker" => {
                            let parts: Vec<&str> = v.split(':').collect();
                            scn.unit.checker = match parts.as_slice() {
                                ["linear"] => Checker::Linear,
                                ["pipelined", s] => Checker::Pipelined {
                                    stages: num_or::<u8>(line, k, s)?,
                                },
                                ["tree", a] => Checker::Tree {
                                    arity: num_or::<u8>(line, k, a)?,
                                },
                                ["mt", s, a] => Checker::Mt {
                                    stages: num_or::<u8>(line, k, s)?,
                                    arity: num_or::<u8>(line, k, a)?,
                                },
                                _ => {
                                    return err(
                                        line,
                                        format!(
                                            "unknown checker `{v}` (use linear, pipelined:<stages>, tree:<arity> or mt:<stages>:<arity>)"
                                        ),
                                    )
                                }
                            };
                        }
                        "violation" => {
                            scn.unit.violation = match v {
                                "masking" => Violation::Masking,
                                "bus_error" => Violation::BusError,
                                other => {
                                    return err(
                                        line,
                                        format!(
                                    "unknown violation mode `{other}` (use masking or bus_error)"
                                ),
                                    )
                                }
                            }
                        }
                        "placement" => {
                            scn.unit.placement = match v {
                                "per_device" => PlacementSpec::PerDevice,
                                "centralized" => PlacementSpec::Centralized,
                                other => {
                                    return err(
                                        line,
                                        format!(
                                    "unknown placement `{other}` (use per_device or centralized)"
                                ),
                                    )
                                }
                            }
                        }
                        "mountable" => {
                            scn.unit.mountable = match v {
                                "on" => true,
                                "off" => false,
                                other => {
                                    return err(
                                        line,
                                        format!("`mountable` is on or off, got `{other}`"),
                                    )
                                }
                            }
                        }
                        other => return err(line, format!("unknown `config` key `{other}`")),
                    }
                }
            }
            "bus" => {
                if seen_bus {
                    return err(line, "duplicate `bus` directive");
                }
                seen_bus = true;
                for tok in args {
                    let Some((k, v)) = split_kv(tok) else {
                        return err(line, format!("`bus` expects key=value pairs, got `{tok}`"));
                    };
                    match k {
                        "bytes" => scn.bus.bytes = num_or::<u64>(line, k, v)?,
                        "beats" => scn.bus.beats = num_or::<u32>(line, k, v)?,
                        "read_latency" => scn.bus.read_latency = num_or::<u32>(line, k, v)?,
                        "write_latency" => scn.bus.write_latency = num_or::<u32>(line, k, v)?,
                        "issue_gap" => scn.bus.issue_gap = num_or::<u32>(line, k, v)?,
                        "derive_checker" => {
                            scn.bus.derive_checker = match v {
                                "on" => true,
                                "off" => false,
                                other => {
                                    return err(
                                        line,
                                        format!("`derive_checker` is on or off, got `{other}`"),
                                    )
                                }
                            }
                        }
                        other => return err(line, format!("unknown `bus` key `{other}`")),
                    }
                }
            }
            "fleet" => {
                if scn.fleet.is_some() {
                    return err(line, "duplicate `fleet` directive");
                }
                let mut decl = FleetParams {
                    rate: 0,
                    burst: 0,
                    deadline: None,
                    retry: None,
                };
                let (mut saw_rate, mut saw_burst) = (false, false);
                for tok in args {
                    let Some((k, v)) = split_kv(tok) else {
                        return err(
                            line,
                            format!("`fleet` expects key=value pairs, got `{tok}`"),
                        );
                    };
                    match k {
                        "rate" => {
                            decl.rate = num_or(line, k, v)?;
                            saw_rate = true;
                        }
                        "burst" => {
                            decl.burst = num_or(line, k, v)?;
                            saw_burst = true;
                        }
                        "deadline" => decl.deadline = Some(num_or(line, k, v)?),
                        "retry" => {
                            let Some((max, backoff)) = v.split_once(':') else {
                                return err(line, "`fleet` retry expects retry=<max>:<backoff>");
                            };
                            decl.retry = Some((
                                num_or(line, "retry max", max)?,
                                num_or(line, "retry backoff", backoff)?,
                            ));
                        }
                        other => return err(line, format!("unknown `fleet` key `{other}`")),
                    }
                }
                if !(saw_rate && saw_burst) {
                    return err(line, "`fleet` requires rate= and burst=");
                }
                if decl.rate == 0 || decl.burst == 0 {
                    return err(line, "`fleet` rate and burst must be at least 1");
                }
                if decl.deadline == Some(0) {
                    return err(line, "`fleet` deadline must be at least 1");
                }
                scn.fleet = Some(decl);
            }
            "explore" => {
                if scn.explore.is_some() {
                    return err(line, "duplicate `explore` directive");
                }
                let mut decl = ExploreParams::default();
                let mut saw_entries = false;
                for tok in args {
                    let Some((k, v)) = split_kv(tok) else {
                        return err(
                            line,
                            format!("`explore` expects key=value pairs, got `{tok}`"),
                        );
                    };
                    match k {
                        "entries" => {
                            decl.entries = id_list(line, k, v)?;
                            saw_entries = true;
                        }
                        "cam_ways" => decl.cam_ways = id_list(line, k, v)?,
                        "stages" => decl.stages = id_list(line, k, v)?,
                        "cache" => decl.cache = id_list(line, k, v)?,
                        "shards" => decl.shards = id_list(line, k, v)?,
                        other => return err(line, format!("unknown `explore` key `{other}`")),
                    }
                }
                if !saw_entries {
                    return err(line, "`explore` requires entries=<list>");
                }
                if decl.entries.contains(&0) {
                    return err(line, "`explore` entries values must be at least 1");
                }
                if decl.cam_ways.contains(&0) {
                    return err(line, "`explore` cam_ways values must be at least 1");
                }
                if decl.stages.iter().any(|&s| !(1..=8).contains(&s)) {
                    return err(line, "`explore` stages values must be between 1 and 8");
                }
                if decl.shards.iter().any(|&s| !(1..=64).contains(&s)) {
                    return err(line, "`explore` shards values must be between 1 and 64");
                }
                scn.explore = Some(decl);
            }
            "domain" => {
                let [name] = args else {
                    return err(line, "`domain` takes exactly one name");
                };
                if !valid_name(name) {
                    return err(line, format!("domain name `{name}` must match [a-z0-9_-]+"));
                }
                if scn.domains.iter().any(|d| d.name == *name) {
                    return err(line, format!("duplicate domain name `{name}`"));
                }
                scn.domains.push(Domain::named(*name));
                in_domain = true;
            }
            "home" | "device" | "record" | "entry" | "block" | "master" | "then" | "faults"
                if !in_domain =>
            {
                return err(
                    line,
                    format!("`{directive}` must appear inside a `domain` block"),
                );
            }
            "home" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                if domain.home.is_some() {
                    return err(line, "duplicate `home` directive in this domain");
                }
                let [base, len] = args else {
                    return err(line, "`home` takes exactly `<base> <len>`");
                };
                domain.home = Some((
                    num_or(line, "home base", base)?,
                    num_or(line, "home len", len)?,
                ));
            }
            "device" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                let (range, rest) = match args {
                    [range, rest @ ..] => (range, rest),
                    [] => return err(line, "`device` takes `<id>[..<end>] hot|cold [md=<list>]`"),
                };
                let (first, count) = match range.split_once("..") {
                    Some((a, b)) => {
                        let first = num(a).ok_or_else(|| ScnError {
                            line,
                            message: format!("bad device range start `{a}`"),
                        })?;
                        let end = num(b).ok_or_else(|| ScnError {
                            line,
                            message: format!("bad device range end `{b}`"),
                        })?;
                        if end <= first {
                            return err(line, format!("device range `{range}` is empty"));
                        }
                        (first, end - first)
                    }
                    None => (
                        num(range).ok_or_else(|| ScnError {
                            line,
                            message: format!("bad device ID `{range}`"),
                        })?,
                        1,
                    ),
                };
                let (temp, options) = match rest {
                    ["hot", options @ ..] => (true, options),
                    ["cold", options @ ..] => (false, options),
                    _ => return err(line, "`device` requires `hot` or `cold` after the ID"),
                };
                let mut mds = Vec::new();
                for tok in options {
                    match split_kv(tok) {
                        Some(("md", v)) => mds = md_list_of(line, v)?,
                        _ => return err(line, format!("unknown `device` option `{tok}`")),
                    }
                }
                let kind = if temp {
                    DeviceKind::Hot { mds }
                } else {
                    DeviceKind::Cold {
                        mds,
                        records: Vec::new(),
                    }
                };
                domain.devices.push(DeviceDecl { first, count, kind });
            }
            "record" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                let [base, len, p] = args else {
                    return err(line, "`record` takes exactly `<base> <len> <perms>`");
                };
                let record = RecordDecl {
                    base: num_or(line, "record base", base)?,
                    len: num_or(line, "record len", len)?,
                    perms: perms(line, p)?,
                };
                match domain.devices.last_mut() {
                    Some(DeviceDecl {
                        kind: DeviceKind::Cold { records, .. },
                        ..
                    }) => records.push(record),
                    _ => return err(line, "`record` must follow a `device ... cold` declaration"),
                }
            }
            "entry" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                let (md, rest) = match args {
                    [first, rest @ ..] => match split_kv(first) {
                        Some(("md", v)) => (num_or::<u16>(line, "md", v)?, rest),
                        _ => return err(line, "`entry` requires md=<domain-index> first"),
                    },
                    [] => return err(line, "`entry` requires md=<domain-index> first"),
                };
                let (base, len, p, locked) = match rest {
                    [base, len, p] => (base, len, p, false),
                    [base, len, p, l] if *l == "locked" => (base, len, p, true),
                    _ => {
                        return err(
                            line,
                            "`entry` takes `md=<md> <base> <len> <perms> [locked]`",
                        )
                    }
                };
                domain.entries.push(EntryDecl {
                    md,
                    base: num_or(line, "entry base", base)?,
                    len: num_or(line, "entry len", len)?,
                    perms: perms(line, p)?,
                    locked,
                });
            }
            "block" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                let [dev] = args else {
                    return err(line, "`block` takes exactly one device ID");
                };
                domain.blocks.push(num_or(line, "block", dev)?);
            }
            "master" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                let (first, rest) = traffic(line, "master", args)?;
                let mut device = None;
                let mut outstanding = 1usize;
                let mut retry: Option<RetryDecl> = None;
                for tok in &rest {
                    match split_kv(tok) {
                        Some(("device", v)) => device = Some(num_or::<u64>(line, "device", v)?),
                        Some(("outstanding", v)) => {
                            outstanding = num_or::<u64>(line, "outstanding", v)? as usize;
                            if outstanding == 0 {
                                return err(line, "`outstanding` must be at least 1");
                            }
                        }
                        Some(("retry", v)) => {
                            let Some((max, backoff)) = v.split_once(':') else {
                                return err(line, "`retry` expects retry=<max>:<backoff>");
                            };
                            retry = Some(RetryDecl {
                                max: num_or(line, "retry max", max)?,
                                backoff: num_or(line, "retry backoff", backoff)?,
                                sid_missing: retry.map(|r| r.sid_missing).unwrap_or(false),
                            });
                        }
                        None if *tok == "retry_sid_missing" => match &mut retry {
                            Some(r) => r.sid_missing = true,
                            None => {
                                return err(
                                    line,
                                    "`retry_sid_missing` requires a `retry=` option first",
                                )
                            }
                        },
                        _ => return err(line, format!("unknown `master` option `{tok}`")),
                    }
                }
                let device = device.ok_or_else(|| ScnError {
                    line,
                    message: "`master` requires device=<id>".to_string(),
                })?;
                domain.masters.push(MasterDecl {
                    device,
                    programs: vec![first],
                    outstanding,
                    retry,
                });
            }
            "then" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                let (seg, rest) = traffic(line, "then", args)?;
                if let Some(extra) = rest.first() {
                    return err(line, format!("unknown `then` option `{extra}`"));
                }
                match domain.masters.last_mut() {
                    Some(m) => m.programs.push(seg),
                    None => return err(line, "`then` must follow a `master` line"),
                }
            }
            "faults" => {
                let domain = scn.domains.last_mut().expect("in_domain");
                if domain.faults.is_some() {
                    return err(line, "duplicate `faults` directive in this domain");
                }
                let mut decl = FaultDecl {
                    seed: 0,
                    horizon: 0,
                    budget: 0,
                    block: Vec::new(),
                    cold: Vec::new(),
                    churn: Vec::new(),
                };
                let (mut saw_seed, mut saw_horizon, mut saw_budget) = (false, false, false);
                for tok in args {
                    let Some((k, v)) = split_kv(tok) else {
                        return err(
                            line,
                            format!("`faults` expects key=value pairs, got `{tok}`"),
                        );
                    };
                    match k {
                        "seed" => {
                            decl.seed = num_or(line, k, v)?;
                            saw_seed = true;
                        }
                        "horizon" => {
                            decl.horizon = num_or(line, k, v)?;
                            saw_horizon = true;
                        }
                        "budget" => {
                            decl.budget = num_or::<u64>(line, k, v)? as usize;
                            saw_budget = true;
                        }
                        "block" => decl.block = id_list(line, k, v)?,
                        "cold" => decl.cold = id_list(line, k, v)?,
                        "churn" => decl.churn = id_list(line, k, v)?,
                        other => return err(line, format!("unknown `faults` key `{other}`")),
                    }
                }
                if !(saw_seed && saw_horizon && saw_budget) {
                    return err(line, "`faults` requires seed=, horizon= and budget=");
                }
                domain.faults = Some(decl);
            }
            "run" => {
                if seen_run {
                    return err(line, "duplicate `run` directive");
                }
                seen_run = true;
                in_domain = false;
                for tok in args {
                    let Some((k, v)) = split_kv(tok) else {
                        return err(line, format!("`run` expects key=value pairs, got `{tok}`"));
                    };
                    match k {
                        "max_cycles" => scn.run.max_cycles = num_or(line, k, v)?,
                        "epoch" => scn.run.epoch = num_or(line, k, v)?,
                        "threads" => {
                            let t = num_or::<u64>(line, k, v)? as usize;
                            if t == 0 {
                                return err(line, "`threads` must be at least 1");
                            }
                            scn.run.threads = Some(t);
                        }
                        other => return err(line, format!("unknown `run` key `{other}`")),
                    }
                }
            }
            "expect" => {
                in_domain = false;
                let expectation =
                    match args {
                        ["completed"] => Expectation::Completed,
                        ["lint", "clean"] => Expectation::LintClean,
                        [metric, op, value] => {
                            let m = Metric::from_token(metric).ok_or_else(|| ScnError {
                                line,
                                message: format!(
                                    "unknown metric `{metric}` (known: {})",
                                    Metric::ALL
                                        .iter()
                                        .map(|(_, s)| *s)
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            })?;
                            let op = CmpOp::from_token(op).ok_or_else(|| ScnError {
                                line,
                                message: format!("unknown comparison `{op}` (use == != <= >= < >)"),
                            })?;
                            Expectation::Metric {
                                metric: m,
                                op,
                                value: num_or(line, "expect value", value)?,
                            }
                        }
                        _ => return err(
                            line,
                            "`expect` takes `completed`, `lint clean` or `<metric> <op> <value>`",
                        ),
                    };
                scn.expects.push(expectation);
            }
            other => return err(line, format!("unknown directive `{other}`")),
        }
    }

    match scenario {
        Some(s) => Ok(s),
        None => err(0, "empty scenario: no `scenario <name>` directive found"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_accept_hex_and_separators() {
        assert_eq!(num("0x10"), Some(16));
        assert_eq!(num("1_000"), Some(1000));
        assert_eq!(num("0x1_0000"), Some(0x1_0000));
        assert_eq!(num("zonk"), None);
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = parse("scenario tiny\ndomain d0\n  device 1 hot md=0\n").unwrap();
        assert_eq!(s.name, "tiny");
        assert_eq!(s.unit, UnitParams::default());
        assert_eq!(s.bus, BusParams::default());
        assert_eq!(s.run, RunParams::default());
        assert_eq!(s.domains.len(), 1);
        assert_eq!(
            s.domains[0].devices,
            vec![DeviceDecl {
                first: 1,
                count: 1,
                kind: DeviceKind::Hot { mds: vec![0] },
            }]
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = parse("# header\n\nscenario tiny # trailing\n\ndomain d0 # another\n").unwrap();
        assert_eq!(s.domains.len(), 1);
    }

    #[test]
    fn fleet_stanza_parses_and_validates() {
        let s = parse(
            "scenario t\nfleet rate=500 burst=64 deadline=1000 retry=3:8\ndomain d\n  device 1 hot md=0\n",
        )
        .unwrap();
        assert_eq!(
            s.fleet,
            Some(FleetParams {
                rate: 500,
                burst: 64,
                deadline: Some(1000),
                retry: Some((3, 8)),
            })
        );
        // Optional keys default off.
        let s = parse("scenario t\nfleet rate=1 burst=1\ndomain d\n").unwrap();
        assert_eq!(s.fleet.unwrap().deadline, None);
        assert!(
            parse("scenario t\nfleet rate=500\n").is_err(),
            "burst required"
        );
        assert!(
            parse("scenario t\nfleet rate=0 burst=4\n").is_err(),
            "zero rate"
        );
        assert!(parse("scenario t\nfleet rate=1 burst=1 deadline=0\n").is_err());
        assert!(parse("scenario t\nfleet rate=1 burst=1 retry=3\n").is_err());
        assert!(
            parse("scenario t\nfleet rate=1 burst=1\nfleet rate=1 burst=1\n").is_err(),
            "duplicate fleet"
        );
    }

    #[test]
    fn explore_stanza_parses_and_validates() {
        let s = parse(
            "scenario t\nexplore entries=256,512,1024 cam_ways=16,64 stages=1,3 cache=0,1024 shards=1,2\ndomain d\n  device 1 hot md=0\n",
        )
        .unwrap();
        assert_eq!(
            s.explore,
            Some(ExploreParams {
                entries: vec![256, 512, 1024],
                cam_ways: vec![16, 64],
                stages: vec![1, 3],
                cache: vec![0, 1024],
                shards: vec![1, 2],
            })
        );
        // Omitted axes default to the paper point; list order and
        // duplicates are preserved as written (canonicalization happens
        // at sweep time, not parse time).
        let s = parse("scenario t\nexplore entries=1024,256,256\ndomain d\n").unwrap();
        let e = s.explore.unwrap();
        assert_eq!(e.entries, vec![1024, 256, 256]);
        assert_eq!(e.cam_ways, vec![64]);
        assert_eq!(e.stages, vec![3]);
        assert_eq!(e.cache, vec![1024]);
        assert_eq!(e.shards, vec![1]);
        assert!(
            parse("scenario t\nexplore cam_ways=64\n").is_err(),
            "entries required"
        );
        assert!(
            parse("scenario t\nexplore entries=0\n").is_err(),
            "zero entries"
        );
        assert!(
            parse("scenario t\nexplore entries=64 stages=9\n").is_err(),
            "stages out of range"
        );
        assert!(
            parse("scenario t\nexplore entries=64 shards=0\n").is_err(),
            "zero shards"
        );
        assert!(
            parse("scenario t\nexplore entries=64\nexplore entries=64\n").is_err(),
            "duplicate explore"
        );
    }

    #[test]
    fn device_ranges_parse() {
        let s = parse("scenario t\ndomain d\n  device 100..1100 cold\n").unwrap();
        let d = &s.domains[0].devices[0];
        assert_eq!((d.first, d.count), (100, 1000));
    }
}
