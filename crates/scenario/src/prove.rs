//! Lowering `.scn` scenarios into the bounded model checker.
//!
//! `siopmp-scenario prove FILE.scn` turns each domain of a scenario
//! into a single-tenant [`siopmp_prove::Model`] and hands it to the
//! exhaustive explorer: the compiled unit is the initial state, the
//! domain's declared entries/records/domains become the monitor-legal
//! mutator material, and the tenant region is the bounding box of
//! everything the domain declares (home window, entries, records) — so
//! the isolation obligation becomes "no mutator sequence lets any of
//! this domain's devices reach outside what the scenario declared".
//!
//! The probe grid is derived from the declared ranges: every base,
//! last-byte and exclusive-end address, plus zero and a far
//! out-of-bounds point.

use crate::ast::{DeviceKind, Domain, Scenario};
use crate::compile::{domain_units, permissions, CompileError, DomainUnit};
use siopmp::entry::IopmpEntry;
use siopmp::ids::{DeviceId, MdIndex};
use siopmp::mountable::MountableEntry;
use siopmp_prove::{Model, TenantModel};

/// Caps the derived probe-address grid so a range-heavy scenario cannot
/// make every explored state quadratically expensive.
const MAX_PROBE_ADDRS: usize = 24;

/// Every `(base, len)` range a domain declares, in declaration order:
/// home window, entries, then cold records.
fn declared_ranges(d: &Domain) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    if let Some((base, len)) = d.home {
        out.push((base, len));
    }
    for e in &d.entries {
        out.push((e.base, e.len));
    }
    for dev in &d.devices {
        if let DeviceKind::Cold { records, .. } = &dev.kind {
            for r in records {
                out.push((r.base, r.len));
            }
        }
    }
    out
}

/// Lowers one compiled domain to a single-tenant bounded model.
fn lower_domain(scenario: &Scenario, d: &Domain, built: DomainUnit) -> Model {
    let cfg = built.unit.config().clone();
    let ranges = declared_ranges(d);
    let region = ranges.iter().fold((u64::MAX, 0u64), |(lo, hi), &(b, l)| {
        (lo.min(b), hi.max(b.saturating_add(l)))
    });
    let region = if ranges.is_empty() { (0, 0) } else { region };

    let mut hot_devices = Vec::new();
    let mut cold_devices = Vec::new();
    let mut mds: Vec<MdIndex> = Vec::new();
    let mut records: Vec<MountableEntry> = Vec::new();
    for dev in &d.devices {
        let ids = (dev.first..dev.first + dev.count).map(DeviceId);
        match &dev.kind {
            DeviceKind::Hot { mds: dm } => {
                hot_devices.extend(ids);
                mds.extend(dm.iter().map(|&md| MdIndex(md)));
            }
            DeviceKind::Cold {
                mds: dm,
                records: rs,
            } => {
                cold_devices.extend(ids);
                let record = MountableEntry {
                    domains: dm.iter().map(|&md| MdIndex(md)).collect(),
                    entries: rs
                        .iter()
                        .filter_map(|r| {
                            siopmp::entry::AddressRange::new(r.base, r.len)
                                .ok()
                                .map(|range| IopmpEntry::new(range, permissions(r.perms)))
                        })
                        .collect(),
                };
                if !records.contains(&record) {
                    records.push(record);
                }
            }
        }
    }

    let mut entry_grid: Vec<IopmpEntry> = Vec::new();
    for e in &d.entries {
        mds.push(MdIndex(e.md));
        if let Ok(range) = siopmp::entry::AddressRange::new(e.base, e.len) {
            let entry = IopmpEntry::new(range, permissions(e.perms));
            if !entry_grid.contains(&entry) {
                entry_grid.push(entry);
            }
        }
    }
    mds.retain(|&md| md != cfg.cold_md());
    mds.sort_by_key(|m| m.0);
    mds.dedup();

    let far = region.1.saturating_add(0x1_0000);
    let mut probe_addrs = vec![0, far];
    for &(base, len) in &ranges {
        probe_addrs.push(base);
        probe_addrs.push(base.saturating_add(len.saturating_sub(1)));
        probe_addrs.push(base.saturating_add(len));
    }
    probe_addrs.sort_unstable();
    probe_addrs.dedup();
    probe_addrs.truncate(MAX_PROBE_ADDRS);
    let min_len = ranges.iter().map(|&(_, l)| l).filter(|&l| l > 0).min();
    let mut probe_lens = vec![0, 1];
    if let Some(l) = min_len {
        if !probe_lens.contains(&l) {
            probe_lens.push(l);
        }
    }

    Model {
        name: format!("{}/{}", scenario.name, d.name),
        initial: built.unit,
        tenants: vec![TenantModel {
            id: 0,
            region,
            hot_devices,
            cold_devices,
            mds,
            entry_grid,
            records,
        }],
        probe_addrs,
        probe_lens,
    }
}

/// Lowers every domain of a scenario into its own bounded model.
///
/// # Errors
///
/// Same failure modes as [`crate::compile::compile`] — the units must
/// assemble before they can be explored.
pub fn lower(s: &Scenario) -> Result<Vec<Model>, CompileError> {
    let units = domain_units(s)?;
    Ok(s.domains
        .iter()
        .zip(units)
        .map(|(d, built)| lower_domain(s, d, built))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use siopmp_prove::{explore, Bounds};

    /// The three smallest corpus scenarios, inlined shape-for-shape
    /// (the `siopmp-scenario` binary's `prove` subcommand covers the
    /// actual files; tests must not depend on the working directory).
    const QUICKSTART: &str = "\
scenario quickstart
config sids=8 mds=8 entries=32 cold_entries=4
domain tenant0
  device 1 hot md=0
  entry md=0 0x1000 0x1000 rw
run max_cycles=1000
expect completed
";

    #[test]
    fn quickstart_lowers_to_a_clean_single_tenant_model() {
        let s = parse(QUICKSTART).unwrap();
        let models = lower(&s).unwrap();
        assert_eq!(models.len(), 1);
        let m = &models[0];
        assert_eq!(m.name, "quickstart/tenant0");
        assert_eq!(m.tenants[0].region, (0x1000, 0x2000));
        assert_eq!(m.tenants[0].hot_devices, vec![siopmp::ids::DeviceId(1)]);
        assert_eq!(m.tenants[0].entry_grid.len(), 1);
        // The compiled initial state is already wired: the device is hot
        // and its entry installed.
        assert!(m.initial.is_hot(siopmp::ids::DeviceId(1)));
    }

    #[test]
    fn lowered_exploration_proves_the_declared_envelope() {
        let s = parse(QUICKSTART).unwrap();
        let models = lower(&s).unwrap();
        let report = explore(
            &models[0],
            Bounds {
                max_depth: 3,
                max_states: 500,
            },
        );
        assert_eq!(report.violations_total(), 0, "{report:?}");
        assert!(report.states > 10, "{report:?}");
    }

    #[test]
    fn cold_records_become_model_records() {
        let text = "\
scenario coldone
config sids=4 mds=4 entries=16 cold_entries=2
domain soc
  device 1 hot md=0
  device 9 cold
  record 0x4000 0x1000 rw
  entry md=0 0x4000 0x1000 rw
run max_cycles=1000
expect completed
";
        let s = parse(text).unwrap();
        let models = lower(&s).unwrap();
        let t = &models[0].tenants[0];
        assert_eq!(t.cold_devices, vec![siopmp::ids::DeviceId(9)]);
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.region, (0x4000, 0x5000));
    }
}
