//! The scenario data model: an SoC topology as plain data.
//!
//! A [`Scenario`] is the parsed form of one `.scn` file — the unit
//! configuration, bus timing, per-domain devices/entries/masters/faults,
//! run parameters and expected invariants. It is deliberately a dumb
//! value type: [`crate::parse()`] produces it, [`crate::render()`] prints it
//! canonically, and [`crate::compile()`] lowers it onto the simulator.
//! `parse(render(s)) == s` holds for every valid scenario (pinned by the
//! round-trip property test).

/// Checker micro-architecture, mirroring `siopmp::checker::CheckerKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checker {
    /// Combinational linear priority chain.
    Linear,
    /// Pipeline-only checker.
    Pipelined {
        /// Pipeline stages (>= 1).
        stages: u8,
    },
    /// Single-cycle tree arbitration.
    Tree {
        /// Reduction arity.
        arity: u8,
    },
    /// Multi-stage-Tree checker (the paper's design).
    Mt {
        /// Pipeline stages.
        stages: u8,
        /// Tree reduction arity per stage.
        arity: u8,
    },
}

/// Violation signalling mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// In-place packet masking.
    Masking,
    /// Redirect to a bus-error dummy node.
    BusError,
}

/// Checker placement in the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementSpec {
    /// One checker per master device.
    PerDevice,
    /// One shared checker on the system bus.
    Centralized,
}

/// The `config` directive: static sIOPMP unit parameters. Defaults are
/// the paper's headline configuration (`SiopmpConfig::default()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitParams {
    /// Number of source IDs (last one is the cold mount slot).
    pub sids: usize,
    /// Number of memory domains (last one is the cold MD).
    pub mds: usize,
    /// Total hardware IOPMP entries.
    pub entries: usize,
    /// Entry slots reserved to the cold MD.
    pub cold_entries: usize,
    /// Decision-cache slots (0 disables the fast path).
    pub cache: usize,
    /// Violation-log capacity.
    pub log: usize,
    /// Checker micro-architecture.
    pub checker: Checker,
    /// Violation mechanism.
    pub violation: Violation,
    /// Checker placement.
    pub placement: PlacementSpec,
    /// Whether the mountable/extended table exists.
    pub mountable: bool,
}

impl Default for UnitParams {
    fn default() -> Self {
        UnitParams {
            sids: 64,
            mds: 63,
            entries: 1024,
            cold_entries: 8,
            cache: 1024,
            log: 4096,
            checker: Checker::Mt {
                stages: 2,
                arity: 2,
            },
            violation: Violation::Masking,
            placement: PlacementSpec::PerDevice,
            mountable: true,
        }
    }
}

/// The `bus` directive: interconnect timing. Defaults mirror
/// `siopmp_bus::BusConfig::default()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusParams {
    /// Payload bytes per beat.
    pub bytes: u64,
    /// Beats per burst.
    pub beats: u32,
    /// Memory read latency in cycles.
    pub read_latency: u32,
    /// Memory write latency in cycles.
    pub write_latency: u32,
    /// Master issue gap in cycles.
    pub issue_gap: u32,
    /// When `true`, the compiler derives the checker/violation/placement
    /// timing overheads from the unit configuration
    /// (`BusConfig::with_checker` + `with_placement`). When `false` the
    /// bus times requests as if the checker were combinational — the
    /// behaviour of the hand-coded exercises this format replaces.
    pub derive_checker: bool,
}

impl Default for BusParams {
    fn default() -> Self {
        BusParams {
            bytes: 8,
            beats: 8,
            read_latency: 14,
            write_latency: 8,
            issue_gap: 1,
            derive_checker: false,
        }
    }
}

/// Access permissions of an entry or cold record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perms {
    /// Read-only.
    R,
    /// Write-only.
    W,
    /// Read-write.
    Rw,
}

/// A `device` declaration: a contiguous ID range (`count >= 1`) that is
/// either hot (holds a hardware SID) or cold (lives in the mountable
/// table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDecl {
    /// First device ID of the range.
    pub first: u64,
    /// Number of consecutive device IDs declared by this line.
    pub count: u64,
    /// Hot or cold, with the associated memory domains.
    pub kind: DeviceKind,
}

/// Hot/cold split of a [`DeviceDecl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceKind {
    /// Mapped to a hardware SID at build time and associated with `mds`.
    Hot {
        /// Memory domains this device's SID is associated with.
        mds: Vec<u16>,
    },
    /// Registered in the mountable table with `mds` plus private records.
    Cold {
        /// Memory domains mounted alongside the device.
        mds: Vec<u16>,
        /// The device's own IOPMP rules (`record` lines), mounted into
        /// the cold MD on a switch.
        records: Vec<RecordDecl>,
    },
}

/// One `record` line: an IOPMP rule in a cold device's mountable entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordDecl {
    /// Region base address.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Permissions.
    pub perms: Perms,
}

/// One `entry` line: an IOPMP entry installed into a memory domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryDecl {
    /// Target memory domain.
    pub md: u16,
    /// Region base address.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Permissions.
    pub perms: Perms,
    /// Whether the entry is locked against later modification.
    pub locked: bool,
}

/// Burst direction of a traffic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Read bursts.
    Read,
    /// Write bursts.
    Write,
}

/// Address pattern of a traffic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Every burst targets `base`.
    Uniform,
    /// Bursts walk a buffer from `base`, advancing `stride` per burst.
    Stream {
        /// Bytes advanced per burst.
        stride: u64,
    },
}

/// One traffic program segment (a `master` line or a `then` continuation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficDecl {
    /// Burst direction.
    pub kind: Kind,
    /// Address pattern.
    pub mode: Mode,
    /// Base (or sole) address.
    pub base: u64,
    /// Number of bursts.
    pub count: usize,
}

/// Retry policy of a master (`retry=<max>:<backoff>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryDecl {
    /// Maximum re-issues per burst.
    pub max: u32,
    /// Exponential backoff base in cycles.
    pub backoff: u64,
    /// Whether SID-missing refusals are retried too (`retry_sid_missing`).
    pub sid_missing: bool,
}

/// A `master` line plus its `then` continuations: one DMA master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterDecl {
    /// Device ID stamped on every burst.
    pub device: u64,
    /// Chained traffic segments, in order (never empty).
    pub programs: Vec<TrafficDecl>,
    /// Outstanding-transaction limit (>= 1).
    pub outstanding: usize,
    /// Retry policy, if any.
    pub retry: Option<RetryDecl>,
}

/// A domain-local `faults` line: a seeded fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDecl {
    /// PRNG seed (overridden by the CLI's `--seed`).
    pub seed: u64,
    /// Cycles over which events are scheduled.
    pub horizon: u64,
    /// Number of fault events (the finite budget).
    pub budget: usize,
    /// Hot devices whose SIDs are eligible for block-storm pulses.
    pub block: Vec<u64>,
    /// Cold devices eligible for undrained cold-switch faults.
    pub cold: Vec<u64>,
    /// Cold devices eligible for CAM-eviction churn.
    pub churn: Vec<u64>,
}

/// One `domain` block: a shard of the parallel engine with its own unit,
/// masters and faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// Domain name (reported in lint output; also the shard order key is
    /// the declaration order, not the name).
    pub name: String,
    /// `(base, len)` home address window; `None` keeps all traffic local.
    pub home: Option<(u64, u64)>,
    /// Device declarations, in order (hot SIDs are assigned in this
    /// order).
    pub devices: Vec<DeviceDecl>,
    /// Entries installed into the domain's unit, in order.
    pub entries: Vec<EntryDecl>,
    /// Hot devices whose SIDs are blocked after assembly.
    pub blocks: Vec<u64>,
    /// DMA masters, in order.
    pub masters: Vec<MasterDecl>,
    /// Optional fault schedule.
    pub faults: Option<FaultDecl>,
}

impl Domain {
    /// An empty domain with the given name.
    pub fn named(name: impl Into<String>) -> Self {
        Domain {
            name: name.into(),
            home: None,
            devices: Vec::new(),
            entries: Vec::new(),
            blocks: Vec::new(),
            masters: Vec::new(),
            faults: None,
        }
    }
}

/// The `run` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Cycle budget.
    pub max_cycles: u64,
    /// Epoch (barrier spacing) of the parallel engine.
    pub epoch: u64,
    /// Default worker-thread count; the CLI's `--threads` wins.
    pub threads: Option<usize>,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            max_cycles: 100_000,
            epoch: siopmp_bus::parallel::DEFAULT_EPOCH_CYCLES,
            threads: None,
        }
    }
}

/// The optional scenario-level `fleet` directive: admission-control
/// parameters `siopmp-serviced` applies to every tenant this scenario
/// contributes when loaded into a fleet. Scenarios without a `fleet`
/// stanza get the daemon's defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetParams {
    /// Per-tenant token-bucket refill rate, in tokens per 1000 virtual
    /// ticks (one admitted request costs one token).
    pub rate: u64,
    /// Token-bucket capacity — the largest burst a tenant can spend at
    /// once — in whole tokens.
    pub burst: u64,
    /// Default per-request admission deadline in ticks; `None` defers to
    /// the daemon default.
    pub deadline: Option<u64>,
    /// Bounded retry budget for `Stalled` verdicts as
    /// `(max_retries, backoff_base_ticks)`; `None` defers to the daemon
    /// default.
    pub retry: Option<(u32, u64)>,
}

/// The optional scenario-level `explore` directive: design-space sweep
/// ranges for `siopmp-scenario explore`. Each field lists the values of
/// one hardware sizing knob; the cross product is the candidate set
/// (`siopmp::explore::Sweep`). Lists are kept exactly as written — order
/// and duplicates included — so `parse(render(s)) == s`; the explorer
/// canonicalizes (sorts + dedups) before enumerating, which is what makes
/// sweep output permutation-invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreParams {
    /// IOPMP entry counts to sweep (required, each >= 1).
    pub entries: Vec<u64>,
    /// Remap-CAM way counts to sweep (each >= 1; default `64`).
    pub cam_ways: Vec<u64>,
    /// Checker pipeline depths to sweep (1..=8; default `3`).
    pub stages: Vec<u64>,
    /// Decision-cache slot counts to sweep (0 disables; default `1024`).
    pub cache: Vec<u64>,
    /// Checker shard counts to sweep (1..=64; default `1`).
    pub shards: Vec<u64>,
}

impl Default for ExploreParams {
    fn default() -> Self {
        // The paper's calibrated point on every axis
        // (`siopmp::explore::DesignPoint::paper()`).
        ExploreParams {
            entries: vec![1024],
            cam_ways: vec![64],
            stages: vec![3],
            cache: vec![1024],
            shards: vec![1],
        }
    }
}

/// A report metric an `expect` line can constrain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Cycles simulated.
    Cycles,
    /// Cycle of the last completion.
    Makespan,
    /// Number of masters in the merged report (bridges included).
    Masters,
    /// Bursts that reached a terminal status.
    TotalCompleted,
    /// Bursts that completed `Ok`.
    TotalOk,
    /// Payload bytes transferred.
    TotalBytes,
    /// Bursts masked by packet masking.
    TotalMasked,
    /// Bursts truncated with a bus error.
    TotalBusError,
    /// Refusals whose verdict was a stall.
    TotalStalled,
    /// Refusals whose device had no mounted state.
    TotalSidMissing,
    /// Retry re-issues.
    TotalRetried,
    /// Bursts whose retry budget ran out.
    TotalRetryExhausted,
    /// Control-plane faults applied.
    ControlFaults,
    /// All injected faults (data-plane + control-plane).
    FaultsInjected,
    /// Cross-domain bursts exchanged at barriers.
    CrossDomain,
    /// Egress bursts no home window claimed.
    Unrouted,
}

impl Metric {
    /// Every metric with its directive spelling, for parsing and help
    /// text.
    pub const ALL: [(Metric, &'static str); 16] = [
        (Metric::Cycles, "cycles"),
        (Metric::Makespan, "makespan"),
        (Metric::Masters, "masters"),
        (Metric::TotalCompleted, "total_completed"),
        (Metric::TotalOk, "total_ok"),
        (Metric::TotalBytes, "total_bytes"),
        (Metric::TotalMasked, "total_masked"),
        (Metric::TotalBusError, "total_bus_error"),
        (Metric::TotalStalled, "total_stalled"),
        (Metric::TotalSidMissing, "total_sid_missing"),
        (Metric::TotalRetried, "total_retried"),
        (Metric::TotalRetryExhausted, "total_retry_exhausted"),
        (Metric::ControlFaults, "control_faults"),
        (Metric::FaultsInjected, "faults_injected"),
        (Metric::CrossDomain, "cross_domain"),
        (Metric::Unrouted, "unrouted"),
    ];

    /// The directive spelling.
    pub fn as_str(self) -> &'static str {
        Metric::ALL
            .iter()
            .find(|(m, _)| *m == self)
            .map(|(_, s)| *s)
            .expect("every metric is in ALL")
    }

    /// Parses a directive spelling.
    pub fn from_token(s: &str) -> Option<Metric> {
        Metric::ALL
            .iter()
            .find(|(_, name)| *name == s)
            .map(|(m, _)| *m)
    }
}

/// Comparison operator of a metric expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl CmpOp {
    /// The directive spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        }
    }

    /// Parses a directive spelling.
    pub fn from_token(s: &str) -> Option<CmpOp> {
        Some(match s {
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            "<=" => CmpOp::Le,
            ">=" => CmpOp::Ge,
            "<" => CmpOp::Lt,
            ">" => CmpOp::Gt,
            _ => return None,
        })
    }

    /// Applies the comparison.
    pub fn holds(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }
}

/// One `expect` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// `expect completed` — every master drained within the cycle budget.
    Completed,
    /// `expect lint clean` — the static analyzer finds no Error-severity
    /// diagnostic in any domain's unit.
    LintClean,
    /// `expect <metric> <op> <value>`.
    Metric {
        /// The constrained metric.
        metric: Metric,
        /// The comparison.
        op: CmpOp,
        /// The right-hand side.
        value: u64,
    },
}

/// One parsed `.scn` scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (`[a-z0-9_-]+`).
    pub name: String,
    /// Free-text description, if any.
    pub description: Option<String>,
    /// Unit configuration shared by every domain.
    pub unit: UnitParams,
    /// Bus timing shared by every domain.
    pub bus: BusParams,
    /// Admission-control parameters for `siopmp-serviced`, if declared.
    pub fleet: Option<FleetParams>,
    /// Design-space sweep ranges for `siopmp-scenario explore`, if
    /// declared.
    pub explore: Option<ExploreParams>,
    /// Domains, in shard order.
    pub domains: Vec<Domain>,
    /// Run parameters.
    pub run: RunParams,
    /// Expected invariants, in order.
    pub expects: Vec<Expectation>,
}

impl Scenario {
    /// An empty scenario with the given name and all defaults.
    pub fn named(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            description: None,
            unit: UnitParams::default(),
            bus: BusParams::default(),
            fleet: None,
            explore: None,
            domains: Vec::new(),
            run: RunParams::default(),
            expects: Vec::new(),
        }
    }
}
