//! Compiler: [`Scenario`] → live simulator, linter and expectation judge.
//!
//! A scenario lowers onto the existing machinery unchanged: its `config`
//! becomes a [`SiopmpConfig`], each `domain` block becomes a per-shard
//! [`Siopmp`] unit (hot devices get SIDs in declaration order) wrapped in
//! a [`DomainSpec`], and `run` drives [`ParallelSim`]. Nothing here
//! simulates anything itself — the format is a front-end, the engine
//! stays the single source of truth.

use crate::ast::*;
use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex, SourceId};
use siopmp::json::Json;
use siopmp::mountable::MountableEntry;
use siopmp::telemetry::Telemetry;
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_bus::parallel::{DomainSpec, ParallelSim};
use siopmp_bus::{
    BurstKind, BusConfig, FaultPlan, FaultPlanConfig, MasterProgram, RetryPolicy, SimReport,
    SiopmpPolicy,
};

/// A semantic error found while lowering a parsed scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The domain being compiled, when the error is domain-scoped.
    pub domain: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.domain {
            Some(d) => write!(f, "domain `{d}`: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for CompileError {}

fn fail<T>(domain: Option<&str>, message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        domain: domain.map(str::to_string),
        message: message.into(),
    })
}

/// Overrides the CLI layers on top of the file: `--seed` replaces every
/// domain's fault seed, `--threads` replaces `run threads=`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Replacement fault seed for every `faults` line.
    pub seed: Option<u64>,
    /// Replacement worker-thread count.
    pub threads: Option<usize>,
}

/// Lowers the `config` directive to the core configuration.
pub fn siopmp_config(u: &UnitParams) -> SiopmpConfig {
    SiopmpConfig {
        num_sids: u.sids,
        num_mds: u.mds,
        num_entries: u.entries,
        cold_md_entries: u.cold_entries,
        checker: match u.checker {
            Checker::Linear => siopmp::checker::CheckerKind::Linear,
            Checker::Pipelined { stages } => siopmp::checker::CheckerKind::Pipelined { stages },
            Checker::Tree { arity } => siopmp::checker::CheckerKind::Tree { tree_arity: arity },
            Checker::Mt { stages, arity } => siopmp::checker::CheckerKind::MtChecker {
                stages,
                tree_arity: arity,
            },
        },
        violation_mode: match u.violation {
            Violation::Masking => siopmp::violation::ViolationMode::PacketMasking,
            Violation::BusError => siopmp::violation::ViolationMode::BusError,
        },
        placement: match u.placement {
            PlacementSpec::PerDevice => siopmp::config::Placement::PerDevice,
            PlacementSpec::Centralized => siopmp::config::Placement::Centralized,
        },
        mountable: u.mountable,
        decision_cache_slots: u.cache,
        violation_log_capacity: u.log,
    }
}

/// Lowers the `bus` directive to the simulator configuration. With
/// `derive_checker=on` the checker/violation/placement timing overheads
/// come from the unit configuration; off (the default) keeps the bus
/// timing combinational, which is what the hand-coded exercises did.
pub fn bus_config(s: &Scenario) -> BusConfig {
    let base = BusConfig::default()
        .with_bytes_per_beat(s.bus.bytes)
        .with_beats_per_burst(s.bus.beats)
        .with_mem_read_latency(s.bus.read_latency)
        .with_mem_write_latency(s.bus.write_latency)
        .with_issue_gap(s.bus.issue_gap);
    if s.bus.derive_checker {
        let cfg = siopmp_config(&s.unit);
        base.with_checker(cfg.checker, cfg.violation_mode)
            .with_placement(cfg.placement)
    } else {
        base
    }
}

pub(crate) fn permissions(p: Perms) -> Permissions {
    match p {
        Perms::R => Permissions::read_only(),
        Perms::W => Permissions::write_only(),
        Perms::Rw => Permissions::rw(),
    }
}

fn range(domain: &str, what: &str, base: u64, len: u64) -> Result<AddressRange, CompileError> {
    AddressRange::new(base, len).map_err(|_| CompileError {
        domain: Some(domain.to_string()),
        message: format!("{what} [{base:#x}, len {len:#x}) is not a valid address range"),
    })
}

/// A domain's compiled unit plus its device → SID table (declaration
/// order), shared by the simulator build and the linter.
struct BuiltUnit {
    unit: Siopmp,
    telemetry: Telemetry,
    /// Hot device → assigned SID, in declaration order.
    sids: Vec<(u64, SourceId)>,
}

fn build_unit(s: &Scenario, d: &Domain) -> Result<BuiltUnit, CompileError> {
    let name = d.name.as_str();
    let cfg = siopmp_config(&s.unit);
    if let Err(e) = cfg.validate() {
        return fail(None, format!("invalid `config`: {e}"));
    }
    let telemetry = Telemetry::new();
    let mut unit = Siopmp::build(cfg, telemetry.clone());
    let mut sids: Vec<(u64, SourceId)> = Vec::new();
    for dev in &d.devices {
        for id in dev.first..dev.first + dev.count {
            if sids.iter().any(|&(known, _)| known == id) {
                return fail(Some(name), format!("device {id} declared twice"));
            }
            match &dev.kind {
                DeviceKind::Hot { mds } => {
                    let sid = unit
                        .map_hot_device(DeviceId(id))
                        .map_err(|e| CompileError {
                            domain: Some(name.to_string()),
                            message: format!("cannot map hot device {id}: {e}"),
                        })?;
                    for &md in mds {
                        unit.associate_sid_with_md(sid, MdIndex(md))
                            .map_err(|e| CompileError {
                                domain: Some(name.to_string()),
                                message: format!("device {id}: cannot associate md {md}: {e}"),
                            })?;
                    }
                    sids.push((id, sid));
                }
                DeviceKind::Cold { mds, records } => {
                    let mut entries = Vec::with_capacity(records.len());
                    for r in records {
                        entries.push(IopmpEntry::new(
                            range(name, "record", r.base, r.len)?,
                            permissions(r.perms),
                        ));
                    }
                    unit.register_cold_device(
                        DeviceId(id),
                        MountableEntry {
                            domains: mds.iter().map(|&md| MdIndex(md)).collect(),
                            entries,
                        },
                    )
                    .map_err(|e| CompileError {
                        domain: Some(name.to_string()),
                        message: format!("cannot register cold device {id}: {e}"),
                    })?;
                }
            }
        }
    }
    for e in &d.entries {
        let r = range(name, "entry", e.base, e.len)?;
        let entry = if e.locked {
            IopmpEntry::new_locked(r, permissions(e.perms))
        } else {
            IopmpEntry::new(r, permissions(e.perms))
        };
        unit.install_entry(MdIndex(e.md), entry)
            .map_err(|e2| CompileError {
                domain: Some(name.to_string()),
                message: format!("cannot install entry into md {}: {e2}", e.md),
            })?;
    }
    for &blocked in &d.blocks {
        let sid = hot_sid(&sids, blocked).ok_or_else(|| CompileError {
            domain: Some(name.to_string()),
            message: format!("`block {blocked}` names no hot device of this domain"),
        })?;
        unit.block_sid(sid);
    }
    Ok(BuiltUnit {
        unit,
        telemetry,
        sids,
    })
}

fn hot_sid(sids: &[(u64, SourceId)], device: u64) -> Option<SourceId> {
    sids.iter()
        .find(|&&(id, _)| id == device)
        .map(|&(_, sid)| sid)
}

fn master_program(m: &MasterDecl) -> MasterProgram {
    let mut program: Option<MasterProgram> = None;
    for t in &m.programs {
        let kind = match t.kind {
            Kind::Read => BurstKind::Read,
            Kind::Write => BurstKind::Write,
        };
        let segment = match t.mode {
            Mode::Uniform => MasterProgram::uniform(m.device, kind, t.base, t.count),
            Mode::Stream { stride } => {
                MasterProgram::streaming(m.device, kind, t.base, stride, t.count)
            }
        };
        program = Some(match program {
            None => segment,
            Some(p) => p.chain(segment),
        });
    }
    let mut program = program
        .expect("the parser never produces a master without a program")
        .with_outstanding(m.outstanding);
    if let Some(r) = m.retry {
        let mut retry = RetryPolicy::bounded(r.max, r.backoff);
        if r.sid_missing {
            retry = retry.with_sid_missing_retry();
        }
        program = program.with_retry(retry);
    }
    program
}

fn fault_plan(
    d: &Domain,
    index: usize,
    sids: &[(u64, SourceId)],
    seed_override: Option<u64>,
) -> Result<FaultPlan, CompileError> {
    let Some(f) = &d.faults else {
        return Ok(FaultPlan::empty());
    };
    let mut block_sids = Vec::with_capacity(f.block.len());
    for &dev in &f.block {
        block_sids.push(hot_sid(sids, dev).ok_or_else(|| CompileError {
            domain: Some(d.name.clone()),
            message: format!("faults `block={dev}` names no hot device of this domain"),
        })?);
    }
    let cfg = FaultPlanConfig {
        horizon: f.horizon,
        budget: f.budget,
        masters: d.masters.len(),
        block_sids,
        cold_devices: f.cold.iter().map(|&id| DeviceId(id)).collect(),
        churn_devices: f.churn.iter().map(|&id| DeviceId(id)).collect(),
    };
    let seed = seed_override.unwrap_or(f.seed);
    Ok(FaultPlan::for_domain(seed, index as u64, &cfg))
}

/// Compiles `s` into a ready-to-run [`ParallelSim`]. Run it with
/// `psim.run(s.run.max_cycles)` or go through [`run`], which also judges
/// the `expect` lines.
///
/// # Errors
///
/// Returns the first semantic error: an invalid `config`, a device
/// declared twice, an out-of-range MD, an unmappable hot device, or a
/// `block`/`faults` reference to an unknown device.
pub fn compile(s: &Scenario, opts: &RunOptions) -> Result<ParallelSim, CompileError> {
    if s.domains.is_empty() {
        return fail(None, "scenario declares no domains");
    }
    let threads = opts.threads.or(s.run.threads).unwrap_or(1);
    let bus = bus_config(s);
    let mut psim = ParallelSim::new(s.run.epoch, threads);
    for (index, d) in s.domains.iter().enumerate() {
        let built = build_unit(s, d)?;
        let plan = fault_plan(d, index, &built.sids, opts.seed)?;
        let mut spec = DomainSpec::for_policy(SiopmpPolicy::new(built.unit))
            .with_config(bus.clone())
            .with_telemetry(built.telemetry)
            .with_fault_plan(plan);
        if let Some((base, len)) = d.home {
            spec = spec.with_home_window(base, len);
        }
        for m in &d.masters {
            spec = spec.with_master(master_program(m));
        }
        psim.add_domain(spec);
    }
    Ok(psim)
}

/// One domain's compiled sIOPMP unit, exposed for consumers that need
/// the raw hardware state rather than a simulator (the static linter
/// and the `prove` subcommand's model lowering).
pub struct DomainUnit {
    /// Domain name from the scenario.
    pub domain: String,
    /// The compiled unit, exactly as [`compile`] would shard it.
    pub unit: Siopmp,
    /// Hot device → assigned SID, in declaration order.
    pub hot: Vec<(u64, SourceId)>,
}

/// Compiles every domain's unit without building a simulator.
///
/// # Errors
///
/// Same failure modes as [`compile`].
pub fn domain_units(s: &Scenario) -> Result<Vec<DomainUnit>, CompileError> {
    if s.domains.is_empty() {
        return fail(None, "scenario declares no domains");
    }
    s.domains
        .iter()
        .map(|d| {
            let built = build_unit(s, d)?;
            Ok(DomainUnit {
                domain: d.name.clone(),
                unit: built.unit,
                hot: built.sids,
            })
        })
        .collect()
}

/// One domain's static-analysis result.
pub struct DomainLint {
    /// Domain name from the scenario.
    pub domain: String,
    /// The analyzer's report over the domain's compiled unit.
    pub report: siopmp_verify::Report,
}

/// Compiles each domain's unit and runs the static analyzer over it.
/// "Lint clean" means no domain has an Error-severity finding.
///
/// # Errors
///
/// Returns the first semantic error (same failure modes as [`compile`]).
pub fn lint(s: &Scenario) -> Result<Vec<DomainLint>, CompileError> {
    if s.domains.is_empty() {
        return fail(None, "scenario declares no domains");
    }
    s.domains
        .iter()
        .map(|d| {
            let built = build_unit(s, d)?;
            Ok(DomainLint {
                domain: d.name.clone(),
                report: siopmp_verify::analyze(&built.unit, None),
            })
        })
        .collect()
}

/// The result of one scenario run: the merged report, the engine's
/// routing counters, and the verdict on every `expect` line.
pub struct Outcome {
    /// Scenario name.
    pub scenario: String,
    /// The fault-seed override that was applied, if any.
    pub seed: Option<u64>,
    /// Worker threads actually used.
    pub threads: usize,
    /// The merged simulation report.
    pub report: SimReport,
    /// Cross-domain bursts exchanged at barriers.
    pub cross_domain: u64,
    /// Egress bursts no home window claimed.
    pub unrouted: u64,
    /// One entry per failed `expect` line, in file order; empty = pass.
    pub failures: Vec<String>,
}

impl Outcome {
    /// Whether every expectation held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The machine-readable payload (wrap it with
    /// [`siopmp::json::envelope`] for emission).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("passed", Json::u64(self.passed() as u64)),
            ("failures", Json::array(self.failures.iter().map(Json::str))),
            ("cross_domain", Json::u64(self.cross_domain)),
            ("unrouted", Json::u64(self.unrouted)),
            ("report", self.report.to_json()),
        ])
    }
}

/// Reads one metric off a finished run.
pub fn metric_value(m: Metric, report: &SimReport, cross_domain: u64, unrouted: u64) -> u64 {
    match m {
        Metric::Cycles => report.cycles,
        Metric::Makespan => report.makespan(),
        Metric::Masters => report.masters.len() as u64,
        Metric::TotalCompleted => report
            .masters
            .iter()
            .map(|m| m.bursts_completed as u64)
            .sum(),
        Metric::TotalOk => report.masters.iter().map(|m| m.bursts_ok as u64).sum(),
        Metric::TotalBytes => report.total_bytes(),
        Metric::TotalMasked => report.masters.iter().map(|m| m.bursts_masked as u64).sum(),
        Metric::TotalBusError => report
            .masters
            .iter()
            .map(|m| m.bursts_bus_error as u64)
            .sum(),
        Metric::TotalStalled => report.total_stalled() as u64,
        Metric::TotalSidMissing => report.total_sid_missing() as u64,
        Metric::TotalRetried => report.total_retried() as u64,
        Metric::TotalRetryExhausted => report.total_retry_exhausted() as u64,
        Metric::ControlFaults => report.control_faults as u64,
        Metric::FaultsInjected => report.total_faults_injected() as u64,
        Metric::CrossDomain => cross_domain,
        Metric::Unrouted => unrouted,
    }
}

/// Compiles, runs and judges `s` in one call.
///
/// # Errors
///
/// Returns the first semantic error (same failure modes as [`compile`]);
/// failed expectations are *not* errors — they land in
/// [`Outcome::failures`].
pub fn run(s: &Scenario, opts: &RunOptions) -> Result<Outcome, CompileError> {
    let threads = opts.threads.or(s.run.threads).unwrap_or(1);
    let mut psim = compile(s, opts)?;
    let report = psim.run(s.run.max_cycles);
    let cross_domain = psim
        .telemetry()
        .counter("parallel.cross_domain_bursts")
        .get();
    let unrouted = psim.telemetry().counter("parallel.unrouted_egress").get();
    let mut failures = Vec::new();
    for e in &s.expects {
        match e {
            Expectation::Completed => {
                if !report.completed {
                    failures.push(format!(
                        "expect completed: masters still busy after {} cycles",
                        report.cycles
                    ));
                }
            }
            Expectation::LintClean => {
                for l in lint(s)? {
                    if l.report.has_errors() {
                        let worst = l
                            .report
                            .diagnostics()
                            .iter()
                            .find(|d| d.severity == siopmp_verify::Severity::Error)
                            .expect("has_errors implies an Error diagnostic");
                        failures.push(format!(
                            "expect lint clean: domain `{}` has {}: {}",
                            l.domain, worst.code, worst.message
                        ));
                    }
                }
            }
            Expectation::Metric { metric, op, value } => {
                let got = metric_value(*metric, &report, cross_domain, unrouted);
                if !op.holds(got, *value) {
                    failures.push(format!(
                        "expect {} {} {}: actual value is {got}",
                        metric.as_str(),
                        op.as_str(),
                        value
                    ));
                }
            }
        }
    }
    Ok(Outcome {
        scenario: s.name.clone(),
        seed: opts.seed,
        threads,
        report,
        cross_domain,
        unrouted,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const TINY: &str = "\
scenario tiny
config sids=8 mds=8 entries=32 cold_entries=4
domain d0
  device 1 hot md=0
  entry md=0 0x1000 0x1000 rw
  master device=1 kind=read mode=stream base=0x1000 stride=64 count=4
expect completed
expect total_ok == 4
expect lint clean
";

    #[test]
    fn tiny_scenario_runs_and_passes() {
        let s = parse(TINY).unwrap();
        let out = run(&s, &RunOptions::default()).unwrap();
        assert!(out.passed(), "{:?}", out.failures);
        assert_eq!(out.threads, 1);
        assert!(out.report.completed);
    }

    #[test]
    fn failed_expectation_is_reported_not_fatal() {
        let mut s = parse(TINY).unwrap();
        s.expects.push(Expectation::Metric {
            metric: Metric::TotalOk,
            op: CmpOp::Eq,
            value: 999,
        });
        let out = run(&s, &RunOptions::default()).unwrap();
        assert!(!out.passed());
        assert_eq!(out.failures.len(), 1);
        assert!(
            out.failures[0].contains("total_ok == 999"),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn unknown_block_device_is_a_compile_error() {
        let s = parse("scenario t\ndomain d0\n  device 1 hot md=0\n  block 9\n").unwrap();
        let err = compile(&s, &RunOptions::default()).unwrap_err();
        assert_eq!(err.domain.as_deref(), Some("d0"));
        assert!(err.message.contains("block 9"), "{err}");
    }

    #[test]
    fn duplicate_device_is_a_compile_error() {
        let s = parse("scenario t\ndomain d0\n  device 1..3 hot\n  device 2 cold\n").unwrap();
        let err = compile(&s, &RunOptions::default()).unwrap_err();
        assert!(err.message.contains("declared twice"), "{err}");
    }

    #[test]
    fn lint_flags_a_blocked_sid_free_config_clean() {
        let s = parse(TINY).unwrap();
        let lints = lint(&s).unwrap();
        assert_eq!(lints.len(), 1);
        assert!(!lints[0].report.has_errors());
    }

    #[test]
    fn threads_override_wins_over_run_directive() {
        let mut s = parse(TINY).unwrap();
        s.run.threads = Some(2);
        let out = run(
            &s,
            &RunOptions {
                threads: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.threads, 4);
    }
}
