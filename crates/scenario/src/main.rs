//! `siopmp-scenario` — run, lint, bench and list `.scn` scenario files.
//!
//! ```text
//! siopmp-scenario run   FILE...  [--json] [--seed N] [--threads N] [--out PATH]
//! siopmp-scenario lint  FILE...  [--json] [--out PATH]
//! siopmp-scenario bench FILE...  [--json] [--seed N] [--threads N] [--out DIR] [--baseline FILE]
//! siopmp-scenario prove FILE...  [--json] [--out PATH] [--max-depth N] [--max-states N]
//! siopmp-scenario explore [FILE...] [--json] [--threads N] [--out PATH]
//! siopmp-scenario list  [PATH...]  [--json]
//! ```
//!
//! * `run` compiles each scenario onto the sharded simulator, runs it and
//!   judges its `expect` lines; any failed expectation fails the exit
//!   code.
//! * `lint` compiles each domain's sIOPMP unit and runs the static
//!   analyzer; any Error-severity diagnostic fails the exit code.
//! * `prove` lowers each domain into the bounded model checker
//!   (`siopmp-prove`) and exhaustively explores every mutator sequence
//!   from the compiled state up to the bound; any isolation, soundness
//!   or atomicity violation fails the exit code.
//! * `bench` runs each scenario and reports the host-independent cost
//!   metric (simulated cycles per completed burst) plus wall time;
//!   `--baseline FILE` guards `<name> <cycles_per_burst>` pairs at ±15%.
//! * `explore` sweeps the hardware design space declared by each file's
//!   `explore` stanza (no files = the built-in smoke sweep) over the
//!   calibrated timing/area model and prints the Pareto frontier; an
//!   empty frontier fails the exit code.
//! * `list` scans files or directories (default `corpus/`) and prints
//!   each scenario's name, description and shape.
//!
//! JSON output (stdout with `--json`, file with `--out`) is wrapped in
//! the workspace envelope `{schema_version, scenario, seed, threads,
//! payload}` shared with `repro --json`, `siopmp-bench` and
//! `siopmp-verify`.

use siopmp::json::{envelope, Json};
use siopmp_prove::{explore, Bounds};
use siopmp_scenario::cli::Spec;
use siopmp_scenario::{lint, parse, render, run, RunOptions, Scenario};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: siopmp-scenario <run|lint|bench|prove|explore|list> [FILE ...] \
[--json] [--seed N] [--threads N] [--out PATH] [--baseline FILE] \
[--max-depth N] [--max-states N]";

const SPEC: Spec = Spec {
    tool: "siopmp-scenario",
    usage: USAGE,
    flags: &["--render"],
    options: &["--max-depth", "--max-states"],
    deprecated: &[],
};

/// Fractional tolerance of the bench `--baseline` guard, each side.
const BASELINE_TOLERANCE: f64 = 0.15;

fn load(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn emit(doc: &Json, json_stdout: bool, out: Option<&Path>) -> Result<(), String> {
    if json_stdout {
        println!("{}", doc.pretty());
    }
    if let Some(path) = out {
        std::fs::write(path, format!("{}\n", doc.pretty()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Joins per-file envelopes: one file stays a single document, several
/// become an array (so `run a.scn` pipes cleanly into jq either way).
fn join(mut docs: Vec<Json>) -> Json {
    if docs.len() == 1 {
        docs.pop().expect("length checked")
    } else {
        Json::array(docs)
    }
}

fn cmd_run(
    files: &[PathBuf],
    opts: RunOptions,
    json: bool,
    out: Option<&Path>,
) -> Result<bool, String> {
    let mut docs = Vec::new();
    let mut all_passed = true;
    for path in files {
        let scenario = load(path)?;
        let outcome = run(&scenario, &opts).map_err(|e| format!("{}: {e}", path.display()))?;
        all_passed &= outcome.passed();
        if !json {
            let verdict = if outcome.passed() { "pass" } else { "FAIL" };
            println!(
                "{:<28} {verdict}  cycles {:>8}  masters {:>3}  ok {:>6}  cross {:>4}",
                outcome.scenario,
                outcome.report.cycles,
                outcome.report.masters.len(),
                outcome
                    .report
                    .masters
                    .iter()
                    .map(|m| m.bursts_ok)
                    .sum::<usize>(),
                outcome.cross_domain,
            );
            for f in &outcome.failures {
                println!("  FAILED {f}");
            }
        }
        docs.push(envelope(
            &outcome.scenario,
            outcome.seed,
            outcome.threads,
            outcome.to_json(),
        ));
    }
    emit(&join(docs), json, out)?;
    Ok(all_passed)
}

fn cmd_lint(files: &[PathBuf], json: bool, out: Option<&Path>) -> Result<bool, String> {
    let mut docs = Vec::new();
    let mut clean = true;
    for path in files {
        let scenario = load(path)?;
        let lints = lint(&scenario).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut domains = Vec::new();
        for l in &lints {
            clean &= !l.report.has_errors();
            if !json {
                let errors = l
                    .report
                    .diagnostics()
                    .iter()
                    .filter(|d| d.severity == siopmp_verify::Severity::Error)
                    .count();
                println!(
                    "{:<28} {:<16} {} error(s), {} finding(s)",
                    scenario.name,
                    l.domain,
                    errors,
                    l.report.diagnostics().len()
                );
                for d in l.report.diagnostics() {
                    println!("  [{}] {}: {}", d.severity, d.code, d.message);
                }
            }
            domains.push(Json::object([
                ("domain", Json::str(&l.domain)),
                ("report", l.report.to_json()),
            ]));
        }
        docs.push(envelope(
            &scenario.name,
            None,
            1,
            Json::object([("domains", Json::array(domains))]),
        ));
    }
    emit(&join(docs), json, out)?;
    Ok(clean)
}

struct BenchRow {
    name: String,
    cycles: u64,
    completed_bursts: u64,
    wall_ns: u128,
    passed: bool,
}

impl BenchRow {
    fn cycles_per_burst(&self) -> Option<f64> {
        (self.completed_bursts > 0).then(|| self.cycles as f64 / self.completed_bursts as f64)
    }
}

fn cmd_bench(
    files: &[PathBuf],
    opts: RunOptions,
    json: bool,
    out: Option<&Path>,
    baseline: Option<&Path>,
) -> Result<bool, String> {
    if let Some(dir) = out {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let mut rows = Vec::new();
    for path in files {
        let scenario = load(path)?;
        // One warmup, then the timed run — the cost metric (simulated
        // cycles per burst) is deterministic, only wall time varies.
        let _ = run(&scenario, &opts).map_err(|e| format!("{}: {e}", path.display()))?;
        let started = std::time::Instant::now();
        let outcome = run(&scenario, &opts).map_err(|e| format!("{}: {e}", path.display()))?;
        let wall_ns = started.elapsed().as_nanos();
        let row = BenchRow {
            name: outcome.scenario.clone(),
            cycles: outcome.report.cycles,
            completed_bursts: outcome
                .report
                .masters
                .iter()
                .map(|m| m.bursts_completed as u64)
                .sum(),
            wall_ns,
            passed: outcome.passed(),
        };
        let payload = Json::object([
            ("cycles", Json::u64(row.cycles)),
            ("completed_bursts", Json::u64(row.completed_bursts)),
            (
                "cycles_per_burst",
                Json::f64(row.cycles_per_burst().unwrap_or(0.0)),
            ),
            ("wall_ns", Json::u64(row.wall_ns as u64)),
            ("passed", Json::u64(row.passed as u64)),
        ]);
        let doc = envelope(&row.name, outcome.seed, outcome.threads, payload);
        if json {
            println!("{}", doc.pretty());
        } else {
            println!(
                "{:<28} {:>10} cycles  {:>8} bursts  {:>8.1} cyc/burst  {:>10} ns",
                row.name,
                row.cycles,
                row.completed_bursts,
                row.cycles_per_burst().unwrap_or(0.0),
                row.wall_ns,
            );
        }
        if let Some(dir) = out {
            let file = dir.join(format!("SCN_{}.json", row.name));
            std::fs::write(&file, format!("{}\n", doc.pretty()))
                .map_err(|e| format!("cannot write {}: {e}", file.display()))?;
        }
        rows.push(row);
    }
    let mut ok = rows.iter().all(|r| r.passed);
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().expect("non-empty line");
            let base: f64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|b: &f64| b.is_finite() && *b > 0.0)
                .ok_or(format!(
                    "baseline line {}: expected `<scenario> <cycles_per_burst>`",
                    n + 1
                ))?;
            let Some(row) = rows.iter().find(|r| r.name == name) else {
                println!("baseline: {name} not run, skipping");
                continue;
            };
            match row.cycles_per_burst() {
                Some(got) if got > base * (1.0 + BASELINE_TOLERANCE) => {
                    eprintln!(
                        "baseline: {name} regressed — {got:.1} cyc/burst vs baseline {base:.1}"
                    );
                    ok = false;
                }
                Some(got) if got < base * (1.0 - BASELINE_TOLERANCE) => {
                    println!(
                        "baseline: {name} improved — {got:.1} cyc/burst vs {base:.1}; consider refreshing"
                    );
                }
                Some(_) => {}
                None => {
                    eprintln!("baseline: {name} completed no bursts");
                    ok = false;
                }
            }
        }
    }
    Ok(ok)
}

/// Default bounds of `siopmp-scenario prove` — scenario-lowered models
/// carry full-size configurations (8 SIDs, 32 entries), so the default
/// stays shallower than the `siopmp-prove` micro-model profiles while
/// still covering every mutator pair and most triples.
const PROVE_DEFAULT: Bounds = Bounds {
    max_depth: 4,
    max_states: 4_000,
};

fn prove_bound(
    args: &siopmp_scenario::cli::Args,
    flag: &str,
    default: usize,
) -> Result<usize, String> {
    match args.option(flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("`{flag}` needs a count >= 1, got `{v}`")),
    }
}

fn cmd_prove(
    files: &[PathBuf],
    args: &siopmp_scenario::cli::Args,
    json: bool,
    out: Option<&Path>,
) -> Result<bool, String> {
    let bounds = Bounds {
        max_depth: prove_bound(args, "--max-depth", PROVE_DEFAULT.max_depth)?,
        max_states: prove_bound(args, "--max-states", PROVE_DEFAULT.max_states)?,
    };
    let mut docs = Vec::new();
    let mut clean = true;
    for path in files {
        let scenario = load(path)?;
        let models =
            siopmp_scenario::lower(&scenario).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut domains = Vec::new();
        for model in &models {
            let report = explore(model, bounds);
            let violations = report.violations_total();
            clean &= violations == 0;
            if !json {
                let verdict = if violations == 0 { "proved" } else { "FAIL" };
                println!(
                    "{:<28} {verdict}  states {:>7}  transitions {:>8}  depth {:>2}  violations {:>3}",
                    model.name, report.states, report.transitions, report.max_depth_reached, violations,
                );
                for example in report
                    .isolation_examples
                    .iter()
                    .chain(&report.soundness_examples)
                    .chain(&report.atomicity_examples)
                {
                    println!("  VIOLATION {example}");
                }
            }
            domains.push(report.to_json());
        }
        docs.push(envelope(
            &scenario.name,
            None,
            1,
            Json::object([
                ("bounds_max_depth", Json::u64(bounds.max_depth as u64)),
                ("bounds_max_states", Json::u64(bounds.max_states as u64)),
                ("domains", Json::array(domains)),
            ]),
        ));
    }
    emit(&join(docs), json, out)?;
    Ok(clean)
}

fn cmd_explore(
    files: &[PathBuf],
    threads: Option<usize>,
    json: bool,
    out: Option<&Path>,
) -> Result<bool, String> {
    use siopmp::explore::Sweep;
    use siopmp_scenario::{sweep_from_params, Explorer};
    // One explorer across all files: the simulated samples depend only on
    // pipeline depth, so sweeps share them.
    let mut explorer = Explorer::new(threads);
    let threads_reported = threads.unwrap_or(1);
    let mut jobs: Vec<(String, Sweep)> = Vec::new();
    if files.is_empty() {
        jobs.push(("explore-smoke".to_string(), Sweep::smoke()));
    }
    for path in files {
        let scenario = load(path)?;
        let Some(params) = &scenario.explore else {
            return Err(format!(
                "{}: no `explore` stanza — declare sweep ranges with \
                 `explore entries=... [cam_ways=...] [stages=...] [cache=...] [shards=...]`",
                path.display()
            ));
        };
        jobs.push((scenario.name.clone(), sweep_from_params(params)));
    }
    let mut docs = Vec::new();
    let mut ok = true;
    for (name, sweep) in &jobs {
        let outcome = explorer
            .evaluate(sweep)
            .map_err(|e| format!("{name}: {e}"))?;
        ok &= !outcome.frontier().is_empty();
        if !json {
            println!("{name}:");
            print!("{}", outcome.render_table());
        }
        docs.push(envelope(name, None, threads_reported, outcome.payload()));
    }
    emit(&join(docs), json, out)?;
    Ok(ok)
}

fn scan(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "scn"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.clone());
        }
    }
    Ok(files)
}

fn cmd_list(paths: &[PathBuf], json: bool, render_mode: bool) -> Result<bool, String> {
    let files = scan(paths)?;
    if files.is_empty() {
        return Err("no .scn files found".to_string());
    }
    let mut items = Vec::new();
    for path in &files {
        let s = load(path)?;
        if render_mode {
            print!("{}", render(&s));
            continue;
        }
        if !json {
            println!(
                "{:<28} {:>2} domain(s) {:>3} master(s)  {}",
                s.name,
                s.domains.len(),
                s.domains.iter().map(|d| d.masters.len()).sum::<usize>(),
                s.description.as_deref().unwrap_or(""),
            );
        }
        items.push(Json::object([
            ("file", Json::str(path.display().to_string())),
            ("name", Json::str(&s.name)),
            (
                "description",
                s.description
                    .as_deref()
                    .map(Json::str)
                    .unwrap_or(Json::Null),
            ),
            ("domains", Json::u64(s.domains.len() as u64)),
            (
                "masters",
                Json::u64(s.domains.iter().map(|d| d.masters.len()).sum::<usize>() as u64),
            ),
        ]));
    }
    if json {
        println!("{}", envelope("list", None, 1, Json::array(items)).pretty());
    }
    Ok(true)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let command = args.remove(0);
    let parsed = match SPEC.parse(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for w in &parsed.warnings {
        eprintln!("{w}");
    }
    if parsed.help || command == "help" || command == "--help" || command == "-h" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let files: Vec<PathBuf> = parsed.positional.iter().map(PathBuf::from).collect();
    let opts = RunOptions {
        seed: parsed.seed,
        threads: parsed.threads,
    };
    let result = match command.as_str() {
        "run" | "lint" | "bench" | "prove" if files.is_empty() => {
            Err(format!("`{command}` needs at least one .scn file\n{USAGE}"))
        }
        "run" => cmd_run(&files, opts, parsed.json, parsed.out.as_deref()),
        "lint" => cmd_lint(&files, parsed.json, parsed.out.as_deref()),
        "prove" => cmd_prove(&files, &parsed, parsed.json, parsed.out.as_deref()),
        "bench" => cmd_bench(
            &files,
            opts,
            parsed.json,
            parsed.out.as_deref(),
            parsed.baseline.as_deref(),
        ),
        "explore" => cmd_explore(&files, parsed.threads, parsed.json, parsed.out.as_deref()),
        "list" => {
            let paths = if files.is_empty() {
                vec![PathBuf::from("corpus")]
            } else {
                files
            };
            cmd_list(&paths, parsed.json, parsed.has("--render"))
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
