//! The design-space explorer behind `siopmp-scenario explore`.
//!
//! [`siopmp::explore`] owns the pure model (points, costs, dominance);
//! this module adds the *measured* ingredient: a deterministic workload
//! sample run through the real [`crate::compile()`] → `ParallelSim` pipeline,
//! whose `bus.burst_latency_cycles` p99 anchors every point's latency
//! objective. The sample's simulated cycle counts depend only on the
//! checker's **pipeline depth** — entry count, CAM ways, cache slots and
//! shard count do not lengthen a hardware pipeline, they move the
//! achievable clock and the model terms of
//! [`siopmp::explore::check_p99_cycles`] instead — so the explorer runs at
//! most one simulation per distinct `stages` value and shares the result
//! across the whole sweep ([`Explorer`] caches them). `ParallelSim` is
//! byte-deterministic across thread counts, which is what makes `explore`
//! output identical under `--threads 1` vs `4` (pinned by the property
//! suite).

use crate::ast::ExploreParams;
use crate::compile::{compile, RunOptions};
use crate::parse::parse;
use siopmp::explore::{
    check_p99_cycles, cycles_to_ns, evaluate, frontier_indices, DesignCost, DesignPoint,
    Objectives, Sweep,
};
use siopmp::json::Json;
use std::collections::BTreeMap;

/// Hard cap on the points one sweep may enumerate; a guard against
/// accidentally quadratic `.scn` declarations, not a tuning limit.
pub const MAX_SWEEP_POINTS: usize = 4096;

/// Converts a parsed `explore` stanza into a canonical model sweep.
pub fn sweep_from_params(p: &ExploreParams) -> Sweep {
    Sweep {
        entries: p.entries.iter().map(|&v| v as usize).collect(),
        cam_ways: p.cam_ways.iter().map(|&v| v as usize).collect(),
        stages: p.stages.iter().map(|&v| v as u8).collect(),
        cache_slots: p.cache.iter().map(|&v| v as usize).collect(),
        shards: p.shards.iter().map(|&v| v as usize).collect(),
    }
    .canonicalized()
}

/// The deterministic workload sample: four hot streaming masters through
/// one derived-timing bus, exercising the checker at the given pipeline
/// depth. Small enough to simulate in milliseconds, busy enough that the
/// burst-latency histogram has a meaningful p99.
fn sample_text(stages: u8) -> String {
    format!(
        "\
scenario explore-sample
describe Deterministic workload sample anchoring the explorer's p99 objective.
config sids=8 mds=8 entries=32 cold_entries=4 checker=mt:{stages}:2
bus derive_checker=on
domain probe
  device 1 hot md=0
  device 2 hot md=0
  device 3 hot md=0
  device 4 hot md=0
  entry md=0 0x1000 0x8000 rw
  master device=1 kind=read mode=stream base=0x1000 stride=64 count=64 outstanding=4
  master device=2 kind=read mode=stream base=0x3000 stride=64 count=64 outstanding=4
  master device=3 kind=write mode=stream base=0x5000 stride=64 count=64 outstanding=4
  master device=4 kind=write mode=stream base=0x7000 stride=64 count=64 outstanding=4
run max_cycles=50000
expect completed
"
    )
}

/// One evaluated sweep point: model cost plus the measured/modelled p99.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointReport {
    /// Timing/area evaluation from the calibrated model.
    pub cost: DesignCost,
    /// Simulated bus-level p99 at this point's pipeline depth, in cycles.
    pub sim_p99_cycles: u64,
    /// Modelled p99 check-path latency in cycles
    /// ([`check_p99_cycles`] applied to the simulated figure).
    pub p99_cycles: u64,
    /// The p99 in nanoseconds at this point's achievable clock.
    pub p99_ns: f64,
    /// Whether the point is on the Pareto frontier.
    pub frontier: bool,
    /// Whether this is the paper's calibrated design point.
    pub paper: bool,
}

impl PointReport {
    fn to_json(self) -> Json {
        let p = self.cost.point;
        let t = self.cost.timing;
        Json::object([
            ("entries", Json::u64(p.entries as u64)),
            ("cam_ways", Json::u64(p.cam_ways as u64)),
            ("stages", Json::u64(u64::from(p.stages))),
            ("cache_slots", Json::u64(p.cache_slots as u64)),
            ("shards", Json::u64(p.shards as u64)),
            ("critical_path_ns", Json::f64(t.critical_path_ns)),
            ("achievable_mhz", Json::f64(t.achievable_mhz)),
            ("meets_platform_target", Json::Bool(t.meets_platform_target)),
            ("routable", Json::Bool(t.routable)),
            ("lut_pct", Json::f64(self.cost.lut_pct())),
            ("ff_pct", Json::f64(self.cost.ff_pct())),
            ("area_pct", Json::f64(self.cost.area_pct())),
            ("sim_p99_cycles", Json::u64(self.sim_p99_cycles)),
            ("p99_cycles", Json::u64(self.p99_cycles)),
            ("p99_ns", Json::f64(self.p99_ns)),
            ("frontier", Json::Bool(self.frontier)),
            ("paper_point", Json::Bool(self.paper)),
        ])
    }
}

/// The result of evaluating one sweep: every point (frontier flagged), in
/// canonical enumeration order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// The canonicalized sweep that was evaluated.
    pub sweep: Sweep,
    /// All evaluated points, in [`Sweep::points`] order.
    pub points: Vec<PointReport>,
}

impl ExploreOutcome {
    /// The frontier members, in canonical order.
    pub fn frontier(&self) -> Vec<&PointReport> {
        self.points.iter().filter(|r| r.frontier).collect()
    }

    /// Whether the paper point was swept at all.
    pub fn paper_point_swept(&self) -> bool {
        self.points.iter().any(|r| r.paper)
    }

    /// Whether the paper point survived to the frontier.
    pub fn paper_point_on_frontier(&self) -> bool {
        self.points.iter().any(|r| r.paper && r.frontier)
    }

    /// The JSON envelope payload (every swept point, frontier flagged).
    pub fn payload(&self) -> Json {
        let routable = self
            .points
            .iter()
            .filter(|r| r.cost.timing.routable)
            .count();
        Json::object([
            ("swept", Json::u64(self.points.len() as u64)),
            ("routable", Json::u64(routable as u64)),
            ("frontier_size", Json::u64(self.frontier().len() as u64)),
            ("paper_point_swept", Json::Bool(self.paper_point_swept())),
            (
                "paper_point_on_frontier",
                Json::Bool(self.paper_point_on_frontier()),
            ),
            (
                "points",
                Json::array(self.points.iter().map(|r| r.to_json())),
            ),
        ])
    }

    /// Renders the frontier as a fixed-width table (the human half of the
    /// CLI output; the JSON payload carries the full sweep).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Design-space Pareto frontier: {} of {} swept points (* = paper design point)\n",
            self.frontier().len(),
            self.points.len()
        ));
        out.push_str(
            "entries  ways  stages  cache  shards |   MHz |  LUT% |   FF% | p99 cyc |   p99 ns\n",
        );
        for r in self.frontier() {
            let p = r.cost.point;
            out.push_str(&format!(
                "{:>7} {:>5} {:>7} {:>6} {:>7} | {:>5.1} | {:>5.2} | {:>5.2} | {:>7} | {:>8.1}{}\n",
                p.entries,
                p.cam_ways,
                p.stages,
                p.cache_slots,
                p.shards,
                r.cost.timing.achievable_mhz,
                r.cost.lut_pct(),
                r.cost.ff_pct(),
                r.p99_cycles,
                r.p99_ns,
                if r.paper { " *" } else { "" },
            ));
        }
        out
    }
}

/// Evaluates `sweep` against a caller-supplied simulated-p99 source (cycles
/// per pipeline depth). Pure and deterministic: the property suite drives
/// this directly with a precomputed table. Unroutable points are reported
/// but never enter the frontier.
pub fn evaluate_with_sim(sweep: &Sweep, sim_p99: impl Fn(u8) -> u64) -> ExploreOutcome {
    let sweep = sweep.clone().canonicalized();
    let mut points: Vec<PointReport> = sweep
        .points()
        .into_iter()
        .map(|p| {
            let cost = evaluate(p);
            let sim = sim_p99(p.stages);
            let p99_cycles = check_p99_cycles(p, sim);
            PointReport {
                cost,
                sim_p99_cycles: sim,
                p99_cycles,
                p99_ns: cycles_to_ns(p99_cycles, &cost.timing),
                frontier: false,
                paper: p == DesignPoint::paper(),
            }
        })
        .collect();
    let routable: Vec<usize> = points
        .iter()
        .enumerate()
        .filter(|(_, r)| r.cost.timing.routable)
        .map(|(i, _)| i)
        .collect();
    let objs: Vec<Objectives> = routable
        .iter()
        .map(|&i| points[i].cost.objectives(points[i].p99_ns))
        .collect();
    for fi in frontier_indices(&objs) {
        points[routable[fi]].frontier = true;
    }
    ExploreOutcome { sweep, points }
}

/// The stateful explorer: runs (and caches) one workload sample per
/// distinct pipeline depth, then defers to [`evaluate_with_sim`].
#[derive(Debug, Default)]
pub struct Explorer {
    threads: Option<usize>,
    sim_cache: BTreeMap<u8, u64>,
}

impl Explorer {
    /// An explorer whose samples run at `threads` worker threads (`None`
    /// = the scenario/CLI default). The thread count cannot change any
    /// result — `ParallelSim` is byte-deterministic — it only changes how
    /// the sample is scheduled.
    pub fn new(threads: Option<usize>) -> Explorer {
        Explorer {
            threads,
            sim_cache: BTreeMap::new(),
        }
    }

    /// The simulated bus-level p99 (cycles) at `stages` pipeline stages,
    /// from cache or from one fresh sample run.
    ///
    /// # Errors
    ///
    /// Returns the compile error of the sample scenario (cannot happen for
    /// the committed template; surfaced rather than unwrapped so the CLI
    /// reports it).
    pub fn sim_p99_cycles(&mut self, stages: u8) -> Result<u64, String> {
        if let Some(&v) = self.sim_cache.get(&stages) {
            return Ok(v);
        }
        let s = parse(&sample_text(stages)).map_err(|e| e.to_string())?;
        let mut psim = compile(
            &s,
            &RunOptions {
                seed: None,
                threads: self.threads,
            },
        )
        .map_err(|e| e.to_string())?;
        let _ = psim.run(s.run.max_cycles);
        let p99 = psim
            .telemetry()
            .histogram("bus.burst_latency_cycles")
            .snapshot()
            .p99();
        self.sim_cache.insert(stages, p99);
        Ok(p99)
    }

    /// Evaluates `sweep`: one sample per distinct pipeline depth, then the
    /// pure model over the cross product.
    ///
    /// # Errors
    ///
    /// Fails when the sweep enumerates more than [`MAX_SWEEP_POINTS`]
    /// points or a sample fails to compile.
    pub fn evaluate(&mut self, sweep: &Sweep) -> Result<ExploreOutcome, String> {
        let sweep = sweep.clone().canonicalized();
        if sweep.len() > MAX_SWEEP_POINTS {
            return Err(format!(
                "sweep enumerates {} points, more than the {MAX_SWEEP_POINTS}-point cap",
                sweep.len()
            ));
        }
        for &stages in &sweep.stages {
            self.sim_p99_cycles(stages)?;
        }
        let cache = &self.sim_cache;
        Ok(evaluate_with_sim(&sweep, |stages| {
            *cache.get(&stages).expect("pre-warmed above")
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::explore::dominates;

    #[test]
    fn smoke_sweep_frontier_contains_the_paper_point() {
        let mut explorer = Explorer::new(Some(1));
        let out = explorer.evaluate(&Sweep::smoke()).unwrap();
        assert_eq!(out.points.len(), Sweep::smoke().len());
        assert!(!out.frontier().is_empty());
        assert!(out.paper_point_swept());
        assert!(out.paper_point_on_frontier(), "paper point dominated");
        // The table lists exactly the frontier, with the paper marker.
        let table = out.render_table();
        assert!(table.contains('*'));
        assert_eq!(table.lines().count(), out.frontier().len() + 2);
    }

    #[test]
    fn explore_output_is_thread_invariant() {
        let mut one = Explorer::new(Some(1));
        let mut four = Explorer::new(Some(4));
        let a = one.evaluate(&Sweep::smoke()).unwrap();
        let b = four.evaluate(&Sweep::smoke()).unwrap();
        assert_eq!(a.payload().pretty(), b.payload().pretty());
    }

    #[test]
    fn frontier_has_no_dominated_member() {
        let out = evaluate_with_sim(&Sweep::smoke(), |stages| 30 + u64::from(stages) * 4);
        let objs: Vec<_> = out
            .points
            .iter()
            .map(|r| r.cost.objectives(r.p99_ns))
            .collect();
        for (i, r) in out.points.iter().enumerate() {
            if !r.frontier {
                continue;
            }
            for other in &objs {
                assert!(
                    !dominates(other, &objs[i]),
                    "frontier point {:?} is dominated",
                    r.cost.point
                );
            }
        }
    }

    #[test]
    fn unroutable_points_never_reach_the_frontier() {
        // A 4096-entry single-stage tree misses ROUTABLE_MIN_MHZ.
        let sweep = Sweep {
            entries: vec![1024, 4096],
            cam_ways: vec![64],
            stages: vec![1],
            cache_slots: vec![0],
            shards: vec![1],
        };
        let out = evaluate_with_sim(&sweep, |_| 30);
        let big = out
            .points
            .iter()
            .find(|r| r.cost.point.entries == 4096)
            .unwrap();
        assert!(!big.cost.timing.routable);
        assert!(!big.frontier);
    }

    #[test]
    fn oversized_sweeps_are_refused() {
        let sweep = Sweep {
            entries: (1..=100).map(|i| i * 16).collect(),
            cam_ways: vec![16, 32, 64],
            stages: vec![1, 2, 3],
            cache_slots: vec![0, 256, 512, 1024],
            shards: vec![1, 2],
        };
        assert!(sweep.len() > MAX_SWEEP_POINTS);
        let err = Explorer::new(Some(1)).evaluate(&sweep).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn stanza_lists_lower_to_a_canonical_sweep() {
        let p = ExploreParams {
            entries: vec![1024, 256, 256],
            cam_ways: vec![64, 16],
            stages: vec![3, 1],
            cache: vec![1024, 0],
            shards: vec![2, 1],
        };
        let sweep = sweep_from_params(&p);
        assert_eq!(sweep.entries, vec![256, 1024]);
        assert_eq!(sweep.cam_ways, vec![16, 64]);
        assert_eq!(sweep.stages, vec![1, 3]);
        assert_eq!(sweep.cache_slots, vec![0, 1024]);
        assert_eq!(sweep.shards, vec![1, 2]);
    }
}
