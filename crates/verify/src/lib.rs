//! # siopmp-verify — static configuration analyzer for sIOPMP tables
//!
//! The paper's security argument rests on the sIOPMP tables (remapping
//! CAM, SRC2MD, MDCFG, entry table, mountable sub-tables) and the secure
//! monitor's capability state agreeing at all times. This crate checks
//! that agreement *statically*: [`analyze`] takes a snapshot of a
//! [`Siopmp`] unit (and optionally the monitor's exported
//! [`CapabilityMap`]), computes each SID's reachable address map through
//! the interval/priority abstract domain in [`domain`], and emits
//! severity-ranked, machine-readable diagnostics:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `shadowed-entry` | Warning/Info | an occupied entry can never decide an access |
//! | `priority-conflict` | Warning/Info | overlapping entries disagree on permissions |
//! | `permission-widening` | Warning | re-mounting the cold device would widen access |
//! | `cross-sid-overlap` | Error | a SID reaches another TEE's enclave memory |
//! | `capability-divergence` | Error | a table grant has no backing live capability |
//!
//! The analyzer is *sound with respect to the hardware model*: the
//! differential property test in `tests/differential.rs` replays tens of
//! thousands of randomized probes through both [`SidView::predict`] and
//! [`Siopmp::check`] and requires byte-identical outcomes.
//!
//! ## Example
//!
//! ```
//! use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
//! use siopmp::ids::{DeviceId, MdIndex};
//! use siopmp::{Siopmp, SiopmpConfig};
//! use siopmp_verify::{analyze, DiagnosticCode};
//!
//! let mut unit = Siopmp::build(SiopmpConfig::small(), None);
//! let sid = unit.map_hot_device(DeviceId(1)).unwrap();
//! unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
//! let wide = IopmpEntry::new(AddressRange::new(0x1000, 0x1000).unwrap(), Permissions::rw());
//! let dead = IopmpEntry::new(AddressRange::new(0x1800, 0x100).unwrap(), Permissions::read_only());
//! unit.install_entry(MdIndex(0), wide).unwrap();
//! unit.install_entry(MdIndex(0), dead).unwrap();
//!
//! let report = analyze(&unit, None);
//! assert!(report
//!     .diagnostics()
//!     .iter()
//!     .any(|d| d.code == DiagnosticCode::ShadowedEntry));
//! ```

pub mod differential;
pub mod domain;

use siopmp::entry::IopmpEntry;
use siopmp::ids::{DeviceId, EntryIndex, MdIndex, SourceId};
use siopmp::json::Json;
use siopmp::request::AccessKind;
use siopmp::{CheckOutcome, Siopmp};
use std::collections::BTreeSet;

pub use domain::{interval_at, reachable, Interval};

/// How bad a diagnostic is. `Error` findings are isolation violations;
/// the pre-switch monitor hook and the `verify-lint` CI job reject on
/// them. Ordered so `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, not necessarily wrong.
    Info,
    /// Suspicious configuration (dead entries, conflicting rules).
    Warning,
    /// An isolation invariant is violated.
    Error,
}

impl Severity {
    /// Lower-case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl core::fmt::Display for Severity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The diagnostic taxonomy (see the crate-level table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// An occupied entry that can never decide any access.
    ShadowedEntry,
    /// Overlapping entries whose permissions disagree: the outcome over
    /// the overlap silently depends on entry order.
    PriorityConflict,
    /// Re-mounting the currently mounted cold device would grant access
    /// the in-table cold window does not grant today.
    PermissionWidening,
    /// A SID's reachable map extends into memory owned by a different
    /// TEE's enclave.
    CrossSidOverlap,
    /// A hardware table grant not justified by a live capability.
    CapabilityDivergence,
}

impl DiagnosticCode {
    /// The stable machine-readable code string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::ShadowedEntry => "shadowed-entry",
            DiagnosticCode::PriorityConflict => "priority-conflict",
            DiagnosticCode::PermissionWidening => "permission-widening",
            DiagnosticCode::CrossSidOverlap => "cross-sid-overlap",
            DiagnosticCode::CapabilityDivergence => "capability-divergence",
        }
    }
}

impl core::fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which invariant class the finding belongs to.
    pub code: DiagnosticCode,
    /// How bad it is.
    pub severity: Severity,
    /// The SID whose view the finding concerns, when SID-specific.
    pub sid: Option<SourceId>,
    /// The device involved, when known.
    pub device: Option<DeviceId>,
    /// The entry the finding anchors to, when entry-specific.
    pub entry: Option<EntryIndex>,
    /// The address region `[start, end)` concerned, when range-specific.
    pub region: Option<(u64, u64)>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Serializes the finding for the JSON report.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("code", Json::str(self.code.as_str())),
            ("severity", Json::str(self.severity.label())),
            ("message", Json::str(self.message.clone())),
        ];
        if let Some(sid) = self.sid {
            pairs.push(("sid", Json::u64(u64::from(sid.0))));
        }
        if let Some(device) = self.device {
            pairs.push(("device", Json::u64(device.0)));
        }
        if let Some(entry) = self.entry {
            pairs.push(("entry", Json::u64(u64::from(entry.0))));
        }
        if let Some((start, end)) = self.region {
            pairs.push((
                "region",
                Json::object([("start", Json::u64(start)), ("end", Json::u64(end))]),
            ));
        }
        Json::object(pairs)
    }
}

/// A memory right the monitor has granted to a device: the byte range a
/// live capability covers and which accesses it justifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryGrant {
    /// Base of the granted range.
    pub base: u64,
    /// Length of the granted range in bytes.
    pub len: u64,
    /// Whether the capability justifies device reads.
    pub read: bool,
    /// Whether the capability justifies device writes.
    pub write: bool,
}

impl MemoryGrant {
    fn end(&self) -> u64 {
        self.base.saturating_add(self.len)
    }
}

/// The grants backing one device, and which TEE owns the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceGrants {
    /// The device.
    pub device: DeviceId,
    /// Numeric id of the owning TEE.
    pub tee: u32,
    /// Live memory capabilities referenced by the device's mappings.
    pub grants: Vec<MemoryGrant>,
}

/// A memory region owned by a TEE (enclave memory): any *other* TEE's
/// device reaching into it is a cross-SID isolation violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeeRegion {
    /// Numeric id of the owning TEE.
    pub tee: u32,
    /// Base of the owned region.
    pub base: u64,
    /// Length of the owned region in bytes.
    pub len: u64,
}

impl TeeRegion {
    fn end(&self) -> u64 {
        self.base.saturating_add(self.len)
    }
}

/// The monitor's capability/ownership state, exported as plain data so
/// the analyzer stays free of a monitor dependency (the monitor depends
/// on this crate for the pre-switch hook, not the other way around).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapabilityMap {
    /// Per-device grant lists.
    pub devices: Vec<DeviceGrants>,
    /// Enclave-owned memory regions (one per live TEE memory capability).
    pub regions: Vec<TeeRegion>,
}

impl CapabilityMap {
    /// The grants recorded for `device`, if the map knows it.
    pub fn grants_for(&self, device: DeviceId) -> Option<&DeviceGrants> {
        self.devices.iter().find(|g| g.device == device)
    }
}

/// What the analyzer predicts [`Siopmp::check`] will say.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicted {
    /// Allowed by the winning entry.
    Allowed {
        /// The entry that wins the priority match.
        matched: EntryIndex,
    },
    /// Denied: no entry fully contains the access.
    DeniedNoMatch,
    /// Denied: the winning entry lacks the required permission.
    DeniedPermission {
        /// The entry that wins the priority match.
        matched: EntryIndex,
    },
    /// The SID is blocked; the request stalls.
    Stalled,
    /// The device is registered cold but not mounted.
    SidMissing,
}

impl Predicted {
    /// Whether this prediction matches a concrete [`CheckOutcome`]
    /// (including the winning entry index for allowed accesses).
    pub fn agrees_with(&self, outcome: &CheckOutcome) -> bool {
        match (self, outcome) {
            (Predicted::Allowed { matched }, CheckOutcome::Allowed { matched: m, .. }) => {
                matched == m
            }
            (
                Predicted::DeniedNoMatch | Predicted::DeniedPermission { .. },
                CheckOutcome::Denied(_),
            ) => true,
            (Predicted::Stalled, CheckOutcome::Stalled { .. }) => true,
            (Predicted::SidMissing, CheckOutcome::SidMissing { .. }) => true,
            _ => false,
        }
    }
}

/// One SID's abstract view of the tables: which entries it can see
/// (SRC2MD mask ∘ MDCFG windows, in global priority order) and the
/// reachability map they induce.
#[derive(Debug, Clone)]
pub struct SidView {
    /// The SID.
    pub sid: SourceId,
    /// The device resolving to this SID (CAM row, or the mounted cold
    /// device for the cold SID), when any.
    pub device: Option<DeviceId>,
    /// Whether the SID is currently blocked.
    pub blocked: bool,
    /// The memory domains associated with the SID.
    pub domains: Vec<MdIndex>,
    /// Visible occupied entries, ascending index.
    pub visible: Vec<(EntryIndex, IopmpEntry)>,
    /// The reachability map (disjoint, sorted by start).
    pub intervals: Vec<Interval>,
    /// Visible entries that can never decide an access.
    pub dead: Vec<EntryIndex>,
}

impl SidView {
    /// Predicts the checker's outcome for an access from this SID. Exact
    /// with respect to [`Siopmp::check`] — validated by the differential
    /// property test.
    pub fn predict(&self, kind: AccessKind, addr: u64, len: u64) -> Predicted {
        if self.blocked {
            return Predicted::Stalled;
        }
        for (idx, entry) in &self.visible {
            if entry.matches(addr, len) {
                return if entry.permissions().allows(kind.required()) {
                    Predicted::Allowed { matched: *idx }
                } else {
                    Predicted::DeniedPermission { matched: *idx }
                };
            }
        }
        Predicted::DeniedNoMatch
    }

    /// The interval covering `addr`, if the SID can reach it at all.
    pub fn reach_at(&self, addr: u64) -> Option<&Interval> {
        interval_at(&self.intervals, addr)
    }
}

/// The analyzer's output: diagnostics (most severe first) plus the
/// per-SID views they were derived from.
#[derive(Debug, Clone)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
    views: Vec<SidView>,
    hot: Vec<(SourceId, DeviceId)>,
    mounted: Option<DeviceId>,
    cold: Vec<DeviceId>,
    cold_sid: SourceId,
}

impl Report {
    /// The findings, sorted most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// All per-SID views (one per configured SID).
    pub fn views(&self) -> &[SidView] {
        &self.views
    }

    /// The view of a specific SID.
    pub fn view(&self, sid: SourceId) -> Option<&SidView> {
        self.views.iter().find(|v| v.sid == sid)
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any Error-severity finding exists (isolation violated).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Predicts the checker's outcome for a device-level DMA request,
    /// replaying the CAM → eSID → extended-table resolution order.
    pub fn predict(&self, device: DeviceId, kind: AccessKind, addr: u64, len: u64) -> Predicted {
        if let Some((sid, _)) = self.hot.iter().find(|(_, d)| *d == device) {
            return self
                .view(*sid)
                .map(|v| v.predict(kind, addr, len))
                .unwrap_or(Predicted::DeniedNoMatch);
        }
        if self.mounted == Some(device) {
            return self
                .view(self.cold_sid)
                .map(|v| v.predict(kind, addr, len))
                .unwrap_or(Predicted::DeniedNoMatch);
        }
        if self.cold.contains(&device) {
            return Predicted::SidMissing;
        }
        Predicted::DeniedNoMatch
    }

    /// Serializes the report: a summary block plus every diagnostic.
    pub fn to_json(&self) -> Json {
        let intervals: usize = self.views.iter().map(|v| v.intervals.len()).sum();
        Json::object([
            (
                "summary",
                Json::object([
                    ("errors", Json::u64(self.count(Severity::Error) as u64)),
                    ("warnings", Json::u64(self.count(Severity::Warning) as u64)),
                    ("info", Json::u64(self.count(Severity::Info) as u64)),
                    ("sids_analyzed", Json::u64(self.views.len() as u64)),
                    ("intervals", Json::u64(intervals as u64)),
                    ("hot_devices", Json::u64(self.hot.len() as u64)),
                    ("cold_devices", Json::u64(self.cold.len() as u64)),
                ]),
            ),
            (
                "diagnostics",
                Json::array(self.diagnostics.iter().map(Diagnostic::to_json)),
            ),
        ])
    }
}

fn fmt_region(start: u64, end: u64) -> String {
    format!("[{start:#x}, {end:#x})")
}

/// Analyzes a snapshot of `unit` (and optionally the monitor's exported
/// capability state) and returns the diagnostics plus per-SID views.
///
/// The analysis is read-only and side-effect free; it never touches the
/// decision cache, the CAM's reference bits, or the violation log.
pub fn analyze(unit: &Siopmp, caps: Option<&CapabilityMap>) -> Report {
    let cfg = unit.config();
    let hot = unit.hot_devices();
    let mounted = unit.mounted_cold_device();
    let cold: Vec<DeviceId> = unit.cold_devices().map(|(d, _)| d).collect();
    let cold_sid = cfg.cold_sid();

    // ------------------------------------------------------------------
    // Per-SID views through the abstract domain.
    // ------------------------------------------------------------------
    let mut views = Vec::with_capacity(cfg.num_sids);
    for s in 0..cfg.num_sids {
        let sid = SourceId(s as u16);
        let domains = unit.sid_domains(sid).unwrap_or_default();
        let mut visible: Vec<(EntryIndex, IopmpEntry)> = Vec::new();
        for md in &domains {
            if let Ok((start, end)) = unit.md_window(*md) {
                for j in start..end {
                    if let Ok(Some(entry)) = unit.entry(EntryIndex(j)) {
                        visible.push((EntryIndex(j), entry));
                    }
                }
            }
        }
        visible.sort_unstable_by_key(|(i, _)| *i);
        let (intervals, dead) = domain::reachable(&visible);
        let device = if sid == cold_sid {
            mounted
        } else {
            hot.iter().find(|(s2, _)| *s2 == sid).map(|(_, d)| *d)
        };
        views.push(SidView {
            sid,
            device,
            blocked: unit.is_sid_blocked(sid),
            domains,
            visible,
            intervals,
            dead,
        });
    }

    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // ------------------------------------------------------------------
    // shadowed-entry: occupied entries that can never decide an access.
    // ------------------------------------------------------------------
    let entry_md: Vec<Option<MdIndex>> = {
        let mut map = vec![None; cfg.num_entries];
        for m in 0..cfg.num_mds {
            let md = MdIndex(m as u16);
            if let Ok((start, end)) = unit.md_window(md) {
                for j in start..end {
                    map[j as usize] = Some(md);
                }
            }
        }
        map
    };
    for (idx, entry) in unit.entries() {
        let md = entry_md[idx.index()];
        let viewers: Vec<&SidView> = match md {
            Some(md) => views.iter().filter(|v| v.domains.contains(&md)).collect(),
            None => Vec::new(),
        };
        if viewers.is_empty() {
            diagnostics.push(Diagnostic {
                code: DiagnosticCode::ShadowedEntry,
                severity: Severity::Info,
                sid: None,
                device: None,
                entry: Some(idx),
                region: Some((entry.range().base(), entry.range().end())),
                message: format!(
                    "{idx} ({entry}) sits in a window no SID is associated with; it can never match"
                ),
            });
        } else if viewers.iter().all(|v| v.dead.contains(&idx)) {
            let sids: Vec<String> = viewers.iter().map(|v| v.sid.to_string()).collect();
            diagnostics.push(Diagnostic {
                code: DiagnosticCode::ShadowedEntry,
                severity: Severity::Warning,
                sid: Some(viewers[0].sid),
                device: viewers[0].device,
                entry: Some(idx),
                region: Some((entry.range().base(), entry.range().end())),
                message: format!(
                    "{idx} ({entry}) is fully shadowed by higher-priority entries in every view that sees it ({})",
                    sids.join(", ")
                ),
            });
        }
    }

    // ------------------------------------------------------------------
    // priority-conflict: overlapping visible entries with differing
    // permissions. Deduplicated per entry pair across views.
    // ------------------------------------------------------------------
    let mut seen_pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut seen_views: BTreeSet<Vec<u32>> = BTreeSet::new();
    for view in &views {
        if view.visible.len() < 2 {
            continue;
        }
        let signature: Vec<u32> = view.visible.iter().map(|(i, _)| i.0).collect();
        if !seen_views.insert(signature) {
            continue; // identical view already scanned
        }
        for (a, (idx_hi, hi)) in view.visible.iter().enumerate() {
            for (idx_lo, lo) in view.visible.iter().skip(a + 1) {
                let r = lo.range();
                if !hi.range().overlaps(r.base(), r.len()) {
                    continue;
                }
                if hi.permissions() == lo.permissions() {
                    continue;
                }
                if !seen_pairs.insert((idx_hi.0, idx_lo.0)) {
                    continue;
                }
                // The higher-priority entry decides the overlap; widening
                // (granting a right the shadowed rule withholds) is the
                // dangerous direction.
                let widens = (hi.permissions().read() && !lo.permissions().read())
                    || (hi.permissions().write() && !lo.permissions().write());
                let ov_start = hi.range().base().max(r.base());
                let ov_end = hi.range().end().min(r.end());
                diagnostics.push(Diagnostic {
                    code: DiagnosticCode::PriorityConflict,
                    severity: if widens { Severity::Warning } else { Severity::Info },
                    sid: Some(view.sid),
                    device: view.device,
                    entry: Some(*idx_lo),
                    region: Some((ov_start, ov_end)),
                    message: format!(
                        "{idx_hi} ({hi}) overrides {idx_lo} ({lo}) over {}; the outcome {} on entry order",
                        fmt_region(ov_start, ov_end),
                        if widens { "widens access depending" } else { "depends" },
                    ),
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // permission-widening: the mounted cold device's extended record vs
    // the cold window actually loaded in hardware. Re-mounting replays
    // the record; any right the record grants beyond the live window
    // appears silently at the next switch.
    // ------------------------------------------------------------------
    if let Some(device) = mounted {
        if let Some((_, record)) = unit.cold_devices().find(|(d, _)| *d == device) {
            let table_view: Vec<(EntryIndex, IopmpEntry)> = unit
                .md_window(cfg.cold_md())
                .map(|(start, end)| {
                    (start..end)
                        .filter_map(|j| {
                            unit.entry(EntryIndex(j))
                                .ok()
                                .flatten()
                                .map(|e| (EntryIndex(j), e))
                        })
                        .collect()
                })
                .unwrap_or_default();
            let record_view: Vec<(EntryIndex, IopmpEntry)> = record
                .entries
                .iter()
                .enumerate()
                .map(|(k, e)| (EntryIndex(k as u32), *e))
                .collect();
            let (now, _) = domain::reachable(&table_view);
            let (next, _) = domain::reachable(&record_view);
            for (start, end, right) in domain::widened(&now, &next) {
                diagnostics.push(Diagnostic {
                    code: DiagnosticCode::PermissionWidening,
                    severity: Severity::Warning,
                    sid: Some(cold_sid),
                    device: Some(device),
                    entry: None,
                    region: Some((start, end)),
                    message: format!(
                        "re-mounting {device} would gain {right} access over {} that the live cold window does not grant",
                        fmt_region(start, end)
                    ),
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Capability-backed checks (need the monitor's exported map).
    // ------------------------------------------------------------------
    if let Some(caps) = caps {
        for view in &views {
            let Some(device) = view.device else { continue };
            let owner = caps.grants_for(device);

            // cross-sid-overlap: reachable spans intruding into another
            // TEE's enclave memory.
            for region in &caps.regions {
                if owner.is_some_and(|g| g.tee == region.tee) {
                    continue; // the device's own TEE owns this region
                }
                let intruding = domain::merge_spans(
                    view.intervals
                        .iter()
                        .filter(|iv| iv.perms.read() || iv.perms.write())
                        .map(|iv| (iv.start.max(region.base), iv.end.min(region.end())))
                        .filter(|&(s, e)| s < e)
                        .collect(),
                );
                for (start, end) in intruding {
                    diagnostics.push(Diagnostic {
                        code: DiagnosticCode::CrossSidOverlap,
                        severity: Severity::Error,
                        sid: Some(view.sid),
                        device: Some(device),
                        entry: None,
                        region: Some((start, end)),
                        message: format!(
                            "{} ({device}) reaches {} inside memory owned by TEE {}",
                            view.sid,
                            fmt_region(start, end),
                            region.tee
                        ),
                    });
                }
            }

            // capability-divergence: every granted right in the reachable
            // map must be covered by a live capability of the device.
            let grants = owner.map(|g| g.grants.as_slice()).unwrap_or(&[]);
            push_divergence(
                &mut diagnostics,
                &view.intervals,
                grants,
                Some(view.sid),
                device,
                "hardware table",
            );
        }

        // Cold records awaiting a mount are table state too: a grant in a
        // record with no live capability becomes an isolation violation
        // the moment the device DMAs. The mounted device is already
        // checked through the live cold-SID view above.
        for (device, record) in unit.cold_devices() {
            if Some(device) == mounted {
                continue;
            }
            let record_view: Vec<(EntryIndex, IopmpEntry)> = record
                .entries
                .iter()
                .enumerate()
                .map(|(k, e)| (EntryIndex(k as u32), *e))
                .collect();
            let (map, _) = domain::reachable(&record_view);
            let grants = caps
                .grants_for(device)
                .map(|g| g.grants.as_slice())
                .unwrap_or(&[]);
            push_divergence(
                &mut diagnostics,
                &map,
                grants,
                None,
                device,
                "extended-table record",
            );
        }
    }

    diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(&b.code)));
    Report {
        diagnostics,
        views,
        hot,
        mounted,
        cold,
        cold_sid,
    }
}

/// Emits `capability-divergence` findings for every span of `map` that
/// grants a right no capability in `grants` justifies.
fn push_divergence(
    diagnostics: &mut Vec<Diagnostic>,
    map: &[Interval],
    grants: &[MemoryGrant],
    sid: Option<SourceId>,
    device: DeviceId,
    what: &str,
) {
    for (write, right) in [(false, "read"), (true, "write")] {
        let justified = domain::merge_spans(
            grants
                .iter()
                .filter(|g| if write { g.write } else { g.read })
                .map(|g| (g.base, g.end()))
                .collect(),
        );
        for span in domain::granted_spans(map, write) {
            for (start, end) in domain::subtract(span, &justified) {
                diagnostics.push(Diagnostic {
                    code: DiagnosticCode::CapabilityDivergence,
                    severity: Severity::Error,
                    sid,
                    device: Some(device),
                    entry: interval_at(map, start).map(|iv| iv.winner),
                    region: Some((start, end)),
                    message: format!(
                        "{what} grants {device} {right} access over {} with no backing live capability",
                        fmt_region(start, end)
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::entry::{AddressRange, Permissions};
    use siopmp::SiopmpConfig;

    fn entry(base: u64, len: u64, p: Permissions) -> IopmpEntry {
        IopmpEntry::new(AddressRange::new(base, len).unwrap(), p)
    }

    #[test]
    fn clean_unit_reports_nothing() {
        let mut unit = Siopmp::build(SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(1)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
        unit.install_entry(MdIndex(0), entry(0x1000, 0x100, Permissions::rw()))
            .unwrap();
        let report = analyze(&unit, None);
        assert!(
            report.diagnostics().is_empty(),
            "{:?}",
            report.diagnostics()
        );
        assert!(!report.has_errors());
        let v = report.view(sid).unwrap();
        assert_eq!(v.intervals.len(), 1);
        assert_eq!(v.device, Some(DeviceId(1)));
    }

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(
            DiagnosticCode::CapabilityDivergence.to_string(),
            "capability-divergence"
        );
    }

    #[test]
    fn report_json_has_summary_and_diagnostics() {
        let unit = Siopmp::build(SiopmpConfig::small(), None);
        let report = analyze(&unit, None);
        let rendered = report.to_json().to_string();
        assert!(rendered.contains("\"summary\""));
        assert!(rendered.contains("\"errors\":0"));
        assert!(rendered.contains("\"diagnostics\":[]"));
    }

    #[test]
    fn predict_resolves_unknown_devices_to_deny() {
        let unit = Siopmp::build(SiopmpConfig::small(), None);
        let report = analyze(&unit, None);
        assert_eq!(
            report.predict(DeviceId(99), AccessKind::Read, 0x0, 8),
            Predicted::DeniedNoMatch
        );
    }

    #[test]
    fn predict_flags_cold_devices_as_sid_missing() {
        let mut unit = Siopmp::build(SiopmpConfig::small(), None);
        unit.register_cold_device(
            DeviceId(7),
            siopmp::mountable::MountableEntry {
                domains: vec![],
                entries: vec![entry(0x4000, 0x100, Permissions::rw())],
            },
        )
        .unwrap();
        let report = analyze(&unit, None);
        assert_eq!(
            report.predict(DeviceId(7), AccessKind::Read, 0x4000, 8),
            Predicted::SidMissing
        );
        // After mounting, the cold SID's view answers.
        unit.handle_sid_missing(DeviceId(7)).unwrap();
        let report = analyze(&unit, None);
        assert!(matches!(
            report.predict(DeviceId(7), AccessKind::Read, 0x4000, 8),
            Predicted::Allowed { .. }
        ));
    }
}
