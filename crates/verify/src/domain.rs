//! The interval/priority abstract domain.
//!
//! The sIOPMP check is a priority match: the lowest-indexed entry that
//! fully contains the access wins, and its permissions decide the outcome.
//! For a *single byte* at address `a` this induces a total function
//! `a -> Option<(winning entry, permissions)>`, and because entries are
//! finite half-open ranges the function is piecewise constant: it is fully
//! described by a sorted list of disjoint [`Interval`]s.
//!
//! [`reachable`] computes that list for one SID's visible entry list by
//! replaying the priority order: each entry claims whatever part of its
//! range no higher-priority entry already claimed. An entry whose range is
//! claimed away completely is *dead* (shadowed) — it can never decide any
//! access, which is the analyzer's `shadowed-entry` diagnostic.
//!
//! Multi-byte accesses need the full entry list (a request spanning two
//! intervals can still be allowed by a lower-priority entry that contains
//! the whole request), so the per-SID view keeps both representations; the
//! interval map is exact for any access confined to one interval and for
//! all byte-granular reasoning the diagnostics do.

use siopmp::entry::{IopmpEntry, Permissions};
use siopmp::ids::EntryIndex;

/// One piece of the per-SID reachability map: over `[start, end)` the
/// priority check resolves to `winner`, granting `perms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First byte covered (inclusive).
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
    /// The entry that wins the priority match over this span.
    pub winner: EntryIndex,
    /// The winner's permissions.
    pub perms: Permissions,
}

impl Interval {
    /// Length of the interval in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the interval is empty (never produced by [`reachable`]).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Subtracts a sorted, disjoint list of `claimed` spans from `span`,
/// returning the uncovered pieces in ascending order.
pub fn subtract(span: (u64, u64), claimed: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let (mut s, e) = span;
    let mut out = Vec::new();
    for &(cs, ce) in claimed {
        if ce <= s {
            continue;
        }
        if cs >= e {
            break;
        }
        if cs > s {
            out.push((s, cs));
        }
        s = s.max(ce);
        if s >= e {
            return out;
        }
    }
    if s < e {
        out.push((s, e));
    }
    out
}

/// Sorts spans by start and merges overlapping/adjacent ones.
pub fn merge_spans(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.retain(|&(s, e)| s < e);
    spans.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        if let Some(last) = merged.last_mut() {
            if s <= last.1 {
                last.1 = last.1.max(e);
                continue;
            }
        }
        merged.push((s, e));
    }
    merged
}

/// Computes the reachability map of a priority-ordered visible entry list.
///
/// Returns the disjoint interval map (sorted by start) and the indices of
/// *dead* entries: occupied entries whose entire range is claimed by
/// higher-priority entries, so they can never decide an access.
///
/// `visible` must be sorted by ascending [`EntryIndex`] (global priority
/// order), which is how every caller obtains it.
pub fn reachable(visible: &[(EntryIndex, IopmpEntry)]) -> (Vec<Interval>, Vec<EntryIndex>) {
    let mut claimed: Vec<(u64, u64)> = Vec::new();
    let mut intervals: Vec<Interval> = Vec::new();
    let mut dead: Vec<EntryIndex> = Vec::new();
    for (idx, entry) in visible {
        let span = (entry.range().base(), entry.range().end());
        let pieces = subtract(span, &claimed);
        if pieces.is_empty() {
            dead.push(*idx);
            continue;
        }
        for (s, e) in pieces {
            intervals.push(Interval {
                start: s,
                end: e,
                winner: *idx,
                perms: entry.permissions(),
            });
        }
        claimed.push(span);
        claimed = merge_spans(claimed);
    }
    intervals.sort_unstable_by_key(|iv| iv.start);
    (intervals, dead)
}

/// Looks up the interval containing `addr`, if any (binary search).
pub fn interval_at(intervals: &[Interval], addr: u64) -> Option<&Interval> {
    let pos = intervals.partition_point(|iv| iv.end <= addr);
    intervals.get(pos).filter(|iv| iv.start <= addr)
}

/// The merged spans over which `map` grants the given access right.
pub fn granted_spans(map: &[Interval], write: bool) -> Vec<(u64, u64)> {
    merge_spans(
        map.iter()
            .filter(|iv| {
                if write {
                    iv.perms.write()
                } else {
                    iv.perms.read()
                }
            })
            .map(|iv| (iv.start, iv.end))
            .collect(),
    )
}

/// Regions where `next` grants an access right that `now` does not —
/// permission *widening* if `next` replaces `now` (e.g. across a cold
/// switch remount). Returns `(start, end, right)` triples.
pub fn widened(now: &[Interval], next: &[Interval]) -> Vec<(u64, u64, &'static str)> {
    let mut out = Vec::new();
    for (write, name) in [(false, "read"), (true, "write")] {
        let have = granted_spans(now, write);
        for span in granted_spans(next, write) {
            for (s, e) in subtract(span, &have) {
                out.push((s, e, name));
            }
        }
    }
    out.sort_unstable_by_key(|&(s, e, _)| (s, e));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::entry::AddressRange;

    fn e(base: u64, len: u64, p: Permissions) -> IopmpEntry {
        IopmpEntry::new(AddressRange::new(base, len).unwrap(), p)
    }

    #[test]
    fn disjoint_entries_map_one_to_one() {
        let visible = vec![
            (EntryIndex(0), e(0x1000, 0x100, Permissions::rw())),
            (EntryIndex(1), e(0x3000, 0x100, Permissions::read_only())),
        ];
        let (map, dead) = reachable(&visible);
        assert!(dead.is_empty());
        assert_eq!(map.len(), 2);
        assert_eq!(map[0].winner, EntryIndex(0));
        assert_eq!(map[1].winner, EntryIndex(1));
        assert_eq!(interval_at(&map, 0x3050).unwrap().winner, EntryIndex(1));
        assert!(interval_at(&map, 0x2000).is_none());
        assert!(interval_at(&map, 0xfff).is_none());
    }

    #[test]
    fn higher_priority_claims_overlap() {
        let visible = vec![
            (EntryIndex(0), e(0x1000, 0x100, Permissions::none())),
            (EntryIndex(1), e(0x1000, 0x200, Permissions::rw())),
        ];
        let (map, dead) = reachable(&visible);
        assert!(dead.is_empty());
        // [0x1000, 0x1100) -> entry 0 (deny), [0x1100, 0x1200) -> entry 1.
        assert_eq!(map.len(), 2);
        assert_eq!(interval_at(&map, 0x1080).unwrap().winner, EntryIndex(0));
        assert!(!interval_at(&map, 0x1080).unwrap().perms.read());
        assert_eq!(interval_at(&map, 0x1180).unwrap().winner, EntryIndex(1));
    }

    #[test]
    fn fully_covered_entry_is_dead() {
        let visible = vec![
            (EntryIndex(2), e(0x1000, 0x400, Permissions::rw())),
            (EntryIndex(5), e(0x1100, 0x100, Permissions::read_only())),
        ];
        let (map, dead) = reachable(&visible);
        assert_eq!(dead, vec![EntryIndex(5)]);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn split_coverage_leaves_middle_dead() {
        // Two high-priority entries cover the low one's range entirely.
        let visible = vec![
            (EntryIndex(0), e(0x1000, 0x100, Permissions::rw())),
            (EntryIndex(1), e(0x1100, 0x100, Permissions::rw())),
            (EntryIndex(2), e(0x1000, 0x200, Permissions::none())),
        ];
        let (_, dead) = reachable(&visible);
        assert_eq!(dead, vec![EntryIndex(2)]);
    }

    #[test]
    fn subtract_handles_all_positions() {
        let claimed = [(10, 20), (30, 40)];
        assert_eq!(
            subtract((0, 50), &claimed),
            vec![(0, 10), (20, 30), (40, 50)]
        );
        assert_eq!(subtract((10, 20), &claimed), vec![]);
        assert_eq!(subtract((15, 35), &claimed), vec![(20, 30)]);
        assert_eq!(subtract((40, 45), &claimed), vec![(40, 45)]);
    }

    #[test]
    fn merge_spans_coalesces() {
        assert_eq!(
            merge_spans(vec![(30, 40), (0, 10), (10, 20), (35, 50), (60, 60)]),
            vec![(0, 20), (30, 50)]
        );
    }

    #[test]
    fn widened_reports_new_rights_only() {
        let (now, _) = reachable(&[(EntryIndex(0), e(0x1000, 0x100, Permissions::read_only()))]);
        let (next, _) = reachable(&[(EntryIndex(0), e(0x1000, 0x200, Permissions::rw()))]);
        let w = widened(&now, &next);
        // New read coverage over [0x1100, 0x1200); new write over the full range.
        assert!(w.contains(&(0x1100, 0x1200, "read")));
        assert!(w.contains(&(0x1000, 0x1200, "write")));
        assert!(widened(&next, &next).is_empty());
        // Narrowing reports nothing.
        assert!(widened(&next, &now).is_empty());
    }
}
