//! The measured differential suite: randomized configurations probed
//! through both [`analyze`]'s predictions and the concrete
//! [`Siopmp::check`], with the analyzer's Error-severity findings graded
//! into *corroborated* and *spurious*.
//!
//! The generator used by the soundness property test
//! (`tests/differential.rs`) lives here so the `siopmp-verify` binary and
//! the bounded model checker (`siopmp-prove`) replay the exact same
//! distribution. [`measure`] runs the full sweep — by default the
//! [`CONFIGS`]`×`[`PROBES_PER_CONFIG`] grid the acceptance criteria name —
//! and reports:
//!
//! * **agreement**: every probe where [`crate::Report::predict`] and the hardware
//!   agree (a disagreement is a soundness bug, surfaced as a non-zero
//!   `disagreements` count for callers to gate on);
//! * **false-positive rate**: Error-severity diagnostics are checked for a
//!   concrete witness — a probe inside the flagged region that the
//!   hardware *allows*, taken on a clone of the unit with stalls lifted
//!   and the flagged cold record mounted (an Error is a claim that a
//!   grant exists; the witness is that grant being exercisable). Errors
//!   with no witness are counted spurious, and `spurious / errors` is the
//!   measured false-positive rate the JSON report carries.
//!
//! The capability maps fed to the analyzer are synthesized from the
//! unit's own tables with deliberate dropout (grants withheld, enclave
//! regions claimed over reachable memory), so the Error paths are
//! genuinely exercised rather than vacuously zero.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex, SourceId};
use siopmp::json::Json;
use siopmp::mountable::MountableEntry;
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_testkit::Gen;

use crate::{analyze, CapabilityMap, DeviceGrants, MemoryGrant, Severity, TeeRegion};

/// Generated configurations per sweep (the acceptance floor is 100).
pub const CONFIGS: u64 = 128;

/// Probes fired per configuration (the acceptance floor is 10k total).
pub const PROBES_PER_CONFIG: usize = 128;

/// A device ID never registered anywhere — probes through it must resolve
/// to deny.
pub const UNKNOWN_DEVICE: DeviceId = DeviceId(999);

/// A random permission nibble, `none` included (a matching `none` entry
/// *denies* — the interesting priority case).
pub fn random_perms(g: &mut Gen) -> Permissions {
    *g.choose(&[
        Permissions::rw(),
        Permissions::read_only(),
        Permissions::write_only(),
        Permissions::none(),
    ])
}

/// A random entry on a small page grid so entries overlap often — the
/// interesting regime for priority reasoning.
pub fn random_entry(g: &mut Gen) -> IopmpEntry {
    let base = g.u64(0..24) * 0x800;
    let len = *g.choose(&[0x100u64, 0x400, 0x800, 0x1000, 0x2000]);
    IopmpEntry::new(AddressRange::new(base, len).unwrap(), random_perms(g))
}

/// Builds a randomized unit — hot devices, random MD associations,
/// overlapping entries, cold registrations, mount churn, promotion and
/// blocked SIDs — and returns it plus every device ID that ever existed
/// in it (all worth probing).
pub fn random_unit(g: &mut Gen) -> (Siopmp, Vec<DeviceId>) {
    let mut cfg = SiopmpConfig::small();
    cfg.num_sids = g.usize(4..9);
    cfg.num_mds = g.usize(4..9);
    cfg.num_entries = g.usize(24..65);
    cfg.cold_md_entries = g.usize(2..5);
    // Exercise both the cache-free reference path and the decision cache.
    cfg.decision_cache_slots = if g.bool() { 64 } else { 0 };
    let mut unit = Siopmp::build(cfg, None);
    let cfg = unit.config().clone();
    let hot_mds: Vec<MdIndex> = (0..cfg.cold_md().0).map(MdIndex).collect();

    let mut devices: Vec<DeviceId> = Vec::new();

    // Hot devices with random domain associations.
    let n_hot = g.usize(1..cfg.num_hot_sids().min(5));
    for i in 0..n_hot {
        let device = DeviceId(1 + i as u64);
        let Ok(sid) = unit.map_hot_device(device) else {
            continue;
        };
        devices.push(device);
        for _ in 0..g.usize(1..4) {
            let md = *g.choose(&hot_mds);
            if !unit.is_associated(sid, md).unwrap_or(true) {
                let _ = unit.associate_sid_with_md(sid, md);
            }
        }
    }

    // Entries: deliberately overlapping, mixed permissions, some in
    // windows no SID views.
    for _ in 0..g.usize(4..16) {
        let md = *g.choose(&hot_mds);
        let _ = unit.install_entry(md, random_entry(g)); // MdFull is fine
    }

    // Cold devices with small mountable records.
    let n_cold = g.usize(0..3);
    for i in 0..n_cold {
        let device = DeviceId(100 + i as u64);
        let record = MountableEntry {
            domains: if g.bool_with(0.3) {
                vec![*g.choose(&hot_mds)]
            } else {
                vec![]
            },
            entries: (0..g.usize(0..cfg.cold_md_entries + 1))
                .map(|_| random_entry(g))
                .collect(),
        };
        if unit.register_cold_device(device, record).is_ok() {
            devices.push(device);
        }
    }

    // Mount/unmount churn: each successful mount implicitly unmounts the
    // previous tenant, whose record stays in the extended table. The
    // extended table's iteration order is unspecified, so sort before
    // consuming randomness against it — `measure` must be deterministic
    // in its seed.
    let mut cold_now: Vec<DeviceId> = unit.cold_devices().map(|(d, _)| d).collect();
    cold_now.sort();
    if !cold_now.is_empty() {
        for _ in 0..g.usize(0..3) {
            let device = *g.choose(&cold_now);
            let _ = unit.handle_sid_missing(device); // MdFull is fine
        }
    }

    // CAM remap: promote a cold device into the CAM, possibly evicting a
    // hot victim into the extended table.
    let mut cold_now: Vec<DeviceId> = unit.cold_devices().map(|(d, _)| d).collect();
    cold_now.sort();
    if !cold_now.is_empty() && g.bool_with(0.4) {
        let _ = unit.promote_with_eviction(*g.choose(&cold_now));
    }

    // Occasionally block a SID (stall semantics).
    if g.bool_with(0.25) {
        unit.block_sid(SourceId(g.u16(0..cfg.num_sids as u16)));
    }

    (unit, devices)
}

/// Probe addresses clustered around installed entry edges (where
/// off-by-ones live) plus a few global landmarks.
pub fn edge_addresses(unit: &Siopmp) -> Vec<u64> {
    let mut edges: Vec<u64> = Vec::new();
    for (_, entry) in unit.entries() {
        let r = entry.range();
        edges.extend([
            r.base().saturating_sub(1),
            r.base(),
            r.base() + r.len() / 2,
            r.end().saturating_sub(1),
            r.end(),
        ]);
    }
    edges.extend([0, 0x8000_0000, u64::MAX - 8]);
    edges
}

/// One edge-biased random probe over `devices`.
pub fn random_probe(g: &mut Gen, devices: &[DeviceId], edges: &[u64]) -> DmaRequest {
    let device = *g.choose(devices);
    let kind = if g.bool() {
        AccessKind::Read
    } else {
        AccessKind::Write
    };
    let addr = if g.bool_with(0.8) {
        *g.choose(edges)
    } else {
        g.u64(0..0x2_0000)
    };
    let len = *g.choose(&[0u64, 1, 4, 0x80, 0x400, 0x1000]);
    DmaRequest::new(device, kind, addr, len)
}

/// Synthesizes a capability map from the unit's own tables, with
/// deliberate imperfections: ~20% of the justifying grants are withheld
/// (seeding genuine capability-divergence Errors) and enclave regions are
/// sometimes claimed over memory another SID's device reaches (seeding
/// genuine cross-sid-overlap Errors).
pub fn synth_caps(g: &mut Gen, unit: &Siopmp) -> CapabilityMap {
    let report = analyze(unit, None);
    let mut devices: Vec<DeviceGrants> = Vec::new();
    let mut regions: Vec<TeeRegion> = Vec::new();
    let mut tee = 0u32;

    let mut reachable_spans: Vec<(u64, u64)> = Vec::new();
    for view in report.views() {
        for iv in &view.intervals {
            if iv.perms.read() || iv.perms.write() {
                reachable_spans.push((iv.start, iv.end));
            }
        }
    }

    let cover = |device: DeviceId,
                 spans: Vec<(u64, u64, bool, bool)>,
                 g: &mut Gen,
                 tee: u32|
     -> DeviceGrants {
        let grants = spans
            .into_iter()
            .filter(|_| !g.bool_with(0.2)) // withhold ~20%: real divergence
            .map(|(start, end, read, write)| MemoryGrant {
                base: start,
                len: end - start,
                read,
                write,
            })
            .collect();
        DeviceGrants {
            device,
            tee,
            grants,
        }
    };

    for view in report.views() {
        let Some(device) = view.device else { continue };
        let spans: Vec<(u64, u64, bool, bool)> = view
            .intervals
            .iter()
            .filter(|iv| iv.perms.read() || iv.perms.write())
            .map(|iv| (iv.start, iv.end, iv.perms.read(), iv.perms.write()))
            .collect();
        devices.push(cover(device, spans, g, tee));
        // The TEE owns a region of its own; sometimes it deliberately
        // claims memory other devices reach (a genuine isolation breach
        // the analyzer must flag as cross-sid-overlap).
        if g.bool_with(0.4) && !reachable_spans.is_empty() {
            let (start, end) = *g.choose(&reachable_spans);
            regions.push(TeeRegion {
                tee,
                base: start,
                len: end - start,
            });
        }
        tee += 1;
    }

    // Unmounted cold records are table state too. Sorted: the extended
    // table's iteration order is unspecified and `g` is consumed per
    // record.
    let mut cold: Vec<(DeviceId, &MountableEntry)> = unit.cold_devices().collect();
    cold.sort_by_key(|&(d, _)| d);
    for (device, record) in cold {
        if devices.iter().any(|d| d.device == device) {
            continue;
        }
        let spans: Vec<(u64, u64, bool, bool)> = record
            .entries
            .iter()
            .map(|e| {
                let r = e.range();
                (
                    r.base(),
                    r.end(),
                    e.permissions().read(),
                    e.permissions().write(),
                )
            })
            .collect();
        devices.push(cover(device, spans, g, tee));
        tee += 1;
    }

    CapabilityMap { devices, regions }
}

/// The sweep's measured result (see the module docs for definitions).
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialStats {
    /// Base seed the sweep ran from.
    pub seed: u64,
    /// Configurations generated.
    pub configs: u64,
    /// Total probes fired.
    pub probes: u64,
    /// Probes where prediction and hardware agreed.
    pub agreements: u64,
    /// Probes where they diverged — any non-zero value is a soundness bug.
    pub disagreements: u64,
    /// All diagnostics emitted across the sweep.
    pub diagnostics: u64,
    /// Error-severity diagnostics emitted.
    pub error_diagnostics: u64,
    /// Errors with a concrete hardware witness.
    pub corroborated_errors: u64,
    /// Errors with no witness.
    pub spurious_errors: u64,
    /// `spurious_errors / error_diagnostics` (0 when no Errors fired).
    pub false_positive_rate: f64,
}

impl DifferentialStats {
    /// Serializes the stats for the JSON report payload.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("seed", Json::u64(self.seed)),
            ("configs", Json::u64(self.configs)),
            ("probes", Json::u64(self.probes)),
            ("agreements", Json::u64(self.agreements)),
            ("disagreements", Json::u64(self.disagreements)),
            ("diagnostics", Json::u64(self.diagnostics)),
            ("error_diagnostics", Json::u64(self.error_diagnostics)),
            ("corroborated_errors", Json::u64(self.corroborated_errors)),
            ("spurious_errors", Json::u64(self.spurious_errors)),
            ("false_positive_rate", Json::f64(self.false_positive_rate)),
        ])
    }
}

/// Whether an Error-severity diagnostic has a concrete hardware witness:
/// a probe inside the flagged region the checker *allows*, taken on a
/// clone with every stall lifted and (for an unmounted cold record) the
/// flagged device mounted. A record too large for the cold window — or a
/// claim about memory nothing can actually touch — yields no witness and
/// counts as spurious.
fn corroborate(unit: &Siopmp, diag: &crate::Diagnostic) -> bool {
    let (Some((start, end)), Some(device)) = (diag.region, diag.device) else {
        return false;
    };
    if start >= end {
        return false;
    }
    let mut probe_unit = unit.clone();
    for sid in 0..probe_unit.config().num_sids {
        probe_unit.unblock_sid(SourceId(sid as u16));
    }
    let registered_cold = probe_unit.cold_devices().any(|(d, _)| d == device);
    let is_hot = probe_unit.hot_devices().iter().any(|(_, d)| *d == device);
    if !is_hot && registered_cold && probe_unit.mounted_cold_device() != Some(device) {
        let _ = probe_unit.handle_sid_missing(device); // MdFull: no witness
    }
    let mid = start + (end - start) / 2;
    for addr in [start, mid, end - 1] {
        for kind in [AccessKind::Read, AccessKind::Write] {
            if probe_unit
                .check(&DmaRequest::new(device, kind, addr, 1))
                .is_allowed()
            {
                return true;
            }
        }
    }
    false
}

/// Runs the full differential sweep: `configs` generated units, `probes`
/// probes each, capability maps synthesized per unit, Errors graded for
/// witnesses. Deterministic in `seed`.
pub fn measure(configs: u64, probes_per_config: usize, seed: u64) -> DifferentialStats {
    let mut stats = DifferentialStats {
        seed,
        configs,
        probes: 0,
        agreements: 0,
        disagreements: 0,
        diagnostics: 0,
        error_diagnostics: 0,
        corroborated_errors: 0,
        spurious_errors: 0,
        false_positive_rate: 0.0,
    };
    for case in 0..configs {
        let mut g = Gen::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (mut unit, mut devices) = random_unit(&mut g);
        devices.push(UNKNOWN_DEVICE);
        let caps = synth_caps(&mut g, &unit);
        let report = analyze(&unit, Some(&caps));
        let edges = edge_addresses(&unit);

        for _ in 0..probes_per_config {
            let req = random_probe(&mut g, &devices, &edges);
            let predicted = report.predict(req.device(), req.kind(), req.addr(), req.len());
            let outcome = unit.check(&req);
            stats.probes += 1;
            if predicted.agrees_with(&outcome) {
                stats.agreements += 1;
            } else {
                stats.disagreements += 1;
            }
        }

        stats.diagnostics += report.diagnostics().len() as u64;
        for diag in report.diagnostics() {
            if diag.severity != Severity::Error {
                continue;
            }
            stats.error_diagnostics += 1;
            if corroborate(&unit, diag) {
                stats.corroborated_errors += 1;
            } else {
                stats.spurious_errors += 1;
            }
        }
    }
    if stats.error_diagnostics > 0 {
        stats.false_positive_rate = stats.spurious_errors as f64 / stats.error_diagnostics as f64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_in_the_seed() {
        let a = measure(8, 16, 42);
        let b = measure(8, 16, 42);
        assert_eq!(a, b);
        let c = measure(8, 16, 43);
        assert!(a.probes == c.probes && a.configs == c.configs);
    }

    #[test]
    fn small_sweep_has_no_disagreements_and_exercises_errors() {
        let stats = measure(32, 32, 7);
        assert_eq!(stats.disagreements, 0, "soundness bug: {stats:?}");
        assert_eq!(stats.agreements, stats.probes);
        // The synthesized capability dropout must actually fire Errors,
        // otherwise the false-positive rate is vacuous.
        assert!(stats.error_diagnostics > 0, "{stats:?}");
        assert!(
            stats.corroborated_errors + stats.spurious_errors == stats.error_diagnostics,
            "{stats:?}"
        );
        assert!((0.0..=1.0).contains(&stats.false_positive_rate));
    }

    #[test]
    fn stats_serialize_to_the_report_payload_shape() {
        let rendered = measure(2, 4, 1).to_json().pretty();
        for key in [
            "false_positive_rate",
            "disagreements",
            "corroborated_errors",
            "spurious_errors",
        ] {
            assert!(rendered.contains(key), "{rendered}");
        }
    }
}
