//! Edge-case pinning for [`Predicted::agrees_with`] and the predict path:
//! zero-length accesses, exclusive-end interval boundaries, top-of-address
//! -space overflow and cached-verdict replay — the off-by-one surface the
//! model checker's probe grid sweeps, pinned here as named examples.
//!
//! Hardware ground rules these tests encode:
//!
//! * a zero-length access matches **no** entry (an empty byte set is not
//!   "fully contained"), so it always denies — even mid-interval, even
//!   when a page verdict for the surrounding page sits in the decision
//!   cache (zero-length accesses bypass the cache);
//! * entry ranges are half-open `[base, end)`: `end - 1` is the last
//!   matching byte, `end` matches nothing, and an access ending exactly
//!   at `end` still matches;
//! * an access whose `addr + len` overflows matches nothing.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex};
use siopmp::mountable::MountableEntry;
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::{CheckOutcome, Siopmp, SiopmpConfig};
use siopmp_verify::{analyze, Predicted};

const DEV: DeviceId = DeviceId(1);

/// One hot device viewing `[0x1000, 0x2000)` rw; `cached` toggles the
/// decision cache against the reference path.
fn unit_with_window(cached: bool) -> Siopmp {
    let mut cfg = SiopmpConfig::small();
    cfg.decision_cache_slots = if cached { 64 } else { 0 };
    let mut unit = Siopmp::build(cfg, None);
    let sid = unit.map_hot_device(DEV).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    unit.install_entry(
        MdIndex(0),
        IopmpEntry::new(
            AddressRange::new(0x1000, 0x1000).unwrap(),
            Permissions::rw(),
        ),
    )
    .unwrap();
    unit
}

/// Predicts and checks one probe, asserting agreement, and returns the
/// pair for shape assertions.
fn agree(
    report: &siopmp_verify::Report,
    unit: &mut Siopmp,
    kind: AccessKind,
    addr: u64,
    len: u64,
) -> (Predicted, CheckOutcome) {
    let predicted = report.predict(DEV, kind, addr, len);
    let outcome = unit.check(&DmaRequest::new(DEV, kind, addr, len));
    assert!(
        predicted.agrees_with(&outcome),
        "divergence at addr={addr:#x} len={len} kind={kind:?}: \
         predicted {predicted:?}, hardware said {outcome:?}"
    );
    (predicted, outcome)
}

#[test]
fn zero_length_accesses_always_deny_and_agree() {
    for cached in [false, true] {
        let mut unit = unit_with_window(cached);
        let report = analyze(&unit, None);
        // Mid-interval, both boundaries, and outside — a zero-length
        // access matches nothing anywhere.
        for addr in [0x0u64, 0xfff, 0x1000, 0x1800, 0x1fff, 0x2000, u64::MAX] {
            for kind in [AccessKind::Read, AccessKind::Write] {
                let (predicted, outcome) = agree(&report, &mut unit, kind, addr, 0);
                assert_eq!(predicted, Predicted::DeniedNoMatch, "addr={addr:#x}");
                assert!(outcome.is_denied(), "addr={addr:#x}");
            }
        }
    }
}

#[test]
fn zero_length_bypasses_a_hot_cached_page_verdict() {
    // Prime the decision cache with an allowed full-page verdict, then
    // fire a zero-length probe at the very same page: the cached Allow
    // must not leak into the empty access.
    let mut unit = unit_with_window(true);
    let report = analyze(&unit, None);
    let warm = unit.check(&DmaRequest::new(DEV, AccessKind::Read, 0x1010, 8));
    assert!(warm.is_allowed());
    let (predicted, outcome) = agree(&report, &mut unit, AccessKind::Read, 0x1010, 0);
    assert_eq!(predicted, Predicted::DeniedNoMatch);
    assert!(outcome.is_denied());
}

#[test]
fn exclusive_end_boundaries_agree_byte_for_byte() {
    for cached in [false, true] {
        let mut unit = unit_with_window(cached);
        let report = analyze(&unit, None);
        let cases: &[(u64, u64, bool)] = &[
            (0x0fff, 1, false),      // last byte before base
            (0x0fff, 2, false),      // straddles base: not fully contained
            (0x1000, 1, true),       // first byte
            (0x1000, 0x1000, true),  // ends exactly at end — contained
            (0x1000, 0x1001, false), // one byte past end
            (0x1fff, 1, true),       // last byte
            (0x1fff, 2, false),      // last byte plus one past end
            (0x2000, 1, false),      // end itself is exclusive
        ];
        for &(addr, len, allowed) in cases {
            let (predicted, outcome) = agree(&report, &mut unit, AccessKind::Read, addr, len);
            assert_eq!(
                outcome.is_allowed(),
                allowed,
                "cached={cached} addr={addr:#x} len={len}: {outcome:?} / {predicted:?}"
            );
        }
    }
}

#[test]
fn interval_lookup_respects_the_exclusive_end() {
    let unit = unit_with_window(false);
    let report = analyze(&unit, None);
    let (sid, _) = unit.hot_devices()[0];
    let view = report.view(sid).unwrap();
    assert!(view.reach_at(0x1000).is_some());
    assert!(view.reach_at(0x1fff).is_some());
    assert!(view.reach_at(0x0fff).is_none(), "below base must not reach");
    assert!(
        view.reach_at(0x2000).is_none(),
        "the exclusive end must not reach"
    );
}

#[test]
fn boundary_between_adjacent_entries_picks_the_right_winner() {
    // [0x1000, 0x2000) read-only at index 0, [0x2000, 0x3000) rw at
    // index 1: the boundary byte 0x2000 belongs to the second entry, and
    // a write one byte below it must deny on permissions via entry 0.
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DEV).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    let ro = unit
        .install_entry(
            MdIndex(0),
            IopmpEntry::new(
                AddressRange::new(0x1000, 0x1000).unwrap(),
                Permissions::read_only(),
            ),
        )
        .unwrap();
    let rw = unit
        .install_entry(
            MdIndex(0),
            IopmpEntry::new(
                AddressRange::new(0x2000, 0x1000).unwrap(),
                Permissions::rw(),
            ),
        )
        .unwrap();
    let report = analyze(&unit, None);

    let (predicted, _) = agree(&report, &mut unit, AccessKind::Write, 0x1fff, 1);
    assert_eq!(predicted, Predicted::DeniedPermission { matched: ro });
    let (predicted, outcome) = agree(&report, &mut unit, AccessKind::Write, 0x2000, 1);
    assert_eq!(predicted, Predicted::Allowed { matched: rw });
    assert!(outcome.is_allowed());
    // An access spanning both entries is contained by neither.
    let (predicted, _) = agree(&report, &mut unit, AccessKind::Read, 0x1800, 0x1000);
    assert_eq!(predicted, Predicted::DeniedNoMatch);
}

#[test]
fn top_of_address_space_overflow_denies_on_both_sides() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DEV).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    // The topmost representable range: ends exactly at u64::MAX.
    unit.install_entry(
        MdIndex(0),
        IopmpEntry::new(
            AddressRange::new(u64::MAX - 0x1000, 0x1000).unwrap(),
            Permissions::rw(),
        ),
    )
    .unwrap();
    let report = analyze(&unit, None);

    let (_, outcome) = agree(&report, &mut unit, AccessKind::Read, u64::MAX - 0x1000, 1);
    assert!(outcome.is_allowed());
    let (_, outcome) = agree(&report, &mut unit, AccessKind::Read, u64::MAX - 1, 1);
    assert!(outcome.is_allowed(), "last byte of the top range");
    // addr + len overflows: matches nothing.
    let (predicted, outcome) = agree(&report, &mut unit, AccessKind::Read, u64::MAX - 1, 2);
    assert_eq!(predicted, Predicted::DeniedNoMatch);
    assert!(outcome.is_denied());
    // The exclusive end u64::MAX itself.
    let (predicted, outcome) = agree(&report, &mut unit, AccessKind::Read, u64::MAX, 1);
    assert_eq!(predicted, Predicted::DeniedNoMatch);
    assert!(outcome.is_denied());
}

#[test]
fn zero_length_still_stalls_blocked_sids_and_reports_missing_devices() {
    // Stall and SID-missing resolution outrank the no-match denial, even
    // for empty accesses — predict and hardware must agree on the order.
    let mut unit = unit_with_window(false);
    let (sid, _) = unit.hot_devices()[0];
    unit.block_sid(sid);
    let report = analyze(&unit, None);
    let (predicted, outcome) = agree(&report, &mut unit, AccessKind::Read, 0x1800, 0);
    assert_eq!(predicted, Predicted::Stalled);
    assert!(matches!(outcome, CheckOutcome::Stalled { .. }));

    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    unit.register_cold_device(
        DeviceId(1),
        MountableEntry {
            domains: vec![],
            entries: vec![],
        },
    )
    .unwrap();
    let report = analyze(&unit, None);
    let (predicted, outcome) = agree(&report, &mut unit, AccessKind::Read, 0x1800, 0);
    assert_eq!(predicted, Predicted::SidMissing);
    assert!(matches!(outcome, CheckOutcome::SidMissing { .. }));
}
