//! Seeded misconfiguration fixtures: each constructs a table state with a
//! known defect and asserts the analyzer reports the expected diagnostic
//! code (and severity) for it.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex};
use siopmp::mountable::MountableEntry;
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_verify::{
    analyze, CapabilityMap, DeviceGrants, DiagnosticCode, MemoryGrant, Severity, TeeRegion,
};

fn entry(base: u64, len: u64, p: Permissions) -> IopmpEntry {
    IopmpEntry::new(AddressRange::new(base, len).unwrap(), p)
}

fn grant(base: u64, len: u64) -> MemoryGrant {
    MemoryGrant {
        base,
        len,
        read: true,
        write: true,
    }
}

#[test]
fn shadowed_entry_is_flagged() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DeviceId(1)).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    unit.install_entry(MdIndex(0), entry(0x1000, 0x1000, Permissions::rw()))
        .unwrap();
    let dead = unit
        .install_entry(MdIndex(0), entry(0x1800, 0x100, Permissions::read_only()))
        .unwrap();

    let report = analyze(&unit, None);
    let finding = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagnosticCode::ShadowedEntry)
        .expect("shadowed entry must be reported");
    assert_eq!(finding.severity, Severity::Warning);
    assert_eq!(finding.entry, Some(dead));
    assert_eq!(finding.sid, Some(sid));
    // Shadowing is a lint, not an isolation violation.
    assert!(!report.has_errors());
}

#[test]
fn entry_in_unviewed_window_is_informational() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    // MD1's window gets an entry but no SID is associated with MD1.
    unit.install_entry(MdIndex(1), entry(0x2000, 0x100, Permissions::rw()))
        .unwrap();
    let report = analyze(&unit, None);
    let finding = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagnosticCode::ShadowedEntry)
        .expect("unviewable entry must be reported");
    assert_eq!(finding.severity, Severity::Info);
}

#[test]
fn capability_divergence_is_an_error() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DeviceId(1)).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    // Hardware grants rw over [0x1000, 0x2000)...
    unit.install_entry(MdIndex(0), entry(0x1000, 0x1000, Permissions::rw()))
        .unwrap();
    // ...but the monitor only ever granted [0x1000, 0x1800).
    let caps = CapabilityMap {
        devices: vec![DeviceGrants {
            device: DeviceId(1),
            tee: 1,
            grants: vec![grant(0x1000, 0x800)],
        }],
        regions: vec![],
    };

    let report = analyze(&unit, Some(&caps));
    let findings: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagnosticCode::CapabilityDivergence)
        .collect();
    assert!(!findings.is_empty(), "divergence must be reported");
    for f in &findings {
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.region, Some((0x1800, 0x2000)));
        assert_eq!(f.device, Some(DeviceId(1)));
    }
    // Both the read and the write right are unjustified over the tail.
    assert_eq!(findings.len(), 2);
    assert!(report.has_errors());
}

#[test]
fn matching_capabilities_are_silent() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DeviceId(1)).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    unit.install_entry(MdIndex(0), entry(0x1000, 0x1000, Permissions::rw()))
        .unwrap();
    let caps = CapabilityMap {
        devices: vec![DeviceGrants {
            device: DeviceId(1),
            tee: 1,
            grants: vec![grant(0x1000, 0x1000)],
        }],
        regions: vec![TeeRegion {
            tee: 1,
            base: 0x1000,
            len: 0x1000,
        }],
    };
    let report = analyze(&unit, Some(&caps));
    assert!(
        report.diagnostics().is_empty(),
        "{:?}",
        report.diagnostics()
    );
}

#[test]
fn cross_sid_overlap_into_foreign_enclave_is_an_error() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid_a = unit.map_hot_device(DeviceId(1)).unwrap();
    unit.associate_sid_with_md(sid_a, MdIndex(0)).unwrap();
    unit.install_entry(MdIndex(0), entry(0x1000, 0x2000, Permissions::rw()))
        .unwrap();
    // Device 1 belongs to TEE 1 and its grants cover the range, but
    // [0x2000, 0x3000) is enclave memory of TEE 2.
    let caps = CapabilityMap {
        devices: vec![DeviceGrants {
            device: DeviceId(1),
            tee: 1,
            grants: vec![grant(0x1000, 0x2000)],
        }],
        regions: vec![
            TeeRegion {
                tee: 1,
                base: 0x1000,
                len: 0x1000,
            },
            TeeRegion {
                tee: 2,
                base: 0x2000,
                len: 0x1000,
            },
        ],
    };
    let report = analyze(&unit, Some(&caps));
    let finding = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagnosticCode::CrossSidOverlap)
        .expect("cross-SID overlap must be reported");
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.sid, Some(sid_a));
    assert_eq!(finding.region, Some((0x2000, 0x3000)));
    assert!(report.has_errors());
}

#[test]
fn cold_record_widening_across_remount_is_flagged() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let device = DeviceId(50);
    unit.register_cold_device(
        device,
        MountableEntry {
            domains: vec![],
            entries: vec![entry(0x4000, 0x1000, Permissions::read_only())],
        },
    )
    .unwrap();
    unit.handle_sid_missing(device).unwrap();

    // The live cold window now grants r- over [0x4000, 0x5000). Widen the
    // *record* behind the hardware's back: the next remount replays it.
    let mut record = unit.take_cold_record(device).unwrap();
    record.entries = vec![entry(0x4000, 0x2000, Permissions::rw())];
    unit.put_cold_record(device, record);

    let report = analyze(&unit, None);
    let findings: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagnosticCode::PermissionWidening)
        .collect();
    assert!(!findings.is_empty(), "widening must be reported");
    for f in &findings {
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.device, Some(device));
    }
    // New read coverage over [0x5000, 0x6000) and new write coverage over
    // the whole doubled range.
    assert!(findings
        .iter()
        .any(|f| f.region == Some((0x5000, 0x6000)) && f.message.contains("read")));
    assert!(findings
        .iter()
        .any(|f| f.region == Some((0x4000, 0x6000)) && f.message.contains("write")));
}

#[test]
fn priority_conflict_widening_is_a_warning() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DeviceId(1)).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    // The high-priority rule grants rw over the first half of a deny
    // guard: the overlap outcome flips with entry order.
    let hi = unit
        .install_entry(MdIndex(0), entry(0x1000, 0x100, Permissions::rw()))
        .unwrap();
    let lo = unit
        .install_entry(MdIndex(0), entry(0x1080, 0x100, Permissions::none()))
        .unwrap();

    let report = analyze(&unit, None);
    let finding = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagnosticCode::PriorityConflict)
        .expect("priority conflict must be reported");
    assert_eq!(finding.severity, Severity::Warning);
    assert_eq!(finding.entry, Some(lo));
    assert_eq!(finding.region, Some((0x1080, 0x1100)));
    assert!(finding.message.contains(&hi.to_string()));
}

#[test]
fn narrowing_conflict_is_informational() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DeviceId(1)).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    // The high-priority rule *denies* part of a lower allow rule — a
    // legitimate guard-entry pattern (§2.2), so informational only.
    unit.install_entry(MdIndex(0), entry(0x1000, 0x100, Permissions::none()))
        .unwrap();
    unit.install_entry(MdIndex(0), entry(0x1080, 0x100, Permissions::rw()))
        .unwrap();
    let report = analyze(&unit, None);
    let finding = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagnosticCode::PriorityConflict)
        .expect("conflict must be reported");
    assert_eq!(finding.severity, Severity::Info);
}

#[test]
fn unmounted_cold_record_divergence_is_flagged() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let device = DeviceId(60);
    unit.register_cold_device(
        device,
        MountableEntry {
            domains: vec![],
            entries: vec![entry(0x7000, 0x1000, Permissions::write_only())],
        },
    )
    .unwrap();
    // The capability map knows the device but grants it nothing.
    let caps = CapabilityMap {
        devices: vec![DeviceGrants {
            device,
            tee: 3,
            grants: vec![],
        }],
        regions: vec![],
    };
    let report = analyze(&unit, Some(&caps));
    let finding = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagnosticCode::CapabilityDivergence)
        .expect("record divergence must be reported");
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.device, Some(device));
    assert!(finding.message.contains("extended-table record"));
}

#[test]
fn diagnostics_are_sorted_most_severe_first() {
    let mut unit = Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit.map_hot_device(DeviceId(1)).unwrap();
    unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
    // One shadowed entry (Warning) and one ungranted rw entry (Error via
    // the capability map).
    unit.install_entry(MdIndex(0), entry(0x1000, 0x1000, Permissions::rw()))
        .unwrap();
    unit.install_entry(MdIndex(0), entry(0x1400, 0x100, Permissions::rw()))
        .unwrap();
    let caps = CapabilityMap {
        devices: vec![DeviceGrants {
            device: DeviceId(1),
            tee: 1,
            grants: vec![],
        }],
        regions: vec![],
    };
    let report = analyze(&unit, Some(&caps));
    assert!(report.has_errors());
    let severities: Vec<Severity> = report.diagnostics().iter().map(|d| d.severity).collect();
    let mut sorted = severities.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(severities, sorted);
    assert_eq!(report.diagnostics()[0].severity, Severity::Error);
}
