//! The soundness bridge: the analyzer's predicted reachability must agree
//! with the concrete checker on randomized probes.
//!
//! The randomized-configuration generator and the edge-biased probe
//! distribution live in [`siopmp_verify::differential`] (shared with the
//! `siopmp-verify` binary's measured sweep and the `siopmp-prove` model
//! checker); this test drives them through the property harness and
//! requires agreement on every single probe (including the *winning entry
//! index* for allowed accesses).
//!
//! `CONFIGS × PROBES_PER_CONFIG` comfortably exceeds the 10k-probe /
//! 100-config acceptance floor; see `probe_budget_meets_acceptance_floor`.

use siopmp::request::{AccessKind, DmaRequest};
use siopmp_testkit::{check, prop_check};
use siopmp_verify::analyze;
use siopmp_verify::differential::{
    edge_addresses, measure, random_probe, random_unit, CONFIGS, PROBES_PER_CONFIG, UNKNOWN_DEVICE,
};

#[test]
#[allow(clippy::assertions_on_constants)] // the constants ARE the contract
fn probe_budget_meets_acceptance_floor() {
    assert!(CONFIGS >= 100, "need at least 100 generated configs");
    assert!(
        CONFIGS as usize * PROBES_PER_CONFIG >= 10_000,
        "need at least 10k probes overall"
    );
}

#[test]
fn predicted_reachability_matches_concrete_checker() {
    prop_check(CONFIGS, |g| {
        let (mut unit, mut devices) = random_unit(g);
        devices.push(UNKNOWN_DEVICE);

        // Analyze the snapshot once; check() only mutates caches and the
        // violation log, never reachability, so one report serves every
        // probe below.
        let report = analyze(&unit, None);
        let edges = edge_addresses(&unit);

        for _ in 0..PROBES_PER_CONFIG {
            let req = random_probe(g, &devices, &edges);
            let predicted = report.predict(req.device(), req.kind(), req.addr(), req.len());
            let outcome = unit.check(&req);
            check!(
                predicted.agrees_with(&outcome),
                "divergence for device={:?} kind={:?} addr={:#x} len={}: \
                 predicted {predicted:?}, hardware said {outcome:?}",
                req.device(),
                req.kind(),
                req.addr(),
                req.len()
            );
        }
        Ok(())
    });
}

#[test]
fn per_sid_views_agree_with_checker_on_byte_probes() {
    // Sharper variant for the interval map itself: single-byte probes are
    // exactly decided by `interval_at`, so compare the *interval* lookup
    // (not just the visible-list scan) against the hardware.
    prop_check(64, |g| {
        let (mut unit, _) = random_unit(g);
        let report = analyze(&unit, None);
        let hot = unit.hot_devices();
        if hot.is_empty() {
            return Ok(());
        }
        for _ in 0..64 {
            let (sid, device) = *g.choose(&hot);
            let Some(view) = report.view(sid) else {
                continue;
            };
            if view.blocked {
                continue;
            }
            let addr = g.u64(0..0x2_0000);
            let outcome = unit.check(&DmaRequest::new(device, AccessKind::Read, addr, 1));
            match view.reach_at(addr) {
                Some(interval) if interval.perms.read() => {
                    check!(
                        outcome.is_allowed(),
                        "interval grants read at {addr:#x} but hardware denied: {outcome:?}"
                    );
                }
                _ => {
                    check!(
                        !outcome.is_allowed(),
                        "no readable interval at {addr:#x} but hardware allowed"
                    );
                }
            }
        }
        Ok(())
    });
}

#[test]
fn full_measured_sweep_is_sound_and_reports_a_rate() {
    // The exact sweep the `siopmp-verify` binary embeds in its JSON
    // payload: zero disagreements is the gate, the false-positive rate is
    // the measurement.
    let stats = measure(CONFIGS, PROBES_PER_CONFIG, 0);
    assert_eq!(stats.disagreements, 0, "soundness bug: {stats:?}");
    assert_eq!(
        stats.probes,
        CONFIGS * PROBES_PER_CONFIG as u64,
        "{stats:?}"
    );
    assert!(stats.error_diagnostics > 0, "Error paths unexercised");
    assert!(
        (0.0..=1.0).contains(&stats.false_positive_rate),
        "{stats:?}"
    );
}
