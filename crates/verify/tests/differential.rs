//! The soundness bridge: the analyzer's predicted reachability must agree
//! with the concrete checker on randomized probes.
//!
//! Each property case builds a randomized sIOPMP configuration — hot
//! devices, random MD associations, overlapping entries with mixed
//! permissions, cold registrations, mount/unmount churn, CAM remaps via
//! promotion, and blocked SIDs — analyzes the resulting snapshot once,
//! and then fires randomized `(device, kind, addr, len)` probes through
//! both [`Report::predict`] and [`Siopmp::check`], requiring agreement on
//! every single one (including the *winning entry index* for allowed
//! accesses).
//!
//! `CONFIGS × PROBES_PER_CONFIG` comfortably exceeds the 10k-probe /
//! 100-config acceptance floor; see `probe_budget_meets_acceptance_floor`.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex, SourceId};
use siopmp::mountable::MountableEntry;
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::{Siopmp, SiopmpConfig};
use siopmp_testkit::{check, prop_check, Gen};
use siopmp_verify::analyze;

const CONFIGS: u64 = 128;
const PROBES_PER_CONFIG: usize = 128;

/// Device-ID pools: hot devices are small IDs, cold devices live at 100+,
/// and 999 is never registered anywhere.
const UNKNOWN_DEVICE: DeviceId = DeviceId(999);

fn random_perms(g: &mut Gen) -> Permissions {
    *g.choose(&[
        Permissions::rw(),
        Permissions::read_only(),
        Permissions::write_only(),
        Permissions::none(),
    ])
}

fn random_entry(g: &mut Gen) -> IopmpEntry {
    // Bases cluster on a small page grid so entries overlap often — the
    // interesting regime for priority reasoning.
    let base = g.u64(0..24) * 0x800;
    let len = *g.choose(&[0x100u64, 0x400, 0x800, 0x1000, 0x2000]);
    IopmpEntry::new(AddressRange::new(base, len).unwrap(), random_perms(g))
}

/// Builds a randomized unit and returns it plus every device ID that ever
/// existed in it (hot, cold, promoted, evicted — all worth probing).
fn random_unit(g: &mut Gen) -> (Siopmp, Vec<DeviceId>) {
    let mut cfg = SiopmpConfig::small();
    cfg.num_sids = g.usize(4..9);
    cfg.num_mds = g.usize(4..9);
    cfg.num_entries = g.usize(24..65);
    cfg.cold_md_entries = g.usize(2..5);
    // Exercise both the cache-free reference path and the decision cache.
    cfg.decision_cache_slots = if g.bool() { 64 } else { 0 };
    let mut unit = Siopmp::build(cfg, None);
    let cfg = unit.config().clone();
    let hot_mds: Vec<MdIndex> = (0..cfg.cold_md().0).map(MdIndex).collect();

    let mut devices: Vec<DeviceId> = Vec::new();

    // Hot devices with random domain associations.
    let n_hot = g.usize(1..cfg.num_hot_sids().min(5));
    for i in 0..n_hot {
        let device = DeviceId(1 + i as u64);
        let Ok(sid) = unit.map_hot_device(device) else {
            continue;
        };
        devices.push(device);
        for _ in 0..g.usize(1..4) {
            let md = *g.choose(&hot_mds);
            if !unit.is_associated(sid, md).unwrap_or(true) {
                let _ = unit.associate_sid_with_md(sid, md);
            }
        }
    }

    // Entries: deliberately overlapping, mixed permissions, some in
    // windows no SID views.
    for _ in 0..g.usize(4..16) {
        let md = *g.choose(&hot_mds);
        let _ = unit.install_entry(md, random_entry(g)); // MdFull is fine
    }

    // Cold devices with small mountable records.
    let n_cold = g.usize(0..3);
    for i in 0..n_cold {
        let device = DeviceId(100 + i as u64);
        let record = MountableEntry {
            domains: if g.bool_with(0.3) {
                vec![*g.choose(&hot_mds)]
            } else {
                vec![]
            },
            entries: (0..g.usize(0..cfg.cold_md_entries + 1))
                .map(|_| random_entry(g))
                .collect(),
        };
        if unit.register_cold_device(device, record).is_ok() {
            devices.push(device);
        }
    }

    // Mount/unmount churn: each successful mount implicitly unmounts the
    // previous tenant, whose record stays in the extended table.
    let cold_now: Vec<DeviceId> = unit.cold_devices().map(|(d, _)| d).collect();
    if !cold_now.is_empty() {
        for _ in 0..g.usize(0..3) {
            let device = *g.choose(&cold_now);
            let _ = unit.handle_sid_missing(device); // MdFull is fine
        }
    }

    // CAM remap: promote a cold device into the CAM, possibly evicting a
    // hot victim into the extended table.
    let cold_now: Vec<DeviceId> = unit.cold_devices().map(|(d, _)| d).collect();
    if !cold_now.is_empty() && g.bool_with(0.4) {
        let _ = unit.promote_with_eviction(*g.choose(&cold_now));
    }

    // Occasionally block a SID (stall semantics).
    if g.bool_with(0.25) {
        unit.block_sid(SourceId(g.u16(0..cfg.num_sids as u16)));
    }

    (unit, devices)
}

#[test]
#[allow(clippy::assertions_on_constants)] // the constants ARE the contract
fn probe_budget_meets_acceptance_floor() {
    assert!(CONFIGS >= 100, "need at least 100 generated configs");
    assert!(
        CONFIGS as usize * PROBES_PER_CONFIG >= 10_000,
        "need at least 10k probes overall"
    );
}

#[test]
fn predicted_reachability_matches_concrete_checker() {
    prop_check(CONFIGS, |g| {
        let (mut unit, mut devices) = random_unit(g);
        devices.push(UNKNOWN_DEVICE);

        // Analyze the snapshot once; check() only mutates caches and the
        // violation log, never reachability, so one report serves every
        // probe below.
        let report = analyze(&unit, None);

        // Probe addresses cluster around installed entry edges (where
        // off-by-ones live) plus uniform noise.
        let mut edges: Vec<u64> = Vec::new();
        for (_, entry) in unit.entries() {
            let r = entry.range();
            edges.extend([
                r.base().saturating_sub(1),
                r.base(),
                r.base() + r.len() / 2,
                r.end().saturating_sub(1),
                r.end(),
            ]);
        }
        edges.extend([0, 0x8000_0000, u64::MAX - 8]);

        for _ in 0..PROBES_PER_CONFIG {
            let device = *g.choose(&devices);
            let kind = if g.bool() {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let addr = if g.bool_with(0.8) {
                *g.choose(&edges)
            } else {
                g.u64(0..0x2_0000)
            };
            let len = *g.choose(&[0u64, 1, 4, 0x80, 0x400, 0x1000]);

            let predicted = report.predict(device, kind, addr, len);
            let outcome = unit.check(&DmaRequest::new(device, kind, addr, len));
            check!(
                predicted.agrees_with(&outcome),
                "divergence for device={device:?} kind={kind:?} addr={addr:#x} len={len}: \
                 predicted {predicted:?}, hardware said {outcome:?}"
            );
        }
        Ok(())
    });
}

#[test]
fn per_sid_views_agree_with_checker_on_byte_probes() {
    // Sharper variant for the interval map itself: single-byte probes are
    // exactly decided by `interval_at`, so compare the *interval* lookup
    // (not just the visible-list scan) against the hardware.
    prop_check(64, |g| {
        let (mut unit, _) = random_unit(g);
        let report = analyze(&unit, None);
        let hot = unit.hot_devices();
        if hot.is_empty() {
            return Ok(());
        }
        for _ in 0..64 {
            let (sid, device) = *g.choose(&hot);
            let Some(view) = report.view(sid) else {
                continue;
            };
            if view.blocked {
                continue;
            }
            let addr = g.u64(0..0x2_0000);
            let outcome = unit.check(&DmaRequest::new(device, AccessKind::Read, addr, 1));
            match view.reach_at(addr) {
                Some(interval) if interval.perms.read() => {
                    check!(
                        outcome.is_allowed(),
                        "interval grants read at {addr:#x} but hardware denied: {outcome:?}"
                    );
                }
                _ => {
                    check!(
                        !outcome.is_allowed(),
                        "no readable interval at {addr:#x} but hardware allowed"
                    );
                }
            }
        }
        Ok(())
    });
}
