//! Bench for Figure 17 and the §6.3 cold-switch cost: hot-device
//! throughput under request mixes, and the latency of a single
//! cold-device switch on the real unit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp_experiments::coldswitch::measure;
use siopmp_workloads::hotcold::{run, FIGURE17_RATIOS};
use std::hint::black_box;

fn bench_cold_switching(c: &mut Criterion) {
    for ratio in FIGURE17_RATIOS {
        let mismatched = run(ratio, false, 20);
        let matched = run(ratio, true, 20);
        println!(
            "fig17 1:{ratio:<6} mismatched {:.1}%  matched {:.1}%",
            mismatched.hot_throughput_fraction * 100.0,
            matched.hot_throughput_fraction * 100.0
        );
    }
    println!("coldswitch 8 entries -> {} cycles", measure(8).cycles);

    let mut group = c.benchmark_group("fig17_cold_switching");
    group.sample_size(20);
    for ratio in FIGURE17_RATIOS {
        group.bench_with_input(BenchmarkId::new("mismatched", ratio), &ratio, |b, &r| {
            b.iter(|| black_box(run(r, false, 5)))
        });
    }
    group.bench_function("single_switch_8_entries", |b| {
        b.iter(|| black_box(measure(8)))
    });
    group.finish();
}

criterion_group!(benches, bench_cold_switching);
criterion_main!(benches);
