//! Bench for Figure 15: iperf-style network throughput per protection
//! mechanism, RX/TX, single and multi core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp_iommu::protection::{InvalidationPolicy, Iommu};
use siopmp_iommu::swio::Swio;
use siopmp_workloads::network::{evaluate, Direction, NetworkConfig};
use siopmp_workloads::{SiopmpMech, SiopmpPlusIommu};
use std::hint::black_box;

fn bench_network_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_network_throughput");
    for direction in [Direction::Rx, Direction::Tx] {
        let cases: Vec<(&str, u32)> = vec![
            ("sIOPMP", 1),
            ("sIOPMP+IOMMU", 1),
            ("IOMMU-deferred", 1),
            ("IOMMU-strict", 1),
            ("IOMMU-strict-mc", 4),
            ("SWIO", 1),
        ];
        for (label, cores) in cases {
            let cfg = NetworkConfig {
                direction,
                cores,
                ..NetworkConfig::default()
            };
            let run = move |cfg: &NetworkConfig, label: &str| match label {
                "sIOPMP" => evaluate(&mut SiopmpMech::new(), cfg),
                "sIOPMP+IOMMU" => evaluate(&mut SiopmpPlusIommu::new(), cfg),
                "IOMMU-deferred" => evaluate(
                    &mut Iommu::new(InvalidationPolicy::Deferred { batch: 256 }),
                    cfg,
                ),
                "IOMMU-strict" | "IOMMU-strict-mc" => {
                    evaluate(&mut Iommu::new(InvalidationPolicy::Strict), cfg)
                }
                "SWIO" => evaluate(&mut Swio::new(), cfg),
                _ => unreachable!(),
            };
            let r = run(&cfg, label);
            println!(
                "fig15 {label:<16} {direction} cores={cores} -> {:.1}% of baseline ({:.1} Gb/s)",
                r.fraction_of_baseline * 100.0,
                r.throughput_gbps
            );
            group.bench_with_input(
                BenchmarkId::new(label, format!("{direction}-{cores}c")),
                &cfg,
                move |b, cfg| b.iter(|| black_box(run(cfg, label))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_network_throughput);
criterion_main!(benches);
