//! Bench for the ablation studies: tree arity (timing/area tradeoff),
//! checker placement, and hot-SID provisioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp_experiments::ablations;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    for p in ablations::tree_arity() {
        println!(
            "ablate-arity {:<4} -> {:.1} MHz, {:.2}% LUT, {:.2}% FF",
            p.arity, p.mhz, p.lut_pct, p.ff_pct
        );
    }
    for p in ablations::placement() {
        println!(
            "ablate-placement {:<12?} -> {} cycles latency, {:.2} B/c",
            p.placement, p.read_latency, p.bandwidth
        );
    }
    for p in ablations::hot_sids() {
        println!(
            "ablate-hot-sids {:<4} -> {} cold switches",
            p.hot_sids, p.cold_switches
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sweep", "tree_arity"), |b| {
        b.iter(|| black_box(ablations::tree_arity()))
    });
    group.bench_function(BenchmarkId::new("sweep", "placement"), |b| {
        b.iter(|| black_box(ablations::placement()))
    });
    group.bench_function(BenchmarkId::new("sweep", "hot_sids"), |b| {
        b.iter(|| black_box(ablations::hot_sids()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
