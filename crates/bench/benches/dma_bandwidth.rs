//! Bench for Figure 12: two-node DMA throughput across traffic mixes and
//! checker depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp::checker::CheckerKind;
use siopmp_workloads::microbench::{dma_bandwidth, BandwidthScenario};
use std::hint::black_box;

fn bench_dma_bandwidth(c: &mut Criterion) {
    let checkers = [
        ("Nopipe", CheckerKind::Linear),
        (
            "2pipe",
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
        ),
        (
            "3pipe",
            CheckerKind::MtChecker {
                stages: 3,
                tree_arity: 2,
            },
        ),
    ];
    let scenarios = [
        BandwidthScenario::ReadWrite,
        BandwidthScenario::ReadRead,
        BandwidthScenario::WriteWrite,
    ];
    let mut group = c.benchmark_group("fig12_dma_bandwidth");
    group.sample_size(10);
    for (label, checker) in checkers {
        for scenario in scenarios {
            let bpc = dma_bandwidth(scenario, checker);
            println!("fig12 {label:<8} {scenario:<12} -> {bpc:.2} bytes/cycle");
            group.bench_with_input(
                BenchmarkId::new(label, scenario.to_string()),
                &(scenario, checker),
                |b, &(s, ck)| b.iter(|| black_box(dma_bandwidth(s, ck))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dma_bandwidth);
criterion_main!(benches);
