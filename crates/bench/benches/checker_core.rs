//! Ablation bench: software cost of the functional priority check itself,
//! across checker strategies and masked entry-set sizes. This is the
//! design-choice ablation DESIGN.md calls out — it demonstrates that all
//! strategies compute the same function (so the hardware differences are
//! purely timing/area) and measures how the model's check cost scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp::request::{AccessKind, DmaRequest};
use siopmp_bench::unit_with_entries;
use std::hint::black_box;

fn bench_checker_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_core");
    for entries in [16usize, 64, 256, 1024] {
        let (mut unit, dev) = unit_with_entries(entries, 0x10_0000);
        // Worst case: the match is in the last entry.
        let last = 0x10_0000 + (entries as u64 - 1) * 0x100;
        let req = DmaRequest::new(dev, AccessKind::Read, last, 16);
        assert!(unit.check(&req).is_allowed());
        group.bench_with_input(
            BenchmarkId::new("last_entry_hit", entries),
            &entries,
            |b, _| b.iter(|| black_box(unit.check(black_box(&req)))),
        );
        let (mut unit, dev) = unit_with_entries(entries, 0x10_0000);
        let miss = DmaRequest::new(dev, AccessKind::Read, 0xdead_0000, 16);
        group.bench_with_input(BenchmarkId::new("miss", entries), &entries, |b, _| {
            b.iter(|| black_box(unit.check(black_box(&miss))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checker_core);
criterion_main!(benches);
