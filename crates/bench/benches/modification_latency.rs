//! Bench for Figure 13: IOPMP entry modification latency under the atomic
//! (per-SID blocking) protocol, measured against the real unit — the wall
//! time of `modify_entries_atomically` and the cycle model it reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp::atomic::modification_cycles;
use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::EntryIndex;
use siopmp_bench::unit_with_entries;
use std::hint::black_box;

fn bench_modification_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_modification_latency");
    for n in [4usize, 8, 16, 32, 64, 128] {
        println!(
            "fig13 Atomic-{n:<4} -> {} cycles (model)",
            modification_cycles(n, true)
        );
        group.bench_with_input(BenchmarkId::new("atomic", n), &n, |b, &n| {
            let (mut unit, dev) = unit_with_entries(256, 0x10_0000);
            let sid = unit
                .check(&siopmp::request::DmaRequest::new(
                    dev,
                    siopmp::request::AccessKind::Read,
                    0x10_0000,
                    8,
                ))
                .is_allowed()
                .then_some(siopmp::ids::SourceId(0))
                .expect("device mapped at SID 0");
            let entry = IopmpEntry::new(
                AddressRange::new(0x20_0000, 0x100).unwrap(),
                Permissions::rw(),
            );
            let updates: Vec<(EntryIndex, Option<IopmpEntry>)> = (0..n)
                .map(|i| (EntryIndex(i as u32), Some(entry)))
                .collect();
            b.iter(|| {
                black_box(
                    unit.modify_entries_atomically(sid, black_box(&updates))
                        .expect("updates in range"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modification_latency);
criterion_main!(benches);
