//! Bench for Figure 14: the LUT/FF area model across entry counts, with
//! and without tree arbitration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp::area::{estimate, FIGURE14_ENTRIES};
use siopmp::checker::CheckerKind;
use std::hint::black_box;

fn bench_hardware_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_hardware_cost");
    for entries in FIGURE14_ENTRIES {
        let linear = estimate(CheckerKind::Linear, entries);
        let tree = estimate(CheckerKind::Tree { tree_arity: 2 }, entries);
        println!(
            "fig14 {entries:>4} entries: LUT {:.2}% / FF {:.2}%  |  tree: LUT {:.2}% / FF {:.2}%",
            linear.lut_pct, linear.ff_pct, tree.lut_pct, tree.ff_pct
        );
        group.bench_with_input(BenchmarkId::new("estimate", entries), &entries, |b, &n| {
            b.iter(|| {
                let l = estimate(black_box(CheckerKind::Linear), black_box(n));
                let t = estimate(black_box(CheckerKind::Tree { tree_arity: 2 }), n);
                black_box((l, t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hardware_cost);
criterion_main!(benches);
