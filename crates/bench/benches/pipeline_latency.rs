//! Bench for Figure 11: worst-case DMA burst latency through the cycle
//! simulator, per checker depth × violation mode × read/write.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp::checker::CheckerKind;
use siopmp::violation::ViolationMode;
use siopmp_bus::BurstKind;
use siopmp_workloads::microbench::burst_latency;
use std::hint::black_box;

fn bench_pipeline_latency(c: &mut Criterion) {
    let configs = [
        (
            "Nopipe-BusError",
            CheckerKind::Linear,
            ViolationMode::BusError,
        ),
        (
            "2pipe-BusError",
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
            ViolationMode::BusError,
        ),
        (
            "2pipe-Masking",
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
            ViolationMode::PacketMasking,
        ),
        (
            "3pipe-Masking",
            CheckerKind::MtChecker {
                stages: 3,
                tree_arity: 2,
            },
            ViolationMode::PacketMasking,
        ),
    ];
    let mut group = c.benchmark_group("fig11_pipeline_latency");
    group.sample_size(20);
    for (label, checker, mode) in configs {
        for (scenario, kind, violating) in [
            ("read", BurstKind::Read, false),
            ("write", BurstKind::Write, false),
            ("read-violation", BurstKind::Read, true),
        ] {
            let cycles = burst_latency(checker, mode, kind, violating);
            println!("fig11 {label:<16} {scenario:<15} -> {cycles} cycles");
            group.bench_with_input(
                BenchmarkId::new(label, scenario),
                &(checker, mode, kind, violating),
                |b, &(ck, md, kd, v)| b.iter(|| black_box(burst_latency(ck, md, kd, v))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_latency);
criterion_main!(benches);
