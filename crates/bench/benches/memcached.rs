//! Bench for Figure 16: memcached latency/QPS curves with and without
//! sIOPMP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp_workloads::memcached::MemcachedConfig;
use std::hint::black_box;

fn bench_memcached(c: &mut Criterion) {
    let native = MemcachedConfig::default();
    let siopmp = MemcachedConfig {
        protection_cycles_per_packet: 48,
        ..native
    };
    for (label, cfg) in [("native", native), ("sIOPMP", siopmp)] {
        for p in cfg.figure16_sweep() {
            println!(
                "fig16 {label:<8} qps={:<6.0} p50={:<8.0} p99={:.0} us",
                p.qps, p.p50_us, p.p99_us
            );
        }
    }
    let mut group = c.benchmark_group("fig16_memcached");
    for (label, cfg) in [("native", native), ("sIOPMP", siopmp)] {
        group.bench_with_input(BenchmarkId::new("sweep", label), &cfg, |b, cfg| {
            b.iter(|| black_box(cfg.figure16_sweep()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memcached);
criterion_main!(benches);
