//! Bench for Figure 10: timing-model analysis across checker variants and
//! entry counts. Measures the cost of the analysis itself and prints the
//! figure's rows as Criterion throughput labels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siopmp::timing::{analyze, figure10_checkers, FIGURE10_ENTRIES};
use std::hint::black_box;

fn bench_clock_frequency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_clock_frequency");
    for checker in figure10_checkers() {
        for entries in FIGURE10_ENTRIES {
            let report = analyze(checker, entries);
            // Print the figure row once so the bench log doubles as the
            // reproduction record.
            println!(
                "fig10 {:>12} entries={:<5} -> {:>6.1} MHz (routable: {})",
                checker.label(),
                entries,
                report.achievable_mhz,
                report.routable
            );
            group.bench_with_input(
                BenchmarkId::new(checker.label(), entries),
                &entries,
                |b, &n| b.iter(|| black_box(analyze(black_box(checker), black_box(n)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clock_frequency);
criterion_main!(benches);
