//! The `siopmp-bench` binary: runs the benchmark scenarios and writes one
//! `BENCH_<scenario>.json` per scenario.
//!
//! ```text
//! siopmp-bench [--smoke] [--out DIR] [--list] [SCENARIO ...]
//! ```
//!
//! With no scenario arguments, every scenario runs. `--smoke` switches to
//! the fast CI mode (few iterations, same code paths and schema);
//! `--out DIR` redirects the JSON files (default: current directory);
//! `--list` prints the scenario names and exits.

use siopmp_bench::harness::BenchMode;
use siopmp_bench::scenarios;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    mode: BenchMode,
    out_dir: PathBuf,
    list: bool,
    scenarios: Vec<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        mode: BenchMode::full(),
        out_dir: PathBuf::from("."),
        list: false,
        scenarios: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cli.mode = BenchMode::smoke(),
            "--list" => cli.list = true,
            "--out" => {
                let dir = args.next().ok_or("--out requires a directory argument")?;
                cli.out_dir = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: siopmp-bench [--smoke] [--out DIR] [--list] [SCENARIO ...]".to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}; see --help"));
            }
            name => {
                if !scenarios::ALL.contains(&name) {
                    return Err(format!(
                        "unknown scenario {name}; known: {}",
                        scenarios::ALL.join(", ")
                    ));
                }
                cli.scenarios.push(name.to_string());
            }
        }
    }
    if cli.scenarios.is_empty() {
        cli.scenarios = scenarios::ALL.iter().map(|s| s.to_string()).collect();
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if cli.list {
        for name in scenarios::ALL {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::create_dir_all(&cli.out_dir) {
        eprintln!("cannot create {}: {e}", cli.out_dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "running {} scenario(s) in {} mode ({} warmup + {}x{} iters each)",
        cli.scenarios.len(),
        cli.mode.name,
        cli.mode.warmup,
        cli.mode.runs,
        cli.mode.iters
    );
    for name in &cli.scenarios {
        let report = scenarios::run(name, cli.mode).expect("scenario validated during parsing");
        let path = cli.out_dir.join(format!("BENCH_{name}.json"));
        if let Err(e) = std::fs::write(&path, report.to_json().pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let cycles = report
            .cycles_per_request
            .map(|c| format!(", {c:.0} cycles/req"))
            .unwrap_or_default();
        println!(
            "{name:<22} p50 {:>10} ns  p99 {:>10} ns  {:>12.1} {}{}  -> {}",
            report.timing.wall_ns.p50(),
            report.timing.wall_ns.p99(),
            report.throughput,
            report.throughput_unit,
            cycles,
            path.display()
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn default_runs_all_scenarios_in_full_mode() {
        let cli = parse_args(args(&[])).unwrap();
        assert_eq!(cli.mode.name, "full");
        assert_eq!(cli.scenarios.len(), scenarios::ALL.len());
    }

    #[test]
    fn smoke_and_out_are_parsed() {
        let cli = parse_args(args(&["--smoke", "--out", "/tmp/x", "memcached"])).unwrap();
        assert_eq!(cli.mode.name, "smoke");
        assert_eq!(cli.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(cli.scenarios, vec!["memcached".to_string()]);
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(parse_args(args(&["bogus"])).is_err());
        assert!(parse_args(args(&["--frobnicate"])).is_err());
    }
}
