//! The `siopmp-bench` binary: runs the benchmark scenarios and writes one
//! `BENCH_<scenario>.json` per scenario.
//!
//! ```text
//! siopmp-bench [--smoke] [--out DIR] [--baseline FILE] [--list] [SCENARIO ...]
//! ```
//!
//! The command line goes through the workspace's unified grammar
//! ([`siopmp_scenario::cli::Spec`]), so `--list`, `--out` and
//! `--baseline` spell the same here as in `repro`, `siopmp-scenario` and
//! `siopmp-verify`; `--smoke` is this tool's own flag.
//!
//! With no scenario arguments, every scenario runs. `--smoke` switches to
//! the fast CI mode (few iterations, same code paths and schema);
//! `--out DIR` redirects the JSON files (default: current directory);
//! `--list` prints the scenario names and exits. Each `BENCH_*.json` is
//! the workspace envelope (`schema_version`, `scenario`, `seed`,
//! `threads`, `payload`) with the measurement report as the payload.
//!
//! `--baseline FILE` is the CI regression guard: the file holds one
//! `<scenario> <cycles_per_request>` pair per line (`#` comments allowed),
//! and after the run every listed scenario's measured cycles/request is
//! compared against it. A measurement more than 15% above the baseline
//! fails the run; one more than 15% below prints a note suggesting the
//! baseline be refreshed (improvements never fail).

use siopmp::json::envelope;
use siopmp_bench::harness::BenchMode;
use siopmp_bench::scenarios;
use siopmp_scenario::cli::{Args, Spec};
use std::path::PathBuf;
use std::process::ExitCode;

const SPEC: Spec = Spec {
    tool: "siopmp-bench",
    usage: "usage: siopmp-bench [--smoke] [--out DIR] [--baseline FILE] [--list] [SCENARIO ...]",
    flags: &["--smoke"],
    options: &[],
    deprecated: &[],
};

struct Cli {
    mode: BenchMode,
    out_dir: PathBuf,
    baseline: Option<PathBuf>,
    list: bool,
    help: bool,
    seed: Option<u64>,
    threads: usize,
    scenarios: Vec<String>,
    warnings: Vec<String>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let parsed: Args = SPEC.parse(args)?;
    for name in &parsed.positional {
        if !scenarios::ALL.contains(&name.as_str()) {
            return Err(format!(
                "unknown scenario {name}; known: {}",
                scenarios::ALL.join(", ")
            ));
        }
    }
    let mut cli = Cli {
        mode: if parsed.has("--smoke") {
            BenchMode::smoke()
        } else {
            BenchMode::full()
        },
        out_dir: parsed.out.unwrap_or_else(|| PathBuf::from(".")),
        baseline: parsed.baseline,
        list: parsed.list,
        help: parsed.help,
        seed: parsed.seed,
        threads: parsed.threads.unwrap_or(1),
        scenarios: parsed.positional,
        warnings: parsed.warnings,
    };
    if cli.scenarios.is_empty() {
        cli.scenarios = scenarios::ALL.iter().map(|s| s.to_string()).collect();
    }
    Ok(cli)
}

/// Fractional tolerance of the `--baseline` guard, on each side.
const BASELINE_TOLERANCE: f64 = 0.15;

/// Parses a baseline file: one `<scenario> <cycles_per_request>` per
/// line, blank lines and `#` comments ignored.
fn parse_baseline(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("non-empty line has a first token");
        let cycles = parts
            .next()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|c| c.is_finite() && *c > 0.0)
            .ok_or(format!(
                "baseline line {}: expected `<scenario> <cycles_per_request>`, got {raw:?}",
                n + 1
            ))?;
        out.push((name.to_string(), cycles));
    }
    Ok(out)
}

/// Compares measured cycles/request against the baseline entries. Returns
/// informational notes on success (improvements beyond the tolerance, or
/// baselined scenarios that did not run) and the regression messages on
/// failure.
fn enforce_baseline(
    baselines: &[(String, f64)],
    measured: &[(String, Option<f64>)],
) -> Result<Vec<String>, Vec<String>> {
    let mut notes = Vec::new();
    let mut regressions = Vec::new();
    for (name, base) in baselines {
        let Some((_, cycles)) = measured.iter().find(|(m, _)| m == name) else {
            notes.push(format!("baseline: {name} not run, skipping"));
            continue;
        };
        let Some(cycles) = cycles else {
            regressions.push(format!("baseline: {name} reports no cycles/request"));
            continue;
        };
        if *cycles > base * (1.0 + BASELINE_TOLERANCE) {
            regressions.push(format!(
                "baseline: {name} regressed — {cycles:.1} cycles/req vs baseline {base:.1} (+{:.0}% > {:.0}% tolerance)",
                (cycles / base - 1.0) * 100.0,
                BASELINE_TOLERANCE * 100.0
            ));
        } else if *cycles < base * (1.0 - BASELINE_TOLERANCE) {
            notes.push(format!(
                "baseline: {name} improved — {cycles:.1} cycles/req vs baseline {base:.1}; consider refreshing the baseline"
            ));
        }
    }
    if regressions.is_empty() {
        Ok(notes)
    } else {
        Err(regressions)
    }
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for w in &cli.warnings {
        eprintln!("{w}");
    }
    if cli.help {
        println!("{}", SPEC.usage);
        println!("scenarios: {}", scenarios::ALL.join(" "));
        return ExitCode::SUCCESS;
    }
    if cli.list {
        for name in scenarios::ALL {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::create_dir_all(&cli.out_dir) {
        eprintln!("cannot create {}: {e}", cli.out_dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "running {} scenario(s) in {} mode ({} warmup + {}x{} iters each)",
        cli.scenarios.len(),
        cli.mode.name,
        cli.mode.warmup,
        cli.mode.runs,
        cli.mode.iters
    );
    let mut measured = Vec::new();
    for name in &cli.scenarios {
        let report = scenarios::run(name, cli.mode).expect("scenario validated during parsing");
        let path = cli.out_dir.join(format!("BENCH_{name}.json"));
        let doc = envelope(name, cli.seed, cli.threads, report.to_json());
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let cycles = report
            .cycles_per_request
            .map(|c| format!(", {c:.0} cycles/req"))
            .unwrap_or_default();
        println!(
            "{name:<22} p50 {:>10} ns  p99 {:>10} ns  {:>12.1} {}{}  -> {}",
            report.timing.wall_ns.p50(),
            report.timing.wall_ns.p99(),
            report.throughput,
            report.throughput_unit,
            cycles,
            path.display()
        );
        measured.push((name.clone(), report.cycles_per_request));
    }
    if let Some(path) = &cli.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let baselines = match parse_baseline(&text) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("{}: {msg}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match enforce_baseline(&baselines, &measured) {
            Ok(notes) => {
                for note in notes {
                    println!("{note}");
                }
                println!(
                    "baseline: {} scenario(s) within ±{:.0}%",
                    baselines.len(),
                    BASELINE_TOLERANCE * 100.0
                );
            }
            Err(regressions) => {
                for r in regressions {
                    eprintln!("{r}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_runs_all_scenarios_in_full_mode() {
        let cli = parse_args(args(&[])).unwrap();
        assert_eq!(cli.mode.name, "full");
        assert_eq!(cli.scenarios.len(), scenarios::ALL.len());
    }

    #[test]
    fn smoke_and_out_are_parsed() {
        let cli = parse_args(args(&["--smoke", "--out", "/tmp/x", "memcached"])).unwrap();
        assert_eq!(cli.mode.name, "smoke");
        assert_eq!(cli.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(cli.scenarios, vec!["memcached".to_string()]);
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(parse_args(args(&["bogus"])).is_err());
        assert!(parse_args(args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn unified_spellings_are_accepted() {
        // The shared grammar also takes `--flag=value` and hex numbers.
        let cli = parse_args(args(&["--out=/tmp/y", "--seed", "0x7", "--threads=2"])).unwrap();
        assert_eq!(cli.out_dir, PathBuf::from("/tmp/y"));
        assert_eq!(cli.seed, Some(7));
        assert_eq!(cli.threads, 2);
        assert!(cli.warnings.is_empty());
    }

    #[test]
    fn baseline_flag_is_parsed() {
        let cli = parse_args(args(&["--baseline", "ci/b.txt"])).unwrap();
        assert_eq!(cli.baseline, Some(PathBuf::from("ci/b.txt")));
        assert!(parse_args(args(&["--baseline"])).is_err());
    }

    #[test]
    fn baseline_file_parses_pairs_and_comments() {
        let text = "# cycles/request baselines\ncheck_fastpath 42.5\n\nmemcached 48 # protected\n";
        let b = parse_baseline(text).unwrap();
        assert_eq!(
            b,
            vec![
                ("check_fastpath".to_string(), 42.5),
                ("memcached".to_string(), 48.0)
            ]
        );
        assert!(parse_baseline("check_fastpath").is_err());
        assert!(parse_baseline("check_fastpath notanumber").is_err());
        assert!(parse_baseline("check_fastpath -3").is_err());
    }

    #[test]
    fn baseline_guard_tolerates_15_percent_each_way() {
        let base = vec![("check_fastpath".to_string(), 100.0)];
        let ok = |cycles: f64| {
            enforce_baseline(&base, &[("check_fastpath".to_string(), Some(cycles))]).is_ok()
        };
        assert!(ok(100.0));
        assert!(ok(114.9), "within +15%");
        assert!(!ok(115.1), "past +15% fails");
        assert!(ok(50.0), "improvements never fail");
        let notes = enforce_baseline(&base, &[("check_fastpath".to_string(), Some(50.0))]).unwrap();
        assert_eq!(notes.len(), 1, "big improvement suggests a refresh");
        assert!(
            ok(86.0)
                && enforce_baseline(&base, &[("check_fastpath".to_string(), Some(86.0))])
                    .unwrap()
                    .is_empty()
        );
    }

    #[test]
    fn baseline_guard_handles_missing_scenarios() {
        let base = vec![("check_fastpath".to_string(), 100.0)];
        // Baselined scenario not in this run: note, not failure.
        let notes = enforce_baseline(&base, &[("memcached".to_string(), Some(1.0))]).unwrap();
        assert_eq!(notes.len(), 1);
        // Ran but reported no cycles/request: that is a failure (the guard
        // would otherwise silently stop guarding).
        assert!(enforce_baseline(&base, &[("check_fastpath".to_string(), None)]).is_err());
    }
}
