//! The measurement engine: warmup, timed iterations, median-of-runs and
//! outlier trimming — no external benchmark framework.
//!
//! Each scenario provides a closure whose one invocation does a full
//! "unit of work" (typically: reproduce one evaluation figure once). The
//! engine times `iters` invocations per run, repeats for `runs` runs,
//! sorts each run's samples and drops the configured fraction from both
//! tails (trimming scheduler noise), then records the retained samples
//! into a log2 [`siopmp::telemetry::Histogram`] registered as
//! `bench.wall_ns` in the scenario's telemetry registry. The headline
//! number is the median of the per-run medians, which is robust to a
//! whole run being perturbed.

use siopmp::json::Json;
use siopmp::telemetry::{Telemetry, TelemetrySnapshot};
use std::time::Instant;

/// How much work one benchmark invocation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchMode {
    /// Human name, recorded in the JSON (`"full"` / `"smoke"`).
    pub name: &'static str,
    /// Untimed warmup invocations before the first run.
    pub warmup: usize,
    /// Timed invocations per run.
    pub iters: usize,
    /// Independent runs (the headline is the median of their medians).
    pub runs: usize,
}

impl BenchMode {
    /// The default mode for local measurement.
    pub fn full() -> Self {
        BenchMode {
            name: "full",
            warmup: 4,
            iters: 24,
            runs: 5,
        }
    }

    /// A fast mode for CI: enough iterations to exercise every code path
    /// and produce a well-formed report, not enough for stable numbers.
    pub fn smoke() -> Self {
        BenchMode {
            name: "smoke",
            warmup: 1,
            iters: 6,
            runs: 2,
        }
    }
}

/// Fraction of samples dropped from *each* tail of every run.
const TRIM_FRACTION: f64 = 0.1;

/// Timing summary of one scenario measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Mode the measurement ran under.
    pub mode: BenchMode,
    /// Median of the per-run median wall times, in nanoseconds.
    pub median_ns: u64,
    /// Samples dropped as outliers across all runs.
    pub trimmed: usize,
    /// Snapshot of the retained samples (also lives in the scenario
    /// telemetry as `bench.wall_ns`).
    pub wall_ns: siopmp::telemetry::HistogramSnapshot,
}

/// Times `f` under `mode`, recording retained samples into `telemetry`
/// (`bench.wall_ns` histogram, `bench.iterations` / `bench.outliers_trimmed`
/// counters).
pub fn measure(mode: BenchMode, telemetry: &Telemetry, mut f: impl FnMut()) -> Measurement {
    for _ in 0..mode.warmup {
        f();
    }
    let hist = telemetry.histogram("bench.wall_ns");
    let iterations = telemetry.counter("bench.iterations");
    let outliers = telemetry.counter("bench.outliers_trimmed");
    let trim = ((mode.iters as f64 * TRIM_FRACTION) as usize).min(mode.iters.saturating_sub(1) / 2);
    let mut run_medians = Vec::with_capacity(mode.runs);
    let mut trimmed = 0usize;
    for _ in 0..mode.runs {
        let mut samples = Vec::with_capacity(mode.iters);
        for _ in 0..mode.iters {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        iterations.add(mode.iters as u64);
        samples.sort_unstable();
        run_medians.push(samples[samples.len() / 2]);
        let retained = &samples[trim..samples.len() - trim];
        trimmed += samples.len() - retained.len();
        for &ns in retained {
            hist.record(ns);
        }
    }
    outliers.add(trimmed as u64);
    run_medians.sort_unstable();
    Measurement {
        mode,
        median_ns: run_medians[run_medians.len() / 2],
        trimmed,
        wall_ns: hist.snapshot(),
    }
}

/// The full result of one benchmark scenario, serializable to
/// `BENCH_<scenario>.json`.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (the file stem).
    pub scenario: String,
    /// Timing of the figure-reproduction closure.
    pub timing: Measurement,
    /// Unit of the headline throughput value (e.g. `"checks/s"`).
    pub throughput_unit: String,
    /// Headline throughput in `throughput_unit`.
    pub throughput: f64,
    /// Modelled cycles per request, where the scenario has one.
    pub cycles_per_request: Option<f64>,
    /// Scenario-specific metrics (figure rows, sweep tables, ...).
    pub metrics: Vec<(String, Json)>,
    /// Dump of the scenario's telemetry registry (always contains the
    /// `bench.*` metrics; scenarios that build real units also carry
    /// their `siopmp.*` counters).
    pub telemetry: TelemetrySnapshot,
}

impl ScenarioReport {
    /// Iterations per second of the timed closure.
    pub fn closure_hz(&self) -> f64 {
        if self.timing.median_ns == 0 {
            return 0.0;
        }
        1e9 / self.timing.median_ns as f64
    }

    /// Serializes the report (see README "Observability & benchmarking"
    /// for the schema).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("scenario", Json::str(self.scenario.clone())),
            ("mode", Json::str(self.timing.mode.name)),
            ("warmup", Json::u64(self.timing.mode.warmup as u64)),
            ("iters", Json::u64(self.timing.mode.iters as u64)),
            ("runs", Json::u64(self.timing.mode.runs as u64)),
            (
                "wall_ns",
                Json::object([
                    ("median", Json::u64(self.timing.median_ns)),
                    ("p50", Json::u64(self.timing.wall_ns.p50())),
                    ("p99", Json::u64(self.timing.wall_ns.p99())),
                    ("max", Json::u64(self.timing.wall_ns.max)),
                    ("mean", Json::f64(self.timing.wall_ns.mean())),
                    ("trimmed", Json::u64(self.timing.trimmed as u64)),
                    ("histogram", self.timing.wall_ns.to_json()),
                ]),
            ),
            (
                "throughput",
                Json::object([
                    ("unit", Json::str(self.throughput_unit.clone())),
                    ("value", Json::f64(self.throughput)),
                ]),
            ),
            (
                "cycles_per_request",
                match self.cycles_per_request {
                    Some(c) => Json::f64(c),
                    None => Json::Null,
                },
            ),
            ("metrics", Json::Object(self.metrics.to_vec())),
            ("telemetry", self.telemetry.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_all_retained_samples() {
        let t = Telemetry::new();
        let mode = BenchMode {
            name: "test",
            warmup: 1,
            iters: 10,
            runs: 2,
        };
        let mut calls = 0u64;
        let m = measure(mode, &t, || calls += 1);
        // warmup + iters*runs invocations.
        assert_eq!(calls, 1 + 10 * 2);
        // 10% trim from each tail of a 10-sample run drops 2 per run.
        assert_eq!(m.trimmed, 4);
        assert_eq!(m.wall_ns.count, 16);
        let snap = t.snapshot();
        assert_eq!(snap.counters["bench.iterations"], 20);
        assert_eq!(snap.counters["bench.outliers_trimmed"], 4);
        assert!(snap.histograms.contains_key("bench.wall_ns"));
    }

    #[test]
    fn tiny_iteration_counts_do_not_trim_everything() {
        let t = Telemetry::new();
        let mode = BenchMode {
            name: "test",
            warmup: 0,
            iters: 1,
            runs: 1,
        };
        let m = measure(mode, &t, || {});
        assert_eq!(m.trimmed, 0);
        assert_eq!(m.wall_ns.count, 1);
    }

    #[test]
    fn report_serializes_the_schema() {
        let t = Telemetry::new();
        let m = measure(BenchMode::smoke(), &t, || {});
        let report = ScenarioReport {
            scenario: "unit_test".into(),
            timing: m,
            throughput_unit: "ops/s".into(),
            throughput: 123.0,
            cycles_per_request: Some(341.0),
            metrics: vec![("answer".into(), Json::u64(42))],
            telemetry: t.snapshot(),
        };
        let json = report.to_json().to_string();
        for key in [
            "\"scenario\":\"unit_test\"",
            "\"mode\":\"smoke\"",
            "\"wall_ns\"",
            "\"p50\"",
            "\"p99\"",
            "\"throughput\"",
            "\"cycles_per_request\":341",
            "\"answer\":42",
            "\"telemetry\"",
            "bench.iterations",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
