//! # siopmp-bench — self-contained benchmark harness
//!
//! A zero-external-dependency replacement for the old Criterion benches:
//! [`harness`] is the measurement engine (warmup, timed iterations,
//! median-of-runs, outlier trim, log2 latency histograms via
//! `siopmp::telemetry`), and [`scenarios`] reimplements every evaluation
//! table/figure scenario (see `DESIGN.md` for the index). The
//! `siopmp-bench` binary runs scenarios and writes one
//! `BENCH_<scenario>.json` per scenario.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex};
use siopmp::telemetry::Telemetry;
use siopmp::{Siopmp, SiopmpConfig};

pub mod harness;
pub mod scenarios;

/// Builds a unit with one hot device whose memory domain holds `entries`
/// rules over disjoint 256-byte regions starting at `base`. Returns the
/// unit and the device id, ready for `check()` calls.
pub fn unit_with_entries(entries: usize, base: u64) -> (Siopmp, DeviceId) {
    unit_with_entries_in(entries, base, Telemetry::new())
}

/// Like [`unit_with_entries`], but registers the unit's `siopmp.*` metrics
/// in `telemetry` so a scenario's JSON dump carries its counters.
pub fn unit_with_entries_in(entries: usize, base: u64, telemetry: Telemetry) -> (Siopmp, DeviceId) {
    let cfg = SiopmpConfig {
        num_entries: entries.max(8) * 2,
        cold_md_entries: 8,
        ..SiopmpConfig::default()
    };
    build_spread(cfg, entries, base, 0x100, telemetry)
}

/// Like [`unit_with_entries_in`], but installs page-sized (4 KiB) entries —
/// each fully containing its page, so the decision cache can hold one
/// verdict per entry — and lets the caller size the decision cache.
/// `decision_cache_slots == 0` disables the fast path entirely, producing
/// the cache-free reference arm of the `check_fastpath` scenario.
pub fn page_unit_with_entries_in(
    entries: usize,
    base: u64,
    decision_cache_slots: usize,
    telemetry: Telemetry,
) -> (Siopmp, DeviceId) {
    let cfg = SiopmpConfig {
        num_entries: entries.max(8) * 2,
        cold_md_entries: 8,
        decision_cache_slots,
        ..SiopmpConfig::default()
    };
    build_spread(cfg, entries, base, siopmp::cache::PAGE_SIZE, telemetry)
}

/// Maps one hot device and installs `entries` rw rules over disjoint
/// `stride`-byte regions starting at `base`, spilling across memory
/// domains as their windows fill.
fn build_spread(
    cfg: SiopmpConfig,
    entries: usize,
    base: u64,
    stride: u64,
    telemetry: Telemetry,
) -> (Siopmp, DeviceId) {
    let mut unit = Siopmp::build(cfg, telemetry);
    let dev = DeviceId(0x42);
    let sid = unit.map_hot_device(dev).expect("fresh unit has free SIDs");
    unit.associate_sid_with_md(sid, MdIndex(0))
        .expect("MD0 exists");
    // MD0's default window may be smaller than `entries`; grow it by using
    // several domains if needed.
    let mut installed = 0;
    let mut md = 0u16;
    while installed < entries {
        let index = MdIndex(md);
        let entry = IopmpEntry::new(
            AddressRange::new(base + installed as u64 * stride, stride).expect("valid"),
            Permissions::rw(),
        );
        match unit.install_entry(index, entry) {
            Ok(_) => installed += 1,
            Err(_) => {
                md += 1;
                assert!(
                    (md as usize) < unit.config().num_mds - 1,
                    "ran out of memory domains installing {entries} entries"
                );
                unit.associate_sid_with_md(sid, MdIndex(md))
                    .expect("hot MD");
            }
        }
    }
    (unit, dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::request::{AccessKind, DmaRequest};

    #[test]
    fn helper_builds_checkable_unit() {
        let (mut unit, dev) = unit_with_entries(100, 0x10_0000);
        let ok = unit.check(&DmaRequest::new(dev, AccessKind::Read, 0x10_0000, 16));
        assert!(ok.is_allowed());
        let last = unit.check(&DmaRequest::new(
            dev,
            AccessKind::Write,
            0x10_0000 + 99 * 0x100,
            16,
        ));
        assert!(last.is_allowed());
        let miss = unit.check(&DmaRequest::new(
            dev,
            AccessKind::Read,
            0x10_0000 + 100 * 0x100,
            16,
        ));
        assert!(miss.is_denied());
    }

    #[test]
    fn page_helper_arms_agree_and_only_one_caches() {
        let cached_reg = Telemetry::new();
        let (mut cached, dev) = page_unit_with_entries_in(32, 0x10_0000, 1024, cached_reg.clone());
        let (mut reference, _) = page_unit_with_entries_in(32, 0x10_0000, 0, Telemetry::new());
        for addr in [0x10_0000u64, 0x10_0000 + 31 * 0x1000, 0xdead_0000] {
            for _ in 0..2 {
                let a = cached.check(&DmaRequest::new(dev, AccessKind::Read, addr, 16));
                let b = reference.check(&DmaRequest::new(dev, AccessKind::Read, addr, 16));
                assert_eq!(a, b, "arms diverged at {addr:#x}");
            }
        }
        assert!(cached_reg.snapshot().counters["siopmp.cache.hits"] > 0);
        assert_eq!(
            reference.stats().cache_hits + reference.stats().cache_misses,
            0
        );
    }
}
