//! # siopmp-bench — self-contained benchmark harness
//!
//! A zero-external-dependency replacement for the old Criterion benches:
//! [`harness`] is the measurement engine (warmup, timed iterations,
//! median-of-runs, outlier trim, log2 latency histograms via
//! `siopmp::telemetry`), and [`scenarios`] reimplements every evaluation
//! table/figure scenario (see `DESIGN.md` for the index). The
//! `siopmp-bench` binary runs scenarios and writes one
//! `BENCH_<scenario>.json` per scenario.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, MdIndex};
use siopmp::telemetry::Telemetry;
use siopmp::{Siopmp, SiopmpConfig};

pub mod harness;
pub mod scenarios;

/// Builds a unit with one hot device whose memory domain holds `entries`
/// rules over disjoint 256-byte regions starting at `base`. Returns the
/// unit and the device id, ready for `check()` calls.
pub fn unit_with_entries(entries: usize, base: u64) -> (Siopmp, DeviceId) {
    unit_with_entries_in(entries, base, Telemetry::new())
}

/// Like [`unit_with_entries`], but registers the unit's `siopmp.*` metrics
/// in `telemetry` so a scenario's JSON dump carries its counters.
pub fn unit_with_entries_in(entries: usize, base: u64, telemetry: Telemetry) -> (Siopmp, DeviceId) {
    let cfg = SiopmpConfig {
        num_entries: entries.max(8) * 2,
        cold_md_entries: 8,
        ..SiopmpConfig::default()
    };
    let mut unit = Siopmp::with_telemetry(cfg, telemetry);
    let dev = DeviceId(0x42);
    let sid = unit.map_hot_device(dev).expect("fresh unit has free SIDs");
    unit.associate_sid_with_md(sid, MdIndex(0))
        .expect("MD0 exists");
    // MD0's default window may be smaller than `entries`; grow it by using
    // several domains if needed.
    let mut installed = 0;
    let mut md = 0u16;
    while installed < entries {
        let index = MdIndex(md);
        let entry = IopmpEntry::new(
            AddressRange::new(base + installed as u64 * 0x100, 0x100).expect("valid"),
            Permissions::rw(),
        );
        match unit.install_entry(index, entry) {
            Ok(_) => installed += 1,
            Err(_) => {
                md += 1;
                assert!(
                    (md as usize) < unit.config().num_mds - 1,
                    "ran out of memory domains installing {entries} entries"
                );
                unit.associate_sid_with_md(sid, MdIndex(md))
                    .expect("hot MD");
            }
        }
    }
    (unit, dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::request::{AccessKind, DmaRequest};

    #[test]
    fn helper_builds_checkable_unit() {
        let (mut unit, dev) = unit_with_entries(100, 0x10_0000);
        let ok = unit.check(&DmaRequest::new(dev, AccessKind::Read, 0x10_0000, 16));
        assert!(ok.is_allowed());
        let last = unit.check(&DmaRequest::new(
            dev,
            AccessKind::Write,
            0x10_0000 + 99 * 0x100,
            16,
        ));
        assert!(last.is_allowed());
        let miss = unit.check(&DmaRequest::new(
            dev,
            AccessKind::Read,
            0x10_0000 + 100 * 0x100,
            16,
        ));
        assert!(miss.is_denied());
    }
}
