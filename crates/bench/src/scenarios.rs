//! The benchmark scenarios, one per evaluation table/figure (the same set
//! the old Criterion benches covered — see DESIGN.md for the figure
//! index). Each scenario times "reproduce the figure once" as its work
//! unit and reports the figure's rows in `metrics`, so the JSON file
//! doubles as the reproduction record.

use crate::harness::{measure, BenchMode, Measurement, ScenarioReport};
use siopmp::atomic::modification_cycles;
use siopmp::checker::CheckerKind;
use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::EntryIndex;
use siopmp::json::Json;
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::telemetry::Telemetry;
use siopmp::violation::ViolationMode;
use siopmp_bus::BurstKind;
use siopmp_experiments::{ablations, coldswitch, contention};
use siopmp_iommu::protection::{InvalidationPolicy, Iommu};
use siopmp_iommu::swio::Swio;
use siopmp_workloads::hotcold::{self, FIGURE17_RATIOS};
use siopmp_workloads::memcached::MemcachedConfig;
use siopmp_workloads::microbench::{burst_latency, dma_bandwidth, BandwidthScenario};
use siopmp_workloads::network::{evaluate, Direction, NetworkConfig};
use siopmp_workloads::{SiopmpMech, SiopmpPlusIommu};
use std::hint::black_box;

/// Every scenario name, in reporting order.
pub const ALL: [&str; 17] = [
    "clock_frequency",
    "pipeline_latency",
    "dma_bandwidth",
    "modification_latency",
    "hardware_cost",
    "network_throughput",
    "memcached",
    "cold_switching",
    "checker_core",
    "check_fastpath",
    "analyze",
    "ablations",
    "fault_storm",
    "parallel_scale",
    "contended_readers",
    "admission_rps",
    "explore_frontier",
];

/// Runs scenario `name` under `mode`; `None` for an unknown name.
pub fn run(name: &str, mode: BenchMode) -> Option<ScenarioReport> {
    match name {
        "clock_frequency" => Some(clock_frequency(mode)),
        "pipeline_latency" => Some(pipeline_latency(mode)),
        "dma_bandwidth" => Some(dma_bandwidth_scenario(mode)),
        "modification_latency" => Some(modification_latency(mode)),
        "hardware_cost" => Some(hardware_cost(mode)),
        "network_throughput" => Some(network_throughput(mode)),
        "memcached" => Some(memcached(mode)),
        "cold_switching" => Some(cold_switching(mode)),
        "checker_core" => Some(checker_core(mode)),
        "check_fastpath" => Some(check_fastpath(mode)),
        "analyze" => Some(analyze_scenario(mode)),
        "ablations" => Some(ablations_scenario(mode)),
        "fault_storm" => Some(fault_storm(mode)),
        "parallel_scale" => Some(parallel_scale(mode)),
        "contended_readers" => Some(contended_readers(mode)),
        "admission_rps" => Some(admission_rps(mode)),
        "explore_frontier" => Some(explore_frontier(mode)),
        _ => None,
    }
}

fn rows(items: impl IntoIterator<Item = Json>) -> Json {
    Json::array(items)
}

/// Figure 10: achievable clock frequency across checker variants and
/// entry counts.
fn clock_frequency(mode: BenchMode) -> ScenarioReport {
    use siopmp::timing::{analyze, figure10_checkers, FIGURE10_ENTRIES};
    let telemetry = Telemetry::new();
    let combos: Vec<(CheckerKind, usize)> = figure10_checkers()
        .into_iter()
        .flat_map(|c| FIGURE10_ENTRIES.into_iter().map(move |n| (c, n)))
        .collect();
    let timing = measure(mode, &telemetry, || {
        for &(checker, entries) in &combos {
            black_box(analyze(black_box(checker), black_box(entries)));
        }
    });
    let metrics = vec![(
        "fig10_rows".to_string(),
        rows(combos.iter().map(|&(checker, entries)| {
            let r = analyze(checker, entries);
            Json::object([
                ("checker", Json::str(checker.label())),
                ("entries", Json::u64(entries as u64)),
                ("mhz", Json::f64(r.achievable_mhz)),
                ("routable", Json::Bool(r.routable)),
            ])
        })),
    )];
    let analyses_per_sec = combos.len() as f64 * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "clock_frequency".into(),
        timing,
        throughput_unit: "analyses/s".into(),
        throughput: analyses_per_sec,
        cycles_per_request: None,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Figure 11: worst-case burst latency through the cycle simulator, per
/// checker depth × violation mode × access kind.
fn pipeline_latency(mode: BenchMode) -> ScenarioReport {
    let configs: [(&str, CheckerKind, ViolationMode); 4] = [
        (
            "Nopipe-BusError",
            CheckerKind::Linear,
            ViolationMode::BusError,
        ),
        (
            "2pipe-BusError",
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
            ViolationMode::BusError,
        ),
        (
            "2pipe-Masking",
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
            ViolationMode::PacketMasking,
        ),
        (
            "3pipe-Masking",
            CheckerKind::MtChecker {
                stages: 3,
                tree_arity: 2,
            },
            ViolationMode::PacketMasking,
        ),
    ];
    let cases: [(&str, BurstKind, bool); 3] = [
        ("read", BurstKind::Read, false),
        ("write", BurstKind::Write, false),
        ("read-violation", BurstKind::Read, true),
    ];
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        for &(_, checker, vmode) in &configs {
            for &(_, kind, violating) in &cases {
                black_box(burst_latency(checker, vmode, kind, violating));
            }
        }
    });
    let mut reference = None;
    let metrics = vec![(
        "fig11_rows".to_string(),
        rows(configs.iter().flat_map(|&(label, checker, vmode)| {
            cases.iter().map(move |&(case, kind, violating)| {
                let cycles = burst_latency(checker, vmode, kind, violating);
                Json::object([
                    ("config", Json::str(label)),
                    ("case", Json::str(case)),
                    ("cycles", Json::u64(cycles)),
                ])
            })
        })),
    )];
    // Reference request cost: the pipelined masking checker on a clean read.
    for &(label, checker, vmode) in &configs {
        if label == "2pipe-Masking" {
            reference = Some(burst_latency(checker, vmode, BurstKind::Read, false) as f64);
        }
    }
    let sims = (configs.len() * cases.len()) as f64;
    let sims_per_sec = sims * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "pipeline_latency".into(),
        timing,
        throughput_unit: "latency_sims/s".into(),
        throughput: sims_per_sec,
        cycles_per_request: reference,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Figure 12: two-node DMA throughput across traffic mixes and checker
/// depths.
fn dma_bandwidth_scenario(mode: BenchMode) -> ScenarioReport {
    let checkers: [(&str, CheckerKind); 3] = [
        ("Nopipe", CheckerKind::Linear),
        (
            "2pipe",
            CheckerKind::MtChecker {
                stages: 2,
                tree_arity: 2,
            },
        ),
        (
            "3pipe",
            CheckerKind::MtChecker {
                stages: 3,
                tree_arity: 2,
            },
        ),
    ];
    let scenarios = [
        BandwidthScenario::ReadWrite,
        BandwidthScenario::ReadRead,
        BandwidthScenario::WriteWrite,
    ];
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        for &(_, checker) in &checkers {
            for &scenario in &scenarios {
                black_box(dma_bandwidth(scenario, checker));
            }
        }
    });
    let mut best = 0.0f64;
    let metrics = vec![(
        "fig12_rows".to_string(),
        rows(checkers.iter().flat_map(|&(label, checker)| {
            scenarios.iter().map(move |&scenario| {
                let bpc = dma_bandwidth(scenario, checker);
                Json::object([
                    ("checker", Json::str(label)),
                    ("scenario", Json::str(scenario.to_string())),
                    ("bytes_per_cycle", Json::f64(bpc)),
                ])
            })
        })),
    )];
    for &(_, checker) in &checkers {
        for &scenario in &scenarios {
            best = best.max(dma_bandwidth(scenario, checker));
        }
    }
    ScenarioReport {
        scenario: "dma_bandwidth".into(),
        timing,
        throughput_unit: "bytes/cycle".into(),
        throughput: best,
        cycles_per_request: None,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Figure 13: atomic entry-modification latency, measured on the real
/// unit (wall time) and via the cycle model.
fn modification_latency(mode: BenchMode) -> ScenarioReport {
    const BATCH: usize = 64;
    let telemetry = Telemetry::new();
    let (mut unit, dev) = crate::unit_with_entries_in(256, 0x10_0000, telemetry.clone());
    let req = DmaRequest::new(dev, AccessKind::Read, 0x10_0000, 8);
    assert!(unit.check(&req).is_allowed(), "device mapped at SID 0");
    let sid = siopmp::ids::SourceId(0);
    let entry = IopmpEntry::new(
        AddressRange::new(0x20_0000, 0x100).unwrap(),
        Permissions::rw(),
    );
    let updates: Vec<(EntryIndex, Option<IopmpEntry>)> = (0..BATCH)
        .map(|i| (EntryIndex(i as u32), Some(entry)))
        .collect();
    let timing = measure(mode, &telemetry, || {
        black_box(
            unit.modify_entries_atomically(sid, black_box(&updates))
                .expect("updates in range"),
        );
    });
    let metrics = vec![(
        "fig13_rows".to_string(),
        rows([4usize, 8, 16, 32, 64, 128].into_iter().map(|n| {
            Json::object([
                ("updates", Json::u64(n as u64)),
                ("model_cycles", Json::u64(modification_cycles(n, true))),
            ])
        })),
    )];
    let updates_per_sec = BATCH as f64 * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "modification_latency".into(),
        timing,
        throughput_unit: "entry_updates/s".into(),
        throughput: updates_per_sec,
        cycles_per_request: Some(modification_cycles(BATCH, true) as f64 / BATCH as f64),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Figure 14: LUT/FF area model across entry counts, with and without
/// tree arbitration.
fn hardware_cost(mode: BenchMode) -> ScenarioReport {
    use siopmp::area::{estimate, FIGURE14_ENTRIES};
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        for entries in FIGURE14_ENTRIES {
            black_box(estimate(CheckerKind::Linear, black_box(entries)));
            black_box(estimate(CheckerKind::Tree { tree_arity: 2 }, entries));
        }
    });
    let metrics = vec![(
        "fig14_rows".to_string(),
        rows(FIGURE14_ENTRIES.into_iter().map(|entries| {
            let linear = estimate(CheckerKind::Linear, entries);
            let tree = estimate(CheckerKind::Tree { tree_arity: 2 }, entries);
            Json::object([
                ("entries", Json::u64(entries as u64)),
                ("linear_lut_pct", Json::f64(linear.lut_pct)),
                ("linear_ff_pct", Json::f64(linear.ff_pct)),
                ("tree_lut_pct", Json::f64(tree.lut_pct)),
                ("tree_ff_pct", Json::f64(tree.ff_pct)),
            ])
        })),
    )];
    let estimates = FIGURE14_ENTRIES.len() as f64 * 2.0;
    let estimates_per_sec = estimates * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "hardware_cost".into(),
        timing,
        throughput_unit: "estimates/s".into(),
        throughput: estimates_per_sec,
        cycles_per_request: None,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

fn network_case(label: &str, cfg: &NetworkConfig) -> siopmp_workloads::NetworkReport {
    match label {
        "sIOPMP" => evaluate(&mut SiopmpMech::new(), cfg),
        "sIOPMP+IOMMU" => evaluate(&mut SiopmpPlusIommu::new(), cfg),
        "IOMMU-deferred" => evaluate(
            &mut Iommu::build(InvalidationPolicy::Deferred { batch: 256 }, None),
            cfg,
        ),
        "IOMMU-strict" | "IOMMU-strict-mc" => {
            evaluate(&mut Iommu::build(InvalidationPolicy::Strict, None), cfg)
        }
        "SWIO" => evaluate(&mut Swio::new(), cfg),
        _ => unreachable!("unknown mechanism {label}"),
    }
}

/// Figure 15: iperf-style network throughput per protection mechanism,
/// RX/TX, single and multi core.
fn network_throughput(mode: BenchMode) -> ScenarioReport {
    let cases: [(&str, u32); 6] = [
        ("sIOPMP", 1),
        ("sIOPMP+IOMMU", 1),
        ("IOMMU-deferred", 1),
        ("IOMMU-strict", 1),
        ("IOMMU-strict-mc", 4),
        ("SWIO", 1),
    ];
    let configs: Vec<(&str, NetworkConfig)> = [Direction::Rx, Direction::Tx]
        .into_iter()
        .flat_map(|direction| {
            cases.into_iter().map(move |(label, cores)| {
                (
                    label,
                    NetworkConfig {
                        direction,
                        cores,
                        ..NetworkConfig::default()
                    },
                )
            })
        })
        .collect();
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        for (label, cfg) in &configs {
            black_box(network_case(label, cfg));
        }
    });
    let mut headline_gbps = 0.0;
    let mut headline_overhead = None;
    let metrics = vec![(
        "fig15_rows".to_string(),
        rows(configs.iter().map(|(label, cfg)| {
            let r = network_case(label, cfg);
            Json::object([
                ("mechanism", Json::str(*label)),
                ("direction", Json::str(cfg.direction.to_string())),
                ("cores", Json::u64(cfg.cores as u64)),
                ("throughput_gbps", Json::f64(r.throughput_gbps)),
                ("fraction_of_baseline", Json::f64(r.fraction_of_baseline)),
                (
                    "overhead_cycles_per_packet",
                    Json::f64(r.overhead_cycles_per_packet),
                ),
                ("attack_window_pages", Json::u64(r.attack_window_pages)),
            ])
        })),
    )];
    for (label, cfg) in &configs {
        if *label == "sIOPMP" && cfg.direction == Direction::Rx {
            let r = network_case(label, cfg);
            headline_gbps = r.throughput_gbps;
            headline_overhead = Some(r.overhead_cycles_per_packet);
        }
    }
    ScenarioReport {
        scenario: "network_throughput".into(),
        timing,
        throughput_unit: "Gb/s".into(),
        throughput: headline_gbps,
        cycles_per_request: headline_overhead,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Figure 16: memcached latency/QPS curves with and without sIOPMP.
fn memcached(mode: BenchMode) -> ScenarioReport {
    let native = MemcachedConfig::default();
    let protected = MemcachedConfig {
        protection_cycles_per_packet: 48,
        ..native
    };
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        black_box(native.figure16_sweep());
        black_box(protected.figure16_sweep());
    });
    let mut max_qps = 0.0f64;
    let metrics = vec![(
        "fig16_rows".to_string(),
        rows(
            [("native", native), ("sIOPMP", protected)]
                .into_iter()
                .flat_map(|(label, cfg)| {
                    cfg.figure16_sweep().into_iter().map(move |p| {
                        Json::object([
                            ("config", Json::str(label)),
                            ("qps", Json::f64(p.qps)),
                            ("p50_us", Json::f64(p.p50_us)),
                            ("p99_us", Json::f64(p.p99_us)),
                        ])
                    })
                }),
        ),
    )];
    for p in protected.figure16_sweep() {
        max_qps = max_qps.max(p.qps);
    }
    ScenarioReport {
        scenario: "memcached".into(),
        timing,
        throughput_unit: "qps".into(),
        throughput: max_qps,
        cycles_per_request: Some(protected.protection_cycles_per_packet as f64),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Figure 17 + §6.3: hot-device throughput under hot:cold request mixes,
/// and the cost of a single cold switch on the real unit.
fn cold_switching(mode: BenchMode) -> ScenarioReport {
    let windows = if mode.name == "smoke" { 5 } else { 20 };
    let telemetry = Telemetry::new();
    // Exercise a real mounted-cold path inside the scenario registry so
    // the dump carries `siopmp.cold_switches` / `siopmp.sid_missing_interrupts`.
    let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), telemetry.clone());
    let cold_dev = siopmp::ids::DeviceId(0xc01d);
    unit.register_cold_device(
        cold_dev,
        siopmp::mountable::MountableEntry {
            domains: vec![],
            entries: vec![IopmpEntry::new(
                AddressRange::new(0x20_0000, 0x1000).unwrap(),
                Permissions::rw(),
            )],
        },
    )
    .expect("fresh unit accepts cold devices");
    let cold_req = DmaRequest::new(cold_dev, AccessKind::Read, 0x20_0000, 64);
    assert!(matches!(
        unit.check(&cold_req),
        siopmp::CheckOutcome::SidMissing { .. }
    ));
    unit.handle_sid_missing(cold_dev).expect("registered");
    assert!(unit.check(&cold_req).is_allowed());

    let timing = measure(mode, &telemetry, || {
        for ratio in FIGURE17_RATIOS {
            black_box(hotcold::run(ratio, false, windows));
        }
        black_box(coldswitch::measure(8));
    });
    let switch = coldswitch::measure(8);
    let metrics = vec![
        (
            "fig17_rows".to_string(),
            rows(FIGURE17_RATIOS.into_iter().map(|ratio| {
                let mismatched = hotcold::run(ratio, false, windows);
                let matched = hotcold::run(ratio, true, windows);
                Json::object([
                    ("ratio", Json::u64(ratio)),
                    (
                        "mismatched_fraction",
                        Json::f64(mismatched.hot_throughput_fraction),
                    ),
                    (
                        "matched_fraction",
                        Json::f64(matched.hot_throughput_fraction),
                    ),
                    ("switches", Json::u64(mismatched.switches)),
                ])
            })),
        ),
        (
            "cold_switch_cycles_8_entries".to_string(),
            Json::u64(switch.cycles),
        ),
    ];
    let sweeps_per_sec = 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "cold_switching".into(),
        timing,
        throughput_unit: "fig17_sweeps/s".into(),
        throughput: sweeps_per_sec,
        cycles_per_request: Some(switch.cycles as f64),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Ablation: software cost of the functional priority check itself, per
/// masked entry-set size (last-entry hit and miss).
fn checker_core(mode: BenchMode) -> ScenarioReport {
    const SIZES: [usize; 4] = [16, 64, 256, 1024];
    const CHECKS_PER_ITER: usize = 128;
    let telemetry = Telemetry::new();
    let mut per_size = Vec::new();
    let mut main_timing = None;
    for entries in SIZES {
        let (mut unit, dev) = crate::unit_with_entries_in(entries, 0x10_0000, telemetry.clone());
        let last = 0x10_0000 + (entries as u64 - 1) * 0x100;
        let hit = DmaRequest::new(dev, AccessKind::Read, last, 16);
        assert!(unit.check(&hit).is_allowed());
        let miss = DmaRequest::new(dev, AccessKind::Read, 0xdead_0000, 16);
        let timing = measure(mode, &telemetry, || {
            for _ in 0..CHECKS_PER_ITER / 2 {
                black_box(unit.check(black_box(&hit)));
                black_box(unit.check(black_box(&miss)));
            }
        });
        per_size.push(Json::object([
            ("entries", Json::u64(entries as u64)),
            (
                "ns_per_check",
                Json::f64(timing.median_ns as f64 / CHECKS_PER_ITER as f64),
            ),
        ]));
        main_timing = Some(timing);
    }
    let timing = main_timing.expect("SIZES is non-empty");
    let metrics = vec![("ns_per_check_by_entries".to_string(), Json::Array(per_size))];
    let checks_per_sec = CHECKS_PER_ITER as f64 * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "checker_core".into(),
        timing,
        throughput_unit: "checks/s".into(),
        throughput: checks_per_sec,
        cycles_per_request: None,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Checks per timed iteration of a `check_fastpath` arm (half hot-page
/// hits, half single-page misses — both verdicts are page-cacheable).
const FASTPATH_CHECKS_PER_ITER: usize = 128;

/// Times one arm of the fast-path comparison: a unit with `slots` decision
/// slots (0 = the walk-and-sort reference path) under a hot single-page
/// workload against `entries` page-sized rules. The hit targets the
/// *last* entry, the priority checker's worst case; both the hit page and
/// the miss page are warmed before timing, so the cached arm runs entirely
/// on cache hits.
fn fastpath_arm(
    entries: usize,
    slots: usize,
    mode: BenchMode,
    registry: &Telemetry,
) -> Measurement {
    let (mut unit, dev) =
        crate::page_unit_with_entries_in(entries, 0x10_0000, slots, registry.clone());
    let last_page = 0x10_0000 + (entries as u64 - 1) * siopmp::cache::PAGE_SIZE;
    let hit = DmaRequest::new(dev, AccessKind::Read, last_page + 0x40, 16);
    assert!(unit.check(&hit).is_allowed(), "last entry reachable");
    let miss = DmaRequest::new(dev, AccessKind::Read, 0xdead_0000, 16);
    assert!(unit.check(&miss).is_denied(), "miss page unmapped");
    measure(mode, registry, || {
        for _ in 0..FASTPATH_CHECKS_PER_ITER / 2 {
            black_box(unit.check(black_box(&hit)));
            black_box(unit.check(black_box(&miss)));
        }
    })
}

/// Tentpole bench: the epoch-invalidated decision cache against the
/// cache-free reference path, across masked-entry-set sizes 1–1024.
/// Cycles/request uses a 1 GHz nominal clock (cycles == ns). The headline
/// timing (and the report's telemetry dump, including the
/// `siopmp.cache.*` counters) comes from the cached 1024-entry arm.
fn check_fastpath(mode: BenchMode) -> ScenarioReport {
    const SIZES: [usize; 5] = [1, 16, 64, 256, 1024];
    let default_slots = siopmp::SiopmpConfig::default().decision_cache_slots;
    let telemetry = Telemetry::new();
    let mut per_size = Vec::new();
    let mut headline = None;
    for entries in SIZES {
        // Each arm gets its own registry so p50/p99 are per-arm — except
        // the headline (cached, largest size), which records into the
        // report's main registry and doubles as the scenario timing.
        let cached = if entries == *SIZES.last().expect("non-empty") {
            let m = fastpath_arm(entries, default_slots, mode, &telemetry);
            headline = Some(m.clone());
            m
        } else {
            fastpath_arm(entries, default_slots, mode, &Telemetry::new())
        };
        let uncached = fastpath_arm(entries, 0, mode, &Telemetry::new());
        let cached_ns = cached.median_ns as f64 / FASTPATH_CHECKS_PER_ITER as f64;
        let uncached_ns = uncached.median_ns as f64 / FASTPATH_CHECKS_PER_ITER as f64;
        per_size.push(Json::object([
            ("entries", Json::u64(entries as u64)),
            ("cached_ns_per_check", Json::f64(cached_ns)),
            ("uncached_ns_per_check", Json::f64(uncached_ns)),
            (
                "speedup",
                Json::f64(uncached_ns / cached_ns.max(f64::MIN_POSITIVE)),
            ),
            ("cached_p50_ns", Json::u64(cached.wall_ns.p50())),
            ("cached_p99_ns", Json::u64(cached.wall_ns.p99())),
            ("uncached_p50_ns", Json::u64(uncached.wall_ns.p50())),
            ("uncached_p99_ns", Json::u64(uncached.wall_ns.p99())),
        ]));
    }
    let timing = headline.expect("SIZES is non-empty");
    let metrics = vec![
        ("fastpath_rows".to_string(), Json::Array(per_size)),
        (
            "cycles_model".to_string(),
            Json::str("1 GHz nominal clock: cycles/request == ns/check"),
        ),
    ];
    let checks_per_sec = FASTPATH_CHECKS_PER_ITER as f64 * 1e9 / timing.median_ns.max(1) as f64;
    let cycles = timing.median_ns as f64 / FASTPATH_CHECKS_PER_ITER as f64;
    ScenarioReport {
        scenario: "check_fastpath".into(),
        timing,
        throughput_unit: "checks/s".into(),
        throughput: checks_per_sec,
        cycles_per_request: Some(cycles),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Static-analyzer cost: one full `siopmp_verify::analyze` pass over units
/// holding 1–1024 installed entries. The headline timing is the largest
/// table; per-size rows record how the interval sweep scales.
fn analyze_scenario(mode: BenchMode) -> ScenarioReport {
    const SIZES: [usize; 5] = [1, 16, 64, 256, 1024];
    let telemetry = Telemetry::new();
    let mut per_size = Vec::new();
    let mut headline = None;
    for entries in SIZES {
        let (unit, _) = crate::unit_with_entries_in(entries, 0x10_0000, Telemetry::new());
        let registry = if entries == *SIZES.last().expect("non-empty") {
            telemetry.clone()
        } else {
            Telemetry::new()
        };
        let timing = measure(mode, &registry, || {
            black_box(siopmp_verify::analyze(black_box(&unit), None));
        });
        let report = siopmp_verify::analyze(&unit, None);
        let intervals: usize = report.views().iter().map(|v| v.intervals.len()).sum();
        per_size.push(Json::object([
            ("entries", Json::u64(entries as u64)),
            ("ns_per_analyze", Json::u64(timing.median_ns)),
            ("intervals", Json::u64(intervals as u64)),
            ("diagnostics", Json::u64(report.diagnostics().len() as u64)),
        ]));
        if entries == *SIZES.last().expect("non-empty") {
            headline = Some(timing);
        }
    }
    let timing = headline.expect("SIZES is non-empty");
    let metrics = vec![("analyze_rows".to_string(), Json::Array(per_size))];
    let analyses_per_sec = 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "analyze".into(),
        timing,
        throughput_unit: "analyses/s".into(),
        throughput: analyses_per_sec,
        cycles_per_request: None,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Seeds of the pinned fault-storm schedules: the same seeds the CI
/// `chaos` job replays, so the baseline below describes exactly the runs
/// the guard re-measures.
const FAULT_STORM_SEEDS: [u64; 4] = [2, 7, 42, 1337];

/// One pinned-seed fault storm: two retrying hot masters and a mounted
/// cold master under a schedule of slave errors, dropped beats, delayed
/// grants, device resets, SID-block pulses and undrained cold switches.
/// Everything — traffic, faults, retries — runs on simulated bus cycles,
/// so the returned report is bit-for-bit identical across machines.
fn run_fault_storm(seed: u64, telemetry: Telemetry) -> siopmp_bus::SimReport {
    use siopmp::ids::{DeviceId, MdIndex};
    use siopmp::mountable::MountableEntry;
    use siopmp_bus::{
        BusConfig, BusSim, FaultPlan, FaultPlanConfig, MasterProgram, RetryPolicy, SiopmpPolicy,
    };

    let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
    let mut sids = Vec::new();
    for (dev, md, base) in [(1u64, 0u16, 0x1_0000u64), (2, 1, 0x2_0000)] {
        let sid = unit.map_hot_device(DeviceId(dev)).expect("hot SIDs free");
        unit.associate_sid_with_md(sid, MdIndex(md))
            .expect("MD in range");
        unit.install_entry(
            MdIndex(md),
            IopmpEntry::new(
                AddressRange::new(base, 0x1000).expect("aligned range"),
                Permissions::rw(),
            ),
        )
        .expect("window has room");
        sids.push(sid);
    }
    for cold in [7u64, 8] {
        unit.register_cold_device(
            DeviceId(cold),
            MountableEntry {
                domains: vec![],
                entries: vec![IopmpEntry::new(
                    AddressRange::new(0x7_0000, 0x1000).expect("aligned range"),
                    Permissions::rw(),
                )],
            },
        )
        .expect("fresh unit accepts cold devices");
    }
    unit.handle_sid_missing(DeviceId(7)).expect("registered");
    sids.push(unit.config().cold_sid());

    let mut sim = BusSim::build(
        BusConfig::default(),
        Box::new(SiopmpPolicy::new(unit)),
        telemetry,
    );
    let retry = RetryPolicy::bounded(3, 2);
    sim.add_master(
        MasterProgram::streaming(1, BurstKind::Read, 0x1_0000, 64, 12)
            .with_outstanding(2)
            .with_retry(retry),
    );
    sim.add_master(
        MasterProgram::streaming(2, BurstKind::Write, 0x2_0000, 64, 12)
            .with_outstanding(2)
            .with_retry(retry),
    );
    sim.add_master(
        MasterProgram::streaming(7, BurstKind::Read, 0x7_0000, 64, 8)
            .with_outstanding(2)
            .with_retry(retry),
    );
    sim.set_fault_plan(FaultPlan::generate(
        seed,
        &FaultPlanConfig {
            horizon: 300,
            budget: 24,
            masters: 3,
            block_sids: sids,
            cold_devices: vec![DeviceId(7), DeviceId(8)],
            churn_devices: vec![],
        },
    ));
    sim.run_to_completion(100_000)
}

/// Robustness bench: pinned-seed fault storms through the retry/recovery
/// machinery. The headline cycles/request is **simulated** bus cycles per
/// completed burst summed over the pinned seeds — a machine-independent
/// recovery-cost metric. It regresses when fault recovery gets more
/// expensive (longer backoff convergence, extra re-issues, slower drains),
/// and is immune to host scheduler noise, so the ±15% baseline guard is a
/// semantic tripwire rather than a timing one.
fn fault_storm(mode: BenchMode) -> ScenarioReport {
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        for &seed in &FAULT_STORM_SEEDS {
            black_box(run_fault_storm(black_box(seed), telemetry.clone()));
        }
    });
    let mut sim_cycles = 0u64;
    let mut bursts = 0u64;
    let mut per_seed = Vec::new();
    for &seed in &FAULT_STORM_SEEDS {
        let report = run_fault_storm(seed, Telemetry::new());
        assert!(report.completed, "storm seed {seed} must converge");
        let completed: usize = report.masters.iter().map(|m| m.bursts_completed).sum();
        sim_cycles += report.cycles;
        bursts += completed as u64;
        per_seed.push(Json::object([
            ("seed", Json::u64(seed)),
            ("sim_cycles", Json::u64(report.cycles)),
            ("bursts_completed", Json::u64(completed as u64)),
            ("bursts_retried", Json::u64(report.total_retried() as u64)),
            (
                "retry_exhausted",
                Json::u64(report.total_retry_exhausted() as u64),
            ),
            (
                "faults_injected",
                Json::u64(report.total_faults_injected() as u64),
            ),
            ("control_faults", Json::u64(report.control_faults as u64)),
        ]));
    }
    let metrics = vec![
        ("fault_storm_rows".to_string(), Json::Array(per_seed)),
        (
            "cycles_model".to_string(),
            Json::str("simulated bus cycles per completed burst; host-independent"),
        ),
    ];
    let storms_per_sec = FAULT_STORM_SEEDS.len() as f64 * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "fault_storm".into(),
        timing,
        throughput_unit: "storms/s".into(),
        throughput: storms_per_sec,
        cycles_per_request: Some(sim_cycles as f64 / bursts.max(1) as f64),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Domains and masters of the `parallel_scale` scenario: 8 shards × 4
/// masters = 32 masters, each shard's sIOPMP configured with a 128-entry
/// table, for 1024 entries across the system — the paper's headline scale.
const PARALLEL_DOMAINS: usize = 8;
const PARALLEL_MASTERS: usize = 4;

fn parallel_window(domain: usize) -> u64 {
    0x100_0000 * (domain as u64 + 1)
}

/// The peer-visible ingress range near the top of `domain`'s window.
fn parallel_ingress(domain: usize) -> u64 {
    parallel_window(domain) + 0xF0_0000
}

/// Builds the 8-domain / 32-master / 1024-entry sharded system. Every
/// domain runs its own 128-entry sIOPMP: four local readers (one MD
/// each), with master 0 doubling as a cross-domain writer into the next
/// domain's ingress range — authorised by egress entries at the source
/// and, under its original device ID, by ingress entries at the
/// destination (the hierarchical double-check).
fn parallel_scale_sim(
    bursts: usize,
    threads: usize,
    telemetry: Telemetry,
) -> siopmp_bus::parallel::ParallelSim {
    use siopmp_bus::parallel::{DomainSpec, ParallelSim};
    use siopmp_bus::{MasterProgram, SiopmpPolicy};

    let device = |domain: usize, m: usize| (domain * 10 + m + 1) as u64;
    let mut psim = ParallelSim::build(256, threads, telemetry);
    for domain in 0..PARALLEL_DOMAINS {
        let base = parallel_window(domain);
        let next = (domain + 1) % PARALLEL_DOMAINS;
        let prev = (domain + PARALLEL_DOMAINS - 1) % PARALLEL_DOMAINS;
        let registry = Telemetry::new();
        let config = siopmp::SiopmpConfig {
            num_entries: 128,
            ..siopmp::SiopmpConfig::small()
        };
        let mut unit = siopmp::Siopmp::build(config, registry.clone());
        let mut grant = |dev: u64, md: u16, windows: &[u64]| {
            let sid = unit
                .map_hot_device(siopmp::ids::DeviceId(dev))
                .expect("hot SIDs free");
            unit.associate_sid_with_md(sid, siopmp::ids::MdIndex(md))
                .expect("MD in range");
            for &win in windows {
                unit.install_entry(
                    siopmp::ids::MdIndex(md),
                    IopmpEntry::new(
                        AddressRange::new(win, 0x1000).expect("aligned range"),
                        Permissions::rw(),
                    ),
                )
                .expect("table has room");
            }
        };
        for m in 0..PARALLEL_MASTERS {
            let local_base = base + (m as u64) * 0x4_0000;
            // 12 local pages (+4 egress pages on MD0) fits the 17-entry
            // per-MD share of the 128-entry table.
            let mut windows: Vec<u64> = (0..12).map(|i| local_base + i * 0x1000).collect();
            if m == 0 {
                // Egress entries: master 0 may write the next domain's
                // ingress pages.
                windows.extend((0..4).map(|i| parallel_ingress(next) + i * 0x1000));
            }
            grant(device(domain, m), m as u16, &windows);
        }
        // Ingress entries: the previous domain's cross writer lands here.
        let ingress: Vec<u64> = (0..4)
            .map(|i| parallel_ingress(domain) + i * 0x1000)
            .collect();
        grant(device(prev, 0), PARALLEL_MASTERS as u16, &ingress);

        let mut spec = DomainSpec::for_policy(SiopmpPolicy::new(unit))
            .with_home_window(base, 0x100_0000)
            .with_telemetry(registry);
        for m in 0..PARALLEL_MASTERS {
            let local_base = base + (m as u64) * 0x4_0000;
            let mut program = MasterProgram::streaming(
                device(domain, m),
                BurstKind::Read,
                local_base,
                64,
                bursts,
            );
            if m == 0 {
                program = program.chain(MasterProgram::streaming(
                    device(domain, 0),
                    BurstKind::Write,
                    parallel_ingress(next),
                    64,
                    bursts / 4,
                ));
            }
            spec = spec.with_master(program.with_outstanding(4));
        }
        psim.add_domain(spec);
    }
    psim
}

/// Tentpole bench: the deterministic sharded engine at the paper's
/// headline scale (8 domains, 32 masters, 1024 entries). The scenario
/// first proves threads=1 and threads=8 produce byte-identical reports
/// and then times both ends of the sweep. The headline cycles/request is
/// **simulated** bus cycles per completed burst — identical on every
/// host and thread count, so the ±15% CI baseline guard is a semantic
/// tripwire. The wall-clock speedup row is informational only: it
/// depends on how many cores the host actually has.
fn parallel_scale(mode: BenchMode) -> ScenarioReport {
    const MAX_CYCLES: u64 = 5_000_000;
    let bursts = if mode.name == "smoke" { 16 } else { 64 };
    let telemetry = Telemetry::new();

    // Determinism cross-check at the two thread counts the timing sweep
    // uses; also yields the representative report for the metrics.
    let report = {
        let mut serial = parallel_scale_sim(bursts, 1, Telemetry::new());
        let want = serial.run(MAX_CYCLES);
        let mut parallel = parallel_scale_sim(bursts, 8, telemetry.clone());
        let got = parallel.run(MAX_CYCLES);
        assert_eq!(
            got.to_json().pretty(),
            want.to_json().pretty(),
            "threads=1 and threads=8 must be byte-identical"
        );
        assert!(got.completed, "the workload must drain");
        got
    };
    let completed: usize = report.masters.iter().map(|m| m.bursts_completed).sum();

    let serial_timing = measure(mode, &Telemetry::new(), || {
        black_box(parallel_scale_sim(bursts, 1, Telemetry::new()).run(MAX_CYCLES));
    });
    let timing = measure(mode, &telemetry, || {
        black_box(parallel_scale_sim(bursts, 8, telemetry.clone()).run(MAX_CYCLES));
    });
    let speedup = serial_timing.median_ns as f64 / timing.median_ns.max(1) as f64;

    let metrics = vec![
        (
            "parallel_scale_rows".to_string(),
            rows([(1u64, &serial_timing), (8, &timing)].map(|(threads, t)| {
                Json::object([
                    ("threads", Json::u64(threads)),
                    ("wall_median_ns", Json::u64(t.median_ns)),
                    ("sim_cycles", Json::u64(report.cycles)),
                    ("bursts_completed", Json::u64(completed as u64)),
                ])
            })),
        ),
        ("wall_speedup_8_threads".to_string(), Json::f64(speedup)),
        (
            "cycles_model".to_string(),
            Json::str(
                "simulated bus cycles per completed burst; identical on every \
                 host and thread count (wall speedup is host-core-bound)",
            ),
        ),
    ];
    let bursts_per_sec = completed as f64 * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "parallel_scale".into(),
        timing,
        throughput_unit: "bursts/s".into(),
        throughput: bursts_per_sec,
        cycles_per_request: Some(report.cycles as f64 / completed.max(1) as f64),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Wait-free shared-checker reads under contention: 1→16 reader threads
/// replaying the same request stream through `SharedSiopmp` handles while
/// the owning thread flaps an entry (forcing snapshot republication). The
/// guarded headline is the **single-reader** arm's ns/check (1 GHz
/// nominal: cycles/request == ns/check) — it measures the wait-free read
/// path's fixed cost, which is host-stable. The multi-reader rows report
/// scaling and are informational: aggregate throughput depends on how
/// many cores the host actually has.
fn contended_readers(mode: BenchMode) -> ScenarioReport {
    const READERS: [usize; 5] = [1, 2, 4, 8, 16];
    const ENTRIES: usize = 16;
    let requests = if mode.name == "smoke" { 8_000 } else { 20_000 };
    let mutations = if mode.name == "smoke" { 16 } else { 64 };
    let telemetry = Telemetry::new();
    let mut per_arm = Vec::new();
    let mut headline = None;
    for readers in READERS {
        let mut workload = contention::ContentionWorkload::new(ENTRIES, requests, None);
        // The single-reader arm is the guarded headline, so it records
        // into the report's main registry.
        let registry = if readers == 1 {
            telemetry.clone()
        } else {
            Telemetry::new()
        };
        let timing = measure(mode, &registry, || {
            black_box(workload.run(readers, mutations));
        });
        let tally = workload.run(readers, mutations);
        assert_eq!(tally.checks, (readers * requests) as u64, "no check lost");
        assert_eq!(
            tally.allowed + tally.denied,
            tally.checks,
            "every check resolved without stalls or torn routes"
        );
        let total_checks = (readers * requests) as f64;
        let aggregate_ns = timing.median_ns as f64 / total_checks;
        per_arm.push(Json::object([
            ("readers", Json::u64(readers as u64)),
            ("wall_median_ns", Json::u64(timing.median_ns)),
            ("ns_per_check_aggregate", Json::f64(aggregate_ns)),
            (
                "checks_per_sec",
                Json::f64(total_checks * 1e9 / timing.median_ns.max(1) as f64),
            ),
            ("publishes_per_run", Json::u64(tally.publishes)),
        ]));
        if readers == 1 {
            headline = Some(timing);
        }
    }
    let timing = headline.expect("READERS starts at 1");
    let cycles = timing.median_ns as f64 / requests as f64;
    let metrics = vec![
        ("contended_rows".to_string(), Json::Array(per_arm)),
        (
            "cycles_model".to_string(),
            Json::str(
                "1 GHz nominal clock: cycles/request == single-reader ns/check; \
                 multi-reader rows are scaling info only (host-core-bound)",
            ),
        ),
    ];
    let checks_per_sec = requests as f64 * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "contended_readers".into(),
        timing,
        throughput_unit: "checks/s".into(),
        throughput: checks_per_sec,
        cycles_per_request: Some(cycles),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Ablation sweeps: tree arity, checker placement, hot-SID provisioning.
fn ablations_scenario(mode: BenchMode) -> ScenarioReport {
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        black_box(ablations::tree_arity());
        black_box(ablations::placement());
        black_box(ablations::hot_sids());
    });
    let metrics = vec![
        (
            "tree_arity".to_string(),
            rows(ablations::tree_arity().into_iter().map(|p| {
                Json::object([
                    ("arity", Json::u64(p.arity as u64)),
                    ("mhz", Json::f64(p.mhz)),
                    ("lut_pct", Json::f64(p.lut_pct)),
                    ("ff_pct", Json::f64(p.ff_pct)),
                ])
            })),
        ),
        (
            "placement".to_string(),
            rows(ablations::placement().into_iter().map(|p| {
                Json::object([
                    ("placement", Json::str(format!("{:?}", p.placement))),
                    ("read_latency", Json::u64(p.read_latency)),
                    ("bandwidth", Json::f64(p.bandwidth)),
                ])
            })),
        ),
        (
            "hot_sids".to_string(),
            rows(ablations::hot_sids().into_iter().map(|p| {
                Json::object([
                    ("hot_sids", Json::u64(p.hot_sids as u64)),
                    ("cold_switches", Json::u64(p.cold_switches)),
                ])
            })),
        ),
    ];
    let sweeps_per_sec = 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "ablations".into(),
        timing,
        throughput_unit: "sweeps/s".into(),
        throughput: sweeps_per_sec,
        cycles_per_request: None,
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// The `admission_rps` mix: four tenants at staggered rates, one of
/// them storming at 10x its bucket, driven for this many virtual ticks.
const ADMISSION_TICKS: u64 = 2000;

/// Builds the daemon fleet for `admission_rps` (two scenario files'
/// worth of tenants, rate-limited via the `fleet` stanza).
fn admission_fleet() -> siopmp_serviced::Fleet {
    const QUIET: &str = "\
scenario bench-quiet
config sids=8 mds=8 entries=32 cold_entries=4
fleet rate=200 burst=2 deadline=200 retry=2:2

domain t0
  device 1 hot md=0
  entry md=0 0x1000 0x1000 rw

domain t1
  device 2 hot md=0
  entry md=0 0x2000 0x1000 rw

domain t2
  device 3 hot md=0
  entry md=0 0x3000 0x1000 rw
";
    const NOISY: &str = "\
scenario bench-noisy
config sids=8 mds=8 entries=32 cold_entries=4
fleet rate=100 burst=1 deadline=200 retry=2:2

domain storm
  device 4 hot md=0
  entry md=0 0x4000 0x1000 rw
";
    let quiet = siopmp_scenario::parse(QUIET).expect("bench-quiet parses");
    let noisy = siopmp_scenario::parse(NOISY).expect("bench-noisy parses");
    siopmp_serviced::Fleet::from_scenarios([("quiet", None, &quiet), ("noisy", None, &noisy)])
        .expect("admission fleet builds")
}

/// One full deterministic run of the admission mix; returns
/// `(allowed, shed, latency_tick_sum, per-tenant p99 rows)`. The
/// daemon's own registry is folded into `telemetry` so the bench dump
/// carries the `siopmp.serviced.*` counters.
fn run_admission_mix(telemetry: &Telemetry) -> (u64, u64, u64, Vec<Json>) {
    use siopmp::ids::DeviceId;
    use siopmp_serviced::daemon::{Serviced, ServicedConfig};
    use siopmp_serviced::journal::{Journal, Replay};
    use siopmp_serviced::proto::Request;

    let mut d = Serviced::start_with(
        admission_fleet(),
        Journal::in_memory(),
        Replay::default(),
        ServicedConfig::default(),
    )
    .expect("admission daemon starts");
    // (tenant, device, window, requests per tick): three tenants over
    // their 0.2-per-tick buckets and one storm far over its 0.1, so the
    // run exercises every shed class while total *admitted* load stays
    // around 70% of the single worker's capacity (queueing without
    // saturation — the p99 rows mean something).
    let mix: [(&str, u64, u64, u64); 4] = [
        ("quiet/t0", 1, 0x1000, 2),
        ("quiet/t1", 2, 0x2000, 1),
        ("quiet/t2", 3, 0x3000, 1),
        ("noisy/storm", 4, 0x4000, 10),
    ];
    let (mut allowed, mut shed, mut latency_sum) = (0u64, 0u64, 0u64);
    for _ in 0..ADMISSION_TICKS {
        d.advance(1);
        for &(tenant, device, window, per_tick) in &mix {
            for _ in 0..per_tick {
                let resp = d.handle(&Request::Check {
                    tenant: tenant.to_string(),
                    device: DeviceId(device),
                    kind: AccessKind::Write,
                    addr: window,
                    len: 64,
                    deadline: None,
                });
                if let Json::Object(pairs) = &resp {
                    if let Some((_, Json::U64(l))) = pairs.iter().find(|(k, _)| k == "latency") {
                        latency_sum += l;
                    }
                }
            }
        }
    }
    let snap = d.telemetry().snapshot();
    for (name, value) in &snap.counters {
        telemetry.counter(name).add(*value);
    }
    for (name, h) in &snap.histograms {
        telemetry.histogram(name).absorb(h);
    }
    allowed += snap.counters["siopmp.serviced.allowed"];
    shed += snap.counters["siopmp.serviced.shed"];
    let mut per_tenant = Vec::new();
    for (tenant, ..) in mix {
        let hist = &snap.histograms[&format!("siopmp.serviced.latency.{tenant}")];
        per_tenant.push(Json::object([
            ("tenant", Json::str(tenant)),
            ("admitted", Json::u64(hist.count)),
            ("p50_ticks", Json::u64(hist.p50())),
            ("p99_ticks", Json::u64(hist.p99())),
        ]));
    }
    (allowed, shed, latency_sum, per_tenant)
}

/// Sustained admission throughput and tail latency of the
/// `siopmp-serviced` daemon core under a synthetic multi-tenant mix
/// with one tenant storming 10x over its rate limit.
///
/// The guarded metric (`cycles_per_request`) is *virtual latency ticks
/// per admitted request* — fully deterministic, so the CI baseline
/// guard is host-independent. Wall requests/s is reported as
/// `throughput` but not guarded.
fn admission_rps(mode: BenchMode) -> ScenarioReport {
    let telemetry = Telemetry::new();
    let timing = measure(mode, &telemetry, || {
        black_box(run_admission_mix(&telemetry));
    });
    let (allowed, shed, latency_sum, per_tenant) = run_admission_mix(&Telemetry::new());
    let total = allowed + shed;
    let requests_per_sec = total as f64 * 1e9 / timing.median_ns.max(1) as f64;
    let metrics = vec![
        ("admission_rows".to_string(), Json::Array(per_tenant)),
        ("requests".to_string(), Json::u64(total)),
        ("allowed".to_string(), Json::u64(allowed)),
        ("shed".to_string(), Json::u64(shed)),
        ("virtual_ticks".to_string(), Json::u64(ADMISSION_TICKS)),
        (
            "cycles_model".to_string(),
            Json::str("virtual admission-latency ticks per admitted request; host-independent"),
        ),
    ];
    ScenarioReport {
        scenario: "admission_rps".into(),
        timing,
        throughput_unit: "requests/s".into(),
        throughput: requests_per_sec,
        cycles_per_request: Some(latency_sum as f64 / allowed.max(1) as f64),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

/// Design-space explorer over the smoke sweep (96 points, 3 sample
/// simulations). The scenario first proves `--threads 1` and `4` yield
/// byte-identical frontiers, then times full sweep evaluations against a
/// pre-warmed sample cache. The guarded cycles/request is the **paper
/// design point's modelled p99 check cycles** — pure arithmetic over the
/// simulated sample, identical on every host — so the ±15% CI baseline
/// guard trips on model or sample regressions, never on scheduler noise.
fn explore_frontier(mode: BenchMode) -> ScenarioReport {
    use siopmp::explore::Sweep;
    use siopmp_scenario::Explorer;

    let sweep = Sweep::smoke();
    let outcome = {
        let mut one = Explorer::new(Some(1));
        let mut four = Explorer::new(Some(4));
        let a = one.evaluate(&sweep).expect("smoke sweep under cap");
        let b = four.evaluate(&sweep).expect("smoke sweep under cap");
        assert_eq!(
            a.payload().pretty(),
            b.payload().pretty(),
            "threads=1 and threads=4 must be byte-identical"
        );
        assert!(
            a.paper_point_on_frontier(),
            "the paper design point must survive to the frontier"
        );
        a
    };
    let telemetry = Telemetry::new();
    let mut explorer = Explorer::new(Some(1));
    // Warm the per-depth sample cache so the timed unit is the sweep
    // evaluation itself (the figure the CLI reproduces on every call).
    explorer.evaluate(&sweep).expect("smoke sweep under cap");
    let timing = measure(mode, &telemetry, || {
        black_box(explorer.evaluate(black_box(&sweep)).expect("cached"));
    });

    let paper = outcome
        .points
        .iter()
        .find(|r| r.paper)
        .expect("smoke sweep contains the paper point");
    let metrics = vec![
        (
            "frontier_rows".to_string(),
            rows(outcome.frontier().into_iter().map(|r| {
                let p = r.cost.point;
                Json::object([
                    ("entries", Json::u64(p.entries as u64)),
                    ("cam_ways", Json::u64(p.cam_ways as u64)),
                    ("stages", Json::u64(u64::from(p.stages))),
                    ("cache_slots", Json::u64(p.cache_slots as u64)),
                    ("shards", Json::u64(p.shards as u64)),
                    ("achievable_mhz", Json::f64(r.cost.timing.achievable_mhz)),
                    ("area_pct", Json::f64(r.cost.area_pct())),
                    ("p99_cycles", Json::u64(r.p99_cycles)),
                    ("p99_ns", Json::f64(r.p99_ns)),
                    ("paper_point", Json::Bool(r.paper)),
                ])
            })),
        ),
        ("swept".to_string(), Json::u64(outcome.points.len() as u64)),
        (
            "frontier_size".to_string(),
            Json::u64(outcome.frontier().len() as u64),
        ),
        (
            "paper_point_on_frontier".to_string(),
            Json::Bool(outcome.paper_point_on_frontier()),
        ),
        (
            "cycles_model".to_string(),
            Json::str(
                "modelled p99 check cycles at the paper design point over the \
                 deterministic workload sample; host-independent",
            ),
        ),
    ];
    let points_per_sec = outcome.points.len() as f64 * 1e9 / timing.median_ns.max(1) as f64;
    ScenarioReport {
        scenario: "explore_frontier".into(),
        timing,
        throughput_unit: "points/s".into(),
        throughput: points_per_sec,
        cycles_per_request: Some(paper.p99_cycles as f64),
        metrics,
        telemetry: telemetry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run("no_such_scenario", BenchMode::smoke()).is_none());
    }

    #[test]
    fn every_scenario_runs_in_smoke_mode() {
        for name in ALL {
            let report = run(name, BenchMode::smoke()).expect("scenario listed in ALL");
            assert_eq!(report.scenario, name);
            assert!(
                report.timing.wall_ns.count > 0,
                "{name} recorded no samples"
            );
            assert!(
                report.throughput > 0.0,
                "{name} throughput must be positive"
            );
            let json = report.to_json().to_string();
            assert!(json.contains("\"telemetry\""), "{name} missing telemetry");
            assert!(
                json.contains("bench.wall_ns"),
                "{name} missing bench histogram"
            );
        }
    }

    #[test]
    fn admission_rps_guard_metric_is_virtual_and_deterministic() {
        let a = run("admission_rps", BenchMode::smoke()).unwrap();
        let b = run("admission_rps", BenchMode::smoke()).unwrap();
        // The guarded metric is virtual admission-latency ticks per
        // admitted request: identical across runs and machines.
        assert_eq!(a.cycles_per_request, b.cycles_per_request);
        assert!(
            a.cycles_per_request.unwrap() >= 1.0,
            "at least one service tick"
        );
        // The mix exercises the daemon's shed path, not just the happy path.
        assert!(a.telemetry.counters["siopmp.serviced.shed"] > 0);
        assert!(a.telemetry.counters["siopmp.serviced.allowed"] > 0);
        let json = a.to_json().to_string();
        for key in ["admission_rows", "p99_ticks", "allowed", "shed"] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn check_fastpath_dump_has_cache_counters() {
        let report = run("check_fastpath", BenchMode::smoke()).unwrap();
        // Headline arm runs hot: hits dominate after the warmup misses.
        let hits = report.telemetry.counters["siopmp.cache.hits"];
        let misses = report.telemetry.counters["siopmp.cache.misses"];
        assert!(
            hits > misses,
            "hot arm must be hit-dominated ({hits} vs {misses})"
        );
        let json = report.to_json().to_string();
        for key in [
            "fastpath_rows",
            "cached_ns_per_check",
            "uncached_ns_per_check",
            "speedup",
            "cached_p99_ns",
            "siopmp.cache.view_rebuilds",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn cached_beats_uncached_at_1024_entries() {
        // The acceptance bar is ≥2× at 1024 entries hot; the real margin
        // (O(1) lookup vs walk+sort of 1024 entries) is orders larger, so
        // this stays robust under CI noise.
        let mode = BenchMode::smoke();
        let cached = fastpath_arm(1024, 1024, mode, &Telemetry::new());
        let uncached = fastpath_arm(1024, 0, mode, &Telemetry::new());
        assert!(
            cached.median_ns * 2 <= uncached.median_ns,
            "cached {}ns vs uncached {}ns",
            cached.median_ns,
            uncached.median_ns
        );
    }

    #[test]
    fn contended_readers_sweeps_reader_counts() {
        let report = run("contended_readers", BenchMode::smoke()).unwrap();
        let json = report.to_json().to_string();
        for key in [
            "contended_rows",
            "ns_per_check_aggregate",
            "publishes_per_run",
            "\"readers\":16",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let cycles = report.cycles_per_request.expect("guarded headline");
        assert!(cycles > 0.0);
    }

    #[test]
    fn analyze_scenario_sweeps_table_sizes() {
        let report = run("analyze", BenchMode::smoke()).unwrap();
        let json = report.to_json().to_string();
        for key in ["analyze_rows", "ns_per_analyze", "\"entries\":1024"] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn fault_storm_cycles_metric_is_simulated_and_deterministic() {
        let a = run("fault_storm", BenchMode::smoke()).unwrap();
        let b = run("fault_storm", BenchMode::smoke()).unwrap();
        // The guard metric is simulated cycles per burst: identical across
        // runs (and machines), unlike the wall-clock timing around it.
        assert_eq!(a.cycles_per_request, b.cycles_per_request);
        assert!(a.cycles_per_request.unwrap() > 0.0);
        // The storm actually exercises the recovery machinery.
        assert!(a.telemetry.counters["bus.retries"] > 0);
        assert!(a.telemetry.counters["bus.faults_injected"] > 0);
        let json = a.to_json().to_string();
        for key in [
            "fault_storm_rows",
            "bursts_retried",
            "retry_exhausted",
            "faults_injected",
            "control_faults",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn parallel_scale_guard_metric_is_simulated_and_deterministic() {
        let a = run("parallel_scale", BenchMode::smoke()).unwrap();
        let b = run("parallel_scale", BenchMode::smoke()).unwrap();
        // Like fault_storm, the guard metric is simulated cycles per
        // burst: identical across runs, machines and thread counts.
        assert_eq!(a.cycles_per_request, b.cycles_per_request);
        assert!(a.cycles_per_request.unwrap() > 0.0);
        // The sharded system actually exchanged cross-domain traffic.
        assert!(a.telemetry.counters["parallel.cross_domain_bursts"] > 0);
        assert_eq!(a.telemetry.counters["parallel.unrouted_egress"], 0);
        let json = a.to_json().to_string();
        for key in [
            "parallel_scale_rows",
            "wall_speedup_8_threads",
            "bursts_completed",
            "cycles_model",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn explore_frontier_guard_metric_is_modelled_and_deterministic() {
        let a = run("explore_frontier", BenchMode::smoke()).unwrap();
        let b = run("explore_frontier", BenchMode::smoke()).unwrap();
        // The guard metric is the paper point's modelled p99 check
        // cycles: identical across runs, machines and thread counts.
        assert_eq!(a.cycles_per_request, b.cycles_per_request);
        assert!(a.cycles_per_request.unwrap() > 0.0);
        let json = a.to_json().to_string();
        for key in [
            "frontier_rows",
            "frontier_size",
            "\"paper_point_on_frontier\":true",
            "achievable_mhz",
            "cycles_model",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn cold_switching_dump_has_unit_counters() {
        let report = run("cold_switching", BenchMode::smoke()).unwrap();
        assert_eq!(report.telemetry.counters["siopmp.cold_switches"], 1);
        assert_eq!(
            report.telemetry.counters["siopmp.sid_missing_interrupts"],
            1
        );
        // §6.3: a switch loading 8 entries costs 341 cycles.
        assert_eq!(report.cycles_per_request, Some(341.0));
    }
}
