//! Property-based tests for the monitor's capability layer: privilege can
//! only shrink, ownership checks gate every mutation, and revocation is
//! total over derivation trees.

use proptest::prelude::*;

use siopmp_monitor::cap::{Capability, MemPerms};
use siopmp_monitor::ownership::{CapTable, EntityId};

fn arb_entity() -> impl Strategy<Value = EntityId> {
    prop_oneof![
        Just(EntityId::Monitor),
        Just(EntityId::BootSystem),
        (0u32..4).prop_map(EntityId::Tee),
    ]
}

fn arb_perms() -> impl Strategy<Value = MemPerms> {
    (any::<bool>(), any::<bool>()).prop_map(|(read, write)| MemPerms { read, write })
}

proptest! {
    /// Derivation chains are monotone: any capability reachable by
    /// derivation covers a subset of what its ancestor covers.
    #[test]
    fn derivation_is_monotone(
        steps in proptest::collection::vec((0u64..0x1000, 1u64..0x1000, arb_perms()), 1..10),
    ) {
        let root = Capability::Memory { base: 0, len: 0x1_0000, perms: MemPerms::rw() };
        let mut current = root;
        for (off, len, perms) in steps {
            let (cbase, clen) = match current {
                Capability::Memory { base, len, .. } => (base, len),
                Capability::Device { .. } => unreachable!(),
            };
            let base = cbase + off % clen.max(1);
            let len = len.min(cbase + clen - base).max(1);
            if let Ok(child) = current.derive_memory(base, len, perms) {
                // Everything the child covers, the parent covers too.
                prop_assert!(current.covers(base, len, perms));
                // Probe a few points.
                for probe in [base, base + len / 2, base + len - 1] {
                    if child.covers(probe, 1, perms) {
                        prop_assert!(current.covers(probe, 1, perms));
                        prop_assert!(root.covers(probe, 1, perms));
                    }
                }
                current = child;
            }
        }
    }

    /// Only the owner can transfer or derive; ownership transfers compose
    /// into a faithful chain.
    #[test]
    fn ownership_gates_every_mutation(
        transfers in proptest::collection::vec((arb_entity(), arb_entity()), 1..20),
    ) {
        let mut table = CapTable::new();
        let id = table.mint(Capability::Memory {
            base: 0, len: 0x1000, perms: MemPerms::rw(),
        });
        let mut owner = EntityId::Monitor;
        let mut chain_len = 1usize;
        for (actor, to) in transfers {
            let result = table.transfer(actor, id, to);
            if actor == owner {
                prop_assert!(result.is_ok());
                owner = to;
                chain_len += 1;
            } else {
                prop_assert!(result.is_err());
            }
            prop_assert_eq!(table.owner(id).unwrap(), owner);
            prop_assert_eq!(table.chain(id).unwrap().len(), chain_len);
        }
    }

    /// Revoking a capability revokes the entire derivation subtree and
    /// nothing outside it.
    #[test]
    fn revocation_is_exactly_the_subtree(split in 1u64..15) {
        let mut table = CapTable::new();
        let a = table.mint(Capability::Memory { base: 0, len: 0x1000, perms: MemPerms::rw() });
        let b = table.mint(Capability::Memory { base: 0x1000, len: 0x1000, perms: MemPerms::rw() });
        // Build a chain of derivations under `a`.
        let mut subtree = vec![a];
        let mut parent = a;
        for i in 0..split.min(6) {
            // Nested shrinking windows: each child strictly inside its
            // parent's range.
            let child = table
                .derive(EntityId::Monitor, parent, i * 8, 64 - i * 8, MemPerms::ro())
                .unwrap();
            subtree.push(child);
            parent = child;
        }
        let revoked = table.revoke(EntityId::Monitor, a).unwrap();
        prop_assert_eq!(revoked, subtree.len());
        for id in subtree {
            prop_assert!(table.capability(id).is_err());
        }
        // `b` is untouched.
        prop_assert!(table.capability(b).is_ok());
    }
}
