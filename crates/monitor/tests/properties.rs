//! Property-based tests for the monitor's capability layer: privilege can
//! only shrink, ownership checks gate every mutation, and revocation is
//! total over derivation trees.

use siopmp_testkit::{check, check_eq, prop_check, Gen};

use siopmp_monitor::cap::{Capability, MemPerms};
use siopmp_monitor::ownership::{CapTable, EntityId};

fn arb_entity(g: &mut Gen) -> EntityId {
    match g.u8(0..3) {
        0 => EntityId::Monitor,
        1 => EntityId::BootSystem,
        _ => EntityId::Tee(g.u32(0..4)),
    }
}

fn arb_perms(g: &mut Gen) -> MemPerms {
    MemPerms {
        read: g.bool(),
        write: g.bool(),
    }
}

/// Derivation chains are monotone: any capability reachable by
/// derivation covers a subset of what its ancestor covers.
#[test]
fn derivation_is_monotone() {
    prop_check(96, |g| {
        let steps = g.vec(1..10, |g| {
            (g.u64(0..0x1000), g.u64(1..0x1000), arb_perms(g))
        });
        let root = Capability::Memory {
            base: 0,
            len: 0x1_0000,
            perms: MemPerms::rw(),
        };
        let mut current = root;
        for (off, len, perms) in steps {
            let (cbase, clen) = match current {
                Capability::Memory { base, len, .. } => (base, len),
                Capability::Device { .. } => unreachable!(),
            };
            let base = cbase + off % clen.max(1);
            let len = len.min(cbase + clen - base).max(1);
            if let Ok(child) = current.derive_memory(base, len, perms) {
                // Everything the child covers, the parent covers too.
                check!(current.covers(base, len, perms));
                // Probe a few points.
                for probe in [base, base + len / 2, base + len - 1] {
                    if child.covers(probe, 1, perms) {
                        check!(current.covers(probe, 1, perms));
                        check!(root.covers(probe, 1, perms));
                    }
                }
                current = child;
            }
        }
        Ok(())
    });
}

/// Only the owner can transfer or derive; ownership transfers compose
/// into a faithful chain.
#[test]
fn ownership_gates_every_mutation() {
    prop_check(96, |g| {
        let transfers = g.vec(1..20, |g| (arb_entity(g), arb_entity(g)));
        let mut table = CapTable::new();
        let id = table.mint(Capability::Memory {
            base: 0,
            len: 0x1000,
            perms: MemPerms::rw(),
        });
        let mut owner = EntityId::Monitor;
        let mut chain_len = 1usize;
        for (actor, to) in transfers {
            let result = table.transfer(actor, id, to);
            if actor == owner {
                check!(result.is_ok());
                owner = to;
                chain_len += 1;
            } else {
                check!(result.is_err());
            }
            check_eq!(table.owner(id).unwrap(), owner);
            check_eq!(table.chain(id).unwrap().len(), chain_len);
        }
        Ok(())
    });
}

/// Revoking a capability revokes the entire derivation subtree and
/// nothing outside it.
#[test]
fn revocation_is_exactly_the_subtree() {
    prop_check(64, |g| {
        let split = g.u64(1..15);
        let mut table = CapTable::new();
        let a = table.mint(Capability::Memory {
            base: 0,
            len: 0x1000,
            perms: MemPerms::rw(),
        });
        let b = table.mint(Capability::Memory {
            base: 0x1000,
            len: 0x1000,
            perms: MemPerms::rw(),
        });
        // Build a chain of derivations under `a`.
        let mut subtree = vec![a];
        let mut parent = a;
        for i in 0..split.min(6) {
            // Nested shrinking windows: each child strictly inside its
            // parent's range.
            let child = table
                .derive(EntityId::Monitor, parent, i * 8, 64 - i * 8, MemPerms::ro())
                .unwrap();
            subtree.push(child);
            parent = child;
        }
        let revoked = table.revoke(EntityId::Monitor, a).unwrap();
        check_eq!(revoked, subtree.len());
        for id in subtree {
            check!(table.capability(id).is_err());
        }
        // `b` is untouched.
        check!(table.capability(b).is_ok());
        Ok(())
    });
}
