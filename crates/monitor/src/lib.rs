//! # siopmp-monitor — the Penglai-style secure monitor
//!
//! The firmware layer of the sIOPMP design (§5.4): a small trusted monitor
//! that owns all hardware resources at boot and hands them out to TEEs
//! through **capability-based, ownership-checked interfaces**.
//!
//! The monitor is split the way the paper describes:
//!
//! * the **capability layer** ([`cap`], [`ownership`]) — every hardware
//!   resource (memory range, device) is a capability; owners can *derive*
//!   narrower capabilities and *transfer* ownership, and only the owner may
//!   configure the underlying hardware;
//! * the **hardware controllers** ([`controllers`]) — the PMP controller
//!   (CPU-side memory isolation, which also protects the extended IOPMP
//!   table), the sIOPMP controller (device isolation) and the interrupt
//!   controller (SID-missing and violation interrupts);
//! * the **TEE manager** ([`tee`]) — tracks each TEE's capability set and
//!   drives `create_tee` / `device_map` / `device_unmap` flows
//!   ([`SecureMonitor`]).

pub mod cap;
pub mod controllers;
pub mod delegation;
pub mod memmgr;
pub mod monitor;
pub mod ownership;
pub mod tee;

pub use crate::cap::{CapId, Capability, MemPerms};
pub use crate::monitor::{MonitorError, SecureMonitor};
pub use crate::ownership::EntityId;
pub use crate::tee::TeeId;
pub use siopmp::quiesce::{ColdSwitchDrain, DrainConfig, DrainPhase, DrainPoll};
