//! The capability table with ownership chains (§5.4, Figure 9).
//!
//! Every capability has exactly one **owner** at a time. Transfers move
//! ownership down the chain (monitor → boot system → TEE); the table
//! records the full chain so audits (and revocation on TEE destruction)
//! can walk it.

use std::collections::HashMap;

use crate::cap::{CapId, Capability, DeriveError, MemPerms};

/// An entity that can own capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityId {
    /// The secure monitor itself (owner of everything at boot).
    Monitor,
    /// The untrusted boot system / host OS.
    BootSystem,
    /// A TEE, by index.
    Tee(u32),
}

impl core::fmt::Display for EntityId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EntityId::Monitor => f.write_str("monitor"),
            EntityId::BootSystem => f.write_str("boot-system"),
            EntityId::Tee(id) => write!(f, "tee#{id}"),
        }
    }
}

/// Errors from capability-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapError {
    /// Unknown capability handle.
    NoSuchCap(CapId),
    /// The acting entity does not own the capability.
    NotOwner {
        /// Who tried to act.
        actor: EntityId,
        /// Who actually owns it.
        owner: EntityId,
    },
    /// Derivation refused.
    Derive(DeriveError),
    /// The capability was revoked.
    Revoked(CapId),
}

impl core::fmt::Display for CapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CapError::NoSuchCap(id) => write!(f, "{id} does not exist"),
            CapError::NotOwner { actor, owner } => {
                write!(f, "{actor} is not the owner ({owner} is)")
            }
            CapError::Derive(e) => write!(f, "derivation refused: {e}"),
            CapError::Revoked(id) => write!(f, "{id} was revoked"),
        }
    }
}

impl std::error::Error for CapError {}

impl From<DeriveError> for CapError {
    fn from(e: DeriveError) -> Self {
        CapError::Derive(e)
    }
}

#[derive(Debug, Clone)]
struct CapRecord {
    cap: Capability,
    owner: EntityId,
    parent: Option<CapId>,
    /// Chain of owners, oldest first (the "ownership chain" of Figure 9).
    chain: Vec<EntityId>,
    revoked: bool,
}

/// The monitor's capability table.
///
/// # Examples
///
/// ```
/// use siopmp_monitor::cap::{Capability, MemPerms};
/// use siopmp_monitor::ownership::{CapTable, EntityId};
///
/// let mut table = CapTable::new();
/// let root = table.mint(Capability::Memory { base: 0, len: 0x1000, perms: MemPerms::rw() });
/// table.transfer(EntityId::Monitor, root, EntityId::Tee(1)).unwrap();
/// assert_eq!(table.owner(root).unwrap(), EntityId::Tee(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CapTable {
    records: HashMap<CapId, CapRecord>,
    next_id: u64,
}

impl CapTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        CapTable::default()
    }

    /// Number of live (un-revoked) capabilities.
    pub fn live_count(&self) -> usize {
        self.records.values().filter(|r| !r.revoked).count()
    }

    /// Mints a fresh root capability owned by the monitor (boot-time only).
    pub fn mint(&mut self, cap: Capability) -> CapId {
        let id = CapId(self.next_id);
        self.next_id += 1;
        self.records.insert(
            id,
            CapRecord {
                cap,
                owner: EntityId::Monitor,
                parent: None,
                chain: vec![EntityId::Monitor],
                revoked: false,
            },
        );
        id
    }

    fn record(&self, id: CapId) -> Result<&CapRecord, CapError> {
        let r = self.records.get(&id).ok_or(CapError::NoSuchCap(id))?;
        if r.revoked {
            return Err(CapError::Revoked(id));
        }
        Ok(r)
    }

    /// The capability's resource description.
    ///
    /// # Errors
    ///
    /// [`CapError::NoSuchCap`] / [`CapError::Revoked`].
    pub fn capability(&self, id: CapId) -> Result<Capability, CapError> {
        Ok(self.record(id)?.cap)
    }

    /// The capability's current owner.
    ///
    /// # Errors
    ///
    /// [`CapError::NoSuchCap`] / [`CapError::Revoked`].
    pub fn owner(&self, id: CapId) -> Result<EntityId, CapError> {
        Ok(self.record(id)?.owner)
    }

    /// The full ownership chain, oldest first.
    ///
    /// # Errors
    ///
    /// [`CapError::NoSuchCap`] / [`CapError::Revoked`].
    pub fn chain(&self, id: CapId) -> Result<&[EntityId], CapError> {
        Ok(&self.record(id)?.chain)
    }

    /// Verifies that `actor` owns `id`.
    ///
    /// # Errors
    ///
    /// [`CapError::NotOwner`] (plus lookup errors).
    pub fn check_owner(&self, actor: EntityId, id: CapId) -> Result<(), CapError> {
        let owner = self.owner(id)?;
        if owner != actor {
            return Err(CapError::NotOwner { actor, owner });
        }
        Ok(())
    }

    /// Transfers ownership of `id` from `actor` to `to`.
    ///
    /// # Errors
    ///
    /// [`CapError::NotOwner`] when `actor` does not own the capability.
    pub fn transfer(&mut self, actor: EntityId, id: CapId, to: EntityId) -> Result<(), CapError> {
        self.check_owner(actor, id)?;
        let r = self.records.get_mut(&id).expect("checked above");
        r.owner = to;
        r.chain.push(to);
        Ok(())
    }

    /// Derives a narrower memory capability from `id`, owned by `actor`.
    ///
    /// # Errors
    ///
    /// Ownership and derivation errors.
    pub fn derive(
        &mut self,
        actor: EntityId,
        id: CapId,
        base: u64,
        len: u64,
        perms: MemPerms,
    ) -> Result<CapId, CapError> {
        self.check_owner(actor, id)?;
        let child = self.record(id)?.cap.derive_memory(base, len, perms)?;
        let new_id = CapId(self.next_id);
        self.next_id += 1;
        self.records.insert(
            new_id,
            CapRecord {
                cap: child,
                owner: actor,
                parent: Some(id),
                chain: vec![actor],
                revoked: false,
            },
        );
        Ok(new_id)
    }

    /// Revokes `id` and every capability derived from it (recursively).
    /// Returns the number of capabilities revoked. Used when a TEE is
    /// destroyed.
    ///
    /// # Errors
    ///
    /// [`CapError::NotOwner`] etc. — only the owner (or the monitor) may
    /// revoke.
    pub fn revoke(&mut self, actor: EntityId, id: CapId) -> Result<usize, CapError> {
        if actor != EntityId::Monitor {
            self.check_owner(actor, id)?;
        } else {
            self.record(id)?; // existence check
        }
        let mut frontier = vec![id];
        let mut revoked = 0;
        while let Some(cur) = frontier.pop() {
            if let Some(r) = self.records.get_mut(&cur) {
                if !r.revoked {
                    r.revoked = true;
                    revoked += 1;
                }
            }
            let children: Vec<CapId> = self
                .records
                .iter()
                .filter(|(_, r)| r.parent == Some(cur) && !r.revoked)
                .map(|(cid, _)| *cid)
                .collect();
            frontier.extend(children);
        }
        Ok(revoked)
    }

    /// All live capabilities owned by `who`.
    pub fn owned_by(&self, who: EntityId) -> Vec<CapId> {
        let mut ids: Vec<CapId> = self
            .records
            .iter()
            .filter(|(_, r)| !r.revoked && r.owner == who)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::ids::DeviceId;

    fn mem_cap() -> Capability {
        Capability::Memory {
            base: 0x1000,
            len: 0x1000,
            perms: MemPerms::rw(),
        }
    }

    #[test]
    fn mint_starts_owned_by_monitor() {
        let mut t = CapTable::new();
        let id = t.mint(mem_cap());
        assert_eq!(t.owner(id).unwrap(), EntityId::Monitor);
        assert_eq!(t.chain(id).unwrap(), &[EntityId::Monitor]);
    }

    #[test]
    fn transfer_records_chain() {
        let mut t = CapTable::new();
        let id = t.mint(mem_cap());
        t.transfer(EntityId::Monitor, id, EntityId::BootSystem)
            .unwrap();
        t.transfer(EntityId::BootSystem, id, EntityId::Tee(1))
            .unwrap();
        assert_eq!(
            t.chain(id).unwrap(),
            &[EntityId::Monitor, EntityId::BootSystem, EntityId::Tee(1)]
        );
    }

    #[test]
    fn non_owner_cannot_transfer() {
        let mut t = CapTable::new();
        let id = t.mint(mem_cap());
        let err = t
            .transfer(EntityId::Tee(1), id, EntityId::Tee(2))
            .unwrap_err();
        assert!(matches!(err, CapError::NotOwner { .. }));
    }

    #[test]
    fn derive_respects_ownership_and_scope() {
        let mut t = CapTable::new();
        let id = t.mint(mem_cap());
        t.transfer(EntityId::Monitor, id, EntityId::Tee(1)).unwrap();
        // The monitor no longer owns it, so it cannot derive from it.
        assert!(matches!(
            t.derive(EntityId::Monitor, id, 0x1000, 0x100, MemPerms::ro()),
            Err(CapError::NotOwner { .. })
        ));
        let child = t
            .derive(EntityId::Tee(1), id, 0x1000, 0x100, MemPerms::ro())
            .unwrap();
        assert_eq!(t.owner(child).unwrap(), EntityId::Tee(1));
        // Escaping the parent range is refused.
        assert!(matches!(
            t.derive(EntityId::Tee(1), id, 0x0, 0x100, MemPerms::ro()),
            Err(CapError::Derive(DeriveError::RangeEscape))
        ));
    }

    #[test]
    fn revoke_cascades_to_descendants() {
        let mut t = CapTable::new();
        let root = t.mint(mem_cap());
        let a = t
            .derive(EntityId::Monitor, root, 0x1000, 0x800, MemPerms::rw())
            .unwrap();
        let b = t
            .derive(EntityId::Monitor, a, 0x1000, 0x100, MemPerms::ro())
            .unwrap();
        let revoked = t.revoke(EntityId::Monitor, root).unwrap();
        assert_eq!(revoked, 3);
        assert!(matches!(t.capability(b), Err(CapError::Revoked(_))));
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn monitor_can_revoke_anything() {
        let mut t = CapTable::new();
        let id = t.mint(Capability::Device {
            device: DeviceId(1),
        });
        t.transfer(EntityId::Monitor, id, EntityId::Tee(1)).unwrap();
        assert_eq!(t.revoke(EntityId::Monitor, id).unwrap(), 1);
    }

    #[test]
    fn owned_by_lists_only_live_caps() {
        let mut t = CapTable::new();
        let a = t.mint(mem_cap());
        let b = t.mint(Capability::Device {
            device: DeviceId(2),
        });
        t.transfer(EntityId::Monitor, b, EntityId::Tee(1)).unwrap();
        assert_eq!(t.owned_by(EntityId::Monitor), vec![a]);
        assert_eq!(t.owned_by(EntityId::Tee(1)), vec![b]);
        t.revoke(EntityId::Monitor, b).unwrap();
        assert!(t.owned_by(EntityId::Tee(1)).is_empty());
    }

    #[test]
    fn revoked_caps_reject_all_operations() {
        let mut t = CapTable::new();
        let id = t.mint(mem_cap());
        t.revoke(EntityId::Monitor, id).unwrap();
        assert!(matches!(t.owner(id), Err(CapError::Revoked(_))));
        assert!(matches!(
            t.transfer(EntityId::Monitor, id, EntityId::Tee(1)),
            Err(CapError::Revoked(_))
        ));
    }
}
