//! The monitor's physical-memory manager: carves TEE memory regions out of
//! the platform's secure pool and assigns PMP slots to shield them from
//! the untrusted OS.
//!
//! The paper's monitor "can partition all hardware resources into separate
//! isolated domains or TEEs" (§6.1); this module is the memory half of
//! that partitioning. Regions are allocated first-fit from a pool,
//! coalesced on release, and each live region occupies one PMP slot
//! (regions are therefore a scarce resource, exactly like real PMP
//! hardware with its ~16 register pairs).

use std::collections::BTreeMap;

use crate::controllers::{PmpController, PMP_REGIONS};

/// Errors from the memory manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemMgrError {
    /// The pool has no fragment large enough.
    OutOfMemory,
    /// All PMP slots are in use.
    OutOfPmpSlots,
    /// Releasing a region that is not live.
    NotAllocated(u64),
    /// Alignment or size constraints violated.
    BadRequest,
}

impl core::fmt::Display for MemMgrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemMgrError::OutOfMemory => f.write_str("secure memory pool exhausted"),
            MemMgrError::OutOfPmpSlots => f.write_str("no free PMP slot"),
            MemMgrError::NotAllocated(a) => write!(f, "region {a:#x} is not allocated"),
            MemMgrError::BadRequest => f.write_str("bad alignment or size"),
        }
    }
}

impl std::error::Error for MemMgrError {}

/// A live TEE memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecureRegion {
    /// Base address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// PMP slot shielding the region.
    pub pmp_slot: usize,
}

/// First-fit allocator over the secure memory pool, with PMP slot
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    free: BTreeMap<u64, u64>,
    live: BTreeMap<u64, SecureRegion>,
    slots_used: [bool; PMP_REGIONS],
    /// Slots below this index are reserved for the monitor itself.
    reserved_slots: usize,
}

/// Allocation granule (regions are multiples of 4 KiB, PMP-style).
pub const GRANULE: u64 = 4096;

impl MemoryManager {
    /// Creates a manager over the pool `[base, base+len)`, reserving the
    /// first `reserved_slots` PMP slots for the monitor's own guards.
    ///
    /// # Panics
    ///
    /// Panics on unaligned pool bounds or when every slot is reserved —
    /// construction-time monitor bugs.
    pub fn new(base: u64, len: u64, reserved_slots: usize) -> Self {
        assert_eq!(base % GRANULE, 0, "pool base must be granule aligned");
        assert_eq!(len % GRANULE, 0, "pool size must be granule aligned");
        assert!(reserved_slots < PMP_REGIONS, "no slots left for TEEs");
        let mut free = BTreeMap::new();
        free.insert(base, len);
        MemoryManager {
            free,
            live: BTreeMap::new(),
            slots_used: [false; PMP_REGIONS],
            reserved_slots,
        }
    }

    /// Live regions count.
    pub fn live_regions(&self) -> usize {
        self.live.len()
    }

    /// Free bytes remaining.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    fn take_slot(&mut self) -> Option<usize> {
        let slot = (self.reserved_slots..PMP_REGIONS).find(|&s| !self.slots_used[s])?;
        self.slots_used[slot] = true;
        Some(slot)
    }

    /// Allocates a region of `len` bytes (rounded up to the granule),
    /// shields it with a PMP slot, and returns it.
    ///
    /// # Errors
    ///
    /// [`MemMgrError::BadRequest`], [`MemMgrError::OutOfMemory`] or
    /// [`MemMgrError::OutOfPmpSlots`]. On slot exhaustion the pool is left
    /// unchanged.
    pub fn allocate(
        &mut self,
        len: u64,
        pmp: &mut PmpController,
    ) -> Result<SecureRegion, MemMgrError> {
        if len == 0 {
            return Err(MemMgrError::BadRequest);
        }
        let len = len.div_ceil(GRANULE) * GRANULE;
        let (start, flen) = self
            .free
            .iter()
            .find(|(_, &l)| l >= len)
            .map(|(&s, &l)| (s, l))
            .ok_or(MemMgrError::OutOfMemory)?;
        let slot = self.take_slot().ok_or(MemMgrError::OutOfPmpSlots)?;
        self.free.remove(&start);
        if flen > len {
            self.free.insert(start + len, flen - len);
        }
        let region = SecureRegion {
            base: start,
            len,
            pmp_slot: slot,
        };
        self.live.insert(start, region);
        pmp.protect(slot, start, len);
        Ok(region)
    }

    /// Releases a region: clears its PMP slot and coalesces the pool.
    ///
    /// # Errors
    ///
    /// [`MemMgrError::NotAllocated`].
    pub fn release(
        &mut self,
        region: SecureRegion,
        pmp: &mut PmpController,
    ) -> Result<(), MemMgrError> {
        match self.live.get(&region.base) {
            Some(r) if *r == region => {}
            _ => return Err(MemMgrError::NotAllocated(region.base)),
        }
        self.live.remove(&region.base);
        self.slots_used[region.pmp_slot] = false;
        pmp.clear(region.pmp_slot);
        // Coalesce into the free map.
        let mut start = region.base;
        let mut len = region.len;
        if let Some(&next_len) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += next_len;
        }
        if let Some((&pstart, &plen)) = self.free.range(..start).next_back() {
            if pstart + plen == start {
                self.free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        self.free.insert(start, len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemoryManager, PmpController) {
        (
            MemoryManager::new(0x8000_0000, 0x40_0000, 1),
            PmpController::new(),
        )
    }

    #[test]
    fn allocation_shields_region_with_pmp() {
        let (mut mgr, mut pmp) = setup();
        let region = mgr.allocate(0x2000, &mut pmp).unwrap();
        assert_eq!(region.len, 0x2000);
        assert!(region.pmp_slot >= 1, "slot 0 is reserved");
        // The untrusted OS can no longer touch the region.
        assert!(!pmp.cpu_access_allowed(region.base, 8, false));
        assert!(!pmp.cpu_access_allowed(region.base + region.len - 8, 8, true));
        // Outside stays open.
        assert!(pmp.cpu_access_allowed(region.base + region.len, 8, true));
    }

    #[test]
    fn release_reopens_and_coalesces() {
        let (mut mgr, mut pmp) = setup();
        let a = mgr.allocate(0x1000, &mut pmp).unwrap();
        let b = mgr.allocate(0x1000, &mut pmp).unwrap();
        let before = mgr.free_bytes();
        mgr.release(a, &mut pmp).unwrap();
        mgr.release(b, &mut pmp).unwrap();
        assert_eq!(mgr.free_bytes(), before + 0x2000);
        assert!(pmp.cpu_access_allowed(a.base, 8, true));
        assert_eq!(mgr.live_regions(), 0);
        // Pool fully coalesced: a max-size allocation succeeds again.
        assert!(mgr.allocate(0x40_0000, &mut pmp).is_ok());
    }

    #[test]
    fn pmp_slots_are_the_scarce_resource() {
        let (mut mgr, mut pmp) = setup();
        let mut regions = Vec::new();
        loop {
            match mgr.allocate(GRANULE, &mut pmp) {
                Ok(r) => regions.push(r),
                Err(MemMgrError::OutOfPmpSlots) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(regions.len(), PMP_REGIONS - 1); // one reserved
                                                    // Releasing one frees a slot for reuse.
        mgr.release(regions.pop().unwrap(), &mut pmp).unwrap();
        assert!(mgr.allocate(GRANULE, &mut pmp).is_ok());
    }

    #[test]
    fn double_release_rejected() {
        let (mut mgr, mut pmp) = setup();
        let region = mgr.allocate(GRANULE, &mut pmp).unwrap();
        mgr.release(region, &mut pmp).unwrap();
        assert_eq!(
            mgr.release(region, &mut pmp),
            Err(MemMgrError::NotAllocated(region.base))
        );
    }

    #[test]
    fn requests_round_up_to_granule() {
        let (mut mgr, mut pmp) = setup();
        let region = mgr.allocate(1, &mut pmp).unwrap();
        assert_eq!(region.len, GRANULE);
        assert!(mgr.allocate(0, &mut pmp).is_err());
    }

    #[test]
    fn exhaustion_reported() {
        let mut mgr = MemoryManager::new(0x8000_0000, 2 * GRANULE, 0);
        let mut pmp = PmpController::new();
        mgr.allocate(2 * GRANULE, &mut pmp).unwrap();
        assert_eq!(
            mgr.allocate(GRANULE, &mut pmp),
            Err(MemMgrError::OutOfMemory)
        );
    }
}
