//! Capability kinds and derivation rules.
//!
//! A capability names one hardware resource and the privileges its holder
//! has over it. Two operations exist (§5.4):
//!
//! * **derivation** — the owner mints a new capability with a *smaller*
//!   scope (narrower memory range, fewer permissions). Derivation is
//!   strictly monotone: privileges can only shrink;
//! * **transfer** — the owner moves ownership (or grants a read-only copy)
//!   to another entity; handled by [`crate::ownership`].

use core::fmt;

use siopmp::ids::DeviceId;

/// Handle to a capability in the monitor's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapId(pub u64);

impl fmt::Display for CapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cap#{}", self.0)
    }
}

/// Memory permissions carried by a memory capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemPerms {
    /// Holder may let devices read the region.
    pub read: bool,
    /// Holder may let devices write the region.
    pub write: bool,
}

impl MemPerms {
    /// Full access.
    pub fn rw() -> Self {
        MemPerms {
            read: true,
            write: true,
        }
    }

    /// Read-only access.
    pub fn ro() -> Self {
        MemPerms {
            read: true,
            write: false,
        }
    }

    /// Whether `self` is a (non-strict) subset of `other`.
    pub fn subset_of(self, other: MemPerms) -> bool {
        (!self.read || other.read) && (!self.write || other.write)
    }
}

impl fmt::Display for MemPerms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' }
        )
    }
}

/// The resource a capability controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// A physical memory range with maximum device permissions.
    Memory {
        /// Base address.
        base: u64,
        /// Length in bytes.
        len: u64,
        /// Maximum permissions derivable from this capability.
        perms: MemPerms,
    },
    /// Control over one device.
    Device {
        /// The device's packet-level identifier.
        device: DeviceId,
    },
}

/// Why a derivation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeriveError {
    /// The requested range is not contained in the parent's range.
    RangeEscape,
    /// The requested permissions exceed the parent's.
    PermissionEscalation,
    /// Device capabilities are atomic: only exact copies can be derived.
    DeviceNotDivisible,
    /// Zero-length or wrapping range requested.
    InvalidRange,
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeriveError::RangeEscape => "derived range escapes the parent range",
            DeriveError::PermissionEscalation => "derived permissions exceed the parent",
            DeriveError::DeviceNotDivisible => "device capabilities cannot be subdivided",
            DeriveError::InvalidRange => "derived range is empty or wraps",
        })
    }
}

impl std::error::Error for DeriveError {}

impl Capability {
    /// Derives a narrower memory capability from this one.
    ///
    /// # Errors
    ///
    /// * [`DeriveError::DeviceNotDivisible`] on device capabilities;
    /// * [`DeriveError::RangeEscape`] / [`DeriveError::PermissionEscalation`]
    ///   / [`DeriveError::InvalidRange`] when the request widens scope.
    pub fn derive_memory(
        &self,
        base: u64,
        len: u64,
        perms: MemPerms,
    ) -> Result<Capability, DeriveError> {
        match *self {
            Capability::Device { .. } => Err(DeriveError::DeviceNotDivisible),
            Capability::Memory {
                base: pbase,
                len: plen,
                perms: pperms,
            } => {
                if len == 0 || base.checked_add(len).is_none() {
                    return Err(DeriveError::InvalidRange);
                }
                if base < pbase || base + len > pbase + plen {
                    return Err(DeriveError::RangeEscape);
                }
                if !perms.subset_of(pperms) {
                    return Err(DeriveError::PermissionEscalation);
                }
                Ok(Capability::Memory { base, len, perms })
            }
        }
    }

    /// Whether this capability covers `[base, base+len)` with at least
    /// `perms`.
    pub fn covers(&self, base: u64, len: u64, perms: MemPerms) -> bool {
        match *self {
            Capability::Memory {
                base: pbase,
                len: plen,
                perms: pperms,
            } => {
                len > 0
                    && base >= pbase
                    && base.checked_add(len).is_some_and(|end| end <= pbase + plen)
                    && perms.subset_of(pperms)
            }
            Capability::Device { .. } => false,
        }
    }

    /// The device this capability controls, if it is a device capability.
    pub fn as_device(&self) -> Option<DeviceId> {
        match self {
            Capability::Device { device } => Some(*device),
            Capability::Memory { .. } => None,
        }
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capability::Memory { base, len, perms } => {
                write!(f, "mem {perms} [{base:#x}, {:#x})", base + len)
            }
            Capability::Device { device } => write!(f, "device {device}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(base: u64, len: u64) -> Capability {
        Capability::Memory {
            base,
            len,
            perms: MemPerms::rw(),
        }
    }

    #[test]
    fn derive_narrower_range() {
        let parent = mem(0x1000, 0x1000);
        let child = parent.derive_memory(0x1100, 0x100, MemPerms::ro()).unwrap();
        assert!(child.covers(0x1100, 0x100, MemPerms::ro()));
        assert!(!child.covers(0x1100, 0x100, MemPerms::rw()));
    }

    #[test]
    fn derive_cannot_escape_range() {
        let parent = mem(0x1000, 0x1000);
        assert_eq!(
            parent.derive_memory(0x0800, 0x100, MemPerms::ro()),
            Err(DeriveError::RangeEscape)
        );
        assert_eq!(
            parent.derive_memory(0x1f00, 0x200, MemPerms::ro()),
            Err(DeriveError::RangeEscape)
        );
    }

    #[test]
    fn derive_cannot_escalate_permissions() {
        let parent = Capability::Memory {
            base: 0x1000,
            len: 0x1000,
            perms: MemPerms::ro(),
        };
        assert_eq!(
            parent.derive_memory(0x1000, 0x100, MemPerms::rw()),
            Err(DeriveError::PermissionEscalation)
        );
    }

    #[test]
    fn derive_rejects_degenerate_ranges() {
        let parent = mem(0x1000, 0x1000);
        assert_eq!(
            parent.derive_memory(0x1000, 0, MemPerms::ro()),
            Err(DeriveError::InvalidRange)
        );
        assert_eq!(
            parent.derive_memory(u64::MAX, 2, MemPerms::ro()),
            Err(DeriveError::InvalidRange)
        );
    }

    #[test]
    fn device_caps_are_atomic() {
        let dev = Capability::Device {
            device: DeviceId(1),
        };
        assert_eq!(
            dev.derive_memory(0, 1, MemPerms::ro()),
            Err(DeriveError::DeviceNotDivisible)
        );
        assert_eq!(dev.as_device(), Some(DeviceId(1)));
        assert!(!dev.covers(0, 1, MemPerms::ro()));
    }

    #[test]
    fn repeated_derivation_is_monotone() {
        // privilege can only shrink along a chain
        let a = mem(0x0, 0x10000);
        let b = a.derive_memory(0x1000, 0x1000, MemPerms::rw()).unwrap();
        let c = b.derive_memory(0x1800, 0x100, MemPerms::ro()).unwrap();
        assert!(a.covers(0x1800, 0x100, MemPerms::rw()));
        assert!(b.covers(0x1800, 0x100, MemPerms::rw()));
        assert!(c.covers(0x1800, 0x100, MemPerms::ro()));
        // c cannot regain what b gave up
        assert!(c.derive_memory(0x1800, 0x100, MemPerms::rw()).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(mem(0x1000, 0x100).to_string(), "mem rw [0x1000, 0x1100)");
        assert_eq!(
            Capability::Device {
                device: DeviceId(2)
            }
            .to_string(),
            "device dev:0x2"
        );
    }
}
