//! Hardware controllers: PMP (CPU-side memory isolation), sIOPMP (device
//! isolation) and the interrupt controller.
//!
//! The monitor's hardware-facing half (§5.4). The PMP controller models the
//! RISC-V physical-memory-protection registers the monitor uses to protect
//! itself and the extended IOPMP table; the sIOPMP controller owns the
//! [`siopmp::Siopmp`] unit; the interrupt controller routes SID-missing and
//! violation interrupts to their handlers.

use siopmp::ids::DeviceId;
use siopmp::violation::ViolationRecord;

/// Number of PMP register pairs (RISC-V allows up to 64; 16 is typical).
pub const PMP_REGIONS: usize = 16;

/// One PMP region: a range the *CPU* (in lower privilege) may or may not
/// touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmpRegion {
    /// Base address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Whether S/U mode may read the region.
    pub allow_read: bool,
    /// Whether S/U mode may write the region.
    pub allow_write: bool,
}

/// The PMP controller: a fixed file of priority regions, lowest index
/// first — the CPU-side analogue of the IOPMP entry table.
#[derive(Debug, Clone)]
pub struct PmpController {
    regions: [Option<PmpRegion>; PMP_REGIONS],
}

impl Default for PmpController {
    fn default() -> Self {
        PmpController {
            regions: [None; PMP_REGIONS],
        }
    }
}

impl PmpController {
    /// Creates a controller with all regions clear (everything accessible).
    pub fn new() -> Self {
        PmpController::default()
    }

    /// Installs `region` at `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot >= PMP_REGIONS` — a monitor bug, not a runtime
    /// condition.
    pub fn set(&mut self, slot: usize, region: PmpRegion) {
        assert!(slot < PMP_REGIONS, "PMP slot out of range");
        self.regions[slot] = Some(region);
    }

    /// Clears `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot >= PMP_REGIONS`.
    pub fn clear(&mut self, slot: usize) {
        assert!(slot < PMP_REGIONS, "PMP slot out of range");
        self.regions[slot] = None;
    }

    /// Whether an S/U-mode access `[addr, addr+len)` is permitted: the
    /// first matching region decides; no match means allowed (PMP default
    /// open for machine-mode-owned platforms; the monitor installs a final
    /// deny-all region to flip the default where needed).
    pub fn cpu_access_allowed(&self, addr: u64, len: u64, write: bool) -> bool {
        for region in self.regions.iter().flatten() {
            let end = region.base + region.len;
            let a_end = match addr.checked_add(len) {
                Some(e) => e,
                None => return false,
            };
            if addr < end && a_end > region.base {
                return if write {
                    region.allow_write
                } else {
                    region.allow_read
                };
            }
        }
        true
    }

    /// Installs a deny-all guard over `[base, base+len)` at `slot` — how
    /// the monitor protects the extended IOPMP table from the untrusted OS
    /// (§4.2).
    pub fn protect(&mut self, slot: usize, base: u64, len: u64) {
        self.set(
            slot,
            PmpRegion {
                base,
                len,
                allow_read: false,
                allow_write: false,
            },
        );
    }
}

/// Interrupts the sIOPMP unit raises towards the CPU (Figure 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorInterrupt {
    /// A DMA arrived from a registered-but-unmounted cold device.
    SidMissing {
        /// The device that needs mounting.
        device: DeviceId,
    },
    /// The checker denied an access.
    Violation(ViolationRecord),
}

/// A simple level-triggered interrupt controller with a pending queue.
#[derive(Debug, Clone, Default)]
pub struct InterruptController {
    pending: std::collections::VecDeque<MonitorInterrupt>,
    delivered: u64,
}

impl InterruptController {
    /// Creates an empty controller.
    pub fn new() -> Self {
        InterruptController::default()
    }

    /// Raises an interrupt.
    pub fn raise(&mut self, irq: MonitorInterrupt) {
        self.pending.push_back(irq);
    }

    /// Pops the next pending interrupt, if any.
    pub fn take_next(&mut self) -> Option<MonitorInterrupt> {
        let irq = self.pending.pop_front();
        if irq.is_some() {
            self.delivered += 1;
        }
        irq
    }

    /// Number of pending interrupts.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total interrupts delivered to handlers.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::request::AccessKind;

    #[test]
    fn pmp_protects_extended_table() {
        let mut pmp = PmpController::new();
        pmp.protect(0, 0x8000_0000, 0x1_0000);
        assert!(!pmp.cpu_access_allowed(0x8000_0100, 8, false));
        assert!(!pmp.cpu_access_allowed(0x8000_0100, 8, true));
        assert!(pmp.cpu_access_allowed(0x9000_0000, 8, true));
    }

    #[test]
    fn pmp_priority_first_match_wins() {
        let mut pmp = PmpController::new();
        // Slot 0 denies a sub-range, slot 1 allows the enclosing range.
        pmp.set(
            0,
            PmpRegion {
                base: 0x1000,
                len: 0x100,
                allow_read: false,
                allow_write: false,
            },
        );
        pmp.set(
            1,
            PmpRegion {
                base: 0x0,
                len: 0x10000,
                allow_read: true,
                allow_write: true,
            },
        );
        assert!(!pmp.cpu_access_allowed(0x1010, 4, false));
        assert!(pmp.cpu_access_allowed(0x2000, 4, true));
    }

    #[test]
    fn pmp_wrapping_access_denied() {
        let pmp = PmpController::new();
        let mut guarded = PmpController::new();
        guarded.protect(0, 0, 0x1000);
        assert!(pmp.cpu_access_allowed(u64::MAX, 1, false));
        assert!(!guarded.cpu_access_allowed(u64::MAX, 2, false));
    }

    #[test]
    fn pmp_clear_reopens() {
        let mut pmp = PmpController::new();
        pmp.protect(3, 0x5000, 0x1000);
        assert!(!pmp.cpu_access_allowed(0x5000, 4, false));
        pmp.clear(3);
        assert!(pmp.cpu_access_allowed(0x5000, 4, false));
    }

    #[test]
    fn interrupt_queue_fifo() {
        let mut ic = InterruptController::new();
        ic.raise(MonitorInterrupt::SidMissing {
            device: DeviceId(1),
        });
        ic.raise(MonitorInterrupt::Violation(ViolationRecord {
            device: DeviceId(2),
            sid: None,
            addr: 0x1000,
            len: 64,
            kind: AccessKind::Write,
        }));
        assert_eq!(ic.pending(), 2);
        assert!(matches!(
            ic.take_next(),
            Some(MonitorInterrupt::SidMissing {
                device: DeviceId(1)
            })
        ));
        assert!(matches!(
            ic.take_next(),
            Some(MonitorInterrupt::Violation(_))
        ));
        assert_eq!(ic.take_next(), None);
        assert_eq!(ic.delivered(), 2);
    }
}
