//! S-mode entry delegation (§6.3).
//!
//! IOPMP entries are priority-ordered and MMIO-addressable, so the monitor
//! can *delegate* the low-priority tail of a device's memory-domain window
//! to the S-mode kernel: the kernel then drives `dma_map`/`dma_unmap`
//! directly against hardware entries (fast, no monitor call), while
//! higher-priority entries installed and **locked** by M-mode regulate what
//! those delegated entries can ever authorise — a delegated allow entry is
//! shadowed wherever a locked guard denies.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::error::{Result, SiopmpError};
use siopmp::ids::{EntryIndex, MdIndex, SourceId};
use siopmp::Siopmp;

/// A window of hardware entries the kernel may program directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelegatedWindow {
    /// The memory domain the window belongs to.
    pub md: MdIndex,
    /// First delegated entry index (inclusive).
    pub start: u32,
    /// One past the last delegated entry index.
    pub end: u32,
}

impl DelegatedWindow {
    /// Number of delegated entry slots.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `idx` lies inside the window.
    pub fn contains(&self, idx: EntryIndex) -> bool {
        idx.0 >= self.start && idx.0 < self.end
    }
}

/// Creates a delegation: M-mode installs `guards` as locked, NO_PERMISSION
/// entries at the *head* (highest priority) of `md`'s window, and returns
/// the remaining tail as the kernel's delegated window.
///
/// # Errors
///
/// * [`SiopmpError::MdFull`] when the domain cannot hold the guards plus at
///   least one delegated slot;
/// * table errors for invalid guard ranges.
pub fn delegate_window(
    unit: &mut Siopmp,
    md: MdIndex,
    guards: &[(u64, u64)],
) -> Result<DelegatedWindow> {
    let (start, end) = unit.md_window(md)?;
    if (end - start) as usize <= guards.len() {
        return Err(SiopmpError::MdFull(md));
    }
    for (i, (base, len)) in guards.iter().enumerate() {
        let idx = EntryIndex(start + i as u32);
        // Guards must occupy the head slots; refuse if something is there.
        if unit.entry(idx)?.is_some() {
            return Err(SiopmpError::Locked("guard head slot already occupied"));
        }
        unit.set_entry(
            idx,
            Some(IopmpEntry::new_locked(
                AddressRange::new(*base, *len)?,
                Permissions::none(),
            )),
        )?;
    }
    Ok(DelegatedWindow {
        md,
        start: start + guards.len() as u32,
        end,
    })
}

/// Kernel-side `dma_map`: installs an allow entry in the first free
/// delegated slot. Returns the entry index and the MMIO cycle cost.
///
/// # Errors
///
/// [`SiopmpError::MdFull`] when the window has no free slot.
pub fn kernel_map(
    unit: &mut Siopmp,
    window: DelegatedWindow,
    base: u64,
    len: u64,
    perms: Permissions,
) -> Result<(EntryIndex, u64)> {
    for j in window.start..window.end {
        let idx = EntryIndex(j);
        if unit.entry(idx)?.is_none() {
            unit.set_entry(
                idx,
                Some(IopmpEntry::new(AddressRange::new(base, len)?, perms)),
            )?;
            return Ok((idx, siopmp::atomic::ENTRY_WRITE_CYCLES));
        }
    }
    Err(SiopmpError::MdFull(window.md))
}

/// Kernel-side `dma_unmap`: clears a delegated entry under the per-SID
/// blocking protocol. Returns the cycle cost.
///
/// # Errors
///
/// * [`SiopmpError::EntryOutOfRange`] when `idx` is outside the delegated
///   window (the kernel cannot touch M-mode entries);
/// * hardware errors from the update.
pub fn kernel_unmap(
    unit: &mut Siopmp,
    window: DelegatedWindow,
    sid: SourceId,
    idx: EntryIndex,
) -> Result<u64> {
    if !window.contains(idx) {
        return Err(SiopmpError::EntryOutOfRange {
            index: idx,
            num_entries: window.len(),
        });
    }
    unit.modify_entries_atomically(sid, &[(idx, None)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::ids::DeviceId;
    use siopmp::request::{AccessKind, DmaRequest};
    use siopmp::SiopmpConfig;

    fn setup() -> (Siopmp, SourceId, DelegatedWindow) {
        let mut unit = Siopmp::build(SiopmpConfig::small(), None);
        let sid = unit.map_hot_device(DeviceId(1)).unwrap();
        unit.associate_sid_with_md(sid, MdIndex(0)).unwrap();
        // One guard protecting the monitor's own range.
        let window = delegate_window(&mut unit, MdIndex(0), &[(0xFF00_0000, 0x10_0000)]).unwrap();
        (unit, sid, window)
    }

    #[test]
    fn kernel_map_creates_working_entry() {
        let (mut unit, _sid, window) = setup();
        let (idx, cycles) =
            kernel_map(&mut unit, window, 0x1000, 0x100, Permissions::rw()).unwrap();
        assert!(window.contains(idx));
        assert_eq!(cycles, 14);
        assert!(unit
            .check(&DmaRequest::new(DeviceId(1), AccessKind::Read, 0x1000, 8))
            .is_allowed());
    }

    #[test]
    fn guards_shadow_delegated_entries() {
        let (mut unit, _sid, window) = setup();
        // The kernel tries to open the monitor's memory through its
        // delegated slot: the locked guard wins by priority.
        kernel_map(&mut unit, window, 0xFF00_0000, 0x1000, Permissions::rw()).unwrap();
        assert!(unit
            .check(&DmaRequest::new(
                DeviceId(1),
                AccessKind::Read,
                0xFF00_0100,
                8
            ))
            .is_denied());
    }

    #[test]
    fn kernel_cannot_touch_guard_slots() {
        let (mut unit, sid, window) = setup();
        let guard_idx = EntryIndex(window.start - 1);
        assert!(kernel_unmap(&mut unit, window, sid, guard_idx).is_err());
        // Even a direct write to the guard slot fails: it is locked.
        assert!(unit.set_entry(guard_idx, None).is_err());
    }

    #[test]
    fn kernel_unmap_closes_access() {
        let (mut unit, sid, window) = setup();
        let (idx, _) = kernel_map(&mut unit, window, 0x1000, 0x100, Permissions::rw()).unwrap();
        let cycles = kernel_unmap(&mut unit, window, sid, idx).unwrap();
        assert_eq!(cycles, 49);
        assert!(unit
            .check(&DmaRequest::new(DeviceId(1), AccessKind::Read, 0x1000, 8))
            .is_denied());
    }

    #[test]
    fn window_exhaustion_reported() {
        let (mut unit, _sid, window) = setup();
        let mut count = 0;
        loop {
            match kernel_map(
                &mut unit,
                window,
                0x1_0000 + count * 0x1000,
                0x100,
                Permissions::rw(),
            ) {
                Ok(_) => count += 1,
                Err(SiopmpError::MdFull(_)) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(count, window.len() as u64);
    }

    #[test]
    fn delegation_requires_room_for_guards() {
        let mut unit = Siopmp::build(SiopmpConfig::small(), None);
        // MD0's window is 4 entries in the small config; 4 guards leave no
        // delegated slot.
        let guards: Vec<(u64, u64)> = (0..4).map(|i| (0x1000 * i, 0x100)).collect();
        assert!(matches!(
            delegate_window(&mut unit, MdIndex(0), &guards),
            Err(SiopmpError::MdFull(_))
        ));
    }
}
