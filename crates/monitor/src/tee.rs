//! TEE lifecycle bookkeeping.

use std::collections::HashMap;

use crate::cap::CapId;
use crate::ownership::EntityId;
use siopmp::ids::{DeviceId, MdIndex, SourceId};

/// Handle to a TEE instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TeeId(pub u32);

impl core::fmt::Display for TeeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "tee#{}", self.0)
    }
}

impl TeeId {
    /// The ownership-table entity corresponding to this TEE.
    pub fn entity(self) -> EntityId {
        EntityId::Tee(self.0)
    }
}

/// Per-device binding inside a TEE: the device, its SID (when hot), its
/// memory domain, and the entry indices currently installed for it.
#[derive(Debug, Clone)]
pub struct DeviceBinding {
    /// The bound device.
    pub device: DeviceId,
    /// Its hot SID, or `None` while registered cold.
    pub sid: Option<SourceId>,
    /// The memory domain allocated to the device.
    pub md: MdIndex,
    /// Hardware entry indices installed for current mappings, keyed by the
    /// memory capability used for the mapping.
    pub mappings: HashMap<CapId, Vec<siopmp::ids::EntryIndex>>,
}

/// One TEE's state.
#[derive(Debug, Clone)]
pub struct Tee {
    /// The TEE's handle.
    pub id: TeeId,
    /// Capabilities the TEE has received (memory and devices).
    pub caps: Vec<CapId>,
    /// Device bindings established by `device_map`.
    pub devices: HashMap<DeviceId, DeviceBinding>,
}

/// Allocates TEE ids and tracks live TEEs.
#[derive(Debug, Clone, Default)]
pub struct TeeManager {
    tees: HashMap<TeeId, Tee>,
    next_id: u32,
}

impl TeeManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        TeeManager::default()
    }

    /// Number of live TEEs.
    pub fn count(&self) -> usize {
        self.tees.len()
    }

    /// Creates a TEE holding `caps`.
    pub fn create(&mut self, caps: Vec<CapId>) -> TeeId {
        let id = TeeId(self.next_id);
        self.next_id += 1;
        self.tees.insert(
            id,
            Tee {
                id,
                caps,
                devices: HashMap::new(),
            },
        );
        id
    }

    /// Destroys a TEE, returning its final state for teardown (capability
    /// revocation, entry clearing).
    pub fn destroy(&mut self, id: TeeId) -> Option<Tee> {
        self.tees.remove(&id)
    }

    /// Immutable access to a TEE.
    pub fn get(&self, id: TeeId) -> Option<&Tee> {
        self.tees.get(&id)
    }

    /// Mutable access to a TEE.
    pub fn get_mut(&mut self, id: TeeId) -> Option<&mut Tee> {
        self.tees.get_mut(&id)
    }

    /// Iterates over live TEEs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Tee> {
        let mut v: Vec<&Tee> = self.tees.values().collect();
        v.sort_by_key(|t| t.id);
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_assigns_unique_ids() {
        let mut m = TeeManager::new();
        let a = m.create(vec![]);
        let b = m.create(vec![]);
        assert_ne!(a, b);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn destroy_returns_state() {
        let mut m = TeeManager::new();
        let id = m.create(vec![CapId(7)]);
        let tee = m.destroy(id).unwrap();
        assert_eq!(tee.caps, vec![CapId(7)]);
        assert!(m.get(id).is_none());
        assert!(m.destroy(id).is_none());
    }

    #[test]
    fn entity_mapping() {
        assert_eq!(TeeId(4).entity(), EntityId::Tee(4));
        assert_eq!(TeeId(4).to_string(), "tee#4");
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut m = TeeManager::new();
        let a = m.create(vec![]);
        let b = m.create(vec![]);
        let ids: Vec<TeeId> = m.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![a, b]);
    }
}
