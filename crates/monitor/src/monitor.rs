//! The secure monitor: ownership-based interfaces over the sIOPMP hardware
//! (§5.4, Figure 9).
//!
//! Flow mirroring the paper's example:
//!
//! 1. at boot the monitor owns every capability ([`SecureMonitor::boot`]
//!    mints roots and hands the boot system what it is given);
//! 2. `create_tee(caps)` transfers device and memory capabilities from the
//!    boot system into a fresh TEE;
//! 3. `device_map(tee, cap_dev, cap_mem, perms)` installs IOPMP entries for
//!    the device, after validating that the TEE really owns both
//!    capabilities and that the requested range/permissions are covered by
//!    the memory capability;
//! 4. `device_unmap` clears the entries under the per-SID blocking
//!    protocol (fast and deterministic — the property Figure 13/15 relies
//!    on);
//! 5. interrupts from the sIOPMP unit (SID-missing, violations) are routed
//!    through [`SecureMonitor::handle_interrupts`].

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::error::SiopmpError;
use siopmp::ids::{DeviceId, EntryIndex, MdIndex};
use siopmp::mountable::MountableEntry;
use siopmp::quiesce::{ColdSwitchDrain, DrainConfig, DrainPoll};
use siopmp::telemetry::{Counter, Telemetry};
use siopmp::{CheckOutcome, Siopmp, SiopmpConfig};

/// Pre-resolved handles for the `monitor.*` metrics.
#[derive(Debug, Clone)]
struct MonitorCounters {
    tees_created: Counter,
    tees_destroyed: Counter,
    device_maps: Counter,
    device_unmaps: Counter,
    dma_checks: Counter,
    interrupts_handled: Counter,
    cycles_spent: Counter,
    drains_committed: Counter,
    drains_refused: Counter,
    measured_switches: Counter,
}

impl MonitorCounters {
    fn attach(t: &Telemetry) -> Self {
        MonitorCounters {
            tees_created: t.counter("monitor.tees_created"),
            tees_destroyed: t.counter("monitor.tees_destroyed"),
            device_maps: t.counter("monitor.device_maps"),
            device_unmaps: t.counter("monitor.device_unmaps"),
            dma_checks: t.counter("monitor.dma_checks"),
            interrupts_handled: t.counter("monitor.interrupts_handled"),
            cycles_spent: t.counter("monitor.cycles_spent"),
            drains_committed: t.counter("monitor.drains_committed"),
            drains_refused: t.counter("monitor.drains_refused"),
            measured_switches: t.counter("monitor.measured_switches"),
        }
    }
}

/// One measured cold-switch record: the attestation evidence that a
/// particular policy state was in force after a particular mount. The
/// records form a hash chain (`chain` folds the previous record's chain
/// with this record's device and post-switch policy fingerprint), so a
/// remote auditor holding the latest `chain` value can detect any
/// dropped, reordered or rewritten switch in the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchMeasurement {
    /// Position in the chain (0-based).
    pub seq: u64,
    /// The device the switch mounted at the eSID.
    pub device: DeviceId,
    /// [`Siopmp::policy_fingerprint`] of the post-switch state.
    pub policy_hash: u64,
    /// Running FNV-1a chain over `(prev_chain, device, policy_hash)`.
    pub chain: u64,
    /// Modelled cycle cost of the switch.
    pub cycles: u64,
}

/// Measured switch records kept in memory; older history is only
/// reachable through the chain value each retained record carries.
const MEASUREMENT_CAPACITY: usize = 1024;

use crate::cap::{CapId, Capability, MemPerms};
use crate::controllers::{InterruptController, MonitorInterrupt, PmpController};
use crate::ownership::{CapError, CapTable, EntityId};
use crate::tee::{DeviceBinding, TeeId, TeeManager};
use siopmp_verify::{analyze, CapabilityMap, DeviceGrants, MemoryGrant, Report, TeeRegion};

/// Errors surfaced by monitor calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// Capability-layer refusal (wrong owner, revoked, bad derivation).
    Cap(CapError),
    /// sIOPMP hardware refusal.
    Hw(SiopmpError),
    /// The named TEE does not exist.
    NoSuchTee(TeeId),
    /// The capability is of the wrong kind for the call.
    WrongCapKind(CapId),
    /// The requested range/permissions exceed the memory capability.
    OutsideCapability(CapId),
    /// The device is not bound to the TEE (device_map before create_tee
    /// transferred it, or after unbind).
    DeviceNotBound(DeviceId),
    /// No free memory domain to give the device.
    NoFreeMd,
    /// The pre-switch verifier rejected the cold switch (the post-switch
    /// state carried Error-severity findings), so no drain was started.
    SwitchRejected(DeviceId),
}

impl core::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MonitorError::Cap(e) => write!(f, "capability error: {e}"),
            MonitorError::Hw(e) => write!(f, "hardware error: {e}"),
            MonitorError::NoSuchTee(t) => write!(f, "{t} does not exist"),
            MonitorError::WrongCapKind(c) => write!(f, "{c} has the wrong kind"),
            MonitorError::OutsideCapability(c) => {
                write!(f, "request exceeds the scope of {c}")
            }
            MonitorError::DeviceNotBound(d) => write!(f, "{d} is not bound to the TEE"),
            MonitorError::NoFreeMd => write!(f, "no free memory domain"),
            MonitorError::SwitchRejected(d) => {
                write!(f, "pre-switch verification rejected mounting {d}")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<CapError> for MonitorError {
    fn from(e: CapError) -> Self {
        MonitorError::Cap(e)
    }
}

impl From<SiopmpError> for MonitorError {
    fn from(e: SiopmpError) -> Self {
        MonitorError::Hw(e)
    }
}

/// The secure monitor.
///
/// # Examples
///
/// ```
/// use siopmp_monitor::{SecureMonitor, MemPerms};
/// use siopmp::ids::DeviceId;
///
/// # fn main() -> Result<(), siopmp_monitor::MonitorError> {
/// let mut monitor = SecureMonitor::build(siopmp::SiopmpConfig::small(), None);
/// let mem = monitor.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
/// let dev = monitor.mint_device(DeviceId(0x10));
/// let tee = monitor.create_tee(vec![mem, dev])?;
/// monitor.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SecureMonitor {
    caps: CapTable,
    tees: TeeManager,
    siopmp: Siopmp,
    pmp: PmpController,
    irqs: InterruptController,
    /// Next hot memory domain to hand out (round-robin over hot MDs).
    next_md: u16,
    /// When set, a cold switch is committed only after the static analyzer
    /// clears the post-switch state of Error-severity findings.
    preswitch_verify: bool,
    telemetry: Telemetry,
    counters: MonitorCounters,
    /// Measured cold-switch records, oldest first (bounded ring).
    measurements: Vec<SwitchMeasurement>,
    /// Chain head: [`siopmp::canonical::FNV_OFFSET`] before any switch.
    measurement_chain: u64,
    /// Total switches measured (also the next record's `seq`).
    measurement_seq: u64,
}

impl SecureMonitor {
    /// Boots the monitor over a fresh sIOPMP unit, registering both the
    /// monitor's `monitor.*` metrics and the unit's `siopmp.*` metrics in
    /// `telemetry` — pass `None` for a private registry. The PMP guard
    /// over the extended IOPMP table is installed here (slot 0, §4.2).
    pub fn build(config: SiopmpConfig, telemetry: impl Into<Option<Telemetry>>) -> Self {
        let telemetry = telemetry.into().unwrap_or_else(Telemetry::new);
        let mut pmp = PmpController::new();
        // Protect the (model's) extended-table region from S/U mode.
        pmp.protect(0, EXT_TABLE_BASE, EXT_TABLE_LEN);
        SecureMonitor {
            caps: CapTable::new(),
            tees: TeeManager::new(),
            siopmp: Siopmp::build(config, telemetry.clone()),
            pmp,
            irqs: InterruptController::new(),
            next_md: 0,
            preswitch_verify: false,
            counters: MonitorCounters::attach(&telemetry),
            telemetry,
            measurements: Vec::new(),
            measurement_chain: siopmp::canonical::FNV_OFFSET,
            measurement_seq: 0,
        }
    }

    /// Boots the monitor with a private telemetry registry.
    #[deprecated(note = "use `SecureMonitor::build(config, None)`")]
    pub fn boot(config: SiopmpConfig) -> Self {
        Self::build(config, None)
    }

    /// Boots the monitor sharing the caller's `telemetry` registry.
    #[deprecated(note = "use `SecureMonitor::build(config, telemetry)`")]
    pub fn boot_with_telemetry(config: SiopmpConfig, telemetry: Telemetry) -> Self {
        Self::build(config, telemetry)
    }

    /// The monitor's telemetry registry (shared with its sIOPMP unit).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mints a root memory capability (boot-time resource enumeration) and
    /// hands it to the boot system.
    pub fn mint_memory(&mut self, base: u64, len: u64, perms: MemPerms) -> CapId {
        let id = self.caps.mint(Capability::Memory { base, len, perms });
        self.caps
            .transfer(EntityId::Monitor, id, EntityId::BootSystem)
            .expect("freshly minted cap is monitor-owned");
        id
    }

    /// Mints a root device capability and hands it to the boot system.
    pub fn mint_device(&mut self, device: DeviceId) -> CapId {
        let id = self.caps.mint(Capability::Device { device });
        self.caps
            .transfer(EntityId::Monitor, id, EntityId::BootSystem)
            .expect("freshly minted cap is monitor-owned");
        id
    }

    /// Read access to the capability table (for audits and tests).
    pub fn caps(&self) -> &CapTable {
        &self.caps
    }

    /// Read access to the sIOPMP unit.
    pub fn siopmp(&self) -> &Siopmp {
        &self.siopmp
    }

    /// Mutable access to the sIOPMP unit — exposed so full-system
    /// simulations can route DMA checks through the same unit the monitor
    /// configures.
    pub fn siopmp_mut(&mut self) -> &mut Siopmp {
        &mut self.siopmp
    }

    /// A shared, thread-safe checker handle over the monitor's sIOPMP
    /// unit: bus shards (or any other thread) can check DMA wait-free
    /// against the configuration this monitor publishes, while the monitor
    /// itself remains the only writer — the paper's split between the
    /// multi-ported checker data path and the M-mode control path.
    pub fn shared_checker(&self) -> siopmp::SharedSiopmp {
        self.siopmp.share()
    }

    /// Read access to the PMP controller.
    pub fn pmp(&self) -> &PmpController {
        &self.pmp
    }

    /// Total cycles the monitor has spent in configuration operations
    /// (the `monitor.cycles_spent` telemetry counter).
    pub fn cycles_spent(&self) -> u64 {
        self.counters.cycles_spent.get()
    }

    /// `Create_TEE`: transfers `caps` from the boot system into a new TEE
    /// (Figure 9). Device capabilities get the device registered with the
    /// sIOPMP unit (hot if a SID is free, cold otherwise) and a memory
    /// domain allocated.
    ///
    /// # Errors
    ///
    /// Capability-ownership errors; hardware errors from device
    /// registration. On error, already-transferred capabilities stay with
    /// the TEE (the caller can destroy it).
    pub fn create_tee(&mut self, caps: Vec<CapId>) -> Result<TeeId, MonitorError> {
        let tee = self.tees.create(caps.clone());
        for cap in &caps {
            self.caps
                .transfer(EntityId::BootSystem, *cap, tee.entity())?;
        }
        // Bind device capabilities.
        for cap in &caps {
            if let Some(device) = self.caps.capability(*cap)?.as_device() {
                self.bind_device(tee, device)?;
            }
        }
        self.counters.tees_created.inc();
        Ok(tee)
    }

    fn alloc_md(&mut self) -> Result<MdIndex, MonitorError> {
        let hot_mds = (self.siopmp.config().num_mds - 1) as u16;
        if self.next_md >= hot_mds {
            return Err(MonitorError::NoFreeMd);
        }
        let md = MdIndex(self.next_md);
        self.next_md += 1;
        Ok(md)
    }

    fn bind_device(&mut self, tee: TeeId, device: DeviceId) -> Result<(), MonitorError> {
        let md = self.alloc_md()?;
        let sid = match self.siopmp.map_hot_device(device) {
            Ok(sid) => {
                self.siopmp.associate_sid_with_md(sid, md)?;
                Some(sid)
            }
            Err(SiopmpError::HotSidsExhausted) => {
                self.siopmp.register_cold_device(
                    device,
                    MountableEntry {
                        domains: vec![md],
                        entries: vec![],
                    },
                )?;
                None
            }
            Err(e) => return Err(e.into()),
        };
        let t = self.tees.get_mut(tee).ok_or(MonitorError::NoSuchTee(tee))?;
        t.devices.insert(
            device,
            DeviceBinding {
                device,
                sid,
                md,
                mappings: std::collections::HashMap::new(),
            },
        );
        Ok(())
    }

    fn resolve_device_cap(&self, tee: TeeId, cap_dev: CapId) -> Result<DeviceId, MonitorError> {
        self.caps.check_owner(tee.entity(), cap_dev)?;
        self.caps
            .capability(cap_dev)?
            .as_device()
            .ok_or(MonitorError::WrongCapKind(cap_dev))
    }

    /// `Device_map`: installs an IOPMP entry letting `cap_dev`'s device
    /// access `[base, base+len)` with `perms`. The TEE must own both
    /// capabilities and the range/permissions must be covered by `cap_mem`.
    /// Returns the installed entry index.
    ///
    /// # Errors
    ///
    /// Ownership, coverage, and hardware errors.
    pub fn device_map(
        &mut self,
        tee: TeeId,
        cap_dev: CapId,
        cap_mem: CapId,
        base: u64,
        len: u64,
        perms: MemPerms,
    ) -> Result<EntryIndex, MonitorError> {
        let device = self.resolve_device_cap(tee, cap_dev)?;
        self.caps.check_owner(tee.entity(), cap_mem)?;
        if !self.caps.capability(cap_mem)?.covers(base, len, perms) {
            return Err(MonitorError::OutsideCapability(cap_mem));
        }
        let t = self.tees.get(tee).ok_or(MonitorError::NoSuchTee(tee))?;
        let binding = t
            .devices
            .get(&device)
            .ok_or(MonitorError::DeviceNotBound(device))?;
        let md = binding.md;
        let sid = binding.sid;
        let entry = IopmpEntry::new(
            AddressRange::new(base, len)?,
            Permissions::from_bits(perms.read, perms.write),
        );
        let idx = if sid.is_some() {
            self.siopmp.install_entry(md, entry)?
        } else {
            // Cold device: extend its mountable record instead.
            self.install_cold_entry(device, entry)?
        };
        self.counters
            .cycles_spent
            .add(siopmp::atomic::modification_cycles(1, true));
        self.counters.device_maps.inc();
        let t = self.tees.get_mut(tee).expect("checked above");
        t.devices
            .get_mut(&device)
            .expect("checked above")
            .mappings
            .entry(cap_mem)
            .or_default()
            .push(idx);
        Ok(idx)
    }

    fn install_cold_entry(
        &mut self,
        device: DeviceId,
        entry: IopmpEntry,
    ) -> Result<EntryIndex, MonitorError> {
        // Rewrite the extended-table record with the new entry appended.
        // The entry index returned is the position within the record; it
        // becomes a hardware index only while mounted.
        let unit = &mut self.siopmp;
        let was_mounted = unit.mounted_cold_device() == Some(device);
        // Take, extend, re-register.
        if !unit.is_cold(device) {
            return Err(MonitorError::DeviceNotBound(device));
        }
        let mut record = unit_extended_get(unit, device)?;
        let idx = EntryIndex(record.entries.len() as u32);
        record.entries.push(entry);
        unit_extended_put(unit, device, record);
        if was_mounted {
            // Force a reload so the hardware window reflects the new entry
            // set (`handle_sid_missing` would treat the already-mounted
            // device as a free no-op and skip the reload).
            unit.remount_cold_device(device)?;
        }
        Ok(idx)
    }

    /// `Device_unmap`: removes the entries installed for `(cap_dev,
    /// cap_mem)` under the per-SID blocking protocol. Returns the modelled
    /// cycle cost (block + per-entry writes, Figure 13).
    ///
    /// # Errors
    ///
    /// Ownership and hardware errors; unknown mappings are a no-op cost.
    pub fn device_unmap(
        &mut self,
        tee: TeeId,
        cap_dev: CapId,
        cap_mem: CapId,
    ) -> Result<u64, MonitorError> {
        let device = self.resolve_device_cap(tee, cap_dev)?;
        let t = self.tees.get_mut(tee).ok_or(MonitorError::NoSuchTee(tee))?;
        let binding = t
            .devices
            .get_mut(&device)
            .ok_or(MonitorError::DeviceNotBound(device))?;
        let Some(indices) = binding.mappings.remove(&cap_mem) else {
            return Ok(0);
        };
        let cycles = match binding.sid {
            Some(sid) => {
                let updates: Vec<(EntryIndex, Option<IopmpEntry>)> =
                    indices.into_iter().map(|i| (i, None)).collect();
                self.siopmp.modify_entries_atomically(sid, &updates)?
            }
            None => {
                // Cold device: rewrite the extended record without the
                // unmapped entries.
                let mut record = unit_extended_get(&mut self.siopmp, device)?;
                let drop: std::collections::HashSet<u32> = indices.iter().map(|i| i.0).collect();
                record.entries = record
                    .entries
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| !drop.contains(&(*i as u32)))
                    .map(|(_, e)| e)
                    .collect();
                let n = drop.len();
                let was_mounted = self.siopmp.mounted_cold_device() == Some(device);
                unit_extended_put(&mut self.siopmp, device, record);
                if was_mounted {
                    // Forced reload: the no-op fast path of
                    // `handle_sid_missing` must not skip this rewrite.
                    self.siopmp.remount_cold_device(device)?;
                }
                siopmp::atomic::modification_cycles(n, true)
            }
        };
        self.counters.cycles_spent.add(cycles);
        self.counters.device_unmaps.inc();
        Ok(cycles)
    }

    /// Destroys a TEE: revokes its capabilities and clears every entry it
    /// installed.
    ///
    /// # Errors
    ///
    /// [`MonitorError::NoSuchTee`].
    pub fn destroy_tee(&mut self, tee: TeeId) -> Result<(), MonitorError> {
        let state = self.tees.destroy(tee).ok_or(MonitorError::NoSuchTee(tee))?;
        for (_, binding) in state.devices {
            let indices: Vec<EntryIndex> = binding.mappings.into_values().flatten().collect();
            if let Some(sid) = binding.sid {
                let updates: Vec<(EntryIndex, Option<IopmpEntry>)> =
                    indices.into_iter().map(|i| (i, None)).collect();
                let cycles = self.siopmp.modify_entries_atomically(sid, &updates)?;
                self.counters.cycles_spent.add(cycles);
            }
        }
        for cap in state.caps {
            self.caps.revoke(EntityId::Monitor, cap)?;
        }
        self.counters.tees_destroyed.inc();
        Ok(())
    }

    /// Presents one DMA request to the sIOPMP unit and services any
    /// resulting interrupt inline (the full-system check path). Returns
    /// the final outcome after at most one cold-device switch.
    pub fn check_dma(&mut self, req: &siopmp::request::DmaRequest) -> CheckOutcome {
        self.counters.dma_checks.inc();
        match self.siopmp.check(req) {
            CheckOutcome::SidMissing { device } => {
                self.irqs.raise(MonitorInterrupt::SidMissing { device });
                self.handle_interrupts();
                self.siopmp.check(req)
            }
            CheckOutcome::Denied(record) => {
                self.irqs.raise(MonitorInterrupt::Violation(record));
                self.handle_interrupts();
                CheckOutcome::Denied(record)
            }
            other => other,
        }
    }

    /// Drains and services pending interrupts. Returns how many were
    /// handled.
    pub fn handle_interrupts(&mut self) -> usize {
        let mut handled = 0;
        while let Some(irq) = self.irqs.take_next() {
            match irq {
                MonitorInterrupt::SidMissing { device } => {
                    if self.preswitch_verify && !self.preswitch_allows(device) {
                        // The analyzer found an isolation violation in the
                        // post-switch state: leave the device unmounted.
                        // Its next access raises SID-missing again, so a
                        // repaired capability map unblocks it naturally.
                    } else if let Ok(report) = self.siopmp.handle_sid_missing(device) {
                        self.counters.cycles_spent.add(report.cycles);
                        self.record_switch_measurement(report.mounted, report.cycles);
                    }
                }
                MonitorInterrupt::Violation(_record) => {
                    // Recorded in the unit's violation log; a real monitor
                    // would notify the owning TEE here.
                }
            }
            handled += 1;
        }
        self.counters.interrupts_handled.add(handled as u64);
        handled
    }

    /// Violations the hardware has recorded (drains the unit's log).
    pub fn take_violations(&mut self) -> Vec<siopmp::violation::ViolationRecord> {
        self.siopmp.take_violations()
    }

    // ------------------------------------------------------------------
    // Static verification (siopmp-verify integration)
    // ------------------------------------------------------------------

    /// Enables or disables pre-switch verification: when on,
    /// [`SecureMonitor::handle_interrupts`] refuses to commit a cold
    /// switch whose post-switch table state the analyzer flags with an
    /// Error-severity finding (capability divergence or cross-SID
    /// overlap). Off by default — switches stay on the paper's fast path.
    pub fn set_preswitch_verify(&mut self, on: bool) {
        self.preswitch_verify = on;
    }

    /// Whether pre-switch verification is enabled.
    pub fn preswitch_verify(&self) -> bool {
        self.preswitch_verify
    }

    /// Exports the monitor's capability/ownership state as the plain-data
    /// map the analyzer consumes: per-device grants (the live memory
    /// capabilities referenced by each device's mappings — revoked ones
    /// drop out) and per-TEE owned memory regions. Deterministically
    /// ordered.
    pub fn capability_map(&self) -> CapabilityMap {
        let mut devices = Vec::new();
        let mut regions = Vec::new();
        for tee in self.tees.iter() {
            for cap in self.caps.owned_by(tee.id.entity()) {
                if let Ok(Capability::Memory { base, len, .. }) = self.caps.capability(cap) {
                    regions.push(TeeRegion {
                        tee: tee.id.0,
                        base,
                        len,
                    });
                }
            }
            for (device, binding) in &tee.devices {
                let mut grants = Vec::new();
                for cap_mem in binding.mappings.keys() {
                    // A revoked capability fails the lookup and drops out,
                    // which is exactly what turns a stale table grant into
                    // a divergence finding.
                    if let Ok(Capability::Memory { base, len, perms }) =
                        self.caps.capability(*cap_mem)
                    {
                        grants.push(MemoryGrant {
                            base,
                            len,
                            read: perms.read,
                            write: perms.write,
                        });
                    }
                }
                grants.sort_unstable_by_key(|g| (g.base, g.len));
                devices.push(DeviceGrants {
                    device: *device,
                    tee: tee.id.0,
                    grants,
                });
            }
        }
        devices.sort_unstable_by_key(|g| g.device);
        regions.sort_unstable_by_key(|r| (r.tee, r.base));
        CapabilityMap { devices, regions }
    }

    /// Runs the static analyzer over the live hardware state and the
    /// current capability map.
    pub fn verify_now(&self) -> Report {
        analyze(&self.siopmp, Some(&self.capability_map()))
    }

    /// Dry-runs the cold switch for `device` on a cloned unit and reports
    /// whether the post-switch state is free of Error-severity findings.
    /// A clone whose switch itself fails is approved — the real call will
    /// surface the hardware error through its own path.
    fn preswitch_allows(&self, device: DeviceId) -> bool {
        let mut shadow = self.siopmp.clone();
        if shadow.remount_cold_device(device).is_err() {
            return true;
        }
        !analyze(&shadow, Some(&self.capability_map())).has_errors()
    }

    // ------------------------------------------------------------------
    // Quiesced cold switching (drain protocol)
    // ------------------------------------------------------------------

    /// Starts a *quiesced* cold switch towards `device`: runs the
    /// pre-switch verifier (when enabled), prechecks the switch, and blocks
    /// the cold SID so no new access can be authorized through the cold
    /// window while the bus drains. Drive the returned machine with
    /// [`SecureMonitor::poll_cold_switch`] once per cycle.
    ///
    /// # Errors
    ///
    /// [`MonitorError::SwitchRejected`] when the verifier flags the
    /// post-switch state; hardware errors from the precheck (unknown
    /// device, record too large for the cold window). In every error case
    /// nothing is blocked and nothing is mounted.
    pub fn begin_cold_switch(
        &mut self,
        device: DeviceId,
        now: u64,
        config: DrainConfig,
    ) -> Result<ColdSwitchDrain, MonitorError> {
        if self.preswitch_verify && !self.preswitch_allows(device) {
            self.counters.drains_refused.inc();
            return Err(MonitorError::SwitchRejected(device));
        }
        Ok(ColdSwitchDrain::begin(
            &mut self.siopmp,
            device,
            now,
            config,
        )?)
    }

    /// Advances a drain started by [`SecureMonitor::begin_cold_switch`]
    /// with the caller's current in-flight count. Commits only at zero in
    /// flight; refuses when the abort grace runs out. Cycle costs of a
    /// committed switch land in `monitor.cycles_spent`, and terminal
    /// outcomes are counted in `monitor.drains_committed` /
    /// `monitor.drains_refused`.
    pub fn poll_cold_switch(
        &mut self,
        drain: &mut ColdSwitchDrain,
        in_flight: usize,
        now: u64,
    ) -> DrainPoll {
        let was_terminal = drain.is_terminal();
        let poll = drain.poll(&mut self.siopmp, in_flight, now);
        if !was_terminal {
            match poll {
                DrainPoll::Committed(report) => {
                    self.counters.cycles_spent.add(report.cycles);
                    self.counters.drains_committed.inc();
                    self.record_switch_measurement(report.mounted, report.cycles);
                }
                DrainPoll::Refused => self.counters.drains_refused.inc(),
                _ => {}
            }
        }
        poll
    }

    /// Appends a measured record for a just-committed cold switch: the
    /// post-switch [`Siopmp::policy_fingerprint`] folded into the running
    /// hash chain. Every commit path (interrupt-driven mounts and
    /// quiesced drains) lands here.
    fn record_switch_measurement(&mut self, device: DeviceId, cycles: u64) {
        use siopmp::canonical::fnv1a_extend;
        let policy_hash = self.siopmp.policy_fingerprint();
        let mut chain = fnv1a_extend(
            self.measurement_chain,
            &self.measurement_chain.to_le_bytes(),
        );
        chain = fnv1a_extend(chain, &device.0.to_le_bytes());
        chain = fnv1a_extend(chain, &policy_hash.to_le_bytes());
        let record = SwitchMeasurement {
            seq: self.measurement_seq,
            device,
            policy_hash,
            chain,
            cycles,
        };
        self.measurement_chain = chain;
        self.measurement_seq += 1;
        if self.measurements.len() == MEASUREMENT_CAPACITY {
            self.measurements.remove(0);
        }
        self.measurements.push(record);
        self.counters.measured_switches.inc();
    }

    /// The retained measured cold-switch records, oldest first.
    pub fn switch_measurements(&self) -> &[SwitchMeasurement] {
        &self.measurements
    }

    /// The most recent measured cold-switch record, if any switch has
    /// committed since boot.
    pub fn last_switch_measurement(&self) -> Option<&SwitchMeasurement> {
        self.measurements.last()
    }

    /// The current head of the measurement hash chain
    /// ([`siopmp::canonical::FNV_OFFSET`] before the first switch). This
    /// is the single value a remote auditor tracks to verify the full
    /// switch history.
    pub fn measurement_chain(&self) -> u64 {
        self.measurement_chain
    }

    /// Abandons a drain without mounting, releasing the quiesce block.
    pub fn cancel_cold_switch(&mut self, drain: ColdSwitchDrain) {
        let was_terminal = drain.is_terminal();
        drain.cancel(&mut self.siopmp);
        if !was_terminal {
            self.counters.drains_refused.inc();
        }
    }
}

/// Model address of the extended IOPMP table in protected memory.
pub const EXT_TABLE_BASE: u64 = 0xFF00_0000;
/// Model size of the extended IOPMP table region.
pub const EXT_TABLE_LEN: u64 = 0x10_0000;

// Small helpers: the core crate exposes the extended table only through
// register/remove; the monitor needs read-modify-write.
fn unit_extended_get(unit: &mut Siopmp, device: DeviceId) -> Result<MountableEntry, MonitorError> {
    // Remove and return; caller must put it back.
    unit.take_cold_record(device).map_err(MonitorError::Hw)
}

fn unit_extended_put(unit: &mut Siopmp, device: DeviceId, record: MountableEntry) {
    unit.put_cold_record(device, record);
}

#[cfg(test)]
mod tests {
    use super::*;
    use siopmp::request::{AccessKind, DmaRequest};

    fn booted() -> SecureMonitor {
        SecureMonitor::build(SiopmpConfig::small(), None)
    }

    #[test]
    fn boot_protects_extended_table() {
        let m = booted();
        assert!(!m.pmp().cpu_access_allowed(EXT_TABLE_BASE + 0x100, 8, true));
    }

    #[test]
    fn create_tee_transfers_ownership() {
        let mut m = booted();
        let mem = m.mint_memory(0x1000, 0x1000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        assert_eq!(m.caps().owner(mem).unwrap(), tee.entity());
        assert_eq!(m.caps().owner(dev).unwrap(), tee.entity());
        // Ownership chain: monitor -> boot system -> tee.
        assert_eq!(m.caps().chain(mem).unwrap().len(), 3);
    }

    #[test]
    fn device_map_installs_working_entry() {
        let mut m = booted();
        let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
            .unwrap();
        let out = m.check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Write,
            0x8000_0100,
            64,
        ));
        assert!(out.is_allowed());
        let out = m.check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Write,
            0x9000_0000,
            64,
        ));
        assert!(out.is_denied());
    }

    #[test]
    fn device_map_requires_capability_coverage() {
        let mut m = booted();
        let mem = m.mint_memory(0x8000_0000, 0x1000, MemPerms::ro());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        // Range escape.
        assert!(matches!(
            m.device_map(tee, dev, mem, 0x8000_0000, 0x2000, MemPerms::ro()),
            Err(MonitorError::OutsideCapability(_))
        ));
        // Permission escalation.
        assert!(matches!(
            m.device_map(tee, dev, mem, 0x8000_0000, 0x100, MemPerms::rw()),
            Err(MonitorError::OutsideCapability(_))
        ));
    }

    #[test]
    fn device_map_requires_ownership() {
        let mut m = booted();
        let mem = m.mint_memory(0x8000_0000, 0x1000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee_a = m.create_tee(vec![dev]).unwrap();
        let _tee_b = m.create_tee(vec![mem]).unwrap();
        // tee_a does not own the memory capability.
        assert!(matches!(
            m.device_map(tee_a, dev, mem, 0x8000_0000, 0x100, MemPerms::rw()),
            Err(MonitorError::Cap(CapError::NotOwner { .. }))
        ));
    }

    #[test]
    fn unmap_closes_access_quickly() {
        let mut m = booted();
        let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
            .unwrap();
        let cycles = m.device_unmap(tee, dev, mem).unwrap();
        // One entry cleared under blocking: 35 + 14 cycles.
        assert_eq!(cycles, 49);
        let out = m.check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Read,
            0x8000_0100,
            64,
        ));
        assert!(out.is_denied());
    }

    #[test]
    fn destroy_tee_revokes_and_clears() {
        let mut m = booted();
        let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
            .unwrap();
        m.destroy_tee(tee).unwrap();
        // Capability gone, hardware entry gone.
        assert!(m.caps().owner(mem).is_err());
        let out = m.check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Read,
            0x8000_0100,
            64,
        ));
        assert!(!out.is_allowed());
    }

    #[test]
    fn cold_devices_bind_when_sids_exhausted() {
        let mut cfg = SiopmpConfig::small();
        cfg.num_sids = 3; // 2 hot SIDs only
        let mut m = SecureMonitor::build(cfg, None);
        let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
        let mut devs = Vec::new();
        for d in 0..4u64 {
            devs.push(m.mint_device(DeviceId(d)));
        }
        let mut caps = vec![mem];
        caps.extend(devs.clone());
        let tee = m.create_tee(caps).unwrap();
        // Two devices got hot SIDs, two went cold.
        assert!(m.siopmp().is_hot(DeviceId(0)));
        assert!(m.siopmp().is_hot(DeviceId(1)));
        assert!(m.siopmp().is_cold(DeviceId(2)));
        assert!(m.siopmp().is_cold(DeviceId(3)));
        // Mapping through a cold device works via the extended table +
        // automatic mounting in check_dma.
        m.device_map(tee, devs[2], mem, 0x8000_2000, 0x100, MemPerms::rw())
            .unwrap();
        let out = m.check_dma(&DmaRequest::new(
            DeviceId(2),
            AccessKind::Read,
            0x8000_2000,
            64,
        ));
        assert!(out.is_allowed(), "{out:?}");
    }

    #[test]
    fn telemetry_spans_monitor_and_unit() {
        let t = Telemetry::new();
        let mut m = SecureMonitor::build(SiopmpConfig::small(), t.clone());
        let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
            .unwrap();
        m.check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Read,
            0x8000_0100,
            64,
        ));
        let snap = t.snapshot();
        assert_eq!(snap.counters["monitor.tees_created"], 1);
        assert_eq!(snap.counters["monitor.device_maps"], 1);
        assert_eq!(snap.counters["monitor.dma_checks"], 1);
        // The unit's own counters live in the same registry.
        assert_eq!(snap.counters["siopmp.checks"], 1);
        assert_eq!(snap.counters["siopmp.allowed"], 1);
        assert_eq!(snap.counters["monitor.cycles_spent"], m.cycles_spent());
    }

    #[test]
    fn capability_map_tracks_grants_and_regions() {
        let mut m = booted();
        let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
            .unwrap();
        let map = m.capability_map();
        assert_eq!(map.regions.len(), 1);
        assert_eq!(map.regions[0].base, 0x8000_0000);
        let grants = &map.grants_for(DeviceId(1)).unwrap().grants;
        assert_eq!(grants.len(), 1);
        assert!(grants[0].read && grants[0].write);
        // Everything the table grants is capability-backed.
        assert!(!m.verify_now().has_errors());
    }

    #[test]
    fn verify_now_flags_out_of_band_table_edits() {
        let mut m = booted();
        let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
            .unwrap();
        // Smuggle an entry past the capability layer, straight into the
        // device's memory domain.
        let md = m.tees.get(tee).unwrap().devices[&DeviceId(1)].md;
        m.siopmp_mut()
            .install_entry(
                md,
                IopmpEntry::new(
                    AddressRange::new(0xDEAD_0000, 0x1000).unwrap(),
                    Permissions::rw(),
                ),
            )
            .unwrap();
        let report = m.verify_now();
        assert!(report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == siopmp_verify::DiagnosticCode::CapabilityDivergence));
    }

    #[test]
    fn preswitch_verify_rejects_divergent_cold_switch() {
        let mut cfg = SiopmpConfig::small();
        cfg.num_sids = 2; // 1 hot SID: the second device goes cold
        let mut m = SecureMonitor::build(cfg, None);
        let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
        let d0 = m.mint_device(DeviceId(0));
        let d1 = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, d0, d1]).unwrap();
        assert!(m.siopmp().is_cold(DeviceId(1)));
        m.device_map(tee, d1, mem, 0x8000_2000, 0x100, MemPerms::rw())
            .unwrap();

        // Poison the cold record behind the capability layer's back: an
        // entry granting rw over memory no capability covers.
        let mut record = m.siopmp_mut().take_cold_record(DeviceId(1)).unwrap();
        record.entries.push(IopmpEntry::new(
            AddressRange::new(0xDEAD_0000, 0x1000).unwrap(),
            Permissions::rw(),
        ));
        m.siopmp_mut().put_cold_record(DeviceId(1), record);

        // With verification on, the switch is refused: the DMA keeps
        // reporting SID-missing instead of being served.
        m.set_preswitch_verify(true);
        let probe = DmaRequest::new(DeviceId(1), AccessKind::Read, 0x8000_2000, 64);
        let out = m.check_dma(&probe);
        assert!(
            matches!(out, CheckOutcome::SidMissing { .. }),
            "switch must be rejected, got {out:?}"
        );
        assert_eq!(m.siopmp().mounted_cold_device(), None);

        // With verification off, the (divergent) switch goes through —
        // the paper's unchecked fast path.
        m.set_preswitch_verify(false);
        assert!(m.check_dma(&probe).is_allowed());
        assert_eq!(m.siopmp().mounted_cold_device(), Some(DeviceId(1)));
    }

    #[test]
    fn preswitch_verify_passes_clean_cold_switch() {
        let mut cfg = SiopmpConfig::small();
        cfg.num_sids = 2;
        let mut m = SecureMonitor::build(cfg, None);
        let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
        let d0 = m.mint_device(DeviceId(0));
        let d1 = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, d0, d1]).unwrap();
        m.device_map(tee, d1, mem, 0x8000_2000, 0x100, MemPerms::rw())
            .unwrap();
        m.set_preswitch_verify(true);
        let out = m.check_dma(&DmaRequest::new(
            DeviceId(1),
            AccessKind::Read,
            0x8000_2000,
            64,
        ));
        assert!(out.is_allowed(), "{out:?}");
        assert_eq!(m.siopmp().mounted_cold_device(), Some(DeviceId(1)));
    }

    /// Monitor with one hot device (0) and one cold device (1) mapped over
    /// `[0x8000_2000, +0x100)`.
    fn with_cold_device() -> SecureMonitor {
        let mut cfg = SiopmpConfig::small();
        cfg.num_sids = 2; // 1 hot SID: the second device goes cold
        let mut m = SecureMonitor::build(cfg, None);
        let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
        let d0 = m.mint_device(DeviceId(0));
        let d1 = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, d0, d1]).unwrap();
        m.device_map(tee, d1, mem, 0x8000_2000, 0x100, MemPerms::rw())
            .unwrap();
        m
    }

    #[test]
    fn quiesced_switch_commits_only_after_drain() {
        let t = Telemetry::new();
        let mut cfg = SiopmpConfig::small();
        cfg.num_sids = 2;
        let mut m = SecureMonitor::build(cfg, t.clone());
        let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
        let d0 = m.mint_device(DeviceId(0));
        let d1 = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, d0, d1]).unwrap();
        m.device_map(tee, d1, mem, 0x8000_2000, 0x100, MemPerms::rw())
            .unwrap();

        let mut drain = m
            .begin_cold_switch(DeviceId(1), 0, siopmp::quiesce::DrainConfig::default())
            .unwrap();
        // Two bursts still in flight: nothing mounts.
        for now in 1..4 {
            assert!(matches!(
                m.poll_cold_switch(&mut drain, 2, now),
                DrainPoll::Draining { in_flight: 2 }
            ));
            assert_eq!(m.siopmp().mounted_cold_device(), None);
        }
        // Drained: commit, and the switch cycles are accounted.
        let before = m.cycles_spent();
        assert!(matches!(
            m.poll_cold_switch(&mut drain, 0, 4),
            DrainPoll::Committed(_)
        ));
        assert_eq!(m.siopmp().mounted_cold_device(), Some(DeviceId(1)));
        assert!(m.cycles_spent() > before);
        assert_eq!(t.snapshot().counters["monitor.drains_committed"], 1);
    }

    #[test]
    fn committed_switches_append_measured_records_to_the_chain() {
        let t = Telemetry::new();
        let mut cfg = SiopmpConfig::small();
        cfg.num_sids = 2;
        let mut m = SecureMonitor::build(cfg, t.clone());
        let mem = m.mint_memory(0x8000_0000, 0x100_0000, MemPerms::rw());
        let d0 = m.mint_device(DeviceId(0));
        let d1 = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, d0, d1]).unwrap();
        m.device_map(tee, d1, mem, 0x8000_2000, 0x100, MemPerms::rw())
            .unwrap();
        assert_eq!(m.switch_measurements(), &[]);
        assert_eq!(m.measurement_chain(), siopmp::canonical::FNV_OFFSET);

        // Interrupt-driven mount (check_dma raises SID-missing, the
        // monitor mounts): one measured record.
        assert!(m
            .check_dma(&DmaRequest::new(
                DeviceId(1),
                AccessKind::Read,
                0x8000_2000,
                64
            ))
            .is_allowed());
        assert_eq!(m.switch_measurements().len(), 1);
        let first = *m.last_switch_measurement().unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(first.device, DeviceId(1));
        assert_eq!(first.policy_hash, m.siopmp().policy_fingerprint());
        assert_eq!(first.chain, m.measurement_chain());
        assert_ne!(first.chain, siopmp::canonical::FNV_OFFSET);

        // Quiesced drain commit: the chain extends, seq advances, and
        // the record measures the (unchanged no-op remount) state.
        let mut drain = m
            .begin_cold_switch(DeviceId(1), 10, siopmp::quiesce::DrainConfig::default())
            .unwrap();
        assert!(matches!(
            m.poll_cold_switch(&mut drain, 0, 11),
            DrainPoll::Committed(_)
        ));
        assert_eq!(m.switch_measurements().len(), 2);
        let second = *m.last_switch_measurement().unwrap();
        assert_eq!(second.seq, 1);
        assert_ne!(second.chain, first.chain, "chain must advance");
        assert_eq!(
            t.snapshot().counters["monitor.measured_switches"],
            2,
            "both commit paths are measured"
        );
    }

    #[test]
    fn quiesced_switch_refuses_when_traffic_never_drains() {
        let mut m = with_cold_device();
        let cfg = siopmp::quiesce::DrainConfig {
            timeout_cycles: 8,
            abort_grace_cycles: 4,
        };
        let mut drain = m.begin_cold_switch(DeviceId(1), 0, cfg).unwrap();
        assert!(matches!(
            m.poll_cold_switch(&mut drain, 1, 8),
            DrainPoll::AbortRequested { in_flight: 1 }
        ));
        assert_eq!(m.poll_cold_switch(&mut drain, 1, 12), DrainPoll::Refused);
        // Refused: nothing mounted, quiesce block released.
        assert_eq!(m.siopmp().mounted_cold_device(), None);
        assert!(!m.siopmp().is_sid_blocked(m.siopmp().config().cold_sid()));
    }

    #[test]
    fn preswitch_verify_rejects_quiesced_switch_up_front() {
        let mut m = with_cold_device();
        let mut record = m.siopmp_mut().take_cold_record(DeviceId(1)).unwrap();
        record.entries.push(IopmpEntry::new(
            AddressRange::new(0xDEAD_0000, 0x1000).unwrap(),
            Permissions::rw(),
        ));
        m.siopmp_mut().put_cold_record(DeviceId(1), record);
        m.set_preswitch_verify(true);
        assert!(matches!(
            m.begin_cold_switch(DeviceId(1), 0, siopmp::quiesce::DrainConfig::default()),
            Err(MonitorError::SwitchRejected(DeviceId(1)))
        ));
        // Nothing blocked, nothing mounted.
        assert!(!m.siopmp().is_sid_blocked(m.siopmp().config().cold_sid()));
        assert_eq!(m.siopmp().mounted_cold_device(), None);
    }

    #[test]
    fn cancel_cold_switch_releases_quiesce_block() {
        let mut m = with_cold_device();
        let drain = m
            .begin_cold_switch(DeviceId(1), 0, siopmp::quiesce::DrainConfig::default())
            .unwrap();
        assert!(m.siopmp().is_sid_blocked(m.siopmp().config().cold_sid()));
        m.cancel_cold_switch(drain);
        assert!(!m.siopmp().is_sid_blocked(m.siopmp().config().cold_sid()));
        assert_eq!(m.siopmp().mounted_cold_device(), None);
    }

    #[test]
    fn cold_remount_reloads_extended_record_edits() {
        let mut m = with_cold_device();
        // Mount device 1, then map a second region while it is mounted: the
        // monitor must force-reload the window even though the device is
        // already mounted (the no-op remount fast path must not swallow it).
        let probe1 = DmaRequest::new(DeviceId(1), AccessKind::Read, 0x8000_2000, 64);
        assert!(m.check_dma(&probe1).is_allowed());
        assert_eq!(m.siopmp().mounted_cold_device(), Some(DeviceId(1)));
        let tee = m.tees.iter().next().unwrap().id;
        let (dev_cap, mem_cap) = {
            let caps: Vec<CapId> = m.caps.owned_by(tee.entity());
            let dev = caps
                .iter()
                .copied()
                .find(|c| m.caps.capability(*c).unwrap().as_device() == Some(DeviceId(1)))
                .unwrap();
            let mem = caps
                .iter()
                .copied()
                .find(|c| m.caps.capability(*c).unwrap().as_device().is_none())
                .unwrap();
            (dev, mem)
        };
        m.device_map(tee, dev_cap, mem_cap, 0x8000_4000, 0x100, MemPerms::rw())
            .unwrap();
        let probe2 = DmaRequest::new(DeviceId(1), AccessKind::Read, 0x8000_4000, 64);
        assert!(m.check_dma(&probe2).is_allowed(), "window must be reloaded");
        // And unmapping while mounted closes access again (both mappings
        // ride the same memory capability, so both go).
        m.device_unmap(tee, dev_cap, mem_cap).unwrap();
        assert!(m.check_dma(&probe2).is_denied());
        assert!(m.check_dma(&probe1).is_denied());
    }

    #[test]
    fn violations_are_logged() {
        let mut m = booted();
        let out = m.check_dma(&DmaRequest::new(DeviceId(9), AccessKind::Write, 0x0, 64));
        assert!(out.is_denied());
        let v = m.take_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].device, DeviceId(9));
    }

    #[test]
    fn shared_checker_tracks_monitor_reconfiguration() {
        let mut m = booted();
        let shared = m.shared_checker();
        let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
        let dev = m.mint_device(DeviceId(1));
        let tee = m.create_tee(vec![mem, dev]).unwrap();
        m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
            .unwrap();
        let probe = DmaRequest::new(DeviceId(1), AccessKind::Write, 0x8000_0100, 64);
        // The handle (taken before the mapping existed) sees the mapping...
        assert!(shared.check(&probe).is_allowed());
        // ...and its removal, publishing through the same unit the
        // monitor's own check path uses.
        m.device_unmap(tee, dev, mem).unwrap();
        assert!(shared.check(&probe).is_denied());
        assert_eq!(shared.check(&probe), m.check_dma(&probe));
    }
}
