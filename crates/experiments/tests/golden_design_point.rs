//! Golden differential test: the design-space explorer, evaluated at the
//! paper's calibrated configuration, must reproduce the figure-11 timing
//! and figure-14 area numbers the experiment modules print — byte for
//! byte, against a committed fixture.
//!
//! The fixture is the concatenation of `fig11::render()`,
//! `fig14::render()` and the explorer's single-point payload at
//! [`DesignPoint::paper`]. Regenerate after an intentional model change
//! with:
//!
//! ```text
//! BLESS=1 cargo test -p siopmp-experiments --test golden_design_point
//! ```

use siopmp::explore::{evaluate, DesignPoint, Sweep};
use siopmp_experiments::{fig11, fig14};
use siopmp_scenario::Explorer;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_design_point.txt"
);

/// The sweep holding exactly the paper's design point.
fn paper_sweep() -> Sweep {
    let p = DesignPoint::paper();
    Sweep {
        entries: vec![p.entries],
        cam_ways: vec![p.cam_ways],
        stages: vec![p.stages],
        cache_slots: vec![p.cache_slots],
        shards: vec![p.shards],
    }
}

/// Everything the fixture pins, regenerated from the live models.
fn golden() -> String {
    let outcome = Explorer::new(Some(1))
        .evaluate(&paper_sweep())
        .expect("single-point sweep is under the cap");
    format!(
        "{}\n{}\nExplorer at the paper design point\n{}\n",
        fig11::render(),
        fig14::render(),
        outcome.payload().pretty()
    )
}

#[test]
fn golden_design_point_matches_committed_fixture() {
    let want = golden();
    if std::env::var("BLESS").is_ok() {
        std::fs::write(FIXTURE, &want).expect("fixture writable");
    }
    let got = std::fs::read_to_string(FIXTURE)
        .expect("committed fixture missing — regenerate with BLESS=1");
    assert_eq!(
        got, want,
        "explorer/figure outputs drifted from the committed fixture; \
         if the model change is intentional, regenerate with BLESS=1"
    );
}

#[test]
fn explorer_area_is_fig14s_column_bitwise() {
    // The explorer's checker shares the area code path with the fig14
    // tree column: identical LUT term (no stage dependence), FF higher
    // by exactly the per-stage register cost. Anchored at fig14's
    // largest group (512 entries, its sweep's top).
    let entries = 512;
    let cost = evaluate(DesignPoint {
        entries,
        ..DesignPoint::paper()
    });
    let g = fig14::data()
        .into_iter()
        .find(|g| g.entries == entries)
        .expect("512 entries is a fig14 group");
    assert_eq!(cost.checker.lut_pct.to_bits(), g.lut_tree_pct.to_bits());
    let stage_ff = cost.checker.ff_pct - g.ff_tree_pct;
    let stages = f64::from(u32::from(DesignPoint::paper().stages));
    assert!(
        (stage_ff - 0.05 * (stages - 1.0)).abs() < 1e-12,
        "FF differential {stage_ff} is not the pipeline register cost"
    );
}

#[test]
fn explorer_timing_is_fig10s_analysis_bitwise() {
    let p = DesignPoint::paper();
    let cost = evaluate(p);
    let direct = siopmp::timing::analyze(p.checker(), p.entries);
    assert_eq!(
        cost.timing.achievable_mhz.to_bits(),
        direct.achievable_mhz.to_bits()
    );
    assert_eq!(
        cost.timing.critical_path_ns.to_bits(),
        direct.critical_path_ns.to_bits()
    );
    assert!(cost.timing.meets_platform_target);
}

#[test]
fn fig11_pipeline_differential_is_the_explorers_extra_cycles() {
    // Over fig11's 64-burst train, each extra pipeline stage adds one
    // cycle per burst: the 3pipe − Nopipe read differential equals the
    // paper checker's extra_cycles() × 64, tying the figure's simulated
    // bars to the cost model's pipeline term.
    let bars = fig11::data();
    let read = |label: &str| {
        bars.iter()
            .find(|b| b.label == label && b.scenario == "Read")
            .expect("fig11 bar present")
            .cycles
    };
    let differential = read("3pipe-BusError") - read("Nopipe-BusError");
    let extra = u64::from(DesignPoint::paper().checker().extra_cycles());
    assert_eq!(differential, extra * 64);
}
