//! # siopmp-experiments — regenerating the sIOPMP evaluation
//!
//! One module per table/figure of the paper's evaluation section (§6),
//! each exposing a structured `data()` function (used by tests and the
//! Criterion benches) and a `render()` function producing the text table
//! the `repro` binary prints.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table 1 — qualitative mechanism comparison |
//! | [`table2`] | Table 2 — platform/sIOPMP configurations |
//! | [`fig10`] | Figure 10 — achievable clock frequency vs. entries |
//! | [`fig11`] | Figure 11 — worst-case DMA burst latency |
//! | [`fig12`] | Figure 12 — maximum DMA throughput |
//! | [`fig13`] | Figure 13 — IOPMP modification latency |
//! | [`fig14`] | Figure 14 — hardware resource cost |
//! | [`fig15`] | Figure 15 — iperf network bandwidth |
//! | [`fig16`] | Figure 16 — memcached latency vs. QPS |
//! | [`fig17`] | Figure 17 — cold-device switching overhead |
//! | [`coldswitch`] | §6.3 — single cold-switch cost (341 cycles) |
//!
//! [`contention`] is bench support (the `contended_readers` scenario's
//! shared-checker workload), not a paper artifact, so it is absent from
//! [`ALL`].
//!
//! Run them all with `cargo run -p siopmp-experiments --bin repro`, or one
//! with `repro fig15`.

pub mod ablations;
pub mod coldswitch;
pub mod contention;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod iotlb_pressure;
pub mod lightload;
pub mod security;
pub mod table1;
pub mod table2;

/// Names of all experiments, in paper order.
pub const ALL: [&str; 15] = [
    "table1",
    "table2",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "coldswitch",
    "ablations",
    "lightload",
    "security",
    "iotlb",
];

/// Exercises a representative monitored system — TEE creation, a device
/// mapping, an allowed and a denied DMA, and a cold-device mount — against
/// one shared telemetry registry, and returns its snapshot. This is the
/// live-counter dump `repro --json` emits alongside the rendered tables:
/// it carries `monitor.*` and `siopmp.*` counters plus the
/// `siopmp.cold_switch_cycles` histogram.
pub fn telemetry_exercise() -> siopmp::telemetry::TelemetrySnapshot {
    use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
    use siopmp::ids::DeviceId;
    use siopmp::mountable::MountableEntry;
    use siopmp::request::{AccessKind, DmaRequest};
    use siopmp::telemetry::Telemetry;
    use siopmp::SiopmpConfig;
    use siopmp_monitor::{MemPerms, SecureMonitor};

    let telemetry = Telemetry::new();
    let mut m = SecureMonitor::build(SiopmpConfig::small(), telemetry.clone());
    let mem = m.mint_memory(0x8000_0000, 0x10_0000, MemPerms::rw());
    let dev = m.mint_device(DeviceId(1));
    let tee = m.create_tee(vec![mem, dev]).expect("fresh monitor");
    m.device_map(tee, dev, mem, 0x8000_0000, 0x1000, MemPerms::rw())
        .expect("capability covers the mapping");
    let allowed = m.check_dma(&DmaRequest::new(
        DeviceId(1),
        AccessKind::Read,
        0x8000_0100,
        64,
    ));
    assert!(allowed.is_allowed());
    m.check_dma(&DmaRequest::new(
        DeviceId(1),
        AccessKind::Write,
        0x9000_0000,
        64,
    ));
    // A cold device goes through the SID-missing interrupt + mount path.
    m.siopmp_mut()
        .register_cold_device(
            DeviceId(2),
            MountableEntry {
                domains: vec![],
                entries: vec![IopmpEntry::new(
                    AddressRange::new(0x20_0000, 0x1000).unwrap(),
                    Permissions::rw(),
                )],
            },
        )
        .expect("fresh unit accepts cold devices");
    let cold = m.check_dma(&DmaRequest::new(
        DeviceId(2),
        AccessKind::Read,
        0x20_0000,
        64,
    ));
    assert!(cold.is_allowed(), "cold device mounts transparently");
    telemetry.snapshot()
}

/// Drives a small bus simulation that exercises both refusal verdict
/// classes — a blocked (stalling) hot SID and an unmounted cold device
/// raising SID-missing — and returns the run report. This is the
/// `PolicyVerdict` breakdown `repro --json` serializes in its `bus`
/// section: the terminal bus statuses alone cannot distinguish a stall
/// from a missing mount, but the per-master report counts them
/// separately.
pub fn bus_exercise() -> siopmp_bus::SimReport {
    use siopmp_bus::{BurstKind, BusConfig, BusSim, MasterProgram, SiopmpPolicy};

    let mut sim = BusSim::build(
        BusConfig::default(),
        Box::new(SiopmpPolicy::new(bus_exercise_unit())),
        None,
    );
    sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x0, 3));
    sim.add_master(MasterProgram::uniform(2, BurstKind::Read, 0x0, 2));
    sim.run_to_completion(100_000)
}

/// Drives a pinned-seed fault storm — slave errors, dropped beats,
/// delayed grants, device resets and SID-block pulses against retrying
/// masters — and returns the run report. This is the `faults` section of
/// `repro --json`: its per-master `bursts_retried` / `retry_exhausted` /
/// `faults_injected` counters show the recovery machinery working on a
/// deterministic schedule (the seed is fixed, so the numbers are stable
/// across runs and machines).
pub fn faults_exercise() -> siopmp_bus::SimReport {
    use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
    use siopmp::ids::{DeviceId, MdIndex};
    use siopmp_bus::{
        BurstKind, BusConfig, BusSim, FaultPlan, FaultPlanConfig, MasterProgram, RetryPolicy,
        SiopmpPolicy,
    };

    let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), None);
    let mut sids = Vec::new();
    for (dev, md, base) in [(1u64, 0u16, 0x1_0000u64), (2, 1, 0x2_0000)] {
        let sid = unit.map_hot_device(DeviceId(dev)).expect("hot SIDs free");
        unit.associate_sid_with_md(sid, MdIndex(md))
            .expect("MD in range");
        unit.install_entry(
            MdIndex(md),
            IopmpEntry::new(
                AddressRange::new(base, 0x1000).expect("aligned range"),
                Permissions::rw(),
            ),
        )
        .expect("window has room");
        sids.push(sid);
    }
    let mut sim = BusSim::build(
        BusConfig::default(),
        Box::new(SiopmpPolicy::new(unit)),
        None,
    );
    let retry = RetryPolicy::bounded(3, 2);
    sim.add_master(
        MasterProgram::streaming(1, BurstKind::Read, 0x1_0000, 64, 8)
            .with_outstanding(2)
            .with_retry(retry),
    );
    sim.add_master(
        MasterProgram::streaming(2, BurstKind::Write, 0x2_0000, 64, 8)
            .with_outstanding(2)
            .with_retry(retry),
    );
    sim.set_fault_plan(FaultPlan::generate(
        7,
        &FaultPlanConfig {
            horizon: 200,
            budget: 16,
            masters: 2,
            block_sids: sids,
            cold_devices: vec![],
            churn_devices: vec![],
        },
    ));
    sim.run_to_completion(100_000)
}

/// Drives a two-domain sharded parallel simulation — each domain running
/// its own sIOPMP-policed shard with a local reader and a cross-domain
/// writer into the peer's window (authorised at both ends) — and returns
/// the merged report. This is the `parallel` section of `repro --json`;
/// `threads` picks the worker count (`--threads N`) and, by the engine's
/// determinism guarantee, never changes a byte of the output.
pub fn parallel_exercise(threads: usize) -> siopmp_bus::SimReport {
    use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
    use siopmp::ids::{DeviceId, MdIndex};
    use siopmp::telemetry::Telemetry;
    use siopmp_bus::parallel::{DomainSpec, ParallelSim};
    use siopmp_bus::{BurstKind, MasterProgram, SiopmpPolicy};

    const DOMAINS: usize = 2;
    let window = |domain: usize| 0x10_0000 * (domain as u64 + 1);
    let mut psim = ParallelSim::new(64, threads);
    for domain in 0..DOMAINS {
        let base = window(domain);
        let peer_base = window((domain + 1) % DOMAINS);
        let local = domain as u64 * 10 + 1;
        let cross = domain as u64 * 10 + 2;
        let peer_cross = ((domain + 1) % DOMAINS) as u64 * 10 + 2;
        let registry = Telemetry::new();
        let mut unit = siopmp::Siopmp::build(siopmp::SiopmpConfig::small(), registry.clone());
        for (dev, md, win) in [
            (local, 0u16, base),   // local reader over the home window
            (cross, 1, peer_base), // egress grant into the peer's window
            (peer_cross, 2, base), // ingress grant for the peer's writer
        ] {
            let sid = unit.map_hot_device(DeviceId(dev)).expect("hot SIDs free");
            unit.associate_sid_with_md(sid, MdIndex(md))
                .expect("MD in range");
            unit.install_entry(
                MdIndex(md),
                IopmpEntry::new(
                    AddressRange::new(win, 0x1000).expect("aligned range"),
                    Permissions::rw(),
                ),
            )
            .expect("window has room");
        }
        psim.add_domain(
            DomainSpec::for_policy(SiopmpPolicy::new(unit))
                .with_home_window(base, 0x10_0000)
                .with_telemetry(registry)
                .with_master(
                    MasterProgram::streaming(local, BurstKind::Read, base, 64, 6)
                        .with_outstanding(2),
                )
                .with_master(MasterProgram::streaming(
                    cross,
                    BurstKind::Write,
                    peer_base,
                    64,
                    3,
                )),
        );
    }
    psim.run(100_000)
}

/// The sIOPMP state [`bus_exercise`] drives traffic against: one blocked
/// hot SID (device 1) and one registered-but-unmounted cold device
/// (device 2). Split out so the lint-coverage tests can run the static
/// analyzer over exactly this configuration.
fn bus_exercise_unit() -> siopmp::Siopmp {
    use siopmp::ids::DeviceId;
    use siopmp::mountable::MountableEntry;
    use siopmp::SiopmpConfig;

    let mut unit = siopmp::Siopmp::build(SiopmpConfig::small(), None);
    let sid = unit
        .map_hot_device(DeviceId(1))
        .expect("fresh unit has hot SIDs");
    unit.block_sid(sid); // every burst from device 1 stalls
    unit.register_cold_device(
        DeviceId(2),
        MountableEntry {
            domains: vec![],
            entries: vec![],
        },
    )
    .expect("fresh unit accepts cold devices"); // device 2 raises SID-missing
    unit
}

/// Renders the experiment called `name`, or `None` for an unknown name.
pub fn render(name: &str) -> Option<String> {
    Some(match name {
        "table1" => table1::render(),
        "table2" => table2::render(),
        "fig10" => fig10::render(),
        "fig11" => fig11::render(),
        "fig12" => fig12::render(),
        "fig13" => fig13::render(),
        "fig14" => fig14::render(),
        "fig15" => fig15::render(),
        "fig16" => fig16::render(),
        "fig17" => fig17::render(),
        "coldswitch" => coldswitch::render(),
        "ablations" => ablations::render(),
        "lightload" => lightload::render(),
        "security" => security::render(),
        "iotlb" => iotlb_pressure::render(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_renders_nonempty() {
        for name in ALL {
            let out = render(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(out.len() > 50, "{name} output too small");
            assert!(out.contains('\n'));
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(render("fig99").is_none());
    }

    #[test]
    fn experiment_configs_lint_clean() {
        use siopmp::{Siopmp, SiopmpConfig};
        // Every configuration the experiments assemble must pass the
        // static analyzer without Error-severity findings.
        for (name, cfg) in [
            ("default", SiopmpConfig::default()),
            ("original-iopmp", SiopmpConfig::original_iopmp()),
            ("small", SiopmpConfig::small()),
        ] {
            let report = siopmp_verify::analyze(&Siopmp::build(cfg, None), None);
            assert!(!report.has_errors(), "{name}: {:?}", report.diagnostics());
        }
        let report = siopmp_verify::analyze(&bus_exercise_unit(), None);
        assert!(
            report.diagnostics().is_empty(),
            "bus exercise: {:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn bus_exercise_separates_verdict_classes() {
        let r = bus_exercise();
        assert!(r.completed);
        assert_eq!(r.total_stalled(), 3);
        assert_eq!(r.total_sid_missing(), 2);
        let text = r.to_json().pretty();
        assert!(text.contains("\"bursts_stalled\": 3"), "{text}");
        assert!(text.contains("\"bursts_sid_missing\": 2"), "{text}");
    }

    #[test]
    fn faults_exercise_reports_recovery_counters() {
        let r = faults_exercise();
        assert!(r.completed, "fault storm must converge");
        assert!(r.total_faults_injected() > 0, "plan must land faults");
        assert!(r.total_retried() > 0, "retries must be exercised");
        let text = r.to_json().pretty();
        assert!(text.contains("\"bursts_retried\""), "{text}");
        assert!(text.contains("\"retry_exhausted\""), "{text}");
        assert!(text.contains("\"faults_injected\""), "{text}");
        // Pinned seed: the storm is deterministic.
        assert_eq!(text, faults_exercise().to_json().pretty());
    }

    #[test]
    fn parallel_exercise_is_thread_count_invariant() {
        let want = parallel_exercise(1);
        assert!(want.completed, "the exercise must drain");
        // 2 domains × (local + cross + bridge): cross traffic reached both.
        assert_eq!(want.masters.len(), 6);
        for threads in [2, 4] {
            assert_eq!(
                parallel_exercise(threads).to_json().pretty(),
                want.to_json().pretty(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn telemetry_exercise_covers_hot_and_cold_paths() {
        let snap = telemetry_exercise();
        assert_eq!(snap.counters["monitor.tees_created"], 1);
        assert_eq!(snap.counters["monitor.device_maps"], 1);
        assert_eq!(snap.counters["monitor.dma_checks"], 3);
        assert_eq!(snap.counters["siopmp.cold_switches"], 1);
        assert_eq!(snap.counters["siopmp.violations"], 1);
        assert!(snap.histograms.contains_key("siopmp.cold_switch_cycles"));
    }
}
