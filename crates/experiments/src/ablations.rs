//! Ablation studies for the design choices the paper calls out but does
//! not sweep in a dedicated figure:
//!
//! * **tree arity** (§4.1): "we can adopt different tree structures to
//!   meet the different requirements for timing (binary tree) and area
//!   (N-ary tree)" — [`tree_arity`] sweeps arity 2..16 and reports both
//!   models;
//! * **checker placement** (Table 2): per-device checkers versus one
//!   centralized checker — [`placement`] measures the burst-latency and
//!   bandwidth cost of the shared-port arbitration;
//! * **hot-SID provisioning** (§7): "modern CPUs may support 128 cores and
//!   we may need 128 hot devices" — [`hot_sids`] sweeps the CAM size
//!   against a fixed working set and reports how many devices end up
//!   thrashing through the cold path.

use siopmp::area::estimate;
use siopmp::checker::CheckerKind;
use siopmp::config::Placement;
use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::DeviceId;
use siopmp::mountable::MountableEntry;
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::timing::analyze;
use siopmp::{CheckOutcome, Siopmp, SiopmpConfig};
use siopmp_bus::policy::AllowAll;
use siopmp_bus::{BurstKind, BusConfig, BusSim, MasterProgram};

/// One tree-arity design point at 1024 entries, 2 pipeline stages.
#[derive(Debug, Clone, Copy)]
pub struct ArityPoint {
    /// Reduction arity.
    pub arity: u8,
    /// Achievable clock (MHz).
    pub mhz: f64,
    /// LUT cost (% of SoC).
    pub lut_pct: f64,
    /// FF cost (% of SoC).
    pub ff_pct: f64,
}

/// Sweeps tree arity at the headline configuration (1024 entries, 2-pipe).
pub fn tree_arity() -> Vec<ArityPoint> {
    [2u8, 3, 4, 6, 8, 16]
        .into_iter()
        .map(|arity| {
            let kind = CheckerKind::MtChecker {
                stages: 2,
                tree_arity: arity,
            };
            let t = analyze(kind, 1024);
            let a = estimate(kind, 1024);
            ArityPoint {
                arity,
                mhz: t.achievable_mhz,
                lut_pct: a.lut_pct,
                ff_pct: a.ff_pct,
            }
        })
        .collect()
}

/// One placement design point.
#[derive(Debug, Clone, Copy)]
pub struct PlacementPoint {
    /// Where the checker sits.
    pub placement: Placement,
    /// 64-burst read latency (cycles).
    pub read_latency: u64,
    /// Two-reader bandwidth (bytes/cycle).
    pub bandwidth: f64,
}

/// Measures per-device vs centralized placement on the cycle simulator.
pub fn placement() -> Vec<PlacementPoint> {
    [Placement::PerDevice, Placement::Centralized]
        .into_iter()
        .map(|p| {
            let cfg = BusConfig::default().with_placement(p);
            let mut sim = BusSim::build(cfg.clone(), Box::new(AllowAll), None);
            sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x1000, 64));
            let read_latency = sim.run_to_completion(1_000_000).makespan();

            let mut sim = BusSim::build(cfg, Box::new(AllowAll), None);
            sim.add_master(MasterProgram::uniform(1, BurstKind::Read, 0x1000, 256));
            sim.add_master(MasterProgram::uniform(2, BurstKind::Read, 0x2000, 256));
            let bandwidth = sim.run_to_completion(1_000_000).bytes_per_cycle();
            PlacementPoint {
                placement: p,
                read_latency,
                bandwidth,
            }
        })
        .collect()
}

/// One hot-SID provisioning point.
#[derive(Debug, Clone, Copy)]
pub struct HotSidPoint {
    /// Hot SIDs provided by the hardware.
    pub hot_sids: usize,
    /// Concurrently active devices in the workload.
    pub active_devices: usize,
    /// Cold switches observed over the run.
    pub cold_switches: u64,
}

/// Sweeps the hot-SID budget against a fixed working set of 16 active
/// devices doing round-robin DMA. Underprovisioned CAMs thrash through the
/// cold path; once `hot_sids >= active_devices`, switching vanishes.
pub fn hot_sids() -> Vec<HotSidPoint> {
    const ACTIVE: usize = 16;
    const ROUNDS: usize = 30;
    [4usize, 8, 16, 32]
        .into_iter()
        .map(|hot| {
            let mut cfg = SiopmpConfig::small();
            cfg.num_sids = hot + 1;
            cfg.num_mds = 8;
            let mut unit = Siopmp::build(cfg, None);
            for d in 0..ACTIVE as u64 {
                unit.register_cold_device(
                    DeviceId(d),
                    MountableEntry {
                        domains: vec![],
                        entries: vec![IopmpEntry::new(
                            AddressRange::new(0x10_0000 * (d + 1), 0x1000).unwrap(),
                            Permissions::rw(),
                        )],
                    },
                )
                .unwrap();
            }
            // Promote as many as fit; the rest keep using the cold path.
            for d in 0..ACTIVE.min(hot) as u64 {
                // Promotion may evict another active device in tiny CAMs;
                // that is exactly the thrashing we measure.
                let _ = unit.promote_with_eviction(DeviceId(d));
            }
            for _ in 0..ROUNDS {
                for d in 0..ACTIVE as u64 {
                    let req =
                        DmaRequest::new(DeviceId(d), AccessKind::Read, 0x10_0000 * (d + 1), 64);
                    if let CheckOutcome::SidMissing { device } = unit.check(&req) {
                        unit.handle_sid_missing(device).unwrap();
                    }
                }
            }
            HotSidPoint {
                hot_sids: hot,
                active_devices: ACTIVE,
                cold_switches: unit.cold_switch_count(),
            }
        })
        .collect()
}

/// Renders all three ablations.
pub fn render() -> String {
    let mut out = String::from("Ablation 1: tree arity at 1024 entries, 2-pipe (timing vs area)\n");
    out.push_str("arity   MHz      LUT%    FF%\n");
    for p in tree_arity() {
        out.push_str(&format!(
            "{:<8}{:<9.1}{:<8.2}{:.2}\n",
            p.arity, p.mhz, p.lut_pct, p.ff_pct
        ));
    }
    out.push_str("\nAblation 2: checker placement (Table 2 axis)\n");
    out.push_str("placement     64-burst read latency   2-reader bandwidth\n");
    for p in placement() {
        out.push_str(&format!(
            "{:<17?}{:>12} cycles {:>16.2} B/c\n",
            p.placement, p.read_latency, p.bandwidth
        ));
    }
    out.push_str("\nAblation 3: hot-SID provisioning (16 active devices, 30 rounds)\n");
    out.push_str("hot SIDs   cold switches\n");
    for p in hot_sids() {
        out.push_str(&format!("{:<11}{}\n", p.hot_sids, p.cold_switches));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_trades_timing_for_area() {
        // The paper's §4.1 guidance: "binary tree for timing, N-ary tree
        // for area". Narrow trees must be at least as fast; wide trees
        // must be at least as small.
        let points = tree_arity();
        let binary = points.first().unwrap();
        let widest = points.last().unwrap();
        assert!(binary.mhz >= widest.mhz, "{} vs {}", binary.mhz, widest.mhz);
        assert!(
            widest.lut_pct < binary.lut_pct,
            "{} vs {}",
            widest.lut_pct,
            binary.lut_pct
        );
        // And every arity still beats the linear chain on both axes.
        use siopmp::timing::analyze;
        let linear = analyze(CheckerKind::Pipelined { stages: 2 }, 1024);
        for p in &points {
            assert!(p.mhz > linear.achievable_mhz, "arity {}", p.arity);
        }
    }

    #[test]
    fn centralized_placement_costs_latency_not_bandwidth() {
        let points = placement();
        let per_device = points
            .iter()
            .find(|p| p.placement == Placement::PerDevice)
            .unwrap();
        let centralized = points
            .iter()
            .find(|p| p.placement == Placement::Centralized)
            .unwrap();
        assert!(centralized.read_latency > per_device.read_latency);
        // Bandwidth loss is bounded (a few percent).
        assert!(centralized.bandwidth > 0.9 * per_device.bandwidth);
    }

    #[test]
    fn enough_hot_sids_eliminate_switching() {
        let points = hot_sids();
        // Monotone decrease in switching as the CAM grows.
        for w in points.windows(2) {
            assert!(w[1].cold_switches <= w[0].cold_switches);
        }
        let last = points.last().unwrap();
        assert!(last.hot_sids >= last.active_devices);
        assert_eq!(last.cold_switches, 0, "fully provisioned: no switching");
        assert!(points[0].cold_switches > 100, "underprovisioned: thrashing");
    }
}
