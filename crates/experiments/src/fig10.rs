//! Figure 10: achievable clock frequency for different IOPMP checkers as
//! the entry count grows.

use siopmp::checker::CheckerKind;
use siopmp::timing::{analyze, figure10_checkers, FIGURE10_ENTRIES};

/// One point of the figure: checker × entry count → MHz.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Checker variant.
    pub checker: CheckerKind,
    /// Total IOPMP entries.
    pub entries: usize,
    /// Achievable frequency in MHz (0 when unroutable).
    pub mhz: f64,
    /// Whether the design closes timing at all.
    pub routable: bool,
}

/// Computes the full sweep.
pub fn data() -> Vec<Point> {
    let mut points = Vec::new();
    for checker in figure10_checkers() {
        for entries in FIGURE10_ENTRIES {
            let r = analyze(checker, entries);
            points.push(Point {
                checker,
                entries,
                mhz: if r.routable { r.achievable_mhz } else { 0.0 },
                routable: r.routable,
            });
        }
    }
    points
}

/// Renders the figure as a table (rows = entry counts, columns = checkers).
pub fn render() -> String {
    let mut out = String::from("Figure 10: achievable clock frequency (MHz) vs. IOPMP entries\n");
    let checkers = figure10_checkers();
    out.push_str("entries ");
    for c in checkers {
        out.push_str(&format!("{:>12}", c.label()));
    }
    out.push('\n');
    for entries in FIGURE10_ENTRIES {
        out.push_str(&format!("{entries:<8}"));
        for c in checkers {
            let r = analyze(c, entries);
            if r.routable {
                out.push_str(&format!("{:>12.1}", r.achievable_mhz));
            } else {
                out.push_str(&format!("{:>12}", "FAIL"));
            }
        }
        out.push('\n');
    }
    out.push_str("(platform ceiling 60 MHz; FAIL = design does not pass timing analysis)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_combinations() {
        assert_eq!(data().len(), 4 * FIGURE10_ENTRIES.len());
    }

    #[test]
    fn paper_anchors_hold() {
        let points = data();
        let get = |label: &str, n: usize| {
            points
                .iter()
                .find(|p| p.checker.label() == label && p.entries == n)
                .copied()
                .unwrap()
        };
        // Baseline sustains 128, fails at 1024.
        assert_eq!(get("IOPMP", 128).mhz, 60.0);
        assert!(!get("IOPMP", 1024).routable);
        // 2pipe sustains 256.
        assert_eq!(get("2pipe", 256).mhz, 60.0);
        // 2pipe-tree sustains 512, slight dip at 1024.
        assert_eq!(get("2pipe-tree", 512).mhz, 60.0);
        let dip = get("2pipe-tree", 1024).mhz;
        assert!(dip < 60.0 && dip > 45.0, "{dip}");
        // 3pipe-tree sustains 1024.
        assert_eq!(get("3pipe-tree", 1024).mhz, 60.0);
    }

    #[test]
    fn render_marks_failures() {
        let t = render();
        assert!(t.contains("FAIL"));
        assert!(t.contains("3pipe-tree"));
    }
}
