//! §6.3 text anchor: a single cold-device switch costs 341 CPU cycles when
//! loading 8 IOPMP entries. Measured against the *real* unit: register a
//! cold device with 8 entries, trigger the SID-missing path, and read the
//! reported switch cost.

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::DeviceId;
use siopmp::mountable::MountableEntry;
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::{CheckOutcome, Siopmp, SiopmpConfig};

/// One measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Entries loaded by the switch.
    pub entries: usize,
    /// Cycles the switch took.
    pub cycles: u64,
}

/// Runs a cold switch loading `entries` entries on a fresh unit.
pub fn measure(entries: usize) -> Measurement {
    let mut cfg = SiopmpConfig::small();
    cfg.cold_md_entries = entries.max(1);
    cfg.num_entries = 64 + cfg.cold_md_entries;
    let mut unit = Siopmp::build(cfg, None);
    let dev = DeviceId(0xc01d);
    let record = MountableEntry {
        domains: vec![],
        entries: (0..entries)
            .map(|i| {
                IopmpEntry::new(
                    AddressRange::new(0x1_0000 + 0x1000 * i as u64, 0x100).unwrap(),
                    Permissions::rw(),
                )
            })
            .collect(),
    };
    unit.register_cold_device(dev, record).unwrap();
    let req = DmaRequest::new(dev, AccessKind::Read, 0x1_0000, 8);
    match unit.check(&req) {
        CheckOutcome::SidMissing { device } => {
            let report = unit.handle_sid_missing(device).unwrap();
            Measurement {
                entries,
                cycles: report.cycles,
            }
        }
        other => panic!("expected SID-missing, got {other:?}"),
    }
}

/// Renders the measurement sweep.
pub fn render() -> String {
    let mut out =
        String::from("Cold device switching cost (single switch, measured on the unit)\n");
    out.push_str("entries   cycles\n");
    for entries in [1usize, 4, 8, 16, 32] {
        let m = measure(entries);
        out.push_str(&format!("{:<10}{:>6}\n", m.entries, m.cycles));
    }
    out.push_str("(paper: the whole procedure takes 341 CPU cycles for 8 entries)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_entry_switch_costs_341_cycles() {
        assert_eq!(measure(8).cycles, 341);
    }

    #[test]
    fn cost_scales_linearly() {
        let a = measure(8).cycles;
        let b = measure(16).cycles;
        assert_eq!(b - a, 8 * siopmp::atomic::ENTRY_WRITE_CYCLES);
    }
}
