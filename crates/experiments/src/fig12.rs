//! Figure 12: maximum DMA throughput of two DMA nodes under read/write
//! scenarios and different checker depths.

use siopmp::checker::CheckerKind;
use siopmp_workloads::microbench::{dma_bandwidth, BandwidthScenario};

/// One measured bar.
#[derive(Debug, Clone, Copy)]
pub struct Bar {
    /// Checker label.
    pub checker: &'static str,
    /// Traffic mix.
    pub scenario: BandwidthScenario,
    /// Aggregate bytes per cycle.
    pub bytes_per_cycle: f64,
}

const CHECKERS: [(&str, CheckerKind); 3] = [
    ("Nopipe", CheckerKind::Linear),
    (
        "2pipe",
        CheckerKind::MtChecker {
            stages: 2,
            tree_arity: 2,
        },
    ),
    (
        "3pipe",
        CheckerKind::MtChecker {
            stages: 3,
            tree_arity: 2,
        },
    ),
];

const SCENARIOS: [BandwidthScenario; 3] = [
    BandwidthScenario::ReadWrite,
    BandwidthScenario::ReadRead,
    BandwidthScenario::WriteWrite,
];

/// Measures all bars.
pub fn data() -> Vec<Bar> {
    let mut bars = Vec::new();
    for (label, checker) in CHECKERS {
        for scenario in SCENARIOS {
            bars.push(Bar {
                checker: label,
                scenario,
                bytes_per_cycle: dma_bandwidth(scenario, checker),
            });
        }
    }
    bars
}

/// Renders the figure as a table.
pub fn render() -> String {
    let bars = data();
    let mut out = String::from("Figure 12: maximum DMA throughput, two nodes (bytes/cycle)\n");
    out.push_str(&format!(
        "{:<10}{:>12}{:>12}{:>13}\n",
        "checker", "Read-Write", "Read-Read", "Write-Write"
    ));
    for (label, _) in CHECKERS {
        let get = |s: BandwidthScenario| {
            bars.iter()
                .find(|b| b.checker == label && b.scenario == s)
                .map(|b| b.bytes_per_cycle)
                .unwrap_or(0.0)
        };
        out.push_str(&format!(
            "{:<10}{:>12.2}{:>12.2}{:>13.2}\n",
            label,
            get(BandwidthScenario::ReadWrite),
            get(BandwidthScenario::ReadRead),
            get(BandwidthScenario::WriteWrite)
        ));
    }
    out.push_str("(paper anchors: Read-Read 5.18 nopipe -> 5.08 2pipe; writes unaffected)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bpc(checker: &str, scenario: BandwidthScenario) -> f64 {
        data()
            .iter()
            .find(|b| b.checker == checker && b.scenario == scenario)
            .unwrap()
            .bytes_per_cycle
    }

    #[test]
    fn read_read_dips_slightly_with_pipeline() {
        let base = bpc("Nopipe", BandwidthScenario::ReadRead);
        let p2 = bpc("2pipe", BandwidthScenario::ReadRead);
        let p3 = bpc("3pipe", BandwidthScenario::ReadRead);
        assert!(base > p2 && p2 > p3);
        assert!(p2 / base > 0.93, "dip should be small: {base} -> {p2}");
        assert!((4.8..5.8).contains(&base), "{base}");
    }

    #[test]
    fn write_write_flat_across_depths() {
        let base = bpc("Nopipe", BandwidthScenario::WriteWrite);
        let p3 = bpc("3pipe", BandwidthScenario::WriteWrite);
        assert!((base - p3).abs() < 0.05, "{base} vs {p3}");
    }

    #[test]
    fn all_bars_positive_and_below_channel_limit() {
        for b in data() {
            assert!(b.bytes_per_cycle > 2.0, "{b:?}");
            // Two 8-byte channels: theoretical aggregate ceiling 16 B/c.
            assert!(b.bytes_per_cycle < 16.0, "{b:?}");
        }
    }
}
