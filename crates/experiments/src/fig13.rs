//! Figure 13: IOPMP modification latency — the blocking time for updating
//! different numbers of entries, with and without the atomic protocol.

use siopmp::atomic::modification_cycles;

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Bar label ("No-atomic", "Atomic-4", ...).
    pub label: String,
    /// Entries modified.
    pub entries: usize,
    /// Whether the per-SID blocking protocol wrapped the batch.
    pub atomic: bool,
    /// Total CPU cycles.
    pub cycles: u64,
}

/// The entry counts swept (paper: No-atomic, then Atomic-4..Atomic-128).
pub const ENTRY_COUNTS: [usize; 6] = [4, 8, 16, 32, 64, 128];

/// Computes all bars.
pub fn data() -> Vec<Bar> {
    let mut bars = vec![Bar {
        label: "No-atomic".to_string(),
        entries: 4,
        atomic: false,
        cycles: modification_cycles(4, false),
    }];
    for n in ENTRY_COUNTS {
        bars.push(Bar {
            label: format!("Atomic-{n}"),
            entries: n,
            atomic: true,
            cycles: modification_cycles(n, true),
        });
    }
    bars
}

/// Renders the figure as a table.
pub fn render() -> String {
    let mut out = String::from("Figure 13: IOPMP modification latency (CPU cycles)\n");
    for bar in data() {
        out.push_str(&format!("{:<12} {:>6}\n", bar.label, bar.cycles));
    }
    out.push_str(
        "(block handshake 35 cycles + 14 cycles per entry write;\n paper: 64 entries < 1000 cycles, vs. IOTLB invalidation up to milliseconds)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_match_paper_anchors() {
        let bars = data();
        let get = |label: &str| bars.iter().find(|b| b.label == label).unwrap().cycles;
        assert_eq!(get("No-atomic"), 56);
        assert_eq!(get("Atomic-4"), 91); // paper bar ~84
        assert_eq!(get("Atomic-8"), 147); // paper bar ~144
        assert!(get("Atomic-64") < 1000); // paper's explicit claim
        let a128 = get("Atomic-128");
        assert!((1700..1900).contains(&a128)); // paper bar ~1781
    }

    #[test]
    fn cost_is_linear_in_entries() {
        let bars = data();
        let atomic: Vec<&Bar> = bars.iter().filter(|b| b.atomic).collect();
        for w in atomic.windows(2) {
            let delta = w[1].cycles - w[0].cycles;
            let entries_delta = (w[1].entries - w[0].entries) as u64;
            assert_eq!(delta, entries_delta * 14);
        }
    }
}
