//! Table 1: qualitative comparison of I/O protection mechanisms.
//!
//! The security and flexibility columns are intrinsic properties of the
//! mechanisms; where possible they are *queried from the models* (attack
//! windows, granularity) rather than hard-coded, so the table stays honest
//! if a model changes.

use siopmp_iommu::fixed::{Damn, ShadowBuffer};
use siopmp_iommu::protection::{DmaProtection, InvalidationPolicy, Iommu};
use siopmp_iommu::swio::Swio;
use siopmp_workloads::{SiopmpMech, SiopmpPlusIommu};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Mechanism name.
    pub method: &'static str,
    /// Trusted-computing-base size class.
    pub tcb: &'static str,
    /// Attacks defended (read/write/replay).
    pub defended: &'static str,
    /// Heavy-load performance class (frequent map/unmap).
    pub heavy_load: &'static str,
    /// Light-load performance class.
    pub light_load: &'static str,
    /// Device count supported.
    pub devices: &'static str,
    /// Protected region count supported.
    pub regions: &'static str,
    /// Granularity — queried from the live mechanism model.
    pub granularity: &'static str,
    /// Allocation style.
    pub allocation: &'static str,
}

/// Builds the comparison rows, querying live mechanism models for the
/// verifiable columns.
pub fn data() -> Vec<Row> {
    // Exercise the real mechanisms to derive the verifiable properties.
    let mut strict = Iommu::build(InvalidationPolicy::Strict, None);
    let mut deferred = Iommu::build(InvalidationPolicy::Deferred { batch: 64 }, None);
    let gran = |sub: bool| if sub { "Sub-page" } else { "Page" };

    // The deferred attack window is observable fact, not an opinion.
    let (h, _) = deferred.map(1, 0x10_0000, 4096);
    deferred.unmap(h);
    let deferred_defends = if deferred.attack_window_pages() > 0 {
        "No"
    } else {
        "read/write/replay"
    };
    let (h, _) = strict.map(1, 0x10_0000, 4096);
    strict.unmap(h);
    let strict_defends = if strict.attack_window_pages() == 0 {
        "read/write/replay"
    } else {
        "No"
    };

    vec![
        Row {
            method: "IOMMU-strict",
            tcb: "Large",
            defended: strict_defends,
            heavy_load: "Bad",
            light_load: "Good",
            devices: "Unlimited",
            regions: "Unlimited",
            granularity: gran(strict.sub_page_granularity()),
            allocation: "Dynamic",
        },
        Row {
            method: "IOMMU-deferred",
            tcb: "Large",
            defended: deferred_defends,
            heavy_load: "Medium",
            light_load: "Good",
            devices: "Unlimited",
            regions: "Unlimited",
            granularity: gran(deferred.sub_page_granularity()),
            allocation: "Dynamic",
        },
        Row {
            method: "Shadow buffer",
            tcb: "Large",
            defended: "read/write/replay",
            heavy_load: "Medium",
            light_load: "Good",
            devices: "Unlimited",
            regions: "Unlimited",
            granularity: gran(ShadowBuffer::new().sub_page_granularity()),
            allocation: "Static",
        },
        Row {
            method: "DAMN",
            tcb: "Large",
            defended: "read/write/replay",
            heavy_load: "Good",
            light_load: "Good",
            devices: "Unlimited",
            regions: "Unlimited",
            granularity: gran(Damn::new().sub_page_granularity()),
            allocation: "Static",
        },
        Row {
            method: "IOPMP (orig.)",
            tcb: "Small",
            defended: "read/write/replay",
            heavy_load: "Good",
            light_load: "Good",
            devices: "Limited",
            regions: "Limited",
            granularity: "Sub-page",
            allocation: "Dynamic",
        },
        Row {
            method: "TrustZone",
            tcb: "Small",
            defended: "read/write/replay",
            heavy_load: "Good",
            light_load: "Good",
            devices: "Limited",
            regions: "Limited",
            granularity: "Sub-page",
            allocation: "Static",
        },
        Row {
            method: "SWIO (SEV)",
            tcb: "Small",
            defended: "read/write",
            heavy_load: "Bad",
            light_load: "Bad",
            devices: "None",
            regions: "Unlimited",
            granularity: gran(Swio::new().sub_page_granularity()),
            allocation: "Dynamic",
        },
        Row {
            method: "TEE-IO",
            tcb: "Small",
            defended: "read/write/replay",
            heavy_load: "Bad",
            light_load: "Good",
            devices: "Unlimited",
            regions: "Unlimited",
            granularity: "Page",
            allocation: "Dynamic",
        },
        Row {
            method: "sIOPMP",
            tcb: "Small",
            defended: "read/write/replay",
            heavy_load: "Good",
            light_load: "Good",
            devices: "Unlimited",
            regions: "Unlimited",
            granularity: gran(SiopmpMech::new().sub_page_granularity()),
            allocation: "Dynamic",
        },
        Row {
            method: "sIOPMP+IOMMU",
            tcb: "Small",
            defended: "read/write/replay",
            heavy_load: "Good",
            light_load: "Good",
            devices: "Unlimited",
            regions: "Unlimited",
            granularity: gran(SiopmpPlusIommu::new().sub_page_granularity()),
            allocation: "Dynamic",
        },
    ]
}

/// Renders the table.
pub fn render() -> String {
    let mut out = String::from(
        "Table 1: I/O protection mechanisms for TEE systems\n\
         method          tcb    defended           heavy   light  devices    regions    gran      alloc\n",
    );
    for r in data() {
        out.push_str(&format!(
            "{:<15} {:<6} {:<18} {:<7} {:<6} {:<10} {:<10} {:<9} {}\n",
            r.method,
            r.tcb,
            r.defended,
            r.heavy_load,
            r.light_load,
            r.devices,
            r.regions,
            r.granularity,
            r.allocation
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siopmp_row_dominates() {
        let rows = data();
        let s = rows.iter().find(|r| r.method == "sIOPMP").unwrap();
        assert_eq!(s.tcb, "Small");
        assert_eq!(s.defended, "read/write/replay");
        assert_eq!(s.heavy_load, "Good");
        assert_eq!(s.devices, "Unlimited");
        assert_eq!(s.granularity, "Sub-page");
    }

    #[test]
    fn deferred_row_reflects_observed_window() {
        let rows = data();
        let d = rows.iter().find(|r| r.method == "IOMMU-deferred").unwrap();
        assert_eq!(d.defended, "No", "the model's attack window must show here");
        let s = rows.iter().find(|r| r.method == "IOMMU-strict").unwrap();
        assert_eq!(s.defended, "read/write/replay");
    }

    #[test]
    fn page_based_mechanisms_report_page_granularity() {
        let rows = data();
        for m in ["IOMMU-strict", "IOMMU-deferred", "TEE-IO"] {
            assert_eq!(
                rows.iter().find(|r| r.method == m).unwrap().granularity,
                "Page",
                "{m}"
            );
        }
    }

    #[test]
    fn render_contains_all_methods() {
        let text = render();
        for r in data() {
            assert!(text.contains(r.method), "{} missing", r.method);
        }
    }
}
