//! Figure 11: worst-case pipeline latency — 64 consecutive DMA bursts
//! through the checker, for read/write and the violation paths, across
//! pipeline depths and violation mechanisms.

use siopmp::checker::CheckerKind;
use siopmp::violation::ViolationMode;
use siopmp_bus::BurstKind;
use siopmp_workloads::microbench::burst_latency;

/// One measured bar of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Bar {
    /// Configuration label ("Nopipe-BusError", "2pipe-Masking", ...).
    pub label: &'static str,
    /// Read / Write / Read-violation / Write-violation.
    pub scenario: &'static str,
    /// Total cycles between first request and last response.
    pub cycles: u64,
}

const CONFIGS: [(&str, CheckerKind, ViolationMode); 5] = [
    (
        "Nopipe-BusError",
        CheckerKind::Linear,
        ViolationMode::BusError,
    ),
    (
        "2pipe-BusError",
        CheckerKind::MtChecker {
            stages: 2,
            tree_arity: 2,
        },
        ViolationMode::BusError,
    ),
    (
        "3pipe-BusError",
        CheckerKind::MtChecker {
            stages: 3,
            tree_arity: 2,
        },
        ViolationMode::BusError,
    ),
    (
        "2pipe-Masking",
        CheckerKind::MtChecker {
            stages: 2,
            tree_arity: 2,
        },
        ViolationMode::PacketMasking,
    ),
    (
        "3pipe-Masking",
        CheckerKind::MtChecker {
            stages: 3,
            tree_arity: 2,
        },
        ViolationMode::PacketMasking,
    ),
];

/// Measures all bars.
pub fn data() -> Vec<Bar> {
    let mut bars = Vec::new();
    for (label, checker, mode) in CONFIGS {
        for (scenario, kind, violating) in [
            ("Read", BurstKind::Read, false),
            ("Write", BurstKind::Write, false),
            ("Read-violation", BurstKind::Read, true),
            ("Write-violation", BurstKind::Write, true),
        ] {
            bars.push(Bar {
                label,
                scenario,
                cycles: burst_latency(checker, mode, kind, violating),
            });
        }
    }
    bars
}

/// Renders the figure as a table.
pub fn render() -> String {
    let mut out =
        String::from("Figure 11: DMA burst latency, 64 bursts x 8 beats x 8 B (cycles)\n");
    out.push_str(&format!(
        "{:<18}{:>8}{:>8}{:>17}{:>17}\n",
        "config", "Read", "Write", "Read-violation", "Write-violation"
    ));
    let bars = data();
    for (label, _, _) in CONFIGS {
        let get = |scenario: &str| {
            bars.iter()
                .find(|b| b.label == label && b.scenario == scenario)
                .map(|b| b.cycles)
                .unwrap_or(0)
        };
        out.push_str(&format!(
            "{:<18}{:>8}{:>8}{:>17}{:>17}\n",
            label,
            get("Read"),
            get("Write"),
            get("Read-violation"),
            get("Write-violation")
        ));
    }
    out.push_str("(paper anchors: Read nopipe 1510, 2pipe-BusError 1575, 2pipe-Masking 1634;\n Write nopipe 1081, 2pipe 1175/1189)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles(label: &str, scenario: &str) -> u64 {
        data()
            .iter()
            .find(|b| b.label == label && b.scenario == scenario)
            .unwrap()
            .cycles
    }

    #[test]
    fn read_latency_ordering_matches_paper() {
        let base = cycles("Nopipe-BusError", "Read");
        let p2 = cycles("2pipe-BusError", "Read");
        let p2m = cycles("2pipe-Masking", "Read");
        let p3 = cycles("3pipe-BusError", "Read");
        assert!(base < p2 && p2 < p2m, "{base} {p2} {p2m}");
        assert!(p2 < p3);
        // Each pipeline stage ≈ +64 cycles over 64 bursts.
        assert_eq!(p2 - base, 64);
    }

    #[test]
    fn write_latency_below_read_everywhere() {
        for (label, _, _) in CONFIGS {
            assert!(cycles(label, "Write") < cycles(label, "Read"), "{label}");
        }
    }

    #[test]
    fn bus_error_violations_truncate_early() {
        assert!(cycles("2pipe-BusError", "Read-violation") * 3 < cycles("2pipe-BusError", "Read"));
        assert!(cycles("2pipe-Masking", "Read-violation") >= cycles("2pipe-BusError", "Read"));
    }

    #[test]
    fn absolute_scale_near_paper() {
        let base = cycles("Nopipe-BusError", "Read");
        assert!((1300..=1700).contains(&base), "{base}");
        let w = cycles("Nopipe-BusError", "Write");
        assert!((950..=1250).contains(&w), "{w}");
    }
}
