//! `repro` — regenerate the sIOPMP evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro              # run every experiment, in paper order
//! repro fig15 fig17  # run a subset
//! repro --list       # list experiment names
//! repro --json       # machine-readable output + live telemetry dump
//! repro --threads 4  # worker threads for the parallel section
//! ```
//!
//! The command line goes through the workspace's unified grammar
//! ([`siopmp_scenario::cli::Spec`]), so `--json`, `--list`, `--threads`
//! and `--out` spell the same here as in `siopmp-scenario`,
//! `siopmp-bench` and `siopmp-verify`. The historical `-l` spelling of
//! `--list` still works but warns.
//!
//! With `--json`, the selected experiments' outputs are wrapped in the
//! workspace JSON envelope (`siopmp::json::envelope` — `schema_version`,
//! `scenario`, `seed`, `threads`, `payload`) together with a telemetry
//! snapshot of a representative monitored run (see
//! `siopmp_experiments::telemetry_exercise`), a bus-simulation report
//! whose `PolicyVerdict` breakdown separates stalled bursts from
//! SID-missing ones (see `siopmp_experiments::bus_exercise`), a `faults`
//! section from a pinned-seed fault storm showing the retry/recovery
//! counters (see `siopmp_experiments::faults_exercise`), and a `parallel`
//! section from the sharded two-domain engine (see
//! `siopmp_experiments::parallel_exercise`). `--threads N` sets the
//! parallel section's worker count — by the engine's determinism
//! guarantee the output is byte-identical for every `N`. `--out PATH`
//! additionally writes the JSON document to a file.

use siopmp::json::{envelope, Json};
use siopmp_scenario::cli::Spec;
use std::process::ExitCode;

const SPEC: Spec = Spec {
    tool: "repro",
    usage: "usage: repro [--list] [--json] [--threads N] [--out PATH] [experiment ...]",
    flags: &[],
    options: &[],
    deprecated: &[("-l", "--list")],
};

fn main() -> ExitCode {
    let args = match SPEC.parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for w in &args.warnings {
        eprintln!("{w}");
    }
    if args.help {
        println!("{}", SPEC.usage);
        println!("experiments: {}", siopmp_experiments::ALL.join(" "));
        return ExitCode::SUCCESS;
    }
    if args.list {
        for name in siopmp_experiments::ALL {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let threads = args.threads.unwrap_or(1);
    let selected: Vec<&str> = if args.positional.is_empty() {
        siopmp_experiments::ALL.to_vec()
    } else {
        args.positional.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    let mut rendered: Vec<(String, String)> = Vec::new();
    for name in selected {
        match siopmp_experiments::render(name) {
            Some(output) => {
                if args.json {
                    rendered.push((name.to_string(), output));
                } else {
                    println!("==== {name} ====");
                    println!("{output}");
                }
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}' (known: {})",
                    siopmp_experiments::ALL.join(", ")
                );
                failed = true;
            }
        }
    }
    if args.json && !failed {
        let payload = Json::object([
            (
                "experiments",
                Json::array(rendered.into_iter().map(|(name, output)| {
                    Json::object([("name", Json::str(name)), ("output", Json::str(output))])
                })),
            ),
            (
                "telemetry",
                siopmp_experiments::telemetry_exercise().to_json(),
            ),
            ("bus", siopmp_experiments::bus_exercise().to_json()),
            ("faults", siopmp_experiments::faults_exercise().to_json()),
            (
                "parallel",
                Json::object([
                    ("threads", Json::u64(threads as u64)),
                    (
                        "report",
                        siopmp_experiments::parallel_exercise(threads).to_json(),
                    ),
                ]),
            ),
        ]);
        let doc = envelope("repro", args.seed, threads, payload);
        println!("{}", doc.pretty());
        if let Some(path) = &args.out {
            if let Err(e) = std::fs::write(path, format!("{}\n", doc.pretty())) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
