//! `repro` — regenerate the sIOPMP evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro              # run every experiment, in paper order
//! repro fig15 fig17  # run a subset
//! repro --list       # list experiment names
//! repro --json       # machine-readable output + live telemetry dump
//! repro --threads 4  # worker threads for the parallel section
//! ```
//!
//! With `--json`, the selected experiments' outputs are wrapped in one
//! JSON document together with a telemetry snapshot of a representative
//! monitored run (see `siopmp_experiments::telemetry_exercise`), a
//! bus-simulation report whose `PolicyVerdict` breakdown separates
//! stalled bursts from SID-missing ones (see
//! `siopmp_experiments::bus_exercise`), a `faults` section from a
//! pinned-seed fault storm showing the retry/recovery counters (see
//! `siopmp_experiments::faults_exercise`), and a `parallel` section from
//! the sharded two-domain engine (see
//! `siopmp_experiments::parallel_exercise`). `--threads N` sets the
//! parallel section's worker count — by the engine's determinism
//! guarantee the output is byte-identical for every `N`.

use siopmp::json::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for name in siopmp_experiments::ALL {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: repro [--list] [--json] [--threads N] [experiment ...]");
        println!("experiments: {}", siopmp_experiments::ALL.join(" "));
        return ExitCode::SUCCESS;
    }
    let json_mode = args.iter().any(|a| a == "--json");
    // `--threads` takes a value, so both the flag and its value must be
    // kept out of the positional experiment names.
    let mut threads = 1usize;
    let mut named: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            threads = match iter.next().map(|v| v.parse()) {
                Some(Ok(n)) if n >= 1 => n,
                _ => {
                    eprintln!("--threads requires a thread count of at least 1");
                    return ExitCode::FAILURE;
                }
            };
        } else if !arg.starts_with("--") {
            named.push(arg.as_str());
        }
    }
    let selected: Vec<&str> = if named.is_empty() {
        siopmp_experiments::ALL.to_vec()
    } else {
        named
    };
    let mut failed = false;
    let mut rendered: Vec<(String, String)> = Vec::new();
    for name in selected {
        match siopmp_experiments::render(name) {
            Some(output) => {
                if json_mode {
                    rendered.push((name.to_string(), output));
                } else {
                    println!("==== {name} ====");
                    println!("{output}");
                }
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}' (known: {})",
                    siopmp_experiments::ALL.join(", ")
                );
                failed = true;
            }
        }
    }
    if json_mode && !failed {
        let doc = Json::object([
            (
                "experiments",
                Json::array(rendered.into_iter().map(|(name, output)| {
                    Json::object([("name", Json::str(name)), ("output", Json::str(output))])
                })),
            ),
            (
                "telemetry",
                siopmp_experiments::telemetry_exercise().to_json(),
            ),
            ("bus", siopmp_experiments::bus_exercise().to_json()),
            ("faults", siopmp_experiments::faults_exercise().to_json()),
            (
                "parallel",
                Json::object([
                    ("threads", Json::u64(threads as u64)),
                    (
                        "report",
                        siopmp_experiments::parallel_exercise(threads).to_json(),
                    ),
                ]),
            ),
        ]);
        println!("{}", doc.pretty());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
