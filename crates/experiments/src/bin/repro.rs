//! `repro` — regenerate the sIOPMP evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro              # run every experiment, in paper order
//! repro fig15 fig17  # run a subset
//! repro --list       # list experiment names
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for name in siopmp_experiments::ALL {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: repro [--list] [experiment ...]");
        println!("experiments: {}", siopmp_experiments::ALL.join(" "));
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&str> = if args.is_empty() {
        siopmp_experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for name in selected {
        match siopmp_experiments::render(name) {
            Some(output) => {
                println!("==== {name} ====");
                println!("{output}");
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}' (known: {})",
                    siopmp_experiments::ALL.join(", ")
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
