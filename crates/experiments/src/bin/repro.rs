//! `repro` — regenerate the sIOPMP evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro              # run every experiment, in paper order
//! repro fig15 fig17  # run a subset
//! repro --list       # list experiment names
//! repro --json       # machine-readable output + live telemetry dump
//! ```
//!
//! With `--json`, the selected experiments' outputs are wrapped in one
//! JSON document together with a telemetry snapshot of a representative
//! monitored run (see `siopmp_experiments::telemetry_exercise`) and a
//! bus-simulation report whose `PolicyVerdict` breakdown separates
//! stalled bursts from SID-missing ones (see
//! `siopmp_experiments::bus_exercise`), and a `faults` section from a
//! pinned-seed fault storm showing the retry/recovery counters (see
//! `siopmp_experiments::faults_exercise`).

use siopmp::json::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for name in siopmp_experiments::ALL {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: repro [--list] [--json] [experiment ...]");
        println!("experiments: {}", siopmp_experiments::ALL.join(" "));
        return ExitCode::SUCCESS;
    }
    let json_mode = args.iter().any(|a| a == "--json");
    let selected: Vec<&str> = {
        let named: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .collect();
        if named.is_empty() {
            siopmp_experiments::ALL.to_vec()
        } else {
            named
        }
    };
    let mut failed = false;
    let mut rendered: Vec<(String, String)> = Vec::new();
    for name in selected {
        match siopmp_experiments::render(name) {
            Some(output) => {
                if json_mode {
                    rendered.push((name.to_string(), output));
                } else {
                    println!("==== {name} ====");
                    println!("{output}");
                }
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}' (known: {})",
                    siopmp_experiments::ALL.join(", ")
                );
                failed = true;
            }
        }
    }
    if json_mode && !failed {
        let doc = Json::object([
            (
                "experiments",
                Json::array(rendered.into_iter().map(|(name, output)| {
                    Json::object([("name", Json::str(name)), ("output", Json::str(output))])
                })),
            ),
            (
                "telemetry",
                siopmp_experiments::telemetry_exercise().to_json(),
            ),
            ("bus", siopmp_experiments::bus_exercise().to_json()),
            ("faults", siopmp_experiments::faults_exercise().to_json()),
        ]);
        println!("{}", doc.pretty());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
