//! Figure 14: hardware resource cost — extra LUT/FF percentage for
//! different entry counts, with and without tree arbitration.

use siopmp::area::{estimate, FIGURE14_ENTRIES};
use siopmp::checker::CheckerKind;

/// One group of bars (entry count → four values).
#[derive(Debug, Clone, Copy)]
pub struct Group {
    /// IOPMP entries.
    pub entries: usize,
    /// LUT % without tree arbitration.
    pub lut_pct: f64,
    /// FF % without tree arbitration.
    pub ff_pct: f64,
    /// LUT % with tree arbitration.
    pub lut_tree_pct: f64,
    /// FF % with tree arbitration.
    pub ff_tree_pct: f64,
}

/// Computes all groups.
pub fn data() -> Vec<Group> {
    FIGURE14_ENTRIES
        .iter()
        .map(|&entries| {
            let linear = estimate(CheckerKind::Linear, entries);
            let tree = estimate(CheckerKind::Tree { tree_arity: 2 }, entries);
            Group {
                entries,
                lut_pct: linear.lut_pct,
                ff_pct: linear.ff_pct,
                lut_tree_pct: tree.lut_pct,
                ff_tree_pct: tree.ff_pct,
            }
        })
        .collect()
}

/// Renders the figure as a table.
pub fn render() -> String {
    let mut out = String::from("Figure 14: hardware resource cost (% of SoC LUTs / FFs)\n");
    out.push_str(&format!(
        "{:<12}{:>8}{:>8}{:>10}{:>9}\n",
        "entries", "LUT", "FF", "LUT-tree", "FF-tree"
    ));
    for g in data() {
        out.push_str(&format!(
            "{:<12}{:>8.2}{:>8.2}{:>10.2}{:>9.2}\n",
            format!("{}-iopmp", g.entries),
            g.lut_pct,
            g.ff_pct,
            g.lut_tree_pct,
            g.ff_tree_pct
        ));
    }
    out.push_str(
        "(paper anchors: 512 entries without tree: 17.3% LUT / 1.8% FF;\n with tree: ~1.21%, a ~93% LUT reduction)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cover_the_sweep() {
        assert_eq!(data().len(), FIGURE14_ENTRIES.len());
    }

    #[test]
    fn anchors_at_512() {
        let g = data().into_iter().find(|g| g.entries == 512).unwrap();
        assert!((g.lut_pct - 17.3).abs() < 1.5, "{}", g.lut_pct);
        assert!((g.ff_pct - 1.8).abs() < 0.2, "{}", g.ff_pct);
        assert!((g.lut_tree_pct - 1.21).abs() < 0.15, "{}", g.lut_tree_pct);
        let reduction = 1.0 - g.lut_tree_pct / g.lut_pct;
        assert!(reduction > 0.9, "LUT reduction {reduction}");
    }

    #[test]
    fn tree_always_cheaper_in_luts() {
        for g in data() {
            assert!(g.lut_tree_pct < g.lut_pct, "{}", g.entries);
            assert!(g.ff_tree_pct <= g.ff_pct, "{}", g.entries);
        }
    }
}
