//! Figure 15: iperf network bandwidth under different I/O protection
//! mechanisms, RX and TX, as a percentage of the unprotected baseline.

use siopmp_iommu::protection::{DmaProtection, InvalidationPolicy, Iommu};
use siopmp_iommu::swio::Swio;
use siopmp_iommu::teeio::TeeIo;
use siopmp_workloads::network::{evaluate, Direction, NetworkConfig};
use siopmp_workloads::{SiopmpMech, SiopmpPlusIommu};

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Mechanism legend name (with "-multi-core" suffix where applicable).
    pub label: String,
    /// Traffic direction.
    pub direction: Direction,
    /// Throughput as % of the same-core-count unprotected baseline.
    pub percent: f64,
    /// Residual attack-window pages (security annotation).
    pub attack_window_pages: u64,
}

/// A named mechanism factory plus the core count it runs with.
type MechanismCase = (String, Box<dyn FnMut() -> Box<dyn DmaProtection>>, u32);

fn mechanisms() -> Vec<MechanismCase> {
    fn boxed<M: DmaProtection + 'static>(m: M) -> Box<dyn DmaProtection> {
        Box::new(m)
    }
    vec![
        ("sIOPMP".into(), Box::new(|| boxed(SiopmpMech::new())), 1),
        (
            "sIOPMP-2pipe".into(),
            Box::new(|| boxed(SiopmpMech::two_pipe())),
            1,
        ),
        (
            "IOMMU-deferred".into(),
            Box::new(|| {
                boxed(Iommu::build(
                    InvalidationPolicy::Deferred { batch: 256 },
                    None,
                ))
            }),
            1,
        ),
        (
            "IOMMU-strict".into(),
            Box::new(|| boxed(Iommu::build(InvalidationPolicy::Strict, None))),
            1,
        ),
        (
            "IOMMU-deferred-multi-core".into(),
            Box::new(|| {
                boxed(Iommu::build(
                    InvalidationPolicy::Deferred { batch: 256 },
                    None,
                ))
            }),
            4,
        ),
        (
            "IOMMU-strict-multi-core".into(),
            Box::new(|| boxed(Iommu::build(InvalidationPolicy::Strict, None))),
            4,
        ),
        (
            "sIOPMP+IOMMU".into(),
            Box::new(|| boxed(SiopmpPlusIommu::new())),
            1,
        ),
        ("SWIO".into(), Box::new(|| boxed(Swio::new())), 1),
        (
            "TEE-IO".into(),
            Box::new(|| boxed(TeeIo::new(siopmp_iommu::rmp::OwnerId(1)))),
            1,
        ),
    ]
}

/// Measures every bar of the figure.
pub fn data() -> Vec<Bar> {
    let mut bars = Vec::new();
    for direction in [Direction::Rx, Direction::Tx] {
        for (label, mut make, cores) in mechanisms() {
            let mut mech = make();
            let cfg = NetworkConfig {
                direction,
                cores,
                ..NetworkConfig::default()
            };
            let r = evaluate(mech.as_mut(), &cfg);
            bars.push(Bar {
                label: label.clone(),
                direction,
                percent: r.fraction_of_baseline * 100.0,
                attack_window_pages: r.attack_window_pages,
            });
        }
    }
    bars
}

/// Renders the figure as a table.
pub fn render() -> String {
    let bars = data();
    let mut out = String::from("Figure 15: network bandwidth vs. unprotected baseline (%)\n");
    out.push_str(&format!(
        "{:<28}{:>8}{:>8}   note\n",
        "mechanism", "RX", "TX"
    ));
    for (label, _, _) in mechanisms() {
        let get = |d: Direction| {
            bars.iter()
                .find(|b| b.label == label && b.direction == d)
                .map(|b| b.percent)
                .unwrap_or(0.0)
        };
        let window = bars
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.attack_window_pages)
            .unwrap_or(0);
        let note = if window > 0 { "(attack window!)" } else { "" };
        out.push_str(&format!(
            "{:<28}{:>8.1}{:>8.1}   {}\n",
            label,
            get(Direction::Rx),
            get(Direction::Tx),
            note
        ));
    }
    out.push_str(
        "(paper: sIOPMP <3% loss; IOMMU-strict 25~38% single / 20~27% multi;\n SWIO 23~24%; sIOPMP+IOMMU ~ IOMMU-deferred, +19% over strict, no window)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(label: &str, d: Direction) -> f64 {
        data()
            .iter()
            .find(|b| b.label == label && b.direction == d)
            .unwrap()
            .percent
    }

    #[test]
    fn siopmp_within_3_percent() {
        for d in [Direction::Rx, Direction::Tx] {
            assert!(pct("sIOPMP", d) > 97.0, "{d}");
            assert!(pct("sIOPMP-2pipe", d) > 97.0, "{d}");
        }
    }

    #[test]
    fn strict_losses_in_paper_band() {
        let rx = pct("IOMMU-strict", Direction::Rx);
        let tx = pct("IOMMU-strict", Direction::Tx);
        assert!((60.0..=80.0).contains(&rx), "{rx}");
        assert!((62.0..=80.0).contains(&tx), "{tx}");
        assert!(rx < tx, "RX should be worse");
        let mc = pct("IOMMU-strict-multi-core", Direction::Tx);
        assert!(mc > tx, "multi-core should lose less");
        assert!((73.0..=90.0).contains(&mc), "{mc}");
    }

    #[test]
    fn swio_loses_about_a_quarter() {
        for d in [Direction::Rx, Direction::Tx] {
            let p = pct("SWIO", d);
            assert!((68.0..=82.0).contains(&p), "{d}: {p}");
        }
    }

    #[test]
    fn hybrid_improves_markedly_over_strict() {
        let hybrid = pct("sIOPMP+IOMMU", Direction::Tx);
        let strict = pct("IOMMU-strict", Direction::Tx);
        assert!(hybrid - strict > 12.0, "{hybrid} vs {strict}");
        // And carries no attack window, unlike deferred.
        let bars = data();
        let hybrid_window = bars
            .iter()
            .find(|b| b.label == "sIOPMP+IOMMU")
            .unwrap()
            .attack_window_pages;
        assert_eq!(hybrid_window, 0);
        let deferred_window = bars
            .iter()
            .find(|b| b.label == "IOMMU-deferred")
            .unwrap()
            .attack_window_pages;
        assert!(deferred_window > 0);
    }

    #[test]
    fn render_flags_the_deferred_window() {
        let t = render();
        assert!(t.contains("attack window"));
    }

    #[test]
    fn teeio_behaves_like_iommu_strict_under_churn() {
        // §6.3: "If we invalidate the RMP entry for each dma_unmap, it
        // encounters the same performance degradation (>20%) as
        // IOMMU-strict."
        let teeio = pct("TEE-IO", Direction::Tx);
        let strict = pct("IOMMU-strict", Direction::Tx);
        assert!(teeio < 80.0, "{teeio}");
        assert!((teeio - strict).abs() < 15.0, "{teeio} vs {strict}");
        // But it is safe: no attack window.
        let window = data()
            .iter()
            .find(|b| b.label == "TEE-IO")
            .unwrap()
            .attack_window_pages;
        assert_eq!(window, 0);
    }
}
