//! IOTLB pressure under multi-device scaling — the scalability bottleneck
//! the paper cites for IOMMU-based designs (§1, ref. 51): the shared IOTLB
//! thrashes as devices multiply, while sIOPMP's per-check cost is
//! independent of device count (no translation cache to miss).
//!
//! Each device streams DMA over its own working set of pages; devices
//! share one 64-entry IOTLB. As device count grows past the cache
//! capacity, the hit rate collapses and every device-side access pays the
//! multi-level table walk.

use siopmp_iommu::iotlb::Iotlb;
use siopmp_iommu::iova::IO_PAGE_SIZE;
use siopmp_iommu::pagetable::{IoPageTable, IoPerms, LEVELS, WALK_LEVEL_CYCLES};

/// One device-count sample.
#[derive(Debug, Clone, Copy)]
pub struct PressurePoint {
    /// Concurrent devices.
    pub devices: usize,
    /// IOTLB hit rate over the run.
    pub hit_rate: f64,
    /// Mean device-side translation cycles per access.
    pub mean_translate_cycles: f64,
}

/// Pages in each device's working set.
pub const WORKING_SET_PAGES: u64 = 8;

/// Rounds of round-robin access across all devices.
pub const ROUNDS: usize = 256;

/// Runs the pressure sweep over the given device counts with a 64-entry
/// shared IOTLB.
pub fn sweep(device_counts: &[usize]) -> Vec<PressurePoint> {
    device_counts
        .iter()
        .map(|&devices| {
            let mut tlb = Iotlb::new(64);
            let mut tables: Vec<IoPageTable> = Vec::with_capacity(devices);
            for d in 0..devices as u64 {
                let mut pt = IoPageTable::new();
                for p in 0..WORKING_SET_PAGES {
                    let iova = p * IO_PAGE_SIZE;
                    pt.map(
                        iova,
                        0x1000_0000 + (d * WORKING_SET_PAGES + p) * IO_PAGE_SIZE,
                        IoPerms::rw(),
                    )
                    .expect("fresh table");
                }
                tables.push(pt);
            }
            let mut cycles = 0u64;
            let mut accesses = 0u64;
            for round in 0..ROUNDS {
                for (d, pt) in tables.iter().enumerate() {
                    let iova = ((round as u64) % WORKING_SET_PAGES) * IO_PAGE_SIZE;
                    accesses += 1;
                    if tlb.lookup(d as u64, iova).is_none() {
                        let (pte, walk) = pt.translate(iova).expect("mapped");
                        tlb.fill(d as u64, iova, pte);
                        cycles += walk;
                    }
                }
            }
            let stats = tlb.stats();
            PressurePoint {
                devices,
                hit_rate: stats.hit_rate(),
                mean_translate_cycles: cycles as f64 / accesses as f64,
            }
        })
        .collect()
}

/// The device counts reported.
pub const DEVICE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 64];

/// Renders the sweep.
pub fn render() -> String {
    let mut out = String::from("IOTLB pressure: shared 64-entry IOTLB vs. device count\n");
    out.push_str(&format!(
        "{:<10}{:>10}{:>24}\n",
        "devices", "hit rate", "mean translate cycles"
    ));
    for p in sweep(&DEVICE_COUNTS) {
        out.push_str(&format!(
            "{:<10}{:>9.1}%{:>24.1}\n",
            p.devices,
            p.hit_rate * 100.0,
            p.mean_translate_cycles
        ));
    }
    out.push_str(&format!(
        "(a full walk costs {} cycles; sIOPMP's check cost is device-count\n independent — no translation cache exists to thrash)\n",
        u64::from(LEVELS) * WALK_LEVEL_CYCLES
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_collapses_past_capacity() {
        let points = sweep(&DEVICE_COUNTS);
        let small = points.first().unwrap();
        let large = points.last().unwrap();
        // 1 device × 8 pages fits the 64-entry IOTLB: near-perfect hits.
        assert!(small.hit_rate > 0.95, "{}", small.hit_rate);
        // 64 devices × 8 pages = 512 live translations over 64 entries:
        // round-robin is the worst case for LRU — everything misses.
        assert!(large.hit_rate < 0.05, "{}", large.hit_rate);
    }

    #[test]
    fn hit_rate_is_monotone_decreasing() {
        let points = sweep(&DEVICE_COUNTS);
        for w in points.windows(2) {
            assert!(
                w[1].hit_rate <= w[0].hit_rate + 1e-9,
                "{} -> {}",
                w[0].devices,
                w[1].devices
            );
        }
    }

    #[test]
    fn translate_cost_approaches_full_walk() {
        let points = sweep(&DEVICE_COUNTS);
        let large = points.last().unwrap();
        let full_walk = (u64::from(LEVELS) * WALK_LEVEL_CYCLES) as f64;
        assert!(large.mean_translate_cycles > 0.9 * full_walk);
    }
}
