//! Table 2: the configuration space of the evaluation platform.

use siopmp::checker::CheckerKind;
use siopmp::config::Placement;
use siopmp::violation::ViolationMode;
use siopmp::SiopmpConfig;

/// The processor, device, and sIOPMP configuration axes of Table 2.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// CPU descriptions (core type, count, simulated frequency).
    pub cpus: Vec<&'static str>,
    /// Cache configuration lines.
    pub caches: Vec<&'static str>,
    /// Device descriptions.
    pub devices: Vec<&'static str>,
    /// sIOPMP placements evaluated.
    pub placements: Vec<Placement>,
    /// Pipeline depths evaluated.
    pub pipeline_depths: Vec<u8>,
    /// In-SoC SID count.
    pub in_soc_sids: usize,
    /// Entry-count sweep.
    pub entry_counts: Vec<usize>,
    /// Violation mechanisms evaluated.
    pub violation_modes: Vec<ViolationMode>,
}

/// The paper's configuration (Table 2).
pub fn data() -> PlatformConfig {
    let default = SiopmpConfig::default();
    PlatformConfig {
        cpus: vec![
            "Boom, 4 out-of-order cores, simulated at 3.2 GHz",
            "Rocket, 4 in-order cores, simulated at 3.2 GHz",
        ],
        caches: vec![
            "L1 I/D: 32 KiB, 64 B line, 2/4-way",
            "L2: 512 KiB, 64 B line, 15-way",
        ],
        devices: vec![
            "IceNet 100 Gb/s NIC",
            "DMA device (dummy node for memory copy)",
            "NVDLA deep-learning accelerator",
        ],
        placements: vec![Placement::PerDevice, Placement::Centralized],
        pipeline_depths: vec![1, 2, 3],
        in_soc_sids: default.num_sids,
        entry_counts: vec![32, 64, 128, 256, 512, 1024],
        violation_modes: vec![ViolationMode::BusError, ViolationMode::PacketMasking],
    }
}

/// Renders the table.
pub fn render() -> String {
    let d = data();
    let mut out = String::from("Table 2: sIOPMP configurations in the simulated platform\n");
    out.push_str("Processor configuration:\n");
    for c in &d.cpus {
        out.push_str(&format!("  {c}\n"));
    }
    for c in &d.caches {
        out.push_str(&format!("  {c}\n"));
    }
    out.push_str("Device configuration:\n");
    for dev in &d.devices {
        out.push_str(&format!("  {dev}\n"));
    }
    out.push_str("sIOPMP configuration:\n");
    out.push_str(&format!("  Placements: {:?}\n", d.placements));
    out.push_str(&format!("  Pipeline depths: {:?}\n", d.pipeline_depths));
    out.push_str(&format!("  In-SoC SIDs: {}\n", d.in_soc_sids));
    out.push_str(&format!("  Entry counts: {:?}\n", d.entry_counts));
    out.push_str(&format!("  Violation modes: {:?}\n", d.violation_modes));
    out.push_str(&format!(
        "  Default checker: {}\n",
        SiopmpConfig::default().checker
    ));
    let _ = CheckerKind::default();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_axes() {
        let d = data();
        assert_eq!(d.in_soc_sids, 64);
        assert_eq!(d.entry_counts, vec![32, 64, 128, 256, 512, 1024]);
        assert_eq!(d.pipeline_depths, vec![1, 2, 3]);
        assert_eq!(d.violation_modes.len(), 2);
        assert_eq!(d.placements.len(), 2);
    }

    #[test]
    fn render_mentions_key_devices() {
        let t = render();
        assert!(t.contains("IceNet"));
        assert!(t.contains("NVDLA"));
        assert!(t.contains("64"));
    }
}
