//! Light-load scenario (Table 1's "Light load" column): a long-running
//! accelerator with a *fixed* memory mapping — one map at job start, one
//! unmap at job end, gigabytes of DMA in between.
//!
//! Under this workload the map/unmap costs amortise to nothing for every
//! mechanism except SWIO, whose per-byte bounce copy is on the data path —
//! which is why Table 1 rates SWIO "Bad" even at light load while both
//! IOMMU modes and sIOPMP are "Good".

use siopmp_iommu::protection::{DmaProtection, InvalidationPolicy, Iommu, NoProtection};
use siopmp_iommu::swio::Swio;
use siopmp_workloads::{SiopmpMech, SiopmpPlusIommu};

/// One mechanism's light-load result.
#[derive(Debug, Clone)]
pub struct Row {
    /// Mechanism legend name.
    pub mechanism: &'static str,
    /// Total protection cycles over the whole job.
    pub total_cycles: u64,
    /// Effective throughput as a fraction of unprotected.
    pub fraction_of_baseline: f64,
}

/// The job: stream `transfers` × `bytes_per_transfer` through one mapping.
pub const TRANSFERS: u64 = 10_000;
/// Bytes per DMA transfer.
pub const BYTES_PER_TRANSFER: u64 = 64 * 1024;
/// Base CPU cycles to orchestrate one transfer (descriptor handling).
pub const BASE_CYCLES_PER_TRANSFER: u64 = 500;

fn run(mech: &mut dyn DmaProtection) -> Row {
    let (handle, mut cycles) = mech.map(1, 0x9000_0000, BYTES_PER_TRANSFER);
    for _ in 0..TRANSFERS {
        cycles += mech.data_path_cycles(BYTES_PER_TRANSFER);
    }
    cycles += mech.unmap(handle);
    let base = TRANSFERS * BASE_CYCLES_PER_TRANSFER;
    Row {
        mechanism: mech.name(),
        total_cycles: cycles,
        fraction_of_baseline: base as f64 / (base + cycles) as f64,
    }
}

/// Evaluates all mechanisms under the light load.
pub fn data() -> Vec<Row> {
    vec![
        run(&mut NoProtection),
        run(&mut SiopmpMech::new()),
        run(&mut Iommu::build(InvalidationPolicy::Strict, None)),
        run(&mut Iommu::build(
            InvalidationPolicy::Deferred { batch: 256 },
            None,
        )),
        run(&mut SiopmpPlusIommu::new()),
        run(&mut Swio::new()),
    ]
}

/// Renders the scenario as a table.
pub fn render() -> String {
    let mut out = String::from(
        "Light load (Table 1 column): accelerator with fixed mapping,\n\
         10k transfers x 64 KiB through one map/unmap pair\n",
    );
    out.push_str(&format!(
        "{:<16}{:>18}{:>14}\n",
        "mechanism", "protection cycles", "% of native"
    ));
    for r in data() {
        out.push_str(&format!(
            "{:<16}{:>18}{:>13.1}%\n",
            r.mechanism,
            r.total_cycles,
            r.fraction_of_baseline * 100.0
        ));
    }
    out.push_str("(everything amortises at light load except SWIO's per-byte copy)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(rows: &[Row], name: &str) -> f64 {
        rows.iter()
            .find(|r| r.mechanism == name)
            .unwrap()
            .fraction_of_baseline
    }

    #[test]
    fn everything_but_swio_is_near_native() {
        let rows = data();
        for m in ["sIOPMP", "IOMMU-strict", "IOMMU-deferred", "sIOPMP+IOMMU"] {
            // One map/unmap pair (16 pages for the IOMMU) over a 5M-cycle
            // job: everything stays above 99% of native.
            assert!(pct(&rows, m) > 0.99, "{m}: {}", pct(&rows, m));
        }
    }

    #[test]
    fn swio_is_bad_even_at_light_load() {
        let rows = data();
        assert!(
            pct(&rows, "SWIO") < 0.05,
            "copy cost dominates: {}",
            pct(&rows, "SWIO")
        );
    }

    #[test]
    fn strict_iommu_is_good_at_light_load() {
        // The contrast with Figure 15: the same strict IOMMU that loses
        // 27% under packet churn is free when the mapping is fixed.
        let rows = data();
        let strict = rows.iter().find(|r| r.mechanism == "IOMMU-strict").unwrap();
        // 16 pages mapped once + one synchronous invalidation batch.
        assert!(strict.total_cycles < 20_000, "{}", strict.total_cycles);
    }
}
