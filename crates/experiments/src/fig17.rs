//! Figure 17: cold-device switching overhead — hot-device throughput under
//! different DMA-request ratios, matched vs. mismatched configurations.

use siopmp_workloads::hotcold::{run, HotColdReport, FIGURE17_RATIOS};

/// Windows of (ratio hot + 1 cold) requests per measurement.
pub const WINDOWS: u32 = 30;

/// Measures both configurations over the ratio sweep.
pub fn data() -> Vec<HotColdReport> {
    let mut reports = Vec::new();
    for ratio in FIGURE17_RATIOS {
        reports.push(run(ratio, false, WINDOWS)); // cold-cold (mismatched)
        reports.push(run(ratio, true, WINDOWS)); // hot-cold (matched)
    }
    reports
}

/// Renders the figure as a table.
pub fn render() -> String {
    let reports = data();
    let mut out =
        String::from("Figure 17: cold device switching overhead — hot-device I/O throughput (%)\n");
    out.push_str(&format!(
        "{:<10}{:>24}{:>22}\n",
        "ratio", "cold-cold (mismatched)", "hot-cold (matched)"
    ));
    for ratio in FIGURE17_RATIOS {
        let get = |matched: bool| {
            reports
                .iter()
                .find(|r| r.ratio == ratio && r.matched == matched)
                .map(|r| r.hot_throughput_fraction * 100.0)
                .unwrap_or(0.0)
        };
        out.push_str(&format!(
            "1:{:<8}{:>24.1}{:>22.1}\n",
            ratio,
            get(false),
            get(true)
        ));
    }
    out.push_str(
        "(paper: at 1:10 the mismatched setup wastes ~85% of hot-device throughput;\n correct status via IOPMP remapping keeps it at line rate)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_stays_at_line_rate() {
        for r in data().iter().filter(|r| r.matched) {
            assert!(r.hot_throughput_fraction > 0.999, "1:{}", r.ratio);
        }
    }

    #[test]
    fn mismatched_collapses_at_1_to_10() {
        let r = data()
            .into_iter()
            .find(|r| !r.matched && r.ratio == 10)
            .unwrap();
        let waste = 1.0 - r.hot_throughput_fraction;
        assert!((0.75..=0.90).contains(&waste), "waste {waste}");
    }

    #[test]
    fn degradation_monotone_in_cold_frequency() {
        let mismatched: Vec<_> = data().into_iter().filter(|r| !r.matched).collect();
        for w in mismatched.windows(2) {
            assert!(w[1].hot_throughput_fraction < w[0].hot_throughput_fraction);
        }
    }
}
