//! Security quantification: the attack windows each mechanism leaves open
//! under a bursty unmap workload, measured on the live models.
//!
//! The paper's security argument is qualitative (Table 1); this experiment
//! makes it quantitative: run the same map/unmap churn through every
//! mechanism and measure (a) how many stale pages a malicious device could
//! still reach right after each unmap, and (b) for how many operations the
//! window persists before it closes.

use siopmp_iommu::protection::{DmaProtection, InvalidationPolicy, Iommu};
use siopmp_iommu::rmp::{OwnerId, Rmp, RmpVerdict, OWNER_HYPERVISOR};
use siopmp_workloads::{SiopmpMech, SiopmpPlusIommu};

/// Result of the window measurement for one mechanism.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Mechanism legend name.
    pub mechanism: &'static str,
    /// Peak stale pages observed during the run.
    pub peak_window_pages: u64,
    /// Mean stale pages across the run's sample points.
    pub mean_window_pages: f64,
    /// Total unmaps performed.
    pub unmaps: u64,
}

/// Churns `rounds` map/unmap pairs through `mech`, sampling the attack
/// window after every unmap.
pub fn measure(mech: &mut dyn DmaProtection, rounds: u64) -> WindowReport {
    let mut peak = 0u64;
    let mut sum = 0u64;
    for i in 0..rounds {
        let (h, _) = mech.map(1, 0x100_0000 + (i % 512) * 0x1000, 1500);
        mech.unmap(h);
        let window = mech.attack_window_pages();
        peak = peak.max(window);
        sum += window;
    }
    WindowReport {
        mechanism: mech.name(),
        peak_window_pages: peak,
        mean_window_pages: sum as f64 / rounds as f64,
        unmaps: rounds,
    }
}

/// Measures every mechanism with 512 rounds.
pub fn data() -> Vec<WindowReport> {
    let rounds = 512;
    vec![
        measure(&mut SiopmpMech::new(), rounds),
        measure(&mut SiopmpPlusIommu::new(), rounds),
        measure(&mut Iommu::build(InvalidationPolicy::Strict, None), rounds),
        measure(
            &mut Iommu::build(InvalidationPolicy::Deferred { batch: 256 }, None),
            rounds,
        ),
        measure(
            &mut Iommu::build(InvalidationPolicy::Deferred { batch: 32 }, None),
            rounds,
        ),
    ]
}

/// The RMP staleness probe: how long a reclaimed page keeps passing the
/// cached ownership check, in check-operations, before invalidation runs.
pub fn rmp_staleness() -> u64 {
    let mut rmp = Rmp::new();
    let tee = OwnerId(1);
    rmp.assign(0x9000_0000, tee);
    rmp.check(0x9000_0000, tee); // cache
    rmp.assign(0x9000_0000, OWNER_HYPERVISOR); // reclaim
    let mut stale_checks = 0;
    // Without an explicit invalidation, the stale verdict persists across
    // arbitrarily many checks — bounded here for the report.
    for _ in 0..1000 {
        match rmp.check(0x9000_0000, tee).0 {
            RmpVerdict::Allowed => stale_checks += 1,
            RmpVerdict::WrongOwner(_) => break,
        }
    }
    stale_checks
}

/// Renders the report.
pub fn render() -> String {
    let mut out =
        String::from("Security: attack-window pages under map/unmap churn (512 rounds)\n");
    out.push_str(&format!(
        "{:<22}{:>12}{:>12}\n",
        "mechanism", "peak pages", "mean pages"
    ));
    for r in data() {
        out.push_str(&format!(
            "{:<22}{:>12}{:>12.1}\n",
            r.mechanism, r.peak_window_pages, r.mean_window_pages
        ));
    }
    out.push_str(&format!(
        "\nRMP cached-verdict staleness without invalidation: {} checks\n\
         (stale until software pays the ~800-cycle invalidation — the remap\n\
          race TEE-IO inherits, §2.3/§7)\n",
        rmp_staleness()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siopmp_variants_have_zero_window() {
        for r in data() {
            if r.mechanism.starts_with("sIOPMP") {
                assert_eq!(r.peak_window_pages, 0, "{}", r.mechanism);
            }
        }
    }

    #[test]
    fn strict_iommu_has_zero_window() {
        let r = data()
            .into_iter()
            .find(|r| r.mechanism == "IOMMU-strict")
            .unwrap();
        assert_eq!(r.peak_window_pages, 0);
    }

    #[test]
    fn deferred_window_scales_with_batch() {
        let rows = data();
        let deferred: Vec<&WindowReport> = rows
            .iter()
            .filter(|r| r.mechanism == "IOMMU-deferred")
            .collect();
        assert_eq!(deferred.len(), 2);
        let (big, small) = (&deferred[0], &deferred[1]); // batch 256, then 32
        assert!(big.peak_window_pages > small.peak_window_pages);
        assert_eq!(
            big.peak_window_pages, 255,
            "window peaks just below the batch"
        );
        assert_eq!(small.peak_window_pages, 31);
    }

    #[test]
    fn rmp_verdicts_stay_stale_until_invalidated() {
        assert!(
            rmp_staleness() >= 1000,
            "staleness is unbounded without a flush"
        );
    }
}
