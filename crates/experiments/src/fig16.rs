//! Figure 16: memcached request latency (50th / 99th percentile) versus
//! offered QPS, with and without sIOPMP.

use siopmp_workloads::memcached::{LatencyPoint, MemcachedConfig};

/// One measured curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label.
    pub label: &'static str,
    /// Points along the QPS sweep.
    pub points: Vec<LatencyPoint>,
}

/// The sIOPMP per-packet cycles (map 24 + unmap 24 from the mechanism
/// model).
pub const SIOPMP_CYCLES_PER_PACKET: u64 = 48;

/// Computes the four curves of the figure.
pub fn data() -> Vec<Curve> {
    let base = MemcachedConfig::default();
    let siopmp = MemcachedConfig {
        protection_cycles_per_packet: SIOPMP_CYCLES_PER_PACKET,
        ..base
    };
    vec![
        Curve {
            label: "4 threads, w/o protection",
            points: base.figure16_sweep(),
        },
        Curve {
            label: "4 threads, sIOPMP",
            points: siopmp.figure16_sweep(),
        },
    ]
}

/// Renders the figure as a table.
pub fn render() -> String {
    let curves = data();
    let mut out = String::from("Figure 16: memcached latency vs. QPS (4 threads, microseconds)\n");
    out.push_str(&format!(
        "{:<8}{:>14}{:>14}{:>14}{:>14}\n",
        "QPS", "p50 native", "p50 sIOPMP", "p99 native", "p99 sIOPMP"
    ));
    let native = &curves[0].points;
    let siopmp = &curves[1].points;
    for (n, s) in native.iter().zip(siopmp) {
        out.push_str(&format!(
            "{:<8.0}{:>14.0}{:>14.0}{:>14.0}{:>14.0}\n",
            n.qps, n.p50_us, s.p50_us, n.p99_us, s.p99_us
        ));
    }
    out.push_str("(paper: sIOPMP does not sacrifice QPS at the same p50/p99 requirement)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_cover_the_sweep() {
        let curves = data();
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].points.len(), 9);
        assert!((curves[0].points[0].qps - 5000.0).abs() < 1.0);
        assert!((curves[0].points[8].qps - 45_000.0).abs() < 1.0);
    }

    #[test]
    fn siopmp_curve_tracks_native_within_noise() {
        let curves = data();
        for (n, s) in curves[0].points.iter().zip(&curves[1].points) {
            assert!(
                (s.p50_us - n.p50_us) / n.p50_us < 0.02,
                "p50 diverges at {}",
                n.qps
            );
            assert!(
                (s.p99_us - n.p99_us) / n.p99_us < 0.05,
                "p99 diverges at {}",
                n.qps
            );
        }
    }

    #[test]
    fn tail_latency_explodes_near_capacity() {
        let curves = data();
        let last = curves[0].points.last().unwrap();
        let first = curves[0].points.first().unwrap();
        assert!(last.p99_us > 20.0 * first.p99_us);
    }
}
