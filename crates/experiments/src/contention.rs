//! Contended-readers workload: wait-free `SharedSiopmp` checks racing a
//! mutating owner.
//!
//! This module is the setup half of the `contended_readers` bench scenario
//! (it is not a paper artifact, so it does not appear in [`crate::ALL`]):
//! it builds a checker with page-aligned entries so verdicts are
//! decision-cacheable, a deterministic per-reader request stream mixing
//! allowed and denied pages, and a `run` loop that pits N reader threads —
//! each holding a [`siopmp::SharedSiopmp`] handle — against the owning
//! `&mut Siopmp`, which flaps an entry to force snapshot republication
//! while the readers are in flight.
//!
//! Verdicts for the flapped page are timing-dependent (a reader may see
//! the pre- or post-publish snapshot), so [`ContentionTally`] reports
//! aggregate invariants rather than a fixed verdict vector: every check
//! resolves to exactly `Allowed` or `Denied` (no stalls, no torn
//! configurations), and the publish generation advances at least once per
//! writer mutation.

use std::thread;

use siopmp::entry::{AddressRange, IopmpEntry, Permissions};
use siopmp::ids::{DeviceId, EntryIndex, MdIndex};
use siopmp::request::{AccessKind, DmaRequest};
use siopmp::telemetry::Telemetry;
use siopmp::{CheckOutcome, Siopmp, SiopmpConfig};

/// 4 KiB pages, matching the decision cache granularity.
const PAGE: u64 = 4096;

/// Base guest-physical address of the entry window.
const BASE: u64 = 0x10_0000;

/// A configured checker plus the deterministic request stream the reader
/// threads replay.
#[derive(Debug)]
pub struct ContentionWorkload {
    unit: Siopmp,
    flap: EntryIndex,
    flap_entry: IopmpEntry,
    requests: Vec<DmaRequest>,
}

/// Aggregate outcome counts from one contended run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContentionTally {
    /// Total checks issued across all reader threads.
    pub checks: u64,
    /// Checks that resolved to [`CheckOutcome::Allowed`].
    pub allowed: u64,
    /// Checks that resolved to a deny outcome.
    pub denied: u64,
    /// Snapshot publications observed (`generation` delta across the run).
    pub publishes: u64,
}

impl ContentionWorkload {
    /// Builds a checker with `entries` page-sized windows for one hot
    /// device and a request stream of `requests_per_reader` beats.
    ///
    /// Entry 0 is the *flap* entry: the writer repeatedly removes and
    /// reinstalls it during [`run`](Self::run). The stream probes every
    /// page round-robin plus one page past the window (a stable deny), so
    /// both verdict classes appear even when the writer is idle.
    pub fn new(entries: usize, requests_per_reader: usize, telemetry: Option<Telemetry>) -> Self {
        assert!(entries >= 2, "need a flap entry plus a stable entry");
        let mut config = SiopmpConfig::small();
        // The entry table partitions evenly across memory domains, so size
        // it so MD0's share covers the workload's windows.
        config.num_entries = config.num_entries.max((entries + 2) * config.num_mds);
        let mut unit = Siopmp::build(config, telemetry);
        let device = DeviceId(1);
        let sid = unit.map_hot_device(device).expect("fresh unit");
        unit.associate_sid_with_md(sid, MdIndex(0)).expect("md 0");
        let mut flap = None;
        let mut flap_entry = None;
        for i in 0..entries {
            let entry = IopmpEntry::new(
                AddressRange::new(BASE + i as u64 * PAGE, PAGE).unwrap(),
                Permissions::rw(),
            );
            let index = unit.install_entry(MdIndex(0), entry).expect("slots sized");
            if i == 0 {
                flap = Some(index);
                flap_entry = Some(entry);
            }
        }
        // Probe every mapped page plus one page past the window, which no
        // entry covers — a deterministic deny arm.
        let requests = (0..requests_per_reader)
            .map(|i| {
                let page = (i % (entries + 1)) as u64;
                let offset = (i as u64 * 64) % PAGE;
                DmaRequest::new(device, AccessKind::Read, BASE + page * PAGE + offset, 8)
            })
            .collect();
        Self {
            unit,
            flap: flap.unwrap(),
            flap_entry: flap_entry.unwrap(),
            requests,
        }
    }

    /// The owning checker (e.g. for stats inspection between runs).
    pub fn unit(&self) -> &Siopmp {
        &self.unit
    }

    /// Runs `readers` threads, each replaying the request stream through
    /// its own [`siopmp::SharedSiopmp`] handle, while this thread (the
    /// owner) flaps entry 0 `writer_mutations` times. The flap entry is
    /// restored before returning, so successive runs start from the same
    /// configuration.
    ///
    /// Panics if any reader observes an outcome other than
    /// `Allowed`/`Denied*` — a stall or routing miss would mean a torn
    /// snapshot leaked through the publish protocol.
    pub fn run(&mut self, readers: usize, writer_mutations: usize) -> ContentionTally {
        let shared = self.unit.share();
        let generation_before = shared.generation();
        let mut tally = ContentionTally::default();
        let reader_tallies: Vec<(u64, u64)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let checker = shared.clone();
                    let requests = &self.requests;
                    scope.spawn(move || {
                        let (mut allowed, mut denied) = (0u64, 0u64);
                        for req in requests {
                            match checker.check(req) {
                                CheckOutcome::Allowed { .. } => allowed += 1,
                                CheckOutcome::Denied(_) => denied += 1,
                                other => panic!("torn snapshot leaked: {other:?}"),
                            }
                        }
                        (allowed, denied)
                    })
                })
                .collect();
            for i in 0..writer_mutations {
                let replacement = if i % 2 == 0 {
                    None
                } else {
                    Some(self.flap_entry)
                };
                self.unit
                    .set_entry(self.flap, replacement)
                    .expect("flap slot");
                thread::yield_now();
            }
            // Leave the flap entry installed so the next run is identical.
            self.unit
                .set_entry(self.flap, Some(self.flap_entry))
                .expect("flap slot");
            handles
                .into_iter()
                .map(|h| h.join().expect("reader"))
                .collect()
        });
        for (allowed, denied) in reader_tallies {
            tally.allowed += allowed;
            tally.denied += denied;
            tally.checks += allowed + denied;
        }
        tally.publishes = shared.generation() - generation_before;
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_run_is_deterministic() {
        let mut w = ContentionWorkload::new(8, 900, None);
        let tally = w.run(4, 0);
        assert_eq!(tally.checks, 4 * 900);
        // 8 allowed pages + 1 deny page, round-robin: 9th of each cycle denies.
        assert_eq!(tally.denied, 4 * 100);
        assert_eq!(tally.allowed, tally.checks - tally.denied);
        assert_eq!(tally.publishes, 1, "only the restore publish fires");
    }

    #[test]
    fn contended_run_publishes_and_never_tears() {
        let mut w = ContentionWorkload::new(8, 2_000, None);
        let tally = w.run(4, 50);
        assert_eq!(tally.checks, 4 * 2_000);
        assert_eq!(tally.allowed + tally.denied, tally.checks);
        assert!(
            tally.publishes >= 51,
            "each flap plus the restore publishes: {}",
            tally.publishes
        );
        // The deny page misses regardless of flap state; the flap page may
        // land either way, so denies sit between the stable floor and the
        // floor plus every flap-page probe.
        let floor = 4 * 2_000 / 9;
        assert!(tally.denied >= floor as u64, "stable deny arm held");
    }

    #[test]
    fn successive_runs_start_from_identical_config() {
        let mut w = ContentionWorkload::new(4, 500, None);
        let first = w.run(2, 25);
        let quiet_a = w.run(2, 0);
        let quiet_b = w.run(2, 0);
        assert_eq!(quiet_a.allowed, quiet_b.allowed);
        assert_eq!(quiet_a.denied, quiet_b.denied);
        assert!(first.checks == quiet_a.checks);
    }
}
