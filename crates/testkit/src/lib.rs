//! # siopmp-testkit — zero-dependency test support
//!
//! The offline replacement for the `rand` + `proptest` dev-dependencies:
//! this workspace builds on machines with no crates.io access, so every
//! randomised test draws its entropy from the in-tree [`Rng`] below and
//! every property test runs through [`prop_check`].
//!
//! * [`Rng`] — a SplitMix64-seeded xorshift64* generator: tiny, fast, and
//!   deterministic for a given seed (the same guarantees the seeded
//!   `StdRng` gave the traffic generator);
//! * [`prop_check`] — a miniature property-testing driver: run a predicate
//!   over many generated cases and, on failure, *shrink* by replaying the
//!   failing seed at smaller generation sizes, reporting the smallest
//!   still-failing case;
//! * [`check!`]/[`check_eq!`] — `prop_assert!`-style macros usable inside
//!   `prop_check` closures (they return an `Err` instead of panicking so
//!   the driver can shrink).
//!
//! ## Example
//!
//! ```
//! use siopmp_testkit::{prop_check, check, check_eq, Gen};
//!
//! prop_check(64, |g: &mut Gen| {
//!     let xs = g.vec(0..20, |g| g.u64(0..1000));
//!     let mut sorted = xs.clone();
//!     sorted.sort();
//!     check_eq!(sorted.len(), xs.len());
//!     for w in sorted.windows(2) {
//!         check!(w[0] <= w[1], "sort must be monotone");
//!     }
//!     Ok(())
//! });
//! ```

use std::ops::Range;

/// SplitMix64: the seeding PRNG (also a fine generator on its own).
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); this is the public-domain output function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The test RNG: xorshift64* seeded through SplitMix64 (so that small or
/// zero seeds still produce well-mixed streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from `seed`. Any seed (including 0) is fine.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let mut state = mix.next_u64();
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15; // xorshift state must be nonzero
        }
        Rng { state }
    }

    /// The next 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `u64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range in gen_range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping is biased for huge spans;
        // use simple rejection sampling to stay exact.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// A uniform `u64` in `[range.start, range.end]` (inclusive).
    pub fn gen_range_inclusive(&mut self, start: u64, end: u64) -> u64 {
        assert!(start <= end, "empty inclusive range");
        if start == 0 && end == u64::MAX {
            return self.next_u64();
        }
        self.gen_range(start..end + 1)
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    pub fn gen_usize(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.gen_usize(0..slice.len())]
    }
}

/// The generation context handed to [`prop_check`] closures: an [`Rng`]
/// plus a *size* knob that collection generators respect, which is what
/// the shrinking pass turns down when hunting for a minimal failure.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: Rng,
    /// Scaling factor in `(0, 1]`: collection generators multiply their
    /// requested maximum length by this. Full-size runs use `1.0`.
    pub size: f64,
}

impl Gen {
    /// Creates a full-size generation context from `seed`.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: Rng::seed_from_u64(seed),
            size: 1.0,
        }
    }

    fn with_size(seed: u64, size: f64) -> Self {
        Gen {
            rng: Rng::seed_from_u64(seed),
            size,
        }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// A uniform `u64` in `[range.start, range.end)` — *not* size-scaled
    /// (scalar parameters shrink poorly; only collection lengths shrink).
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.rng.gen_usize(range)
    }

    /// A uniform `u8` in `[range.start, range.end)`.
    pub fn u8(&mut self, range: Range<u8>) -> u8 {
        self.rng.gen_range(range.start as u64..range.end as u64) as u8
    }

    /// A uniform `u16` in `[range.start, range.end)`.
    pub fn u16(&mut self, range: Range<u16>) -> u16 {
        self.rng.gen_range(range.start as u64..range.end as u64) as u16
    }

    /// A uniform `u32` in `[range.start, range.end)`.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.rng.gen_range(range.start as u64..range.end as u64) as u32
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A uniformly chosen element of `slice`.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        let i = self.usize(0..slice.len());
        &slice[i]
    }

    /// A vector whose length is drawn from `len` (scaled down by
    /// [`Gen::size`] during shrinking) and whose elements come from `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let max = len.end.max(len.start + 1);
        let scaled_max = ((max as f64 * self.size).ceil() as usize).max(len.start + 1);
        let n = self.usize(len.start..scaled_max.min(max));
        (0..n).map(|_| f(self)).collect()
    }
}

/// Outcome type for [`prop_check`] closures: `Ok(())` on success,
/// `Err(message)` on a falsified property.
pub type PropResult = Result<(), String>;

/// Number of shrink sizes tried after a failure (halving each step).
const SHRINK_STEPS: u32 = 6;

/// Runs `property` over `cases` generated inputs. On the first failure it
/// replays the failing seed at geometrically smaller [`Gen::size`] values
/// and panics with the smallest size that still fails — the in-tree
/// stand-in for proptest's integrated shrinking.
///
/// Determinism: case `i` always uses seed `i`, so failures reproduce
/// across runs and machines.
///
/// # Panics
///
/// Panics (failing the test) when the property returns `Err` for any case.
pub fn prop_check(cases: u64, property: impl Fn(&mut Gen) -> PropResult) {
    for seed in 0..cases {
        let mut g = Gen::new(seed);
        let Err(message) = property(&mut g) else {
            continue;
        };
        // Shrink: same seed, smaller collection sizes.
        let mut best: (f64, String) = (1.0, message);
        for step in 1..=SHRINK_STEPS {
            let size = 1.0 / f64::from(1u32 << step);
            let mut g = Gen::with_size(seed, size);
            if let Err(m) = property(&mut g) {
                best = (size, m);
            }
        }
        panic!(
            "property falsified (seed {seed}, shrunk to size {:.4}): {}",
            best.0, best.1
        );
    }
}

/// `prop_assert!` equivalent: returns `Err` from the enclosing
/// [`prop_check`] closure when the condition is false.
#[macro_export]
macro_rules! check {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "check failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "check failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// `prop_assert_eq!` equivalent.
#[macro_export]
macro_rules! check_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "check_eq failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "check_eq failed at {}:{}: {:?} != {:?} ({})",
                file!(),
                line!(),
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn rng_zero_seed_is_usable() {
        let mut r = Rng::seed_from_u64(0);
        let values: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
        // Not all equal.
        assert!(values.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
        // Every value of a small range appears.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn inclusive_range_covers_u64_max() {
        let mut r = Rng::seed_from_u64(3);
        let _ = r.gen_range_inclusive(0, u64::MAX); // must not panic/overflow
        assert_eq!(r.gen_range_inclusive(5, 5), 5);
    }

    #[test]
    fn prop_check_passes_true_property() {
        prop_check(32, |g| {
            let v = g.u64(0..100);
            check!(v < 100);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property falsified")]
    fn prop_check_reports_failures() {
        prop_check(32, |g| {
            let xs = g.vec(0..50, |g| g.u64(0..10));
            check!(xs.len() < 10, "vector too long: {}", xs.len());
            Ok(())
        });
    }

    #[test]
    fn shrinking_reduces_collection_sizes() {
        // A property that fails for vectors longer than 3: the shrink pass
        // must find a failing case at a smaller size than the original.
        let mut g_full = Gen::new(0);
        let full = g_full.vec(0..64, |g| g.u64(0..10)).len();
        let mut g_small = Gen::with_size(0, 1.0 / 64.0);
        let small = g_small.vec(0..64, |g| g.u64(0..10)).len();
        assert!(small <= full, "shrunk {small} vs full {full}");
        assert!(small <= 2, "size 1/64 should cap near the minimum: {small}");
    }

    #[test]
    fn vec_respects_minimum_length() {
        let mut g = Gen::with_size(9, 1.0 / 64.0);
        for _ in 0..100 {
            let v = g.vec(1..200, |g| g.u64(0..10));
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn choose_returns_member() {
        let mut g = Gen::new(5);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(g.choose(&items)));
        }
    }
}
