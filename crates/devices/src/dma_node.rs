//! The "dummy node for memory copy" DMA device (Table 2) with
//! scatter-gather descriptor support.

use siopmp::telemetry::{Counter, Telemetry};
use siopmp_bus::{BurstKind, MasterProgram};

/// Pre-resolved handles for the `dma.*` metrics.
#[derive(Debug, Clone)]
struct DmaCounters {
    copy_programs: Counter,
    segments: Counter,
    bursts_emitted: Counter,
    bytes_copied: Counter,
    resets: Counter,
}

impl DmaCounters {
    fn attach(t: &Telemetry) -> Self {
        DmaCounters {
            copy_programs: t.counter("dma.copy_programs"),
            segments: t.counter("dma.segments"),
            bursts_emitted: t.counter("dma.bursts_emitted"),
            bytes_copied: t.counter("dma.bytes_copied"),
            resets: t.counter("dma.resets"),
        }
    }
}

/// One scatter-gather segment: a contiguous byte range to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgSegment {
    /// Source address.
    pub src: u64,
    /// Destination address.
    pub dst: u64,
    /// Bytes to copy.
    pub len: u64,
}

/// A DMA copy engine: reads a scatter-gather list of source buffers and
/// writes them to destinations, in bursts.
///
/// Modern DMA controllers support 512–1024 scatter buffers (§1), which is
/// exactly why sIOPMP needs >1000 IOPMP entries: each live segment wants
/// its own byte-granular protection region.
///
/// # Examples
///
/// ```
/// use siopmp_devices::dma_node::{DmaCopyEngine, SgSegment};
/// let eng = DmaCopyEngine::build(3, 64, None);
/// let prog = eng.copy_program(&[SgSegment { src: 0x1000, dst: 0x8000, len: 128 }]);
/// // 2 read bursts + 2 write bursts for 128 bytes at 64 B/burst.
/// assert_eq!(prog.bursts.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DmaCopyEngine {
    device_id: u64,
    burst_bytes: u64,
    telemetry: Telemetry,
    counters: DmaCounters,
}

impl DmaCopyEngine {
    /// Creates an engine with packet-level `device_id`, moving
    /// `burst_bytes` per burst.
    ///
    /// # Panics
    ///
    /// Panics when `burst_bytes` is zero.
    pub fn build(
        device_id: u64,
        burst_bytes: u64,
        telemetry: impl Into<Option<Telemetry>>,
    ) -> Self {
        let telemetry = telemetry.into().unwrap_or_else(Telemetry::new);
        assert!(burst_bytes > 0, "burst size must be nonzero");
        DmaCopyEngine {
            device_id,
            burst_bytes,
            counters: DmaCounters::attach(&telemetry),
            telemetry,
        }
    }

    /// Creates an engine with a private telemetry registry.
    ///
    /// # Panics
    ///
    /// Panics when `burst_bytes` is zero.
    #[deprecated(note = "use `DmaCopyEngine::build(device_id, burst_bytes, None)`")]
    pub fn new(device_id: u64, burst_bytes: u64) -> Self {
        Self::build(device_id, burst_bytes, None)
    }

    /// Creates an engine sharing the caller's `telemetry` registry.
    ///
    /// # Panics
    ///
    /// Panics when `burst_bytes` is zero.
    #[deprecated(note = "use `DmaCopyEngine::build(device_id, burst_bytes, telemetry)`")]
    pub fn with_telemetry(device_id: u64, burst_bytes: u64, telemetry: Telemetry) -> Self {
        Self::build(device_id, burst_bytes, telemetry)
    }

    /// The engine's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The engine's device ID.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    /// Builds the burst program for copying `segments`: for each segment,
    /// alternating read (source) and write (destination) bursts.
    pub fn copy_program(&self, segments: &[SgSegment]) -> MasterProgram {
        let mut program = MasterProgram::uniform(self.device_id, BurstKind::Read, 0, 0);
        for seg in segments {
            let bursts = seg.len.div_ceil(self.burst_bytes);
            for b in 0..bursts {
                let off = b * self.burst_bytes;
                program.bursts.push(siopmp_bus::BurstRequest {
                    device: siopmp::ids::DeviceId(self.device_id),
                    kind: BurstKind::Read,
                    addr: seg.src + off,
                });
                program.bursts.push(siopmp_bus::BurstRequest {
                    device: siopmp::ids::DeviceId(self.device_id),
                    kind: BurstKind::Write,
                    addr: seg.dst + off,
                });
            }
        }
        self.counters.copy_programs.inc();
        self.counters.segments.add(segments.len() as u64);
        self.counters
            .bursts_emitted
            .add(program.bursts.len() as u64);
        program
    }

    /// Records a device reset: bumps the `dma.resets` counter. The engine
    /// is stateless at the bus level — recovery is expressed by re-issuing
    /// the tail of the copy with [`DmaCopyEngine::resume_program`].
    pub fn reset(&self) {
        self.counters.resets.inc();
    }

    /// Post-reset replay of an interrupted `copy_program(segments)`: skips
    /// the first `completed_pairs` read/write burst pairs (chunks whose
    /// destination write already landed before the reset) and re-issues the
    /// rest. Because each chunk is copied by an idempotent read/write pair,
    /// resuming at the first unconfirmed pair is always safe — at worst a
    /// chunk whose write raced the reset is copied twice.
    pub fn resume_program(&self, segments: &[SgSegment], completed_pairs: usize) -> MasterProgram {
        let mut program = MasterProgram::uniform(self.device_id, BurstKind::Read, 0, 0);
        let mut pair = 0usize;
        for seg in segments {
            let bursts = seg.len.div_ceil(self.burst_bytes);
            for b in 0..bursts {
                if pair >= completed_pairs {
                    let off = b * self.burst_bytes;
                    program.bursts.push(siopmp_bus::BurstRequest {
                        device: siopmp::ids::DeviceId(self.device_id),
                        kind: BurstKind::Read,
                        addr: seg.src + off,
                    });
                    program.bursts.push(siopmp_bus::BurstRequest {
                        device: siopmp::ids::DeviceId(self.device_id),
                        kind: BurstKind::Write,
                        addr: seg.dst + off,
                    });
                }
                pair += 1;
            }
        }
        self.counters.copy_programs.inc();
        self.counters
            .bursts_emitted
            .add(program.bursts.len() as u64);
        program
    }

    /// The memory regions a copy needs, as `(base, len, writable)` triples —
    /// used by the monitor to install IOPMP entries before starting the
    /// engine.
    pub fn required_regions(&self, segments: &[SgSegment]) -> Vec<(u64, u64, bool)> {
        let mut regions = Vec::with_capacity(segments.len() * 2);
        for seg in segments {
            regions.push((seg.src, seg.len, false));
            regions.push((seg.dst, seg.len, true));
        }
        regions
    }

    /// Performs the copy functionally against a [`crate::SparseMemory`]
    /// (the data movement the burst program represents).
    pub fn execute(&self, mem: &mut crate::SparseMemory, segments: &[SgSegment]) {
        for seg in segments {
            let data = mem.read_vec(seg.src, seg.len as usize);
            mem.write(seg.dst, &data);
            self.counters.bytes_copied.add(seg.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseMemory;

    #[test]
    fn program_covers_whole_segment() {
        let eng = DmaCopyEngine::build(1, 64, None);
        let prog = eng.copy_program(&[SgSegment {
            src: 0,
            dst: 0x1000,
            len: 200,
        }]);
        // ceil(200/64) = 4 bursts each way.
        assert_eq!(prog.bursts.len(), 8);
        let reads = prog
            .bursts
            .iter()
            .filter(|b| b.kind == BurstKind::Read)
            .count();
        assert_eq!(reads, 4);
    }

    #[test]
    fn regions_mark_destination_writable() {
        let eng = DmaCopyEngine::build(1, 64, None);
        let regions = eng.required_regions(&[SgSegment {
            src: 0x100,
            dst: 0x200,
            len: 32,
        }]);
        assert_eq!(regions, vec![(0x100, 32, false), (0x200, 32, true)]);
    }

    #[test]
    fn execute_moves_bytes() {
        let eng = DmaCopyEngine::build(1, 64, None);
        let mut mem = SparseMemory::new();
        mem.write(0x100, b"hello dma world!");
        eng.execute(
            &mut mem,
            &[SgSegment {
                src: 0x100,
                dst: 0x900,
                len: 16,
            }],
        );
        assert_eq!(mem.read_vec(0x900, 16), b"hello dma world!".to_vec());
    }

    #[test]
    fn scatter_gather_handles_many_segments() {
        let eng = DmaCopyEngine::build(1, 64, None);
        let segments: Vec<SgSegment> = (0..512)
            .map(|i| SgSegment {
                src: i * 0x100,
                dst: 0x100_0000 + i * 0x100,
                len: 64,
            })
            .collect();
        let prog = eng.copy_program(&segments);
        assert_eq!(prog.bursts.len(), 1024);
        assert_eq!(eng.required_regions(&segments).len(), 1024);
    }

    #[test]
    fn telemetry_counts_segments_and_bytes() {
        let t = Telemetry::new();
        let eng = DmaCopyEngine::build(1, 64, t.clone());
        let segs = [SgSegment {
            src: 0x100,
            dst: 0x900,
            len: 128,
        }];
        let _ = eng.copy_program(&segs);
        let mut mem = SparseMemory::new();
        eng.execute(&mut mem, &segs);
        let snap = t.snapshot();
        assert_eq!(snap.counters["dma.copy_programs"], 1);
        assert_eq!(snap.counters["dma.segments"], 1);
        assert_eq!(snap.counters["dma.bursts_emitted"], 4);
        assert_eq!(snap.counters["dma.bytes_copied"], 128);
    }

    #[test]
    #[should_panic(expected = "burst size")]
    fn zero_burst_size_rejected() {
        let _ = DmaCopyEngine::build(1, 0, None);
    }

    #[test]
    fn resume_skips_completed_pairs_only() {
        let t = Telemetry::new();
        let eng = DmaCopyEngine::build(1, 64, t.clone());
        let segs = [
            SgSegment {
                src: 0,
                dst: 0x1000,
                len: 128, // 2 pairs
            },
            SgSegment {
                src: 0x500,
                dst: 0x2000,
                len: 64, // 1 pair
            },
        ];
        let full = eng.copy_program(&segs);
        eng.reset();
        // 2 pairs confirmed before the reset: the replay crosses the
        // segment boundary and re-issues only the last pair.
        let replay = eng.resume_program(&segs, 2);
        assert_eq!(replay.bursts, full.bursts[4..].to_vec());
        // Resuming past the end yields an empty replay; zero resumes all.
        assert!(eng.resume_program(&segs, 10).bursts.is_empty());
        assert_eq!(eng.resume_program(&segs, 0).bursts, full.bursts);
        assert_eq!(t.snapshot().counters["dma.resets"], 1);
    }
}
