//! # siopmp-devices — device models for the sIOPMP reproduction
//!
//! Models of the devices used by the paper's evaluation platform (Table 2):
//!
//! * [`ram::SparseMemory`] — a byte-addressable sparse memory with
//!   write-strobe support, the backing store for full-system tests (it lets
//!   tests verify that packet masking really keeps denied data out of
//!   memory);
//! * [`dma_node::DmaCopyEngine`] — the "dummy node for memory copy" DMA
//!   device, with scatter-gather descriptor lists;
//! * [`nic::Nic`] — an IceNet-flavoured 100 Gb/s NIC with RX/TX descriptor
//!   rings, generating the burst traffic of packet reception/transmission;
//! * [`accel::Accelerator`] — an NVDLA-flavoured accelerator issuing large
//!   streaming reads (weights/activations) and result writes.
//!
//! Each device produces [`siopmp_bus::MasterProgram`]s so the cycle
//! simulator can drive it, and exposes the memory regions it needs so the
//! secure monitor can build its IOPMP memory domains.

pub mod accel;
pub mod dma_node;
pub mod nic;
pub mod ram;
pub mod rings;

pub use accel::Accelerator;
pub use dma_node::DmaCopyEngine;
pub use nic::Nic;
pub use ram::SparseMemory;
