//! An IceNet-flavoured NIC model: RX/TX descriptor rings plus burst-level
//! packet traffic.
//!
//! The NIC is the paper's primary I/O-intensive device (100 Gb/s, Table 2).
//! Each received packet costs the device: one descriptor fetch (read), one
//! payload write into the RX buffer, and one completion write-back. Each
//! transmitted packet costs: one descriptor fetch, one payload read from
//! the TX buffer, and one completion write-back. The byte-granular RX/TX
//! buffers and the control region are exactly the three memory regions the
//! paper's example memory domain contains (§2.2).

use siopmp::ids::DeviceId;
use siopmp::telemetry::{Counter, Telemetry};
use siopmp_bus::{BurstKind, BurstRequest, MasterProgram};

/// Pre-resolved handles for the `nic.*` metrics.
#[derive(Debug, Clone)]
struct NicCounters {
    rx_programs: Counter,
    tx_programs: Counter,
    rogue_programs: Counter,
    bursts_emitted: Counter,
    resets: Counter,
    recovery_programs: Counter,
}

impl NicCounters {
    fn attach(t: &Telemetry) -> Self {
        NicCounters {
            rx_programs: t.counter("nic.rx_programs"),
            tx_programs: t.counter("nic.tx_programs"),
            rogue_programs: t.counter("nic.rogue_programs"),
            bursts_emitted: t.counter("nic.bursts_emitted"),
            resets: t.counter("nic.resets"),
            recovery_programs: t.counter("nic.recovery_programs"),
        }
    }
}

/// Memory layout the NIC driver established for the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicLayout {
    /// Base of the RX buffer region (device writes payloads here).
    pub rx_base: u64,
    /// Base of the TX buffer region (device reads payloads from here).
    pub tx_base: u64,
    /// Base of the descriptor/control ring region (device reads
    /// descriptors and writes completions).
    pub ring_base: u64,
    /// Bytes per packet buffer slot.
    pub slot_bytes: u64,
    /// Number of ring slots per direction.
    pub slots: u32,
}

impl NicLayout {
    /// The three regions of the NIC's memory domain, as
    /// `(base, len, writable)` triples: RX (writable), TX (read-only),
    /// control ring (writable — completions).
    pub fn regions(&self) -> [(u64, u64, bool); 3] {
        let buf_len = self.slot_bytes * self.slots as u64;
        [
            (self.rx_base, buf_len, true),
            (self.tx_base, buf_len, false),
            (self.ring_base, 64 * self.slots as u64 * 2, true),
        ]
    }

    /// Address of RX slot `i` (wraps modulo the ring).
    pub fn rx_slot(&self, i: u32) -> u64 {
        self.rx_base + self.slot_bytes * u64::from(i % self.slots)
    }

    /// Address of TX slot `i` (wraps modulo the ring).
    pub fn tx_slot(&self, i: u32) -> u64 {
        self.tx_base + self.slot_bytes * u64::from(i % self.slots)
    }

    /// Address of the descriptor for direction `rx` and slot `i`.
    pub fn descriptor(&self, rx: bool, i: u32) -> u64 {
        let dir_off = if rx { 0 } else { 64 * u64::from(self.slots) };
        self.ring_base + dir_off + 64 * u64::from(i % self.slots)
    }
}

/// The NIC device model.
///
/// # Examples
///
/// ```
/// use siopmp_devices::nic::{Nic, NicLayout};
/// let nic = Nic::build(0x100, NicLayout {
///     rx_base: 0x8000_0000, tx_base: 0x8010_0000,
///     ring_base: 0x8020_0000, slot_bytes: 2048, slots: 256,
/// }, None);
/// let prog = nic.rx_program(1500, 10);
/// assert!(prog.bursts.len() > 10); // descriptor + payload + completion per packet
/// ```
#[derive(Debug, Clone)]
pub struct Nic {
    device_id: u64,
    layout: NicLayout,
    telemetry: Telemetry,
    counters: NicCounters,
}

impl Nic {
    /// Creates a NIC with packet-level `device_id` over `layout`,
    /// registering its `nic.*` metrics in `telemetry` — pass `None` for a
    /// private registry.
    pub fn build(
        device_id: u64,
        layout: NicLayout,
        telemetry: impl Into<Option<Telemetry>>,
    ) -> Self {
        let telemetry = telemetry.into().unwrap_or_else(Telemetry::new);
        Nic {
            device_id,
            layout,
            counters: NicCounters::attach(&telemetry),
            telemetry,
        }
    }

    /// Creates a NIC with a private telemetry registry.
    #[deprecated(note = "use `Nic::build(device_id, layout, None)`")]
    pub fn new(device_id: u64, layout: NicLayout) -> Self {
        Self::build(device_id, layout, None)
    }

    /// Creates a NIC sharing the caller's `telemetry` registry.
    #[deprecated(note = "use `Nic::build(device_id, layout, telemetry)`")]
    pub fn with_telemetry(device_id: u64, layout: NicLayout, telemetry: Telemetry) -> Self {
        Self::build(device_id, layout, telemetry)
    }

    /// The NIC's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The NIC's device ID.
    pub fn device_id(&self) -> DeviceId {
        DeviceId(self.device_id)
    }

    /// The NIC's memory layout.
    pub fn layout(&self) -> &NicLayout {
        &self.layout
    }

    fn burst(&self, kind: BurstKind, addr: u64) -> BurstRequest {
        BurstRequest {
            device: DeviceId(self.device_id),
            kind,
            addr,
        }
    }

    fn rx_bursts(&self, program: &mut MasterProgram, mtu: u64, first: u32, packets: u32) {
        for p in first..packets {
            program
                .bursts
                .push(self.burst(BurstKind::Read, self.layout.descriptor(true, p)));
            let slot = self.layout.rx_slot(p);
            for b in 0..mtu.div_ceil(64) {
                program
                    .bursts
                    .push(self.burst(BurstKind::Write, slot + 64 * b));
            }
            program
                .bursts
                .push(self.burst(BurstKind::Write, self.layout.descriptor(true, p)));
        }
    }

    /// Burst program for receiving `packets` packets of `mtu` bytes:
    /// per packet, a descriptor fetch, `ceil(mtu/64)` payload write bursts,
    /// and a completion write-back.
    pub fn rx_program(&self, mtu: u64, packets: u32) -> MasterProgram {
        let mut program = MasterProgram::uniform(self.device_id, BurstKind::Read, 0, 0);
        self.rx_bursts(&mut program, mtu, 0, packets);
        program.outstanding = 8; // NICs pipeline aggressively
        self.counters.rx_programs.inc();
        self.counters
            .bursts_emitted
            .add(program.bursts.len() as u64);
        program
    }

    /// Records a device reset (firmware re-initialising rings and
    /// doorbells after a mid-DMA reset): bumps the `nic.resets` counter.
    pub fn reset(&self) {
        self.counters.resets.inc();
    }

    /// Post-reset RX replay: re-issues the traffic of an interrupted
    /// `rx_program(mtu, packets)` starting at `resume_slot` (typically
    /// [`crate::rings::RingRecovery::resume_slot`] from a recovery scan of
    /// the RX descriptor ring). Packets before the resume slot completed
    /// before the reset and are not re-emitted — their completion flags
    /// make a stray replay a no-op at the data level anyway.
    pub fn rx_recovery_program(&self, mtu: u64, packets: u32, resume_slot: u32) -> MasterProgram {
        let mut program = MasterProgram::uniform(self.device_id, BurstKind::Read, 0, 0);
        self.rx_bursts(&mut program, mtu, resume_slot.min(packets), packets);
        program.outstanding = 8;
        self.counters.recovery_programs.inc();
        self.counters
            .bursts_emitted
            .add(program.bursts.len() as u64);
        program
    }

    /// Burst program for transmitting `packets` packets of `mtu` bytes.
    pub fn tx_program(&self, mtu: u64, packets: u32) -> MasterProgram {
        let mut program = MasterProgram::uniform(self.device_id, BurstKind::Read, 0, 0);
        for p in 0..packets {
            program
                .bursts
                .push(self.burst(BurstKind::Read, self.layout.descriptor(false, p)));
            let slot = self.layout.tx_slot(p);
            for b in 0..mtu.div_ceil(64) {
                program
                    .bursts
                    .push(self.burst(BurstKind::Read, slot + 64 * b));
            }
            program
                .bursts
                .push(self.burst(BurstKind::Write, self.layout.descriptor(false, p)));
        }
        program.outstanding = 8;
        self.counters.tx_programs.inc();
        self.counters
            .bursts_emitted
            .add(program.bursts.len() as u64);
        program
    }

    /// A malicious variant: the same RX traffic but with every payload
    /// write redirected to `target` — the DMA-attack scenario the threat
    /// model defends against (§3.2). Used by the security tests and the
    /// `dma_attack` example.
    pub fn rogue_rx_program(&self, mtu: u64, packets: u32, target: u64) -> MasterProgram {
        self.counters.rogue_programs.inc();
        let mut program = self.rx_program(mtu, packets);
        for b in &mut program.bursts {
            if b.kind == BurstKind::Write {
                b.addr = target;
            }
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> NicLayout {
        NicLayout {
            rx_base: 0x8000_0000,
            tx_base: 0x8010_0000,
            ring_base: 0x8020_0000,
            slot_bytes: 2048,
            slots: 4,
        }
    }

    #[test]
    fn regions_cover_three_domains() {
        let r = layout().regions();
        assert_eq!(r.len(), 3);
        assert!(r[0].2, "RX must be writable");
        assert!(!r[1].2, "TX must be read-only");
        assert!(r[2].2, "ring must be writable for completions");
    }

    #[test]
    fn slots_wrap_around_the_ring() {
        let l = layout();
        assert_eq!(l.rx_slot(0), l.rx_slot(4));
        assert_eq!(l.tx_slot(1), l.tx_slot(5));
        assert_ne!(l.descriptor(true, 0), l.descriptor(false, 0));
    }

    #[test]
    fn rx_program_shape() {
        let nic = Nic::build(7, layout(), None);
        let p = nic.rx_program(1500, 2);
        // Per packet: 1 descriptor read + 24 payload writes + 1 completion.
        assert_eq!(p.bursts.len(), 2 * (1 + 24 + 1));
        assert_eq!(p.bursts[0].kind, BurstKind::Read);
        assert_eq!(p.bursts[1].kind, BurstKind::Write);
    }

    #[test]
    fn tx_program_reads_payload() {
        let nic = Nic::build(7, layout(), None);
        let p = nic.tx_program(64, 1);
        assert_eq!(p.bursts.len(), 3);
        assert_eq!(p.bursts[1].kind, BurstKind::Read);
        assert_eq!(p.bursts[1].addr, layout().tx_slot(0));
    }

    #[test]
    fn rogue_program_redirects_writes_only() {
        let nic = Nic::build(7, layout(), None);
        let p = nic.rogue_rx_program(128, 1, 0xdead_0000);
        for b in &p.bursts {
            match b.kind {
                BurstKind::Write => assert_eq!(b.addr, 0xdead_0000),
                BurstKind::Read => assert_ne!(b.addr, 0xdead_0000),
            }
        }
    }

    #[test]
    fn telemetry_counts_programs_and_bursts() {
        let t = Telemetry::new();
        let nic = Nic::build(7, layout(), t.clone());
        let rx = nic.rx_program(1500, 2);
        let tx = nic.tx_program(64, 1);
        let snap = t.snapshot();
        assert_eq!(snap.counters["nic.rx_programs"], 1);
        assert_eq!(snap.counters["nic.tx_programs"], 1);
        assert_eq!(
            snap.counters["nic.bursts_emitted"],
            (rx.bursts.len() + tx.bursts.len()) as u64
        );
    }

    #[test]
    fn recovery_program_replays_only_pending_slots() {
        let t = Telemetry::new();
        let nic = Nic::build(7, layout(), t.clone());
        let full = nic.rx_program(1500, 4);
        nic.reset();
        let replay = nic.rx_recovery_program(1500, 4, 2);
        // Exactly the last two packets' traffic, addressed identically to
        // the tail of the full program.
        assert_eq!(replay.bursts.len(), full.bursts.len() / 2);
        assert_eq!(replay.bursts, full.bursts[full.bursts.len() / 2..].to_vec());
        // Resuming past the end yields an empty (trivially complete) replay.
        assert!(nic.rx_recovery_program(1500, 4, 9).bursts.is_empty());
        let snap = t.snapshot();
        assert_eq!(snap.counters["nic.resets"], 1);
        assert_eq!(snap.counters["nic.recovery_programs"], 2);
    }

    #[test]
    fn sub_page_packets_fit_byte_granular_regions() {
        // A 128-byte packet occupies 2 bursts, far below a 4 KiB page —
        // the sub-page isolation case the IOMMU cannot express (§1).
        let nic = Nic::build(7, layout(), None);
        let p = nic.rx_program(128, 1);
        let payload_writes = p
            .bursts
            .iter()
            .filter(|b| b.kind == BurstKind::Write)
            .count()
            - 1;
        assert_eq!(payload_writes, 2);
    }
}
